package fairnn_test

import (
	"context"
	"errors"
	"testing"

	"fairnn"
	"fairnn/internal/dataset"
)

// drawN pulls n Sample ids from a sampler (skipping misses) for stream
// comparisons.
func drawN[P any](s fairnn.Sampler[P], q P, n int) []int32 {
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if id, ok := s.Sample(q, nil); ok {
			out = append(out, id)
		} else {
			out = append(out, -1)
		}
	}
	return out
}

// TestBuilderMatchesLegacySetConstructors pins the builder's
// bit-compatibility contract: NewSet with options must produce the same
// structure — hence the identical same-seed sample stream — as the legacy
// constructor it delegates to.
func TestBuilderMatchesLegacySetConstructors(t *testing.T) {
	sets, q := smallSets()
	type pair struct {
		name    string
		legacy  func() (fairnn.Sampler[fairnn.Set], error)
		builder func() (fairnn.Sampler[fairnn.Set], error)
	}
	pairs := []pair{
		{
			name: "NNIS",
			legacy: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSetIndependent(sets, 0.6, fairnn.IndependentOptions{}, fairnn.Config{Seed: 23})
			},
			builder: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.NNIS), fairnn.WithSeed(23))
			},
		},
		{
			name: "NNS",
			legacy: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSetSampler(sets, 0.6, fairnn.Config{Seed: 29, K: 4, L: 7})
			},
			builder: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.NNS), fairnn.WithSeed(29), fairnn.WithParams(4, 7))
			},
		},
		{
			name: "Exact",
			legacy: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSetExact(sets, 0.6, 37), nil
			},
			builder: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.Exact), fairnn.WithSeed(37))
			},
		},
		{
			name: "Weighted",
			legacy: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSetWeighted(sets, 0.6, func(s float64) float64 { return s }, 1, fairnn.IndependentOptions{}, fairnn.Config{Seed: 41})
			},
			builder: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.Weighted),
					fairnn.WithWeight(func(s float64) float64 { return s }, 1), fairnn.WithSeed(41))
			},
		},
		{
			name: "MultiRadius",
			legacy: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSetMultiRadius(sets, []float64{0.3, 0.6, 0.95}, fairnn.IndependentOptions{}, fairnn.Config{Seed: 43})
			},
			builder: func() (fairnn.Sampler[fairnn.Set], error) {
				return fairnn.NewSet(sets, fairnn.Algorithm(fairnn.MultiRadius), fairnn.WithRadii(0.3, 0.6, 0.95), fairnn.WithSeed(43))
			},
		},
	}
	for _, tc := range pairs {
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.builder()
			if err != nil {
				t.Fatal(err)
			}
			got, want := drawN(b, q, 50), drawN(a, q, 50)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("draw %d: builder = %d, legacy = %d — streams diverged", i, got[i], want[i])
				}
			}
		})
	}
}

// TestBuilderStandardMatchesLegacyShape covers the Standard baseline
// separately: its build shuffles bucket contents in map-iteration order,
// so two same-seed instances are distribution- but not bit-identical
// (a pre-existing property of the legacy constructor). The builder must
// still resolve identical LSH parameters and sample only near points.
func TestBuilderStandardMatchesLegacyShape(t *testing.T) {
	sets, q := smallSets()
	legacy, err := fairnn.NewSetStandard(sets, 0.6, fairnn.Config{Seed: 31, Recall: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	built, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.Standard), fairnn.WithSeed(31), fairnn.WithRecall(0.95))
	if err != nil {
		t.Fatal(err)
	}
	std := built.(*fairnn.SetStandard)
	if std.Params() != legacy.Params() {
		t.Fatalf("builder params %+v, legacy %+v", std.Params(), legacy.Params())
	}
	for i := 0; i < 30; i++ {
		id, ok := built.Sample(q, nil)
		if !ok {
			t.Fatal("naive fair sample found nothing")
		}
		if fairnn.Jaccard(q, std.Point(id)) < 0.6 {
			t.Fatalf("sampled far point %d", id)
		}
	}
}

// TestBuilderMatchesLegacyVec pins the vector twin for the Section 4 and
// Section 5 constructions.
func TestBuilderMatchesLegacyVec(t *testing.T) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 400, Dim: 24, Alpha: 0.8, Beta: 0.4, BallSize: 12, MidSize: 40, Seed: 9,
	})
	legacyFi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.4, fairnn.VecOptions{}, 47)
	if err != nil {
		t.Fatal(err)
	}
	builtFi, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.Algorithm(fairnn.Filter), fairnn.WithBeta(0.4), fairnn.WithSeed(47))
	if err != nil {
		t.Fatal(err)
	}
	got, want := drawN[fairnn.Vec](builtFi, w.Query, 40), drawN[fairnn.Vec](legacyFi, w.Query, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("filter draw %d: builder = %d, legacy = %d", i, got[i], want[i])
		}
	}

	legacyNN, err := fairnn.NewVecSamplerIndependent(w.Points, 0.8, fairnn.IndependentOptions{}, fairnn.VecConfig{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	builtNN, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	got, want = drawN[fairnn.Vec](builtNN, w.Query, 40), drawN[fairnn.Vec](legacyNN, w.Query, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NNIS draw %d: builder = %d, legacy = %d", i, got[i], want[i])
		}
	}
}

// TestBuilderTypedErrors pins the typed validation errors.
func TestBuilderTypedErrors(t *testing.T) {
	sets, _ := smallSets()
	if _, err := fairnn.NewSet(nil, fairnn.Radius(0.5)); !errors.Is(err, fairnn.ErrNoPoints) {
		t.Errorf("empty points err = %v, want ErrNoPoints", err)
	}
	if _, err := fairnn.NewSet(sets); !errors.Is(err, fairnn.ErrBadRadius) {
		t.Errorf("missing radius err = %v, want ErrBadRadius", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(1.5)); !errors.Is(err, fairnn.ErrBadRadius) {
		t.Errorf("radius 1.5 err = %v, want ErrBadRadius", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.Weighted)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("weighted without weight err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.Filter)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("set Filter err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.WithParams(0, 3)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithParams(0, 3) err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Algorithm(fairnn.MultiRadius)); !errors.Is(err, fairnn.ErrBadRadius) {
		t.Errorf("MultiRadius without radii err = %v, want ErrBadRadius", err)
	}
	// No option is silently ignored: cross-type and cross-algorithm
	// combinations are rejected symmetrically.
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.WithBeta(0.2)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("set WithBeta err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.WithRadii(0.3, 0.6)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithRadii outside MultiRadius err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.MultiRadius), fairnn.WithRadii(0.3)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("Radius with MultiRadius err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.WithWeight(func(float64) float64 { return 1 }, 1)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithWeight outside Weighted err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(0.5), fairnn.WithBeta(0.2)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("vec WithBeta outside Filter err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(0.5), fairnn.WithRadii(0.3)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("vec WithRadii err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.NNS), fairnn.WithIndependentOptions(fairnn.IndependentOptions{Lambda: 8})); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("NNS WithIndependentOptions err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.5), fairnn.WithVecOptions(fairnn.VecOptions{})); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("set WithVecOptions err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(0.5), fairnn.WithVecOptions(fairnn.VecOptions{Eps: 0.2})); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("NNIS WithVecOptions err = %v, want ErrBadOption", err)
	}

	vecs := []fairnn.Vec{{1, 0}, {0, 1, 0}}
	if _, err := fairnn.NewVec(vecs, fairnn.Radius(0.5)); !errors.Is(err, fairnn.ErrDimMismatch) {
		t.Errorf("ragged vecs err = %v, want ErrDimMismatch", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(0.5), fairnn.WithDim(3)); !errors.Is(err, fairnn.ErrDimMismatch) {
		t.Errorf("WithDim mismatch err = %v, want ErrDimMismatch", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.Filter)); !errors.Is(err, fairnn.ErrBadRadius) {
		t.Errorf("Filter without beta err = %v, want ErrBadRadius", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}}, fairnn.Radius(1.5)); !errors.Is(err, fairnn.ErrBadRadius) {
		t.Errorf("alpha 1.5 err = %v, want ErrBadRadius", err)
	}
}

// TestBuilderDynamicPreloads checks Algorithm(Dynamic): the points are
// inserted at construction and sampling works through the interface.
func TestBuilderDynamicPreloads(t *testing.T) {
	sets, q := smallSets()
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.Dynamic), fairnn.WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != len(sets) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(sets))
	}
	id, ok := s.Sample(q, nil)
	if !ok {
		t.Fatal("dynamic sampler found nothing")
	}
	d := s.(*fairnn.SetDynamic)
	if fairnn.Jaccard(q, d.Point(id)) < 0.6 {
		t.Fatalf("sampled far point %d", id)
	}
	if got := s.SampleK(q, 3, nil); len(got) == 0 {
		t.Fatal("SampleK returned nothing")
	}
}

// TestSamplerInterfaceMiddleware exercises the polymorphic contract the
// redesign exists for: one function, written once against Sampler[Set],
// audits every construction.
func TestSamplerInterfaceMiddleware(t *testing.T) {
	sets, q := smallSets()
	audit := func(name string, s fairnn.Sampler[fairnn.Set]) {
		t.Helper()
		if s.Size() != len(sets) {
			t.Errorf("%s: Size = %d, want %d", name, s.Size(), len(sets))
		}
		if s.RetainedScratchBytes() < 0 {
			t.Errorf("%s: negative RetainedScratchBytes", name)
		}
		if _, err := s.SampleContext(context.Background(), q, nil); err != nil {
			t.Errorf("%s: SampleContext: %v", name, err)
		}
		n := 0
		for _, err := range s.Samples(context.Background(), q) {
			if err != nil {
				t.Errorf("%s: stream error: %v", name, err)
				break
			}
			if n++; n >= 5 {
				break
			}
		}
		dst := s.SampleKInto(q, 4, nil, nil)
		if len(dst) == 0 {
			t.Errorf("%s: SampleKInto returned nothing", name)
		}
	}
	for _, algo := range []fairnn.Algo{fairnn.NNIS, fairnn.NNS, fairnn.Standard, fairnn.Exact, fairnn.Dynamic} {
		s, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(algo), fairnn.WithSeed(67))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		audit(algo.String(), s)
	}
}

// errShard simulates a failing custom ContextSampler middleware.
var errShard = errors.New("shard down")

type failingSampler struct{}

func (failingSampler) SampleContext(ctx context.Context, q fairnn.Set, st *fairnn.QueryStats) (int32, error) {
	return 0, errShard
}

// TestSampleBatchContextForeignError pins the abort contract: a custom
// ContextSampler's own error must surface from the batch (not read as a
// clean, fully-processed result set).
func TestSampleBatchContextForeignError(t *testing.T) {
	queries := make([]fairnn.Set, 16)
	_, err := fairnn.SampleBatchContext(context.Background(), failingSampler{}, queries, 4)
	if !errors.Is(err, errShard) {
		t.Fatalf("batch err = %v, want errShard", err)
	}
}

// timeoutSampler simulates middleware that imposes its own per-query
// deadline: it returns context.DeadlineExceeded while the batch context
// is still live.
type timeoutSampler struct{}

func (timeoutSampler) SampleContext(ctx context.Context, q fairnn.Set, st *fairnn.QueryStats) (int32, error) {
	return 0, context.DeadlineExceeded
}

// TestSampleBatchContextForeignDeadline pins that a context-flavored error
// from the sampler itself (per-query timeout) still surfaces while the
// batch context is live — the batch must not report a clean nil error.
func TestSampleBatchContextForeignDeadline(t *testing.T) {
	queries := make([]fairnn.Set, 16)
	_, err := fairnn.SampleBatchContext(context.Background(), timeoutSampler{}, queries, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch err = %v, want the sampler's DeadlineExceeded", err)
	}
}

// TestSampleBatchContextCancel checks the batch fan-out's cancellation
// contract: a canceled context aborts the batch and reports it.
func TestSampleBatchContextCancel(t *testing.T) {
	sets, q := smallSets()
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]fairnn.Set, 64)
	for i := range queries {
		queries[i] = q
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fairnn.SampleBatchContext(ctx, s, queries, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if _, err := fairnn.SampleKBatchContext(ctx, s, queries, 3, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("k-batch err = %v, want context.Canceled", err)
	}

	// Uncanceled: results land and the error is nil.
	out, err := fairnn.SampleBatchContext(context.Background(), s, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range out {
		if r.OK {
			hits++
		}
	}
	if hits != len(queries) {
		t.Fatalf("batch found %d/%d", hits, len(queries))
	}
}
