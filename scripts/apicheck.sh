#!/usr/bin/env bash
# apicheck.sh — the façade API-surface gate.
#
# The public surface of package fairnn (as rendered by `go doc -all`) is
# snapshotted in api.txt at the repo root. CI diffs the live surface
# against the snapshot, so any façade change — new method, renamed
# option, changed doc contract — shows up as a reviewable diff instead of
# slipping through.
#
# To update the snapshot after an intentional API change:
#
#   scripts/apicheck.sh -update
#
set -euo pipefail
cd "$(dirname "$0")/.."

snapshot=api.txt

if [[ "${1:-}" == "-update" ]]; then
  go doc -all . > "$snapshot"
  echo "apicheck: wrote $snapshot"
  exit 0
fi

if [[ ! -f "$snapshot" ]]; then
  echo "apicheck: missing $snapshot (run scripts/apicheck.sh -update)" >&2
  exit 1
fi

# Render the live surface to a temp file first: with `diff <(go doc ...)`
# a go doc failure (syntax error, toolchain problem) would surface as a
# confusing truncated diff instead of the real error, because process
# substitution swallows the exit status.
live=$(mktemp)
trap 'rm -f "$live"' EXIT
if ! go doc -all . > "$live"; then
  echo "apicheck: 'go doc -all .' failed — fix the build before comparing the API surface" >&2
  exit 1
fi

if ! diff -u "$snapshot" "$live"; then
  echo >&2
  echo "apicheck: public API surface differs from api.txt." >&2
  echo "If the change is intentional, run: scripts/apicheck.sh -update" >&2
  exit 1
fi
echo "apicheck: API surface matches api.txt"
