#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite plus the kernel
# microbenchmarks and emit a JSON snapshot for the performance trajectory
# (BENCH_PR<N>.json at the repo root). The snapshot includes a three-way
# seed / PR1 / PR2 comparison table: seed and PR1 numbers are read from
# the checked-in BENCH_PR1.json, PR2 numbers from the current run.
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR2.json
#   benchtime    defaults to 1s (passed to -benchtime)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR2.json}"
BENCHTIME="${2:-1s}"

# End-to-end query/build benches (root package).
ROOT_PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent$|BenchmarkQueryFilterSampleK100|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'
# Kernel microbenches (internal packages): the segment report that the
# merged cursor accelerates and the sqrt-free distance kernels.
MICRO_PATTERN='BenchmarkSegmentNear|BenchmarkSquaredEuclidean|BenchmarkDot$|BenchmarkEuclideanSqrt'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/core ./internal/vector | tee -a "$RAW"

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v pr1json="BENCH_PR1.json" '
BEGIN {
    # Historical columns: seed numbers live in BENCH_PR1.json'\''s
    # "comparison" table (seed_ns_op), PR1 numbers in its "comparison"
    # (pr1_ns_op) and "benchmarks" (ns_op) entries.
    while ((getline line < pr1json) > 0) {
        if (line !~ /"name":/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        if (line ~ /"seed_ns_op":/) {
            v = line; sub(/.*"seed_ns_op": /, "", v); sub(/[,}].*/, "", v)
            seed_ns[name] = v
        }
        if (line ~ /"pr1_ns_op":/) {
            v = line; sub(/.*"pr1_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr1_ns[name] = v
        } else if (line ~ /"ns_op":/) {
            v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
            if (!(name in pr1_ns)) pr1_ns[name] = v
        }
    }
    close(pr1json)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        cur_ns[name] = ns
        row = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  row = row sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") row = row sprintf(", \"allocs_op\": %s", allocs)
        row = row "}"
        lines[n++] = row
    }
}
END {
    printf "{\n  \"pr\": 2,\n  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"seed/pr1 columns are historical (from BENCH_PR1.json); pr2 columns are this run. SampleK100 draws 100 independent samples per op. Regenerate with scripts/bench.sh.\",\n" >> out
    printf "  \"comparison\": [\n" >> out
    m = split("BenchmarkBuildSampler BenchmarkBuildIndependent BenchmarkQuerySamplerNNS BenchmarkQueryIndependentNNIS BenchmarkQueryIndependentSampleK100 BenchmarkQueryFilterIndependent", keys, " ")
    first = 1
    for (i = 1; i <= m; i++) {
        k = keys[i]
        if (!(k in cur_ns)) continue
        row = sprintf("    {\"name\": \"%s\"", k)
        if (k in seed_ns) row = row sprintf(", \"seed_ns_op\": %s", seed_ns[k])
        if (k in pr1_ns)  row = row sprintf(", \"pr1_ns_op\": %s", pr1_ns[k])
        row = row sprintf(", \"pr2_ns_op\": %s", cur_ns[k])
        if (k in pr1_ns && cur_ns[k]+0 > 0)
            row = row sprintf(", \"speedup_vs_pr1\": %.2f", pr1_ns[k] / cur_ns[k])
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
