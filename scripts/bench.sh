#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite and emit a JSON snapshot
# for the performance trajectory (BENCH_PR<N>.json at the repo root).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR1.json
#   benchtime    defaults to 1s (passed to -benchtime)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
BENCHTIME="${2:-1s}"
PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        line = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  line = line sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") line = line sprintf(", \"allocs_op\": %s", allocs)
        line = line "}"
        lines[n++] = line
    }
}
END {
    printf "{\n  \"benchtime\": \"ENV\",\n  \"benchmarks\": [\n" > out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

# Record the benchtime actually used.
sed -i "s/\"ENV\"/\"$BENCHTIME\"/" "$OUT"
echo "wrote $OUT"
