#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite plus the kernel
# microbenchmarks, the pooled-scratch footprint gauge, the shard-sweep
# gauge, the resilience gauge, the multi-core parallel-throughput gauge
# and the network-serving load test, and emit a JSON snapshot for the
# performance trajectory
# (BENCH_PR<N>.json at the repo root). The snapshot includes a
# seed / PR6 / PR7 / PR9 comparison table (historical columns are read
# from the checked-in BENCH_PR9.json; PR10 numbers are this run), a
# "kernels" section (the scalar-vs-accelerated distance-kernel dimension
# sweep with speedup and accelerated GB/s), a "parallel" section
# (aggregate NNIS sampling throughput at GOMAXPROCS ∈ {1, 2, 4}), a
# "serve" section (the `-exp serve` loopback fleet load test:
# p50/p90/p99/p999 latency from the obs histogram, qps, queries/hour,
# kill/readmission outcome) with its full "serve_hist" bucket dump, plus
# the footprint / shard_sweep / resilience sections carried from earlier
# PRs (resilience now reports p50/p90/p99/p999 from the same histogram).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR10.json
#   benchtime    defaults to 1s (passed to -benchtime)
# Env:
#   FAIRNN_FOOTPRINT_N         points for the footprint gauge (default 1000000)
#   FAIRNN_FOOTPRINT_QUERIERS  burst width for the gauge (default 64)
#   FAIRNN_SHARD_N             points for the shard sweep (default 1000000)
#   FAIRNN_SHARD_SWEEP         shard counts for the sweep (default "1 2 4 8")
#   FAIRNN_RES_N               points for the resilience gauge (default 200000)
#   FAIRNN_RES_REPS            timed draws per state (default 2000)
#   FAIRNN_PAR_N               points for the parallel gauge (default 8000)
#   FAIRNN_PAR_DRAWS           SampleK(100) calls per worker (default 25)
#   FAIRNN_PAR_SWEEP           GOMAXPROCS sweep (default "1 2 4")
#   FAIRNN_SERVE_SHARDS        server fleet size for the serve load test (default 4)
#   FAIRNN_SERVE_SEED          seed for the serve load test (default 0 = harness default)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
BENCHTIME="${2:-1s}"
SERVE_SHARDS="${FAIRNN_SERVE_SHARDS:-4}"
SERVE_SEED="${FAIRNN_SERVE_SEED:-0}"
FOOTPRINT_N="${FAIRNN_FOOTPRINT_N:-1000000}"
FOOTPRINT_QUERIERS="${FAIRNN_FOOTPRINT_QUERIERS:-64}"
SHARD_N="${FAIRNN_SHARD_N:-1000000}"
SHARD_SWEEP="${FAIRNN_SHARD_SWEEP:-1 2 4 8}"
RES_N="${FAIRNN_RES_N:-200000}"
RES_REPS="${FAIRNN_RES_REPS:-2000}"
PAR_N="${FAIRNN_PAR_N:-8000}"
PAR_DRAWS="${FAIRNN_PAR_DRAWS:-25}"
PAR_SWEEP="${FAIRNN_PAR_SWEEP:-1 2 4}"

# End-to-end query/build benches (root package).
ROOT_PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent$|BenchmarkQueryFilterSampleK100|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'
# Kernel microbenches (internal packages): the segment report that the
# merged cursor accelerates, the distance-kernel dimension sweep (each
# dimension runs a scalar and an accel sub-benchmark), and the
# dense-vs-compact memo lookup.
MICRO_PATTERN='BenchmarkSegmentNear|BenchmarkSquaredEuclidean|BenchmarkDot$|BenchmarkEuclideanSqrt|BenchmarkNearCached'

RAW="$(mktemp)"
FOOT="$(mktemp)"
SWEEP="$(mktemp)"
RES="$(mktemp)"
PAR="$(mktemp)"
SERVE="$(mktemp)"
trap 'rm -f "$RAW" "$FOOT" "$SWEEP" "$RES" "$PAR" "$SERVE"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/core ./internal/vector | tee -a "$RAW"

# Pooled-scratch footprint gauge: dense vs compact retained bytes after a
# burst of FOOTPRINT_QUERIERS concurrent checkouts at FOOTPRINT_N points.
FAIRNN_FOOTPRINT_N="$FOOTPRINT_N" FAIRNN_FOOTPRINT_QUERIERS="$FOOTPRINT_QUERIERS" \
	go test -run 'TestPooledScratchFootprintGauge' -count=1 -v ./internal/core | tee "$FOOT"

# Shard sweep: sharded build + Sample + SampleK(100) wall times across
# SHARD_SWEEP shard counts at SHARD_N points.
FAIRNN_SHARD_N="$SHARD_N" FAIRNN_SHARD_SWEEP="$SHARD_SWEEP" \
	go test -run 'TestShardSweepGauge' -count=1 -v ./internal/shard | tee "$SWEEP"

# Resilience gauge: p50/p90/p99/p999 single-draw latency (obs
# histogram), healthy vs 1-of-8 shards force-failed under degraded mode.
FAIRNN_RES_N="$RES_N" FAIRNN_RES_REPS="$RES_REPS" \
	go test -run 'TestResilienceGauge' -count=1 -v ./internal/shard | tee "$RES"

# Parallel-throughput gauge: aggregate Section 5 sampling throughput with
# W workers at GOMAXPROCS = W across PAR_SWEEP.
FAIRNN_PAR_N="$PAR_N" FAIRNN_PAR_DRAWS="$PAR_DRAWS" FAIRNN_PAR_SWEEP="$PAR_SWEEP" \
	go test -run 'TestParallelThroughputGauge' -count=1 -v -timeout 1200s . | tee "$PAR"

# Network-serving load test: loopback fairnn-server fleet + concurrent
# Connect clients with a mid-run kill/restart; emits one SERVE key=value
# line with p50/p90/p99/p999 latency, qps and queries/hour, plus
# SERVE_HIST lines dumping the latency histogram buckets.
go run ./cmd/fairnn -exp serve -shards "$SERVE_SHARDS" -seed "$SERVE_SEED" | tee "$SERVE"

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v pr9json="BENCH_PR9.json" -v footfile="$FOOT" -v sweepfile="$SWEEP" -v resfile="$RES" -v parfile="$PAR" -v servefile="$SERVE" '
BEGIN {
    # Historical columns from BENCH_PR9.json: its "comparison" table
    # carries seed_ns_op, pr6_ns_op, pr7_ns_op and pr9_ns_op; its
    # "benchmarks" ns_op entries fill pr9 for benches outside the
    # comparison set. The file is pretty-printed (one key per line), so
    # track the most recent "name" and attach subsequent metric lines to
    # it. The comparison rows of BENCH_PR9.json are emitted on a single
    # line each, so also match metric keys on the name line itself.
    cur = ""
    while ((getline line < pr9json) > 0) {
        if (line ~ /"name":/) {
            cur = line; sub(/.*"name": "/, "", cur); sub(/".*/, "", cur)
        }
        if (cur == "") continue
        if (line ~ /"seed_ns_op":/) {
            v = line; sub(/.*"seed_ns_op": /, "", v); sub(/[,}].*/, "", v)
            seed_ns[cur] = v
        }
        if (line ~ /"pr6_ns_op":/) {
            v = line; sub(/.*"pr6_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr6_ns[cur] = v
        }
        if (line ~ /"pr7_ns_op":/) {
            v = line; sub(/.*"pr7_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr7_ns[cur] = v
        }
        if (line ~ /"pr9_ns_op":/) {
            v = line; sub(/.*"pr9_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr9_ns[cur] = v
        } else if (line ~ /"ns_op":/) {
            v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
            if (!(cur in pr9_ns)) pr9_ns[cur] = v
        }
    }
    close(pr9json)
    # Footprint gauge lines: FOOTPRINT backend=dense n=... queriers=...
    # retained_bytes=... per_querier_bytes=...
    nf = 0
    while ((getline line < footfile) > 0) {
        if (line !~ /^FOOTPRINT /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "backend")
                pair = sprintf("\"backend\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
            if (kv[1] == "backend") fb = kv[2]
            if (kv[1] == "retained_bytes") foot_bytes[fb] = kv[2]
        }
        foot[nf++] = row "}"
    }
    close(footfile)
    # Shard sweep lines: SHARDSWEEP shards=1 n=... build_ms=...
    # sample_ns=... samplek100_ns=...
    nsweep = 0
    while ((getline line < sweepfile) > 0) {
        if (line !~ /^SHARDSWEEP /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
            first_kv = 0
        }
        sweep[nsweep++] = row "}"
    }
    close(sweepfile)
    # Resilience gauge lines: RESILIENCE state=healthy shards=8 n=...
    # reps=... p50_ns=... p99_ns=...
    nres = 0
    while ((getline line < resfile) > 0) {
        if (line !~ /^RESILIENCE /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "state")
                pair = sprintf("\"state\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
        }
        res[nres++] = row "}"
    }
    close(resfile)
    # Parallel gauge lines: PARALLEL gomaxprocs=1 workers=1 samples=...
    # secs=... samples_per_sec=... speedup_vs_first=...
    npar = 0
    while ((getline line < parfile) > 0) {
        if (line !~ /^PARALLEL /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
            first_kv = 0
        }
        par[npar++] = row "}"
    }
    close(parfile)
    # Serve load-test lines: one SERVE line (queries=... ok=...
    # p50_us=... p90_us=... p99_us=... p999_us=... qps=...
    # queries_per_hour=... killed=true readmitted=true; killed and
    # readmitted are bare JSON booleans, everything else numeric), plus
    # SERVE_HIST bucket-dump lines (le_us=... count=..., le_us 0 = the
    # overflow bucket).
    serve_row = ""
    nhist = 0
    while ((getline line < servefile) > 0) {
        if (line ~ /^SERVE_HIST /) {
            np = split(line, parts, " ")
            row = "    {"
            first_kv = 1
            for (i = 2; i <= np; i++) {
                split(parts[i], kv, "=")
                row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
                first_kv = 0
            }
            serve_hist[nhist++] = row "}"
            continue
        }
        if (line !~ /^SERVE /) continue
        np = split(line, parts, " ")
        serve_row = "{"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            serve_row = serve_row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
            first_kv = 0
        }
        serve_row = serve_row "}"
    }
    close(servefile)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        cur_ns[name] = ns
        row = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  row = row sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") row = row sprintf(", \"allocs_op\": %s", allocs)
        row = row "}"
        lines[n++] = row
        # Kernel dimension-sweep sub-benches:
        # BenchmarkDot/d=128/accel, BenchmarkSquaredEuclidean/d=64/scalar.
        if (name ~ /^Benchmark(Dot|SquaredEuclidean)\/d=[0-9]+\/(scalar|accel)$/) {
            kern = (name ~ /^BenchmarkDot\//) ? "dot" : "squared_euclidean"
            d = name; sub(/.*\/d=/, "", d); sub(/\/.*/, "", d)
            tier = name; sub(/.*\//, "", tier)
            kd_ns[kern, d, tier] = ns
            key = kern SUBSEP d
            if (!(key in kd_seen)) { kd_seen[key] = 1; kd_order[nkd++] = key }
        }
    }
}
END {
    printf "{\n  \"pr\": 10,\n  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"seed/pr6/pr7/pr9 columns are historical (from BENCH_PR9.json); pr10 columns are this run. kernels = the distance-kernel dimension sweep: scalar is the portable 4-way-unrolled Go loop, accel the AVX2+FMA assembly path (16 float64/iter, 4 FMA chains); accel_gbps counts both operand vectors (16 bytes per dimension). parallel = aggregate Section 5 SampleK(100) throughput with W workers at GOMAXPROCS=W. serve = the -exp serve network load test: a loopback fairnn-server fleet behind Connect, concurrent clients, one shard killed mid-run and restarted after; latencies are per-query wall times over real sockets, so they measure the wire round-trips, not the sampler. serve quantiles (p50/p90/p99/p999) and the resilience gauge are read from the shared obs log-spaced histogram, so they are bucket-interpolated — identical in kind to what a /metrics scrape of the serving fleet would yield; serve_hist is the full non-empty bucket dump (le_us 0 = overflow bucket). Cross-column deltas in the comparison table carry the usual caveat for this 1-core box: single-run snapshots have ~20 percent noise, trust interleaved medians (the PR5/PR6 notes record two such A/Bs measuring parity where snapshots suggested regressions). Regenerate with scripts/bench.sh.\",\n" >> out
    printf "  \"comparison\": [\n" >> out
    m = split("BenchmarkBuildSampler BenchmarkBuildIndependent BenchmarkQuerySamplerNNS BenchmarkQueryIndependentNNIS BenchmarkQueryIndependentSampleK100 BenchmarkQueryFilterIndependent", keys, " ")
    first = 1
    for (i = 1; i <= m; i++) {
        k = keys[i]
        if (!(k in cur_ns)) continue
        row = sprintf("    {\"name\": \"%s\"", k)
        if (k in seed_ns) row = row sprintf(", \"seed_ns_op\": %s", seed_ns[k])
        if (k in pr6_ns)  row = row sprintf(", \"pr6_ns_op\": %s", pr6_ns[k])
        if (k in pr7_ns)  row = row sprintf(", \"pr7_ns_op\": %s", pr7_ns[k])
        if (k in pr9_ns)  row = row sprintf(", \"pr9_ns_op\": %s", pr9_ns[k])
        row = row sprintf(", \"pr10_ns_op\": %s", cur_ns[k])
        if (k in pr9_ns && cur_ns[k]+0 > 0)
            row = row sprintf(", \"speedup_vs_pr9\": %.2f", pr9_ns[k] / cur_ns[k])
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"kernels\": [\n" >> out
    first = 1
    for (i = 0; i < nkd; i++) {
        split(kd_order[i], kd, SUBSEP)
        kern = kd[1]; d = kd[2]
        s = kd_ns[kern, d, "scalar"]; a = kd_ns[kern, d, "accel"]
        row = sprintf("    {\"kernel\": \"%s\", \"dim\": %s", kern, d)
        if (s != "") row = row sprintf(", \"scalar_ns_op\": %s", s)
        if (a != "") {
            row = row sprintf(", \"accel_ns_op\": %s", a)
            if (a+0 > 0) row = row sprintf(", \"accel_gbps\": %.2f", 16 * d / a)
        }
        if (s != "" && a != "" && a+0 > 0)
            row = row sprintf(", \"speedup\": %.2f", s / a)
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"parallel\": [\n" >> out
    for (i = 0; i < npar; i++) printf "%s%s\n", par[i], (i < npar-1 ? "," : "") >> out
    printf "  ]" >> out
    printf ",\n  \"footprint\": [\n" >> out
    for (i = 0; i < nf; i++) printf "%s%s\n", foot[i], (i < nf-1 ? "," : "") >> out
    printf "  ]" >> out
    if (("dense" in foot_bytes) && ("compact" in foot_bytes) && foot_bytes["dense"]+0 > 0)
        printf ",\n  \"footprint_compact_over_dense\": %.4f", foot_bytes["compact"] / foot_bytes["dense"] >> out
    printf ",\n  \"shard_sweep\": [\n" >> out
    for (i = 0; i < nsweep; i++) printf "%s%s\n", sweep[i], (i < nsweep-1 ? "," : "") >> out
    printf "  ]" >> out
    printf ",\n  \"resilience\": [\n" >> out
    for (i = 0; i < nres; i++) printf "%s%s\n", res[i], (i < nres-1 ? "," : "") >> out
    printf "  ]" >> out
    if (serve_row != "")
        printf ",\n  \"serve\": %s", serve_row >> out
    if (nhist > 0) {
        printf ",\n  \"serve_hist\": [\n" >> out
        for (i = 0; i < nhist; i++) printf "%s%s\n", serve_hist[i], (i < nhist-1 ? "," : "") >> out
        printf "  ]" >> out
    }
    printf ",\n  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
