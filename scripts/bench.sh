#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite plus the kernel
# microbenchmarks, the pooled-scratch footprint gauge and the shard-sweep
# gauge, and emit a JSON snapshot for the performance trajectory
# (BENCH_PR<N>.json at the repo root). The snapshot includes a
# seed / PR3 / PR5 comparison table (historical columns are read from the
# checked-in BENCH_PR3.json; PR5 numbers are this run), a "footprint"
# section (bytes of pooled per-query scratch retained after a 64-querier
# burst, dense vs compact memo backend — the PR 3 acceptance gate
# requires compact ≤ 1/10 of dense), and a "shard_sweep" section: build +
# Sample + SampleK(100) wall times of the sharded sampler at
# S ∈ {1, 2, 4, 8} and n = 10⁶ points.
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR5.json
#   benchtime    defaults to 1s (passed to -benchtime)
# Env:
#   FAIRNN_FOOTPRINT_N         points for the footprint gauge (default 1000000)
#   FAIRNN_FOOTPRINT_QUERIERS  burst width for the gauge (default 64)
#   FAIRNN_SHARD_N             points for the shard sweep (default 1000000)
#   FAIRNN_SHARD_SWEEP         shard counts for the sweep (default "1 2 4 8")
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR5.json}"
BENCHTIME="${2:-1s}"
FOOTPRINT_N="${FAIRNN_FOOTPRINT_N:-1000000}"
FOOTPRINT_QUERIERS="${FAIRNN_FOOTPRINT_QUERIERS:-64}"
SHARD_N="${FAIRNN_SHARD_N:-1000000}"
SHARD_SWEEP="${FAIRNN_SHARD_SWEEP:-1 2 4 8}"

# End-to-end query/build benches (root package).
ROOT_PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent$|BenchmarkQueryFilterSampleK100|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'
# Kernel microbenches (internal packages): the segment report that the
# merged cursor accelerates, the sqrt-free distance kernels, and the
# dense-vs-compact memo lookup.
MICRO_PATTERN='BenchmarkSegmentNear|BenchmarkSquaredEuclidean|BenchmarkDot$|BenchmarkEuclideanSqrt|BenchmarkNearCached'

RAW="$(mktemp)"
FOOT="$(mktemp)"
SWEEP="$(mktemp)"
trap 'rm -f "$RAW" "$FOOT" "$SWEEP"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/core ./internal/vector | tee -a "$RAW"

# Pooled-scratch footprint gauge: dense vs compact retained bytes after a
# burst of FOOTPRINT_QUERIERS concurrent checkouts at FOOTPRINT_N points.
FAIRNN_FOOTPRINT_N="$FOOTPRINT_N" FAIRNN_FOOTPRINT_QUERIERS="$FOOTPRINT_QUERIERS" \
	go test -run 'TestPooledScratchFootprintGauge' -count=1 -v ./internal/core | tee "$FOOT"

# Shard sweep: sharded build + Sample + SampleK(100) wall times across
# SHARD_SWEEP shard counts at SHARD_N points.
FAIRNN_SHARD_N="$SHARD_N" FAIRNN_SHARD_SWEEP="$SHARD_SWEEP" \
	go test -run 'TestShardSweepGauge' -count=1 -v ./internal/shard | tee "$SWEEP"

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v pr3json="BENCH_PR3.json" -v footfile="$FOOT" -v sweepfile="$SWEEP" '
BEGIN {
    # Historical columns from BENCH_PR3.json: its "comparison" table
    # carries seed_ns_op and pr3_ns_op; its "benchmarks" ns_op entries
    # fill pr3 for benches outside the comparison set.
    while ((getline line < pr3json) > 0) {
        if (line !~ /"name":/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        if (line ~ /"seed_ns_op":/) {
            v = line; sub(/.*"seed_ns_op": /, "", v); sub(/[,}].*/, "", v)
            seed_ns[name] = v
        }
        if (line ~ /"pr3_ns_op":/) {
            v = line; sub(/.*"pr3_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr3_ns[name] = v
        } else if (line ~ /"ns_op":/) {
            v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
            if (!(name in pr3_ns)) pr3_ns[name] = v
        }
    }
    close(pr3json)
    # Footprint gauge lines: FOOTPRINT backend=dense n=... queriers=...
    # retained_bytes=... per_querier_bytes=...
    nf = 0
    while ((getline line < footfile) > 0) {
        if (line !~ /^FOOTPRINT /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "backend")
                pair = sprintf("\"backend\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
            if (kv[1] == "backend") fb = kv[2]
            if (kv[1] == "retained_bytes") foot_bytes[fb] = kv[2]
        }
        foot[nf++] = row "}"
    }
    close(footfile)
    # Shard sweep lines: SHARDSWEEP shards=1 n=... build_ms=...
    # sample_ns=... samplek100_ns=...
    nsweep = 0
    while ((getline line < sweepfile) > 0) {
        if (line !~ /^SHARDSWEEP /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
            first_kv = 0
        }
        sweep[nsweep++] = row "}"
    }
    close(sweepfile)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        cur_ns[name] = ns
        row = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  row = row sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") row = row sprintf(", \"allocs_op\": %s", allocs)
        row = row "}"
        lines[n++] = row
    }
}
END {
    printf "{\n  \"pr\": 5,\n  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"seed/pr3 columns are historical (from BENCH_PR3.json); pr5 columns are this run. SampleK100 draws 100 independent samples per op. footprint = pooled scratch retained after a concurrent-checkout burst, dense vs compact memo backend (compact slots are packed: 8 B/slot near-cache, 16 B/slot word memo). shard_sweep = sharded build + Sample + SampleK(100) wall times per shard count at n points. Regenerate with scripts/bench.sh.\",\n" >> out
    printf "  \"comparison\": [\n" >> out
    m = split("BenchmarkBuildSampler BenchmarkBuildIndependent BenchmarkQuerySamplerNNS BenchmarkQueryIndependentNNIS BenchmarkQueryIndependentSampleK100 BenchmarkQueryFilterIndependent", keys, " ")
    first = 1
    for (i = 1; i <= m; i++) {
        k = keys[i]
        if (!(k in cur_ns)) continue
        row = sprintf("    {\"name\": \"%s\"", k)
        if (k in seed_ns) row = row sprintf(", \"seed_ns_op\": %s", seed_ns[k])
        if (k in pr3_ns)  row = row sprintf(", \"pr3_ns_op\": %s", pr3_ns[k])
        row = row sprintf(", \"pr5_ns_op\": %s", cur_ns[k])
        if (k in pr3_ns && cur_ns[k]+0 > 0)
            row = row sprintf(", \"speedup_vs_pr3\": %.2f", pr3_ns[k] / cur_ns[k])
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"footprint\": [\n" >> out
    for (i = 0; i < nf; i++) printf "%s%s\n", foot[i], (i < nf-1 ? "," : "") >> out
    printf "  ]" >> out
    if (("dense" in foot_bytes) && ("compact" in foot_bytes) && foot_bytes["dense"]+0 > 0)
        printf ",\n  \"footprint_compact_over_dense\": %.4f", foot_bytes["compact"] / foot_bytes["dense"] >> out
    printf ",\n  \"shard_sweep\": [\n" >> out
    for (i = 0; i < nsweep; i++) printf "%s%s\n", sweep[i], (i < nsweep-1 ? "," : "") >> out
    printf "  ]" >> out
    printf ",\n  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
