#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite plus the kernel
# microbenchmarks and the pooled-scratch footprint gauge, and emit a JSON
# snapshot for the performance trajectory (BENCH_PR<N>.json at the repo
# root). The snapshot includes a four-way seed / PR1 / PR2 / PR3
# comparison table (historical columns are read from the checked-in
# BENCH_PR2.json; PR3 numbers are this run) and a "footprint" section:
# bytes of pooled per-query scratch retained after a 64-querier burst,
# dense vs compact memo backend (the PR 3 acceptance gate requires
# compact ≤ 1/10 of dense).
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR3.json
#   benchtime    defaults to 1s (passed to -benchtime)
# Env:
#   FAIRNN_FOOTPRINT_N         points for the footprint gauge (default 1000000)
#   FAIRNN_FOOTPRINT_QUERIERS  burst width for the gauge (default 64)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR3.json}"
BENCHTIME="${2:-1s}"
FOOTPRINT_N="${FAIRNN_FOOTPRINT_N:-1000000}"
FOOTPRINT_QUERIERS="${FAIRNN_FOOTPRINT_QUERIERS:-64}"

# End-to-end query/build benches (root package).
ROOT_PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent$|BenchmarkQueryFilterSampleK100|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'
# Kernel microbenches (internal packages): the segment report that the
# merged cursor accelerates, the sqrt-free distance kernels, and the
# dense-vs-compact memo lookup.
MICRO_PATTERN='BenchmarkSegmentNear|BenchmarkSquaredEuclidean|BenchmarkDot$|BenchmarkEuclideanSqrt|BenchmarkNearCached'

RAW="$(mktemp)"
FOOT="$(mktemp)"
trap 'rm -f "$RAW" "$FOOT"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/core ./internal/vector | tee -a "$RAW"

# Pooled-scratch footprint gauge: dense vs compact retained bytes after a
# burst of FOOTPRINT_QUERIERS concurrent checkouts at FOOTPRINT_N points.
FAIRNN_FOOTPRINT_N="$FOOTPRINT_N" FAIRNN_FOOTPRINT_QUERIERS="$FOOTPRINT_QUERIERS" \
	go test -run 'TestPooledScratchFootprintGauge' -count=1 -v ./internal/core | tee "$FOOT"

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v pr2json="BENCH_PR2.json" -v footfile="$FOOT" '
BEGIN {
    # Historical columns from BENCH_PR2.json: seed/pr1 live in its
    # "comparison" table (seed_ns_op / pr1_ns_op), pr2 in pr2_ns_op and
    # the "benchmarks" ns_op entries.
    while ((getline line < pr2json) > 0) {
        if (line !~ /"name":/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        if (line ~ /"seed_ns_op":/) {
            v = line; sub(/.*"seed_ns_op": /, "", v); sub(/[,}].*/, "", v)
            seed_ns[name] = v
        }
        if (line ~ /"pr1_ns_op":/) {
            v = line; sub(/.*"pr1_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr1_ns[name] = v
        }
        if (line ~ /"pr2_ns_op":/) {
            v = line; sub(/.*"pr2_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr2_ns[name] = v
        } else if (line ~ /"ns_op":/) {
            v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
            if (!(name in pr2_ns)) pr2_ns[name] = v
        }
    }
    close(pr2json)
    # Footprint gauge lines: FOOTPRINT backend=dense n=... queriers=...
    # retained_bytes=... per_querier_bytes=...
    nf = 0
    while ((getline line < footfile) > 0) {
        if (line !~ /^FOOTPRINT /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "backend")
                pair = sprintf("\"backend\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
            if (kv[1] == "backend") fb = kv[2]
            if (kv[1] == "retained_bytes") foot_bytes[fb] = kv[2]
        }
        foot[nf++] = row "}"
    }
    close(footfile)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        cur_ns[name] = ns
        row = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  row = row sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") row = row sprintf(", \"allocs_op\": %s", allocs)
        row = row "}"
        lines[n++] = row
    }
}
END {
    printf "{\n  \"pr\": 3,\n  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"seed/pr1/pr2 columns are historical (from BENCH_PR2.json); pr3 columns are this run. SampleK100 draws 100 independent samples per op. footprint = pooled scratch retained after a concurrent-checkout burst, dense vs compact memo backend. Regenerate with scripts/bench.sh.\",\n" >> out
    printf "  \"comparison\": [\n" >> out
    m = split("BenchmarkBuildSampler BenchmarkBuildIndependent BenchmarkQuerySamplerNNS BenchmarkQueryIndependentNNIS BenchmarkQueryIndependentSampleK100 BenchmarkQueryFilterIndependent", keys, " ")
    first = 1
    for (i = 1; i <= m; i++) {
        k = keys[i]
        if (!(k in cur_ns)) continue
        row = sprintf("    {\"name\": \"%s\"", k)
        if (k in seed_ns) row = row sprintf(", \"seed_ns_op\": %s", seed_ns[k])
        if (k in pr1_ns)  row = row sprintf(", \"pr1_ns_op\": %s", pr1_ns[k])
        if (k in pr2_ns)  row = row sprintf(", \"pr2_ns_op\": %s", pr2_ns[k])
        row = row sprintf(", \"pr3_ns_op\": %s", cur_ns[k])
        if (k in pr2_ns && cur_ns[k]+0 > 0)
            row = row sprintf(", \"speedup_vs_pr2\": %.2f", pr2_ns[k] / cur_ns[k])
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"footprint\": [\n" >> out
    for (i = 0; i < nf; i++) printf "%s%s\n", foot[i], (i < nf-1 ? "," : "") >> out
    printf "  ]" >> out
    if (("dense" in foot_bytes) && ("compact" in foot_bytes) && foot_bytes["dense"]+0 > 0)
        printf ",\n  \"footprint_compact_over_dense\": %.4f", foot_bytes["compact"] / foot_bytes["dense"] >> out
    printf ",\n  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
