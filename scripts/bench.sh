#!/usr/bin/env bash
# bench.sh — run the query/build benchmark suite plus the kernel
# microbenchmarks, the pooled-scratch footprint gauge, the shard-sweep
# gauge and the resilience gauge, and emit a JSON snapshot for the
# performance trajectory (BENCH_PR<N>.json at the repo root). The
# snapshot includes a seed / PR3 / PR5 / PR6 comparison table (historical
# columns are read from the checked-in BENCH_PR5.json; PR6 numbers are
# this run), a "footprint" section (bytes of pooled per-query scratch
# retained after a 64-querier burst, dense vs compact memo backend), a
# "shard_sweep" section (build + Sample + SampleK(100) wall times of the
# sharded sampler at S ∈ {1, 2, 4, 8}), and a "resilience" section:
# p50/p99 single-draw latency of an 8-shard degraded-mode sampler with
# all shards healthy vs 1 of 8 shards force-failed.
#
# Usage: scripts/bench.sh [output.json] [benchtime]
#   output.json  defaults to BENCH_PR6.json
#   benchtime    defaults to 1s (passed to -benchtime)
# Env:
#   FAIRNN_FOOTPRINT_N         points for the footprint gauge (default 1000000)
#   FAIRNN_FOOTPRINT_QUERIERS  burst width for the gauge (default 64)
#   FAIRNN_SHARD_N             points for the shard sweep (default 1000000)
#   FAIRNN_SHARD_SWEEP         shard counts for the sweep (default "1 2 4 8")
#   FAIRNN_RES_N               points for the resilience gauge (default 200000)
#   FAIRNN_RES_REPS            timed draws per state (default 2000)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR6.json}"
BENCHTIME="${2:-1s}"
FOOTPRINT_N="${FAIRNN_FOOTPRINT_N:-1000000}"
FOOTPRINT_QUERIERS="${FAIRNN_FOOTPRINT_QUERIERS:-64}"
SHARD_N="${FAIRNN_SHARD_N:-1000000}"
SHARD_SWEEP="${FAIRNN_SHARD_SWEEP:-1 2 4 8}"
RES_N="${FAIRNN_RES_N:-200000}"
RES_REPS="${FAIRNN_RES_REPS:-2000}"

# End-to-end query/build benches (root package).
ROOT_PATTERN='BenchmarkQuerySamplerNNS|BenchmarkQuerySampleRepeated|BenchmarkQueryIndependentNNIS$|BenchmarkQueryIndependentNNISParallel|BenchmarkQueryIndependentSampleK100|BenchmarkQueryStandardLSH|BenchmarkQueryNaiveFair|BenchmarkQueryFilterIndependent$|BenchmarkQueryFilterSampleK100|BenchmarkBuildSampler|BenchmarkBuildIndependent|BenchmarkBuildFilterIndependent'
# Kernel microbenches (internal packages): the segment report that the
# merged cursor accelerates, the sqrt-free distance kernels, and the
# dense-vs-compact memo lookup.
MICRO_PATTERN='BenchmarkSegmentNear|BenchmarkSquaredEuclidean|BenchmarkDot$|BenchmarkEuclideanSqrt|BenchmarkNearCached'

RAW="$(mktemp)"
FOOT="$(mktemp)"
SWEEP="$(mktemp)"
RES="$(mktemp)"
trap 'rm -f "$RAW" "$FOOT" "$SWEEP" "$RES"' EXIT

go test -run '^$' -bench "$ROOT_PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/core ./internal/vector | tee -a "$RAW"

# Pooled-scratch footprint gauge: dense vs compact retained bytes after a
# burst of FOOTPRINT_QUERIERS concurrent checkouts at FOOTPRINT_N points.
FAIRNN_FOOTPRINT_N="$FOOTPRINT_N" FAIRNN_FOOTPRINT_QUERIERS="$FOOTPRINT_QUERIERS" \
	go test -run 'TestPooledScratchFootprintGauge' -count=1 -v ./internal/core | tee "$FOOT"

# Shard sweep: sharded build + Sample + SampleK(100) wall times across
# SHARD_SWEEP shard counts at SHARD_N points.
FAIRNN_SHARD_N="$SHARD_N" FAIRNN_SHARD_SWEEP="$SHARD_SWEEP" \
	go test -run 'TestShardSweepGauge' -count=1 -v ./internal/shard | tee "$SWEEP"

# Resilience gauge: p50/p99 single-draw latency, healthy vs 1-of-8
# shards force-failed under degraded mode.
FAIRNN_RES_N="$RES_N" FAIRNN_RES_REPS="$RES_REPS" \
	go test -run 'TestResilienceGauge' -count=1 -v ./internal/shard | tee "$RES"

awk -v out="$OUT" -v benchtime="$BENCHTIME" -v pr5json="BENCH_PR5.json" -v footfile="$FOOT" -v sweepfile="$SWEEP" -v resfile="$RES" '
BEGIN {
    # Historical columns from BENCH_PR5.json: its "comparison" table
    # carries seed_ns_op, pr3_ns_op and pr5_ns_op; its "benchmarks" ns_op
    # entries fill pr5 for benches outside the comparison set.
    while ((getline line < pr5json) > 0) {
        if (line !~ /"name":/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        if (line ~ /"seed_ns_op":/) {
            v = line; sub(/.*"seed_ns_op": /, "", v); sub(/[,}].*/, "", v)
            seed_ns[name] = v
        }
        if (line ~ /"pr3_ns_op":/) {
            v = line; sub(/.*"pr3_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr3_ns[name] = v
        }
        if (line ~ /"pr5_ns_op":/) {
            v = line; sub(/.*"pr5_ns_op": /, "", v); sub(/[,}].*/, "", v)
            pr5_ns[name] = v
        } else if (line ~ /"ns_op":/) {
            v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
            if (!(name in pr5_ns)) pr5_ns[name] = v
        }
    }
    close(pr5json)
    # Footprint gauge lines: FOOTPRINT backend=dense n=... queriers=...
    # retained_bytes=... per_querier_bytes=...
    nf = 0
    while ((getline line < footfile) > 0) {
        if (line !~ /^FOOTPRINT /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "backend")
                pair = sprintf("\"backend\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
            if (kv[1] == "backend") fb = kv[2]
            if (kv[1] == "retained_bytes") foot_bytes[fb] = kv[2]
        }
        foot[nf++] = row "}"
    }
    close(footfile)
    # Shard sweep lines: SHARDSWEEP shards=1 n=... build_ms=...
    # sample_ns=... samplek100_ns=...
    nsweep = 0
    while ((getline line < sweepfile) > 0) {
        if (line !~ /^SHARDSWEEP /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
            first_kv = 0
        }
        sweep[nsweep++] = row "}"
    }
    close(sweepfile)
    # Resilience gauge lines: RESILIENCE state=healthy shards=8 n=...
    # reps=... p50_ns=... p99_ns=...
    nres = 0
    while ((getline line < resfile) > 0) {
        if (line !~ /^RESILIENCE /) continue
        np = split(line, parts, " ")
        row = "    {"
        first_kv = 1
        for (i = 2; i <= np; i++) {
            split(parts[i], kv, "=")
            if (kv[1] == "state")
                pair = sprintf("\"state\": \"%s\"", kv[2])
            else
                pair = sprintf("\"%s\": %s", kv[1], kv[2])
            row = row (first_kv ? "" : ", ") pair
            first_kv = 0
        }
        res[nres++] = row "}"
    }
    close(resfile)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        cur_ns[name] = ns
        row = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns)
        if (bytes != "")  row = row sprintf(", \"bytes_op\": %s", bytes)
        if (allocs != "") row = row sprintf(", \"allocs_op\": %s", allocs)
        row = row "}"
        lines[n++] = row
    }
}
END {
    printf "{\n  \"pr\": 6,\n  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"note\": \"seed/pr3/pr5 columns are historical (from BENCH_PR5.json); pr6 columns are this run. resilience = p50/p99 single-draw latency of an 8-shard degraded-mode sampler, all shards healthy vs 1 of 8 force-failed (health-registry fail-fast absorbs the loss after the first query pays the retry budget). On the NNS regression recorded at PR5 (QuerySamplerNNS 144652 -> 160851 ns): an interleaved same-box A/B of the PR4 and PR5 trees measured medians of ~213us (PR4) vs ~189us (PR5) over 6 alternating runs each, i.e. PR5 is not slower -- the recorded delta was cross-run noise on a 1-core box, and the PR5 diff never touched the NNS sample path. The pr6 columns carry the same caveat: an interleaved PR5-tree vs PR6-tree A/B measured parity (NNIS 3.18 vs 3.15 ms, NNS 181 vs 169 us medians), so any cross-column delta here is session noise -- trust interleaved medians, not snapshot ratios. Regenerate with scripts/bench.sh.\",\n" >> out
    printf "  \"comparison\": [\n" >> out
    m = split("BenchmarkBuildSampler BenchmarkBuildIndependent BenchmarkQuerySamplerNNS BenchmarkQueryIndependentNNIS BenchmarkQueryIndependentSampleK100 BenchmarkQueryFilterIndependent", keys, " ")
    first = 1
    for (i = 1; i <= m; i++) {
        k = keys[i]
        if (!(k in cur_ns)) continue
        row = sprintf("    {\"name\": \"%s\"", k)
        if (k in seed_ns) row = row sprintf(", \"seed_ns_op\": %s", seed_ns[k])
        if (k in pr3_ns)  row = row sprintf(", \"pr3_ns_op\": %s", pr3_ns[k])
        if (k in pr5_ns)  row = row sprintf(", \"pr5_ns_op\": %s", pr5_ns[k])
        row = row sprintf(", \"pr6_ns_op\": %s", cur_ns[k])
        if (k in pr5_ns && cur_ns[k]+0 > 0)
            row = row sprintf(", \"speedup_vs_pr5\": %.2f", pr5_ns[k] / cur_ns[k])
        row = row "}"
        if (!first) printf ",\n" >> out
        printf "%s", row >> out
        first = 0
    }
    printf "\n  ],\n  \"footprint\": [\n" >> out
    for (i = 0; i < nf; i++) printf "%s%s\n", foot[i], (i < nf-1 ? "," : "") >> out
    printf "  ]" >> out
    if (("dense" in foot_bytes) && ("compact" in foot_bytes) && foot_bytes["dense"]+0 > 0)
        printf ",\n  \"footprint_compact_over_dense\": %.4f", foot_bytes["compact"] / foot_bytes["dense"] >> out
    printf ",\n  \"shard_sweep\": [\n" >> out
    for (i = 0; i < nsweep; i++) printf "%s%s\n", sweep[i], (i < nsweep-1 ? "," : "") >> out
    printf "  ]" >> out
    printf ",\n  \"resilience\": [\n" >> out
    for (i = 0; i < nres; i++) printf "%s%s\n", res[i], (i < nres-1 ? "," : "") >> out
    printf "  ]" >> out
    printf ",\n  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
