#!/usr/bin/env bash
# lint.sh — the static invariant gate.
#
# Two layers run over the whole module:
#
#   1. the stock `go vet` analyzers (stdlib correctness checks), and
#   2. the fairnn suite (cmd/fairnnlint) driven through go vet's
#      -vettool protocol: rngstream, noalloc, ctxpoll, frozenindex and
#      panicfanout — the compile-time counterparts of the runtime
#      oracles in CI (chi-squared stream uniformity, AllocsPerRun == 0,
#      idle-injector bit-equivalence).
#
# The suite is standard-library only, so this script needs no network
# and adds no module dependency. SSA-based extras from x/tools
# (nilness, unusedwrite) are deliberately NOT wired in: they would pull
# golang.org/x/tools into the build, and the module ships dependency-free.
set -euo pipefail
cd "$(dirname "$0")/.."

tool="${FAIRNNLINT:-$(mktemp -d)/fairnnlint}"

echo "lint: go vet (stock analyzers)"
go vet ./...

echo "lint: building cmd/fairnnlint"
go build -o "$tool" ./cmd/fairnnlint

echo "lint: go vet -vettool=$tool (fairnn invariant suite)"
go vet -vettool="$tool" ./...

echo "lint: clean"
