#!/usr/bin/env bash
# serve_smoke.sh — CI gate for the network serving subsystem (PR 9;
# operator endpoint added in PR 10).
#
# Five stages, each a hard failure:
#   1. the fairnn-server binary builds standalone;
#   2. the wire protocol suite passes under the race detector (framing
#      fuzz corpora, typed rejection, loopback server semantics,
#      pipelined stress);
#   3. the remote-backend and cross-process suites pass — the latter
#      re-execs the test binary as real server processes, so SIGKILL
#      degradation, SIGTERM drain and readmission run against true
#      process boundaries;
#   4. a real server started with -obs serves well-formed Prometheus
#      text exposition on /metrics (fairnn_ families with HELP/TYPE
#      headers) and answers a 1-second CPU profile on
#      /debug/pprof/profile;
#   5. a scaled-down `-exp serve` load test runs end to end (loopback
#      fleet, concurrent clients, mid-run kill + restart), and its SERVE
#      summary line is folded into a JSON artifact.
#
# Usage: scripts/serve_smoke.sh [output.json]
#   output.json  defaults to SERVE_SMOKE.json
# Env:
#   FAIRNN_SERVE_SHARDS  fleet size for the load test (default 4)
#   FAIRNN_SERVE_SEED    load-test seed (default 0 = harness default)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-SERVE_SMOKE.json}"
SHARDS="${FAIRNN_SERVE_SHARDS:-4}"
SEED="${FAIRNN_SERVE_SEED:-0}"

BINDIR="$(mktemp -d)"
SERVELOG="$(mktemp)"
OBSLOG="$(mktemp)"
METRICS="$(mktemp)"
SRVPID=""
trap '[ -n "$SRVPID" ] && kill "$SRVPID" 2>/dev/null; rm -rf "$BINDIR" "$SERVELOG" "$OBSLOG" "$METRICS"' EXIT

echo "== build fairnn-server =="
go build -o "$BINDIR/fairnn-server" ./cmd/fairnn-server
"$BINDIR/fairnn-server" -h 2>&1 | head -1 || true

echo "== wire protocol suite (race) =="
go test -race -count=1 ./internal/wire

echo "== remote backend + cross-process suites (race, short) =="
go test -race -short -count=1 -run 'TestRemote' -v ./internal/shard
go test -race -short -count=1 -v ./cmd/fairnn-server

echo "== operator endpoint (/metrics + /debug/pprof) =="
"$BINDIR/fairnn-server" -addr 127.0.0.1:0 -obs 127.0.0.1:0 -n 2000 -shards 1 -shard 0 > "$OBSLOG" &
SRVPID=$!
OBSADDR=""
for _ in $(seq 1 100); do
	OBSADDR="$(awk '/^OBS /{print $2; exit}' "$OBSLOG")"
	[ -n "$OBSADDR" ] && break
	sleep 0.1
done
if [ -z "$OBSADDR" ]; then
	echo "serve_smoke: server never announced its OBS address" >&2
	exit 1
fi
curl -fsS "http://$OBSADDR/metrics" > "$METRICS"
# The exposition must be well-formed Prometheus text format: fairnn_
# families announced with HELP/TYPE headers, every non-comment line a
# `name{labels} value` sample, and the server's request histogram
# present with its _bucket/_count series.
awk '
/^# HELP fairnn_/ { help++ }
/^# TYPE fairnn_/ { type++ }
/^#/ { next }
/^$/ { next }
{
    samples++
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+Inf-]+$/) {
        printf "serve_smoke: malformed exposition line: %s\n", $0 > "/dev/stderr"
        bad = 1
    }
}
/^fairnn_server_request_seconds_bucket\{/ { bucket++ }
/^fairnn_server_request_seconds_count/ { count++ }
END {
    if (bad) exit 1
    if (help == 0 || type == 0 || samples == 0) {
        print "serve_smoke: /metrics exposition missing fairnn_ HELP/TYPE headers or samples" > "/dev/stderr"
        exit 1
    }
    if (bucket == 0 || count == 0) {
        print "serve_smoke: /metrics exposition missing the request-latency histogram series" > "/dev/stderr"
        exit 1
    }
    printf "metrics OK: %d samples across %d families\n", samples, type
}
' "$METRICS"
curl -fsS -o /dev/null "http://$OBSADDR/debug/pprof/profile?seconds=1"
echo "pprof 1s CPU profile OK"
kill "$SRVPID"
wait "$SRVPID" || true
SRVPID=""

echo "== serve load test =="
go run ./cmd/fairnn -exp serve -shards "$SHARDS" -seed "$SEED" | tee "$SERVELOG"

awk -v out="$OUT" -v shards="$SHARDS" '
/^SERVE / {
    row = "{"
    first_kv = 1
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
        first_kv = 0
    }
    serve_row = row "}"
}
END {
    if (serve_row == "") {
        print "serve_smoke: no SERVE summary line in load-test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n  \"shards\": %s,\n  \"serve\": %s\n}\n", shards, serve_row > out
}
' "$SERVELOG"

echo "wrote $OUT"
