#!/usr/bin/env bash
# serve_smoke.sh — CI gate for the network serving subsystem (PR 9).
#
# Four stages, each a hard failure:
#   1. the fairnn-server binary builds standalone;
#   2. the wire protocol suite passes under the race detector (framing
#      fuzz corpora, typed rejection, loopback server semantics,
#      pipelined stress);
#   3. the remote-backend and cross-process suites pass — the latter
#      re-execs the test binary as real server processes, so SIGKILL
#      degradation, SIGTERM drain and readmission run against true
#      process boundaries;
#   4. a scaled-down `-exp serve` load test runs end to end (loopback
#      fleet, concurrent clients, mid-run kill + restart), and its SERVE
#      summary line is folded into a JSON artifact.
#
# Usage: scripts/serve_smoke.sh [output.json]
#   output.json  defaults to SERVE_SMOKE.json
# Env:
#   FAIRNN_SERVE_SHARDS  fleet size for the load test (default 4)
#   FAIRNN_SERVE_SEED    load-test seed (default 0 = harness default)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-SERVE_SMOKE.json}"
SHARDS="${FAIRNN_SERVE_SHARDS:-4}"
SEED="${FAIRNN_SERVE_SEED:-0}"

BINDIR="$(mktemp -d)"
SERVELOG="$(mktemp)"
trap 'rm -rf "$BINDIR" "$SERVELOG"' EXIT

echo "== build fairnn-server =="
go build -o "$BINDIR/fairnn-server" ./cmd/fairnn-server
"$BINDIR/fairnn-server" -h 2>&1 | head -1 || true

echo "== wire protocol suite (race) =="
go test -race -count=1 ./internal/wire

echo "== remote backend + cross-process suites (race, short) =="
go test -race -short -count=1 -run 'TestRemote' -v ./internal/shard
go test -race -short -count=1 -v ./cmd/fairnn-server

echo "== serve load test =="
go run ./cmd/fairnn -exp serve -shards "$SHARDS" -seed "$SEED" | tee "$SERVELOG"

awk -v out="$OUT" -v shards="$SHARDS" '
/^SERVE / {
    row = "{"
    first_kv = 1
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        row = row (first_kv ? "" : ", ") sprintf("\"%s\": %s", kv[1], kv[2])
        first_kv = 0
    }
    serve_row = row "}"
}
END {
    if (serve_row == "") {
        print "serve_smoke: no SERVE summary line in load-test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n  \"shards\": %s,\n  \"serve\": %s\n}\n", shards, serve_row > out
}
' "$SERVELOG"

echo "wrote $OUT"
