package fairnn_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fairnn"
)

// TestResilienceOptionsRequireShards pins the builder validation: every
// resilience/fault option is meaningless on an unsharded build and must
// be rejected with ErrBadOption instead of silently ignored.
func TestResilienceOptionsRequireShards(t *testing.T) {
	sets, _ := smallSets()
	opts := map[string]fairnn.Option{
		"WithShardDeadline":   fairnn.WithShardDeadline(time.Second),
		"WithShardRetry":      fairnn.WithShardRetry(2),
		"WithShardBackoff":    fairnn.WithShardBackoff(time.Millisecond, 10*time.Millisecond),
		"WithDegradedMode":    fairnn.WithDegradedMode(),
		"WithShardProbeEvery": fairnn.WithShardProbeEvery(4),
		"WithFaultInjection":  fairnn.WithFaultInjection(fairnn.NewFaultInjector(2, 1)),
	}
	for name, opt := range opts {
		if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), opt); !errors.Is(err, fairnn.ErrBadOption) {
			t.Errorf("%s without WithShards: err = %v, want ErrBadOption", name, err)
		}
		// The same option WITH shards must build.
		if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithShards(2), opt); err != nil {
			t.Errorf("%s with WithShards(2) failed: %v", name, err)
		}
	}
	// Invalid argument values are rejected outright.
	for name, opt := range map[string]fairnn.Option{
		"WithShardDeadline(0)":    fairnn.WithShardDeadline(0),
		"WithShardRetry(-1)":      fairnn.WithShardRetry(-1),
		"WithShardBackoff(0, 0)":  fairnn.WithShardBackoff(0, 0),
		"WithShardProbeEvery(0)":  fairnn.WithShardProbeEvery(0),
		"WithFaultInjection(nil)": fairnn.WithFaultInjection(nil),
		"WithShardBackoff(10, 1)": fairnn.WithShardBackoff(10*time.Millisecond, time.Millisecond),
	} {
		if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithShards(2), opt); !errors.Is(err, fairnn.ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", name, err)
		}
	}
}

// TestDegradedModeEndToEnd drives the whole stack through the builder: a
// sharded set sampler with one shard force-failed answers every query
// from the survivors, reports the outage on QueryStats.Degraded and
// Health, and never emits a point owned by the dead shard.
func TestDegradedModeEndToEnd(t *testing.T) {
	sets, q := smallSets()
	const S = 3
	const dead = 2
	inj := fairnn.NewFaultInjector(S, 71, fairnn.FaultSpec{Shards: []int{dead}, ErrRate: fairnn.FaultAlways})
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6),
		fairnn.WithSeed(140),
		fairnn.WithShards(S),
		fairnn.WithDegradedMode(),
		fairnn.WithShardRetry(1),
		fairnn.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	var st fairnn.QueryStats
	seen := map[int32]bool{}
	for i := 0; i < 300; i++ {
		id, err := s.SampleContext(context.Background(), q, &st)
		if errors.Is(err, fairnn.ErrNoSample) {
			continue
		}
		if err != nil {
			t.Fatalf("degraded query %d failed: %v", i, err)
		}
		if int(id)%S == dead {
			t.Fatalf("sample %d belongs to the dead shard (round-robin)", id)
		}
		if !st.Degraded.Degraded() {
			t.Fatal("successful degraded query did not set QueryStats.Degraded")
		}
		if got := st.Degraded.LostShards; len(got) != 1 || got[0] != dead {
			t.Fatalf("LostShards = %v, want [%d]", got, dead)
		}
		if c := st.Degraded.Coverage; c <= 0 || c > 1 {
			t.Fatalf("Coverage = %v outside (0, 1]", c)
		}
		seen[id] = true
	}
	// The surviving near-cluster members (ids 0..5 minus the dead
	// shard's) must all be reachable.
	for id := int32(0); id < 6; id++ {
		if int(id)%S != dead && !seen[id] {
			t.Errorf("surviving cluster member %d never sampled", id)
		}
	}
	sh, ok := s.(*fairnn.Sharded[fairnn.Set])
	if !ok {
		t.Fatalf("builder returned %T, want *Sharded[Set]", s)
	}
	h := sh.Health()[dead]
	if h.Healthy || h.Failures == 0 {
		t.Errorf("dead shard health = %+v, want unhealthy with failures", h)
	}
}

// TestFailFastWithoutDegradedMode pins the default posture through the
// façade: with degradation not opted into, a lost shard fails the query
// with a typed *ShardError matching both ErrDegraded and the injected
// cause.
func TestFailFastWithoutDegradedMode(t *testing.T) {
	sets, q := smallSets()
	inj := fairnn.NewFaultInjector(2, 5, fairnn.FaultSpec{Shards: []int{0}, Ops: []fairnn.FaultOp{fairnn.FaultOpArm}, ErrRate: fairnn.FaultAlways})
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6),
		fairnn.WithSeed(150),
		fairnn.WithShards(2),
		fairnn.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, serr := s.SampleContext(context.Background(), q, nil)
	var se *fairnn.ShardError
	if !errors.As(serr, &se) {
		t.Fatalf("err = %v, want *ShardError", serr)
	}
	if se.Shard != 0 {
		t.Errorf("ShardError.Shard = %d, want 0", se.Shard)
	}
	if !errors.Is(serr, fairnn.ErrDegraded) || !errors.Is(serr, fairnn.ErrInjected) {
		t.Errorf("error chain lost its sentinels: %v", serr)
	}
	if _, ok := s.Sample(q, nil); ok {
		t.Error("Sample reported ok while a shard is failing without degraded mode")
	}
}

// TestResilienceOptionsIdleBitIdentical pins the façade half of the
// invisibility contract: a sharded sampler with the full resilience
// policy and an idle injector must replay the plain sharded sampler's
// exact same-seed streams.
func TestResilienceOptionsIdleBitIdentical(t *testing.T) {
	sets, q := smallSets()
	build := func(extra ...fairnn.Option) fairnn.Sampler[fairnn.Set] {
		opts := append([]fairnn.Option{fairnn.Radius(0.6), fairnn.WithSeed(160), fairnn.WithShards(3)}, extra...)
		s, err := fairnn.NewSet(sets, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := build()
	armored := build(
		fairnn.WithShardDeadline(time.Second),
		fairnn.WithShardRetry(2),
		fairnn.WithShardBackoff(time.Millisecond, 16*time.Millisecond),
		fairnn.WithDegradedMode(),
		fairnn.WithFaultInjection(fairnn.NewFaultInjector(3, 9)), // idle
	)
	a, b := drawN(plain, q, 80), drawN(armored, q, 80)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: plain %d vs armored %d", i, a[i], b[i])
		}
	}
	ka, kb := plain.SampleK(q, 40, nil), armored.SampleK(q, 40, nil)
	if len(ka) != len(kb) {
		t.Fatalf("SampleK lengths diverged: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("SampleK draw %d diverged: %d vs %d", i, ka[i], kb[i])
		}
	}
}

// panicAfterSampler panics on the nth Sample/SampleContext call — the
// "poisoned query" a batch fan-out must contain. The counter is atomic:
// batch workers share the sampler.
type panicAfterSampler struct {
	n     int64
	calls atomic.Int64
}

func (p *panicAfterSampler) bump() {
	if p.calls.Add(1) == p.n {
		panic("poisoned query")
	}
}

func (p *panicAfterSampler) Sample(q int, st *fairnn.QueryStats) (int32, bool) {
	p.bump()
	return int32(q), true
}

func (p *panicAfterSampler) SampleContext(ctx context.Context, q int, st *fairnn.QueryStats) (int32, error) {
	p.bump()
	return int32(q), nil
}

// TestSampleBatchPanicContained pins the batch fan-out's containment: a
// worker panic drains the batch (no wedged WaitGroup, no leaked
// goroutine) and resurfaces on the caller as a catchable *PanicError
// carrying the worker's stack.
func TestSampleBatchPanicContained(t *testing.T) {
	queries := make([]int, 64)
	defer func() {
		r := recover()
		pe, ok := r.(*fairnn.PanicError)
		if !ok {
			t.Fatalf("recovered %#v, want *PanicError", r)
		}
		if pe.Recovered != "poisoned query" || len(pe.Stack) == 0 {
			t.Errorf("PanicError = {Recovered: %v, stack %d bytes}, want the worker's panic with stack", pe.Recovered, len(pe.Stack))
		}
	}()
	fairnn.SampleBatch[int](&panicAfterSampler{n: 10}, queries, 4)
	t.Fatal("SampleBatch did not re-panic")
}

// TestSampleBatchContextPanicAsError pins the context variant's calmer
// contract: the worker panic becomes the batch error (a *PanicError), no
// re-panic, and the batch still returns.
func TestSampleBatchContextPanicAsError(t *testing.T) {
	queries := make([]int, 64)
	_, err := fairnn.SampleBatchContext[int](context.Background(), &panicAfterSampler{n: 10}, queries, 4)
	var pe *fairnn.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch err = %v, want *PanicError", err)
	}
	if pe.Recovered != "poisoned query" {
		t.Errorf("Recovered = %v, want the worker's panic value", pe.Recovered)
	}
}
