package fairnn

import (
	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/vector"
)

// This file extends the façade with the vector-space samplers (SimHash-
// backed Sections 3/4 for angular similarity), the weighted sampler (the
// paper's future-work direction, Section 1.3) and the multi-radius
// adaptive sampler (the parameterless direction from the conclusion).

// VecSampler solves r-NNS for inner-product similarity of unit vectors
// using the Section 3 construction over a SimHash family.
type VecSampler = core.Sampler[vector.Vec]

// VecSamplerIndependent solves r-NNIS for inner-product similarity using
// the Section 4 construction over a SimHash family (the LSH-table
// counterpart of VecIndependent's filter approach; super-linear space but
// distance-agnostic).
type VecSamplerIndependent = core.Independent[vector.Vec]

// SetWeighted samples near neighbors with probability proportional to a
// weight of their similarity (Section 1.3's weighted case).
type SetWeighted = core.Weighted[set.Set]

// SetMultiRadius samples from the tightest non-empty ball over a radius
// grid (the parameterless direction from the paper's conclusion).
type SetMultiRadius = core.MultiRadius[set.Set]

// WeightFunc maps a similarity (or distance) to a non-negative weight.
type WeightFunc = core.WeightFunc

// VecConfig controls LSH parameter selection for the vector structures.
type VecConfig struct {
	// K and L override automatic selection when both are > 0.
	K, L int
	// Dim is the vector dimensionality (required for auto selection).
	Dim int
	// FarSim is the "far" inner product for ChooseK (default 0.0).
	FarSim float64
	// FarBudget is the expected number of far collisions (default 5).
	FarBudget float64
	// Recall is the target recall at alpha for ChooseL (default 0.99).
	Recall float64
	// CrossPolytope selects the cross-polytope family instead of SimHash.
	CrossPolytope bool
	// Seed drives all randomness (default 1).
	Seed uint64
	// Memo is the per-query memory discipline (memo backend threshold,
	// querier retention cap, scratch budget); an explicitly set
	// opts.Memo wins over this field.
	Memo MemoOptions
}

// withDefaults resolves the zero-value fields to their documented
// defaults (the vector twin of Config.withDefaults; FarSim's default
// inner product is 0, so it needs no resolution).
func (c VecConfig) withDefaults() VecConfig {
	c.FarBudget = orDefault(c.FarBudget, 5)
	c.Recall = orDefault(c.Recall, 0.99)
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c VecConfig) family() lsh.Family[vector.Vec] {
	if c.CrossPolytope {
		return lsh.CrossPolytope{Dim: c.Dim}
	}
	return lsh.SimHash{Dim: c.Dim}
}

// paramsAt picks (K, L) for one point count at the threshold alpha: the
// explicit override when both are set, automatic ChooseK/ChooseL
// otherwise (the vector twin of Config.paramsAt — the sharded builder
// calls it once per shard size). c must already carry its defaults.
func (c VecConfig) paramsAt(n int, alpha float64) lsh.Params {
	if c.K > 0 && c.L > 0 {
		return lsh.Params{K: c.K, L: c.L}
	}
	fam := c.family()
	k := lsh.ChooseK[vector.Vec](fam, n, c.FarSim, c.FarBudget)
	l := lsh.ChooseL[vector.Vec](fam, k, alpha, c.Recall)
	return lsh.Params{K: k, L: l}
}

func (c VecConfig) resolve(n int, alpha float64) (lsh.Family[vector.Vec], lsh.Params, uint64) {
	c = c.withDefaults()
	return c.family(), c.paramsAt(n, alpha), c.Seed
}

// NewVecSampler indexes unit vectors for uniform sampling from
// {p : ⟨p, q⟩ ≥ alpha} via the Section 3 LSH construction.
func NewVecSampler(points []Vec, alpha float64, cfg VecConfig) (*VecSampler, error) {
	if cfg.Dim == 0 && len(points) > 0 {
		cfg.Dim = len(points[0])
	}
	fam, params, seed := cfg.resolve(len(points), alpha)
	return core.NewSamplerMemo[vector.Vec](core.InnerProduct(), fam, params, points, alpha, cfg.Memo, seed)
}

// NewVecSamplerIndependent indexes unit vectors for independent uniform
// sampling via the Section 4 LSH construction.
func NewVecSamplerIndependent(points []Vec, alpha float64, opts IndependentOptions, cfg VecConfig) (*VecSamplerIndependent, error) {
	if cfg.Dim == 0 && len(points) > 0 {
		cfg.Dim = len(points[0])
	}
	fam, params, seed := cfg.resolve(len(points), alpha)
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	return core.NewIndependent[vector.Vec](core.InnerProduct(), fam, params, points, alpha, opts, seed)
}

// NewSetWeighted indexes the sets for weighted near-neighbor sampling:
// each near neighbor p is returned with probability proportional to
// weight(Jaccard(q, p)). wMax must upper-bound the weight over [radius, 1].
func NewSetWeighted(sets []Set, radius float64, weight WeightFunc, wMax float64, opts IndependentOptions, cfg Config) (*SetWeighted, error) {
	fam, params, seed := cfg.resolve(len(sets), radius)
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	return core.NewWeighted[set.Set](core.Jaccard(), fam, params, sets, radius, weight, wMax, opts, seed)
}

// NewSetMultiRadius indexes the sets at every similarity threshold in
// radii; queries sample from the tightest non-empty ball. The family and
// seed come straight from the resolved Config (no placeholder radius is
// involved) and each grid radius picks its own (K, L) through the same
// shared default resolution as the single-radius constructors.
func NewSetMultiRadius(sets []Set, radii []float64, opts IndependentOptions, cfg Config) (*SetMultiRadius, error) {
	cfg = cfg.withDefaults()
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	paramsFor := func(r float64) lsh.Params { return cfg.paramsAt(len(sets), r) }
	return core.NewMultiRadius[set.Set](core.Jaccard(), cfg.family(), paramsFor, sets, radii, opts, cfg.Seed)
}

// VecExact is the linear-scan ground truth for inner-product similarity
// (the vector twin of SetExact).
type VecExact = core.Exact[vector.Vec]

// NewVecExact builds the linear-scan ground truth over unit vectors
// (alpha is the minimum inner product).
func NewVecExact(points []Vec, alpha float64, seed uint64) *VecExact {
	return core.NewExact[vector.Vec](core.InnerProduct(), points, alpha, seed)
}

// SetDynamic is the insert/delete-capable fair sampler over item sets
// (uniform over the recalled ball via i.i.d. priorities; see
// internal/core.Dynamic for the construction).
type SetDynamic = core.Dynamic[set.Set]

// NewSetDynamic builds an empty dynamic sampler for Jaccard similarity;
// index points with Insert and retire them with Delete.
func NewSetDynamic(radius float64, expectedN int, cfg Config) (*SetDynamic, error) {
	if expectedN < 2 {
		expectedN = 2
	}
	fam, params, seed := cfg.resolve(expectedN, radius)
	return core.NewDynamic[set.Set](core.Jaccard(), fam, params, radius, seed)
}
