// Command fairnn-server builds one shard's Section 4 structure and
// serves the per-shard query operations (arm / segment / pick) over the
// fairnn wire protocol on TCP. A fleet of S processes started with
// identical -dataset/-n/-seed/-shards flags and -shard 0..S-1 is a
// complete serving-side build: each process derives its shard's
// structure from the shared spec exactly as the in-process sharded
// builder would (options resolved against the global point count,
// round-robin partition, shard.ShardSeed-derived seeds), so a client
// assembled with shard.Connect emits same-seed sample streams
// bit-identical to the in-process sampler over the same spec.
//
// The listen address (with the resolved ephemeral port) is printed to
// stdout as "LISTEN <addr>" once the server accepts connections.
// SIGTERM and SIGINT begin a graceful drain: new queries are refused
// with a typed draining error (clients treat the shard as down),
// in-flight plans finish, and the process exits when the last plan is
// released or the -drain budget expires.
//
// With -obs, a second HTTP listener serves the operator endpoint:
// /metrics exposes the server's telemetry registry (request latency by
// op, deadline sheds, drain refusals, active plans/conns) in Prometheus
// text format, and /debug/pprof/ the standard Go profiles. Its resolved
// address is printed as "OBS <addr>".
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairnn/internal/obs"
	"fairnn/internal/servefix"
	"fairnn/internal/wire"
)

func main() { os.Exit(run(os.Args[1:])) }

// run parses flags, builds the shard, and serves until drained. Split
// from main so the cross-process test suite can re-exec the test binary
// into a real server process.
func run(args []string) int {
	fs := flag.NewFlagSet("fairnn-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "TCP listen address (port 0 picks an ephemeral port, reported on stdout)")
	ds := fs.String("dataset", "line", "dataset spec: line (integers under absolute distance) or vec (planted-ball unit vectors)")
	n := fs.Int("n", 4000, "global point count across the whole fleet")
	dim := fs.Int("dim", 32, "vector dimensionality (vec dataset)")
	seed := fs.Uint64("seed", 42, "global build seed shared by the fleet")
	radius := fs.Float64("radius", 40, "query radius (line) or similarity threshold α (vec)")
	shards := fs.Int("shards", 1, "fleet size S")
	shardIdx := fs.Int("shard", 0, "this server's shard index in [0, S)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
	obsAddr := fs.String("obs", "", "operator HTTP listen address for /metrics and /debug/pprof (empty disables; port 0 picks an ephemeral port, reported on stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sp := servefix.Spec{Dataset: *ds, N: *n, Dim: *dim, Shards: *shards, Seed: *seed, Radius: *radius}
	if err := sp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *shardIdx < 0 || *shardIdx >= *shards {
		fmt.Fprintf(os.Stderr, "fairnn-server: shard index %d outside [0, %d)\n", *shardIdx, *shards)
		return 2
	}
	switch sp.Dataset {
	case "vec":
		d, meta, err := servefix.BuildVecShard(sp, *shardIdx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return serve(wire.NewServer(d, wire.VecCodec{Dim: sp.Dim}, meta, selfHealth(meta)), *addr, *obsAddr, *drain)
	default:
		d, meta, err := servefix.BuildLineShard(sp, *shardIdx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return serve(wire.NewServer(d, wire.IntCodec{}, meta, selfHealth(meta)), *addr, *obsAddr, *drain)
	}
}

// selfHealth reports the single-process liveness record: a standalone
// shard server that can answer at all is healthy. (The interesting
// health state — which shards a *sampler* has written off and when they
// were re-admitted — lives client-side and is served by the sampler's
// own health endpoint; see the serve experiment.)
func selfHealth(meta wire.Meta) func() []wire.HealthRecord {
	return func() []wire.HealthRecord {
		return []wire.HealthRecord{{Shard: meta.ShardIndex, Healthy: true}}
	}
}

// serve listens, announces the resolved address, and blocks in the
// accept loop while a signal watcher triggers the graceful drain. With
// a non-empty obsAddr the operator HTTP endpoint (/metrics,
// /debug/pprof) is started first, so the registry observes every
// request the wire listener ever accepts.
func serve[P any](srv *wire.Server[P], addr, obsAddr string, drain time.Duration) int {
	if obsAddr != "" {
		oln, err := net.Listen("tcp", obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		reg := obs.NewRegistry()
		srv.Observe(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(reg))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Dies with the process; no drain needed for operator reads. A
		// panic on the operator listener must not take the shard down.
		go func() {
			defer func() { _ = recover() }()
			_ = http.Serve(oln, mux)
		}()
		fmt.Printf("OBS %s\n", oln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go drainOnSignal(srv, sigc, drain) // drainOnSignal recovers in its own body
	if err := srv.Serve(ln); err != nil && err != wire.ErrClosed {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// drainOnSignal waits for the first termination signal and drains the
// server within budget.
func drainOnSignal[P any](srv *wire.Server[P], sigc <-chan os.Signal, drain time.Duration) {
	defer func() {
		if r := recover(); r != nil {
			// Containment: a drain failure must not take down a process
			// that is already exiting anyway.
			srv.Close()
		}
	}()
	<-sigc
	ctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, drain)
		defer cancel()
	}
	_ = srv.Shutdown(ctx)
}
