package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/servefix"
	"fairnn/internal/shard"
	"fairnn/internal/stats"
	"fairnn/internal/vector"
	"fairnn/internal/wire"
)

// Cross-process suite: the test binary re-execs itself as real
// fairnn-server processes (FAIRNN_SERVER_EXEC=1 routes main's run over
// the child's argv), so plain `go test ./cmd/fairnn-server` exercises
// true process boundaries — separate address spaces, real sockets, real
// signals, real kills — with no pre-built binary required. This is the
// suite the CI serve-smoke job runs.

func TestMain(m *testing.M) {
	if os.Getenv("FAIRNN_SERVER_EXEC") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// procServer is one live re-execed server process.
type procServer struct {
	cmd  *exec.Cmd
	addr string
}

// startProc re-execs the test binary as a fairnn-server with the given
// flags and waits for its LISTEN line.
func startProc(t *testing.T, args ...string) *procServer {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "FAIRNN_SERVER_EXEC=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &procServer{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				lines <- addr
				return
			}
		}
		close(lines)
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatal("server process exited before announcing its address")
		}
		p.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatal("server process did not announce LISTEN within 30s")
	}
	return p
}

// kill terminates the process abruptly (SIGKILL — nothing graceful).
func (p *procServer) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = p.cmd.Process.Wait()
}

// startLineFleet starts one process per shard of a line spec.
func startLineFleet(t *testing.T, sp servefix.Spec) ([]string, []*procServer) {
	t.Helper()
	addrs := make([]string, sp.Shards)
	procs := make([]*procServer, sp.Shards)
	for j := 0; j < sp.Shards; j++ {
		procs[j] = startProc(t, lineArgs(sp, j, "127.0.0.1:0")...)
		addrs[j] = procs[j].addr
	}
	return addrs, procs
}

func lineArgs(sp servefix.Spec, j int, addr string) []string {
	return []string{
		"-addr", addr, "-dataset", sp.Dataset,
		"-n", fmt.Sprint(sp.N), "-dim", fmt.Sprint(sp.Dim),
		"-seed", fmt.Sprint(sp.Seed), "-radius", fmt.Sprint(sp.Radius),
		"-shards", fmt.Sprint(sp.Shards), "-shard", fmt.Sprint(j),
		"-drain", "5s",
	}
}

// TestProcessStreamEquivalence is the end-to-end acceptance oracle over
// real processes: three fairnn-server processes plus a Connect-assembled
// client emit the same same-seed sample stream as the in-process sampler
// over the same servefix spec.
func TestProcessStreamEquivalence(t *testing.T) {
	sp := servefix.Spec{Dataset: "line", N: 240, Shards: 3, Seed: 42, Radius: 11}
	addrs, _ := startLineFleet(t, sp)
	remote, err := shard.Connect[int](wire.IntCodec{}, addrs, shard.RemoteConfig{
		Partitioner: sp.Partitioner(), DialTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	inproc, err := servefix.InProcLine(sp, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 150; i++ {
		q := (i * 13) % sp.N
		rid, rok := remote.Sample(q, nil)
		iid, iok := inproc.Sample(q, nil)
		if rid != iid || rok != iok {
			t.Fatalf("draw %d (q=%d): process fleet (%d,%v) != in-process (%d,%v)", i, q, rid, rok, iid, iok)
		}
	}
	rids := remote.SampleK(0, 48, nil)
	iids := inproc.SampleK(0, 48, nil)
	if len(rids) != len(iids) {
		t.Fatalf("batch: fleet returned %d ids, in-process %d", len(rids), len(iids))
	}
	for x := range rids {
		if rids[x] != iids[x] {
			t.Fatalf("batch id %d: fleet %d != in-process %d", x, rids[x], iids[x])
		}
	}
}

// TestProcessKillDegraded SIGKILLs one server process mid-run: the
// client must degrade exactly like the in-process shard kill — loss
// reported, answers uniform over the survivors' ball, never a dead
// shard's point.
func TestProcessKillDegraded(t *testing.T) {
	const ball = 12
	const dead = 1
	sp := servefix.Spec{Dataset: "line", N: 240, Shards: 3, Seed: 43, Radius: ball - 1}
	addrs, procs := startLineFleet(t, sp)
	remote, err := shard.Connect[int](wire.IntCodec{}, addrs, shard.RemoteConfig{
		Partitioner: sp.Partitioner(),
		Resilience:  shard.Resilience{Degraded: true, Deadline: time.Second, Retries: 1},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	var st core.QueryStats
	if _, ok := remote.Sample(0, &st); !ok || st.Degraded.Degraded() {
		t.Fatalf("warm query: ok=%v degraded=%v", st.Degraded.Degraded(), st.Degraded.LostShards)
	}

	procs[dead].kill(t)

	reps := 1200
	if testing.Short() {
		reps = 400
	}
	freq := stats.NewFrequency()
	degraded := 0
	var survivors []int32
	for id := int32(0); id < ball; id++ {
		if int(id)%sp.Shards != dead {
			survivors = append(survivors, id)
		}
	}
	for i := 0; i < reps; i++ {
		var st core.QueryStats
		id, ok := remote.Sample(0, &st)
		if !ok {
			t.Fatalf("draw %d failed with degraded mode on", i)
		}
		if int(id)%sp.Shards == dead {
			t.Fatalf("draw %d returned id %d from the killed process", i, id)
		}
		if id < 0 || id >= ball {
			t.Fatalf("draw %d returned far point %d", i, id)
		}
		if st.Degraded.Degraded() {
			degraded++
		}
		freq.Observe(id)
	}
	if degraded < reps/2 {
		t.Fatalf("only %d/%d draws reported degradation after the kill", degraded, reps)
	}
	if _, p := freq.ChiSquareUniform(survivors); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity over survivors: p = %v", p)
	}
}

// TestProcessGracefulDrain pins the SIGTERM path: a serving process
// must refuse new arms while draining, finish what it holds, and exit 0
// within the drain budget.
func TestProcessGracefulDrain(t *testing.T) {
	sp := servefix.Spec{Dataset: "line", N: 80, Shards: 1, Seed: 44, Radius: 7}
	p := startProc(t, lineArgs(sp, 0, "127.0.0.1:0")...)

	c, err := wire.Dial(p.addr, (wire.IntCodec{}).Name(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	state, err := p.cmd.Process.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !state.Success() {
		t.Fatalf("drained server exited %v, want success", state)
	}
}

// TestProcessVecDataset smokes the vector spec end to end: one process
// serving a planted-ball shard, a Connect client drawing near points.
func TestProcessVecDataset(t *testing.T) {
	sp := servefix.Spec{Dataset: "vec", N: 400, Dim: 16, Shards: 1, Seed: 45, Radius: 0.55}
	p := startProc(t, lineArgs(sp, 0, "127.0.0.1:0")...)
	remote, err := shard.Connect[vector.Vec](wire.VecCodec{Dim: sp.Dim}, []string{p.addr}, shard.RemoteConfig{
		Partitioner: sp.Partitioner(), DialTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	w := sp.VecWorkload()
	sim := core.InnerProduct().Score
	found := 0
	for i := 0; i < 60; i++ {
		id, ok := remote.Sample(w.Query, nil)
		if !ok {
			continue
		}
		// Nearness is ⟨p, q⟩ ≥ α over the actual vectors (background
		// points can cross the threshold by chance, so the planted ball
		// list alone is not the near set).
		if s := sim(w.Points[id], w.Query); s < sp.Radius {
			t.Fatalf("draw %d returned far point %d (similarity %g < α=%g)", i, id, s, sp.Radius)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no draw succeeded against the vec server")
	}
}
