package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"fairnn"
	"fairnn/internal/experiments"
)

func TestF6(t *testing.T) {
	if got := f6(0.5); got != "0.500000" {
		t.Errorf("f6 = %q", got)
	}
	if got := f6(0); got != "0.000000" {
		t.Errorf("f6(0) = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	rows := [][]string{{"a", "b"}, {"1", "2"}}
	writeCSV(dir, "out.csv", rows)
	f, err := os.Open(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][1] != "2" {
		t.Fatalf("csv round trip failed: %v", got)
	}
}

func TestShrinkFig1PreservesSetup(t *testing.T) {
	// The small scale must shrink only Monte-Carlo effort, never the
	// experiment's parameters (radius, K/L rules).
	cfg := shrinkFig1(experiments.DefaultFig1LastFM())
	if cfg.Radius != 0.15 || cfg.FarSim != 0.1 || cfg.Recall != 0.99 {
		t.Errorf("shrink changed experimental setup: %+v", cfg)
	}
	if cfg.Builds <= 0 || cfg.RepsPerBuild <= 0 || cfg.Queries <= 0 {
		t.Errorf("shrink produced degenerate scale: %+v", cfg)
	}
}

func TestParseMemo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want fairnn.MemoBackend
	}{
		{"auto", fairnn.MemoAuto},
		{"", fairnn.MemoAuto},
		{"dense", fairnn.MemoDense},
		{"compact", fairnn.MemoCompact},
	} {
		m, err := parseMemo(tc.in)
		if err != nil {
			t.Fatalf("parseMemo(%q): %v", tc.in, err)
		}
		if m.Backend != tc.want {
			t.Errorf("parseMemo(%q).Backend = %v, want %v", tc.in, m.Backend, tc.want)
		}
	}
	if _, err := parseMemo("bogus"); err == nil {
		t.Error("parseMemo(bogus) accepted")
	}
}
