// Command fairnn regenerates every figure of the paper's experimental
// evaluation (Section 6) as text tables and optional CSV files.
//
// Usage:
//
//	fairnn -exp fig1|fig2|fig3|q3|all [-scale small|paper] [-csv dir] [-seed n] [-memo auto|dense|compact] [-shards s]
//
// The "paper" scale matches the publication protocol (50 queries, 26 000
// repetitions, full-size datasets) and takes minutes; "small" (default)
// shrinks repetition counts while preserving every qualitative shape.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"fairnn"
	"fairnn/internal/experiments"
)

// parseMemo maps the -memo flag to the per-query memory discipline of the
// pooled samplers (the PR 3 backend knob).
func parseMemo(s string) (fairnn.MemoOptions, error) {
	switch s {
	case "", "auto":
		return fairnn.MemoOptions{Backend: fairnn.MemoAuto}, nil
	case "dense":
		return fairnn.MemoOptions{Backend: fairnn.MemoDense}, nil
	case "compact":
		return fairnn.MemoOptions{Backend: fairnn.MemoCompact}, nil
	}
	return fairnn.MemoOptions{}, fmt.Errorf("unknown -memo value %q (want auto, dense or compact)", s)
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run: fig1 | fig2 | fig3 | q3 | validate | scaling | chaos | serve | all")
		scale  = flag.String("scale", "small", "small (fast, same shapes) or paper (full protocol)")
		csvDir = flag.String("csv", "", "directory to also write CSV files into (optional)")
		seed   = flag.Uint64("seed", 0, "override the experiment seed (0 keeps defaults)")
		memoF  = flag.String("memo", "auto", "per-query memo backend: auto | dense | compact")
		shards = flag.Int("shards", 0, "shard count for the validate/scaling experiments (0 = unsharded only)")
	)
	flag.Parse()

	memo, err := parseMemo(*memoF)
	if err != nil {
		fatal(err)
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards %d must be >= 0", *shards))
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	paper := *scale == "paper"
	switch *exp {
	case "fig1":
		runFig1(paper, *csvDir, *seed)
	case "fig2":
		runFig2(paper, *csvDir, *seed)
	case "fig3":
		runFig3(paper, *csvDir, *seed)
	case "q3":
		runQ3(paper, *csvDir, *seed, memo)
	case "validate":
		runValidate(paper, *seed, memo, *shards)
	case "scaling":
		runScaling(paper, *seed, memo, *shards)
	case "chaos":
		runChaos(paper, *seed, *shards)
	case "serve":
		runServe(paper, *seed, *shards)
	case "all":
		runFig1(paper, *csvDir, *seed)
		runFig2(paper, *csvDir, *seed)
		runFig3(paper, *csvDir, *seed)
		runQ3(paper, *csvDir, *seed, memo)
		runValidate(paper, *seed, memo, *shards)
		runScaling(paper, *seed, memo, *shards)
		runChaos(paper, *seed, *shards)
		runServe(paper, *seed, *shards)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairnn:", err)
	os.Exit(1)
}

// shrinkFig1 reduces the Monte-Carlo effort without changing the setup.
func shrinkFig1(cfg experiments.Fig1Config) experiments.Fig1Config {
	cfg.Queries = 10
	cfg.Builds = 3
	cfg.RepsPerBuild = 120
	return cfg
}

func runFig1(paper bool, csvDir string, seed uint64) {
	for _, variant := range []struct {
		name string
		cfg  experiments.Fig1Config
	}{
		{"lastfm", experiments.DefaultFig1LastFM()},
		{"movielens", experiments.DefaultFig1MovieLens()},
	} {
		cfg := variant.cfg
		if !paper {
			cfg = shrinkFig1(cfg)
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := experiments.RunFig1(cfg)
		if err != nil {
			fatal(err)
		}
		if err := res.Render(os.Stdout, variant.name); err != nil {
			fatal(err)
		}
		if csvDir != "" {
			rows := [][]string{{"query", "similarity", "points", "rel_std", "rel_fair"}}
			for _, r := range res.Rows {
				rows = append(rows, []string{
					strconv.Itoa(r.Query),
					fmt.Sprintf("%.2f", r.Similarity),
					strconv.Itoa(r.PointsAt),
					fmt.Sprintf("%.6f", r.RelStd),
					fmt.Sprintf("%.6f", r.RelFair),
				})
			}
			writeCSV(csvDir, "fig1_"+variant.name+".csv", rows)
		}
	}
}

func runFig2(paper bool, csvDir string, seed uint64) {
	cfg := experiments.DefaultFig2()
	if !paper {
		cfg.Batches = 8
		cfg.BuildsPerBatch = 15
		cfg.RepsPerBuild = 40
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	res, err := experiments.RunFig2(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if csvDir != "" {
		rows := [][]string{
			{"point", "similarity", "median", "q25", "q75"},
			{"X", "0.50", f6(res.X.Median), f6(res.X.Q25), f6(res.X.Q75)},
			{"Y", "0.60", f6(res.Y.Median), f6(res.Y.Q25), f6(res.Y.Q75)},
			{"Z", "0.90", f6(res.Z.Median), f6(res.Z.Q25), f6(res.Z.Q75)},
		}
		writeCSV(csvDir, "fig2_adversarial.csv", rows)
	}
	// Ablation: the same experiment under 1-bit keys (correlation washed
	// out) to document why bucket-key identity matters.
	cfg.OneBit = true
	oneBit, err := experiments.RunFig2(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nablation (1-bit MinHash keys): P[X]=%.4f P[Y]=%.4f P[Z]=%.4f — cluster correlation largely gone\n",
		oneBit.X.Median, oneBit.Y.Median, oneBit.Z.Median)
}

func runFig3(paper bool, csvDir string, seed uint64) {
	for _, variant := range []struct {
		name string
		cfg  experiments.Fig3Config
	}{
		{"lastfm", experiments.DefaultFig3LastFM()},
		{"movielens", experiments.DefaultFig3MovieLens()},
	} {
		cfg := variant.cfg
		if !paper {
			cfg.Queries = 20
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			fatal(err)
		}
		if err := res.Render(os.Stdout, variant.name); err != nil {
			fatal(err)
		}
		if csvDir != "" {
			rows := [][]string{{"r", "c", "cr", "mean_ratio", "median", "q25", "q75", "max"}}
			for _, c := range res.Cells {
				rows = append(rows, []string{
					f6(c.R), f6(c.C), f6(c.C * c.R),
					f6(c.MeanRatio), f6(c.MedianRatio), f6(c.Q25), f6(c.Q75), f6(c.Max),
				})
			}
			writeCSV(csvDir, "fig3_"+variant.name+".csv", rows)
		}
	}
}

func runQ3(paper bool, csvDir string, seed uint64, memo fairnn.MemoOptions) {
	cfg := experiments.DefaultCost()
	cfg.Memo = memo
	if !paper {
		cfg.Queries = 10
		cfg.RepsPerQuery = 20
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	res, err := experiments.RunCost(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if csvDir != "" {
		rows := [][]string{{"method", "inspected", "score_evals", "batch_scored", "rounds", "mean_us", "median_us", "found"}}
		for _, r := range res.Rows {
			rows = append(rows, []string{
				r.Method, f6(r.MeanInspected), f6(r.MeanScoreEvals), f6(r.MeanBatchScored), f6(r.MeanRounds),
				f6(r.MeanMicros), f6(r.MedianMicros), f6(r.FoundRate),
			})
		}
		writeCSV(csvDir, "q3_cost.csv", rows)
	}
}

func runValidate(paper bool, seed uint64, memo fairnn.MemoOptions, shards int) {
	cfg := experiments.DefaultValidate()
	cfg.Memo = memo
	cfg.Shards = shards
	if !paper {
		cfg.Users = 400
		cfg.Samples = 6000
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	res, err := experiments.RunValidate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func runScaling(paper bool, seed uint64, memo fairnn.MemoOptions, shards int) {
	cfg := experiments.DefaultScaling()
	cfg.Memo = memo
	cfg.Shards = shards
	if !paper {
		cfg.Ns = []int{500, 1000, 2000}
		cfg.QueriesPerN = 15
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	res, err := experiments.RunScaling(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runChaos fires seeded random fault schedules at a sharded sampler and
// checks the resilience invariants under each (see experiments.RunChaos).
// "paper" scale quadruples the schedule count; -shards overrides the
// shard count when > 0.
func runChaos(paper bool, seed uint64, shards int) {
	cfg := experiments.DefaultChaos()
	if paper {
		cfg.Iterations *= 4
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	res, err := experiments.RunChaos(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	// The network half of the chaos schedule: seeded process-level
	// kill/restart cycles against live loopback servers.
	scfg := experiments.DefaultServeChaos()
	if paper {
		scfg.Cycles *= 2
	}
	if seed != 0 {
		scfg.Seed = seed
	}
	if shards > 0 {
		scfg.Shards = shards
	}
	sres, err := experiments.RunServeChaos(scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := sres.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runServe drives the network serving load test: loopback wire servers,
// a Connect-assembled sampler, concurrent clients, and a mid-run
// kill/restart (see experiments.RunServe). "paper" scale quadruples the
// per-client query count; -shards overrides the fleet size when > 0.
func runServe(paper bool, seed uint64, shards int) {
	cfg := experiments.DefaultServe()
	if paper {
		cfg.QueriesPerClient *= 4
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	res, err := experiments.RunServe(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

func writeCSV(dir, name string, rows [][]string) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fatal(err)
	}
}
