package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"fairnn/internal/analysis"
)

// listPkg is the subset of `go list -json` output the standalone driver
// needs: source files for the packages under analysis, and gc export
// data for every dependency.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// runStandalone loads the named package patterns with
// `go list -export -deps -json`, type-checks each non-dependency module
// package from source (dependencies come from export data), runs the
// suite, and prints findings to stderr. Exit code 1 if anything fired.
func runStandalone(patterns []string) int {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %v: %v", args, err)
	}

	exportFile := make(map[string]string) // package path -> export data
	resolve := make(map[string]string)    // source import path -> package path
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			log.Fatalf("go list output: %v", err)
		}
		if p.Error != nil {
			log.Fatalf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			resolve[from] = to
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := resolvingImporter{gc: gc, resolve: resolve}

	exit := 0
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			log.Printf("warning: %s: skipping package with cgo files (analyze it via go vet -vettool instead)", p.ImportPath)
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := analysis.Check(p.ImportPath, fset, files, imp, goVersion)
		if err != nil {
			log.Fatal(err)
		}
		diags, err := pkg.Run(analysis.Suite())
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Category)
		}
		if len(diags) > 0 {
			exit = 1
		}
	}
	return exit
}

// resolvingImporter applies go list's per-package ImportMap (identity
// entries omitted) before loading export data.
type resolvingImporter struct {
	gc      types.Importer
	resolve map[string]string
}

func (im resolvingImporter) Import(importPath string) (*types.Package, error) {
	if to, ok := im.resolve[importPath]; ok {
		importPath = to
	}
	return im.gc.Import(importPath)
}
