package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// toolPath is the fairnnlint binary under test, built once by TestMain.
var toolPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fairnnlint")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	toolPath = filepath.Join(dir, "fairnnlint")
	cmd := exec.Command("go", "build", "-o", toolPath, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fairnnlint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// repoRoot returns the module root (tests run in cmd/fairnnlint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// TestFlagsProtocol checks the -flags leg of the go vet tool protocol:
// cmd/go json.Unmarshals the output, so it must be a valid JSON array.
func TestFlagsProtocol(t *testing.T) {
	out, err := exec.Command(toolPath, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("-flags output = %q, want %q", got, "[]")
	}
}

// TestVersionProtocol checks the -V=full leg: the build system caches vet
// results keyed on this line, so it must carry a content hash of the binary.
func TestVersionProtocol(t *testing.T) {
	out, err := exec.Command(toolPath, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "version devel") || !strings.Contains(s, "buildID=") {
		t.Fatalf("-V=full output missing version/buildID: %q", s)
	}
}

// TestStandaloneCleanBaseline runs the standalone driver over the whole
// repository: the tree must hold a clean lint baseline.
func TestStandaloneCleanBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	cmd := exec.Command(toolPath, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone run not clean: %v\n%s", err, out)
	}
}

// TestVetToolCleanBaseline drives the binary through go vet's unitchecker
// protocol (-vettool) over the whole repository.
func TestVetToolCleanBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	cmd := exec.Command("go", "vet", "-vettool="+toolPath, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool not clean: %v\n%s", err, out)
	}
}

// writeScratchModule creates a throwaway module seeded with two contract
// violations: a math/rand import in non-test code, and an allocating call
// inside a //fairnn:noalloc function.
func writeScratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		"scratch.go": `package scratch

import (
	"fmt"
	"math/rand"
)

var _ = rand.Int

//fairnn:noalloc
func hot(x int) string {
	return fmt.Sprintf("%d", x)
}

var _ = hot
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// checkSeededFindings asserts that a run over the scratch module failed and
// reported both seeded violations.
func checkSeededFindings(t *testing.T, mode string, out []byte, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: seeded violations did not fail the run\n%s", mode, out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("%s: run failed to execute: %v\n%s", mode, err, out)
	}
	s := string(out)
	if !strings.Contains(s, "math/rand") {
		t.Errorf("%s: missing rngstream finding for math/rand import\n%s", mode, s)
	}
	if !strings.Contains(s, "noalloc function hot") {
		t.Errorf("%s: missing noalloc finding for fmt.Sprintf in hot\n%s", mode, s)
	}
}

// TestSeededViolationsStandalone checks that the standalone driver fails a
// module seeded with contract violations.
func TestSeededViolationsStandalone(t *testing.T) {
	dir := writeScratchModule(t)
	cmd := exec.Command(toolPath, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	checkSeededFindings(t, "standalone", out, err)
}

// TestSeededViolationsVetTool checks the same failure through the go vet
// protocol, which is how CI invokes the suite.
func TestSeededViolationsVetTool(t *testing.T) {
	dir := writeScratchModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+toolPath, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	checkSeededFindings(t, "go vet", out, err)
}
