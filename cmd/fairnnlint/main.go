// Command fairnnlint runs the fairnn static invariant-checker suite
// (internal/analysis): rngstream, noalloc, ctxpoll, frozenindex and
// panicfanout — the compile-time side of the repository's runtime
// oracles.
//
// It speaks two protocols:
//
//	fairnnlint [packages]            # standalone, loads via go list
//	go vet -vettool=$(which fairnnlint) ./...
//
// The vettool mode implements the (unpublished) go vet command-line
// protocol: -V=full and -flags describe the tool to the build system,
// and a single *.cfg argument names a JSON description of one
// compilation unit, with dependency types supplied as gc export data.
// Both modes are standard-library only — the module has no external
// dependencies and its linter does not add one.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairnnlint: ")
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags; go vet requires valid JSON here.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetTool(args[0]))
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns))
}

// printVersion implements -V=full: the build system caches vet results
// keyed on this line, so it must change whenever the binary does — the
// content hash of the executable guarantees that.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}
