package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"fairnn/internal/analysis"
)

// vetConfig mirrors the JSON compilation-unit description that go vet
// hands to a -vettool for each package (the unitchecker Config shape).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetImporter resolves source import paths through the config's
// ImportMap (vendoring) and loads dependency types from the gc export
// data files the build system listed in PackageFile.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newVetImporter(cfg *vetConfig, fset *token.FileSet) *vetImporter {
	gc := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path here is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return &vetImporter{cfg: cfg, gc: gc}
}

func (im *vetImporter) Import(importPath string) (*types.Package, error) {
	path, ok := im.cfg.ImportMap[importPath]
	if !ok {
		return nil, fmt.Errorf("cannot resolve import %q", importPath)
	}
	return im.gc.Import(path)
}

// runVetTool analyzes the single compilation unit described by cfgFile
// and returns the process exit code: diagnostics go to stderr in the
// file:line:col format go vet expects, a non-empty finding set exits 1.
func runVetTool(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// Fact-only invocations exist so analyzers can export facts about
	// dependencies. This suite carries no facts, so the unit of work is
	// just the (empty) vetx file the build system expects.
	if cfg.VetxOnly {
		writeVetx(cfg)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report this better
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := analysis.Check(cfg.ImportPath, fset, files, newVetImporter(cfg, fset), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}
	writeVetx(cfg)
	diags, err := pkg.Run(analysis.Suite())
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		log.Fatal(err)
	}
}
