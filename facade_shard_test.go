package fairnn_test

import (
	"context"
	"errors"
	"testing"

	"fairnn"
	"fairnn/internal/dataset"
)

// TestShardedBuilderS1BitIdentical pins the façade half of the
// single-shard contract: NewSet with WithShards(1) must replay the
// unsharded NNIS sampler's exact same-seed sample streams (the builder
// threads identical parameters, seeds and options into the one shard).
func TestShardedBuilderS1BitIdentical(t *testing.T) {
	sets, q := smallSets()
	un, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(97))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(97), fairnn.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sh.(*fairnn.Sharded[fairnn.Set]); !ok {
		t.Fatalf("WithShards(1) built %T, want *Sharded[Set]", sh)
	}
	got, want := drawN(sh, q, 60), drawN(un, q, 60)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: sharded = %d, unsharded = %d — streams diverged", i, got[i], want[i])
		}
	}
	gotK := sh.SampleK(q, 20, nil)
	wantK := un.SampleK(q, 20, nil)
	if len(gotK) != len(wantK) {
		t.Fatalf("SampleK lengths: sharded %d, unsharded %d", len(gotK), len(wantK))
	}
	for i := range wantK {
		if gotK[i] != wantK[i] {
			t.Fatalf("SampleK draw %d: sharded = %d, unsharded = %d", i, gotK[i], wantK[i])
		}
	}
}

// TestShardedBuilderSetUniform checks the sharded set sampler end to end
// through the builder: every sample is a near global id, per-shard stats
// are populated, and all cluster members show up (uniform coverage of the
// recalled ball).
func TestShardedBuilderSetUniform(t *testing.T) {
	sets, q := smallSets()
	for _, part := range []fairnn.Partitioner{nil, fairnn.RoundRobinPartitioner(), fairnn.HashPartitioner(7)} {
		opts := []fairnn.Option{fairnn.Radius(0.6), fairnn.WithSeed(101), fairnn.WithShards(3)}
		if part != nil {
			opts = append(opts, fairnn.WithPartitioner(part))
		}
		s, err := fairnn.NewSet(sets, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var st fairnn.QueryStats
		seen := map[int32]int{}
		for i := 0; i < 2000; i++ {
			id, ok := s.Sample(q, &st)
			if !ok {
				t.Fatal("sharded sample found nothing")
			}
			sh := s.(*fairnn.Sharded[fairnn.Set])
			if sim := fairnn.Jaccard(q, sh.Point(id)); sim < 0.6 {
				t.Fatalf("sampled far point %d (sim %v)", id, sim)
			}
			seen[id]++
		}
		if len(st.ShardRounds) != 3 || len(st.ShardEstimates) != 3 {
			t.Fatalf("per-shard stats lengths = (%d, %d), want (3, 3)", len(st.ShardRounds), len(st.ShardEstimates))
		}
		// smallSets has a 6-member near cluster; a uniform sampler visits
		// every member many times in 2000 draws.
		if len(seen) < 6 {
			t.Fatalf("only %d distinct near points sampled, want the full cluster of 6", len(seen))
		}
		for id, c := range seen {
			if c < 150 {
				t.Errorf("point %d sampled %d/2000 times — far from uniform", id, c)
			}
		}
	}
}

// TestShardedBuilderVec covers the vector twin: NewVec + WithShards over
// a planted ball returns only ball members, and S=1 matches the
// unsharded vector NNIS stream.
func TestShardedBuilderVec(t *testing.T) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 400, Dim: 24, Alpha: 0.8, Beta: 0.4, BallSize: 12, MidSize: 40, Seed: 11,
	})
	un, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.WithSeed(103))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.WithSeed(103), fairnn.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	got, want := drawN[fairnn.Vec](s1, w.Query, 40), drawN[fairnn.Vec](un, w.Query, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vec draw %d: sharded = %d, unsharded = %d", i, got[i], want[i])
		}
	}
	s4, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.WithSeed(103), fairnn.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id, ok := s4.Sample(w.Query, nil)
		if !ok {
			continue // LSH recall is probabilistic per shard
		}
		if ip := fairnn.Dot(w.Query, w.Points[id]); ip < 0.8 {
			t.Fatalf("sampled far vector %d (ip %v)", id, ip)
		}
	}
}

// TestShardedOptionErrors pins the sharding validation surface, including
// the typed Dynamic interplay error.
func TestShardedOptionErrors(t *testing.T) {
	sets, _ := smallSets()
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithShards(0)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithShards(0) err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithShards(len(sets)+1)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("too many shards err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithPartitioner(fairnn.RoundRobinPartitioner())); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithPartitioner without WithShards err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithShards(2), fairnn.WithPartitioner(nil)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("WithPartitioner(nil) err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.NNS), fairnn.WithShards(2)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("NNS + shards err = %v, want ErrBadOption", err)
	}
	if _, err := fairnn.NewVec([]fairnn.Vec{{1, 0}, {0, 1}}, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.Filter), fairnn.WithBeta(0.2), fairnn.WithShards(2)); !errors.Is(err, fairnn.ErrBadOption) {
		t.Errorf("Filter + shards err = %v, want ErrBadOption", err)
	}

	// The Dynamic interplay: Sharded wraps read-only samplers only, so the
	// combination must fail with the dedicated typed error (which is also
	// an ErrBadOption-independent sentinel callers can match).
	_, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.Algorithm(fairnn.Dynamic), fairnn.WithShards(2))
	if !errors.Is(err, fairnn.ErrShardedDynamic) {
		t.Errorf("Dynamic + shards err = %v, want ErrShardedDynamic", err)
	}
	// The vector builder honors the same documented contract even though
	// Dynamic is set-only there.
	_, err = fairnn.NewVec([]fairnn.Vec{{1, 0}, {0, 1}}, fairnn.Radius(0.5), fairnn.Algorithm(fairnn.Dynamic), fairnn.WithShards(2))
	if !errors.Is(err, fairnn.ErrShardedDynamic) {
		t.Errorf("vec Dynamic + shards err = %v, want ErrShardedDynamic", err)
	}
}

// TestShardedInterfaceMiddleware runs the polymorphic audit over the
// sharded construction: the Sampler contract — context draws, streams,
// bulk draws, introspection — must hold unchanged.
func TestShardedInterfaceMiddleware(t *testing.T) {
	sets, q := smallSets()
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(107), fairnn.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != len(sets) {
		t.Errorf("Size = %d, want %d", s.Size(), len(sets))
	}
	if _, err := s.SampleContext(context.Background(), q, nil); err != nil {
		t.Errorf("SampleContext: %v", err)
	}
	n := 0
	for id, err := range s.Samples(context.Background(), q) {
		if err != nil {
			t.Errorf("stream error: %v", err)
			break
		}
		sh := s.(*fairnn.Sharded[fairnn.Set])
		if fairnn.Jaccard(q, sh.Point(id)) < 0.6 {
			t.Errorf("streamed far point %d", id)
		}
		if n++; n >= 5 {
			break
		}
	}
	if dst := s.SampleKInto(q, 4, nil, nil); len(dst) == 0 {
		t.Error("SampleKInto returned nothing")
	}
	if s.RetainedScratchBytes() <= 0 {
		t.Error("RetainedScratchBytes = 0 after queries")
	}
	// Batch fan-out middleware works against the sharded sampler too.
	queries := []fairnn.Set{q, q, q, q}
	for i, r := range fairnn.SampleBatch[fairnn.Set](s, queries, 2) {
		if !r.OK {
			t.Errorf("batch query %d found nothing", i)
		}
	}
}
