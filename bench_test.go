// Benchmarks regenerating every figure of the paper's evaluation section
// (at reduced Monte-Carlo scale — shapes, not absolute numbers), plus
// per-query micro-benchmarks for each sampler (the Q3 cost discussion) and
// ablation benches for the design constants called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package fairnn_test

import (
	"sync"
	"testing"

	"fairnn"
	"fairnn/internal/dataset"
	"fairnn/internal/experiments"
	"fairnn/internal/sketch"
)

// ---------------------------------------------------------------------------
// Shared fixtures (built once; construction is benchmarked separately).

type setFixture struct {
	sets    []fairnn.Set
	queries []int
}

var (
	setFixOnce sync.Once
	setFix     setFixture
)

// benchSets is a Last.FM-like workload small enough for per-query benches.
func benchSets() setFixture {
	setFixOnce.Do(func() {
		cfg := dataset.LastFMLike()
		cfg.Users = 600
		cfg.Communities = 12
		sets := dataset.Generate(cfg)
		setFix = setFixture{
			sets:    sets,
			queries: dataset.InterestingQueries(sets, 0.2, 20, 8, 1),
		}
	})
	return setFix
}

const benchRadius = 0.2

var benchCfg = fairnn.Config{Seed: 7}

// ---------------------------------------------------------------------------
// Figure benches: one per table/figure of the evaluation section.

// BenchmarkFig1LastFM regenerates Figure 1 (top row): output distribution
// of standard vs fair LSH. The reported tv_std / tv_fair metrics are the
// mean per-query total-variation distances from uniform (paper shape:
// tv_std >> tv_fair).
func BenchmarkFig1LastFM(b *testing.B) {
	cfg := experiments.DefaultFig1LastFM()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Queries = 5
	cfg.Builds = 2
	cfg.RepsPerBuild = 80
	cfg.MinNeighbors = 10
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanTVStd, "tv_std")
	b.ReportMetric(last.MeanTVFair, "tv_fair")
	b.ReportMetric(last.BiasSlope(false), "slope_std")
}

// BenchmarkFig1MovieLens regenerates Figure 1 (bottom row).
func BenchmarkFig1MovieLens(b *testing.B) {
	cfg := experiments.DefaultFig1MovieLens()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Radius = 0.2
	cfg.Queries = 5
	cfg.Builds = 2
	cfg.RepsPerBuild = 60
	cfg.MinNeighbors = 10
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanTVStd, "tv_std")
	b.ReportMetric(last.MeanTVFair, "tv_fair")
}

// BenchmarkFig2Adversarial regenerates Figure 2: sampling probabilities of
// X, Y, Z under approximate-neighborhood sampling. Paper shape: P[X]/P[Y]
// far above 1 (the paper reports more than 50x).
func BenchmarkFig2Adversarial(b *testing.B) {
	cfg := experiments.DefaultFig2()
	cfg.Batches = 4
	cfg.BuildsPerBatch = 10
	cfg.RepsPerBuild = 30
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.X.Median, "p_x")
	b.ReportMetric(last.Y.Median, "p_y")
	b.ReportMetric(last.Z.Median, "p_z")
}

// BenchmarkFig3LastFM regenerates Figure 3 (top row): b_cr/b_r ratios.
func BenchmarkFig3LastFM(b *testing.B) {
	cfg := experiments.DefaultFig3LastFM()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Queries = 15
	cfg.MinNeighbors = 10
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	max := 0.0
	for _, c := range last.Cells {
		if c.MeanRatio > max {
			max = c.MeanRatio
		}
	}
	b.ReportMetric(max, "max_ratio")
}

// BenchmarkFig3MovieLens regenerates Figure 3 (bottom row). Paper shape:
// ratios far above the Last.FM ones (hundreds at r=0.25, c<=0.25).
func BenchmarkFig3MovieLens(b *testing.B) {
	cfg := experiments.DefaultFig3MovieLens()
	cfg.Dataset.Users = 500
	cfg.Dataset.Communities = 8
	cfg.Queries = 15
	cfg.MinNeighbors = 10
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	max := 0.0
	for _, c := range last.Cells {
		if c.MeanRatio > max {
			max = c.MeanRatio
		}
	}
	b.ReportMetric(max, "max_ratio")
}

// BenchmarkQ3CostTable regenerates the Q3 cost table end to end.
func BenchmarkQ3CostTable(b *testing.B) {
	cfg := experiments.DefaultCost()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Queries = 5
	cfg.RepsPerQuery = 5
	cfg.MinNeighbors = 10
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-query micro-benchmarks (the Q3 cost discussion, method by method).

func BenchmarkQueryStandardLSH(b *testing.B) {
	fix := benchSets()
	std, err := fairnn.NewSetStandard(fix.sets, benchRadius, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		std.QueryRandomTableOrder(q, nil)
	}
}

func BenchmarkQueryNaiveFair(b *testing.B) {
	fix := benchSets()
	std, err := fairnn.NewSetStandard(fix.sets, benchRadius, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		std.NaiveFairSample(q, nil)
	}
}

func BenchmarkQuerySamplerNNS(b *testing.B) {
	fix := benchSets()
	s, err := fairnn.NewSetSampler(fix.sets, benchRadius, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		s.Sample(q, nil)
	}
}

func BenchmarkQuerySampleRepeated(b *testing.B) {
	fix := benchSets()
	s, err := fairnn.NewSetSampler(fix.sets, benchRadius, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		s.SampleRepeated(q, nil)
	}
}

func BenchmarkQueryIndependentNNIS(b *testing.B) {
	fix := benchSets()
	d, err := fairnn.NewSetIndependent(fix.sets, benchRadius, fairnn.IndependentOptions{}, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		d.Sample(q, nil)
	}
}

// BenchmarkQueryIndependentNNISParallel drives the Section 4 sampler from
// all available goroutines against one shared structure — the concurrent
// query contract introduced with the signature engine.
func BenchmarkQueryIndependentNNISParallel(b *testing.B) {
	fix := benchSets()
	d, err := fairnn.NewSetIndependent(fix.sets, benchRadius, fairnn.IndependentOptions{}, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := fix.sets[fix.queries[i%len(fix.queries)]]
			d.Sample(q, nil)
			i++
		}
	})
}

// BenchmarkQueryIndependentSampleK100 amortizes one resolve+estimate over
// 100 independent draws (the Section 4 plan-reuse path).
func BenchmarkQueryIndependentSampleK100(b *testing.B) {
	fix := benchSets()
	d, err := fairnn.NewSetIndependent(fix.sets, benchRadius, fairnn.IndependentOptions{}, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		d.SampleK(q, 100, nil)
	}
}

// BenchmarkQueryIndependentSampleK100Into is the zero-allocation bulk
// variant: the output buffer is recycled across iterations, so the
// steady state allocates nothing at all.
func BenchmarkQueryIndependentSampleK100Into(b *testing.B) {
	fix := benchSets()
	d, err := fairnn.NewSetIndependent(fix.sets, benchRadius, fairnn.IndependentOptions{}, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int32, 0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		dst = d.SampleKInto(q, 100, dst, nil)
	}
}

func BenchmarkQueryExactScan(b *testing.B) {
	fix := benchSets()
	e := fairnn.NewSetExact(fix.sets, benchRadius, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fix.sets[fix.queries[i%len(fix.queries)]]
		e.Sample(q, nil)
	}
}

func BenchmarkQueryFilterIndependent(b *testing.B) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 1000, Dim: 32, Alpha: 0.8, Beta: 0.5, BallSize: 20, MidSize: 60, Seed: 5,
	})
	fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fi.Sample(w.Query, nil)
	}
}

func BenchmarkQueryFilterSampleK100(b *testing.B) {
	// The plan-reuse path: 100 independent draws amortize one plan.
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 1000, Dim: 32, Alpha: 0.8, Beta: 0.5, BallSize: 20, MidSize: 60, Seed: 5,
	})
	fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fi.SampleK(w.Query, 100, nil)
	}
}

// ---------------------------------------------------------------------------
// Construction benchmarks (Theorem 1/2 preprocessing costs).

func BenchmarkBuildSampler(b *testing.B) {
	fix := benchSets()
	for i := 0; i < b.N; i++ {
		if _, err := fairnn.NewSetSampler(fix.sets, benchRadius, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildIndependent(b *testing.B) {
	fix := benchSets()
	for i := 0; i < b.N; i++ {
		if _, err := fairnn.NewSetIndependent(fix.sets, benchRadius, fairnn.IndependentOptions{}, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildFilterIndependent(b *testing.B) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 1000, Dim: 32, Alpha: 0.8, Beta: 0.5, BallSize: 20, MidSize: 60, Seed: 5,
	})
	for i := 0; i < b.N; i++ {
		if _, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations: the design constants DESIGN.md calls out.

// BenchmarkAblationLambda sweeps the Section 4 segment cap λ: smaller λ
// means higher per-segment acceptance but more clamping risk; larger λ
// wastes rounds.
func BenchmarkAblationLambda(b *testing.B) {
	fix := benchSets()
	for _, lambda := range []int{4, 8, 16, 32, 64} {
		b.Run(benchName("lambda", lambda), func(b *testing.B) {
			d, err := fairnn.NewSetIndependent(fix.sets, benchRadius,
				fairnn.IndependentOptions{Lambda: lambda}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st fairnn.QueryStats
				q := fix.sets[fix.queries[i%len(fix.queries)]]
				d.Sample(q, &st)
				rounds += st.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/query")
		})
	}
}

// BenchmarkAblationSigma sweeps the Section 4 failure budget Σ.
func BenchmarkAblationSigma(b *testing.B) {
	fix := benchSets()
	for _, sigma := range []int{16, 64, 256} {
		b.Run(benchName("sigma", sigma), func(b *testing.B) {
			d, err := fairnn.NewSetIndependent(fix.sets, benchRadius,
				fairnn.IndependentOptions{SigmaBudget: sigma}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st fairnn.QueryStats
				q := fix.sets[fix.queries[i%len(fix.queries)]]
				d.Sample(q, &st)
				rounds += st.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/query")
		})
	}
}

// BenchmarkAblationTensoring sweeps the Section 5 tensoring degree t:
// larger t shrinks the filter-evaluation cost (t·m^(1/t) vectors) at the
// price of a lower per-bank success probability.
func BenchmarkAblationTensoring(b *testing.B) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 1000, Dim: 32, Alpha: 0.8, Beta: 0.5, BallSize: 20, MidSize: 60, Seed: 5,
	})
	for _, t := range []int{1, 2, 3, 4} {
		b.Run(benchName("t", t), func(b *testing.B) {
			fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5,
				fairnn.VecOptions{T: t}, 9)
			if err != nil {
				b.Fatal(err)
			}
			var evals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st fairnn.QueryStats
				fi.Sample(w.Query, &st)
				evals += st.FilterEvals
			}
			b.ReportMetric(float64(evals)/float64(b.N), "filter_evals/query")
		})
	}
}

// BenchmarkAblationSketchEpsilon sweeps the count-distinct accuracy: a
// coarser sketch is smaller and faster to merge but starts the Section 4
// search at a worse segment count.
func BenchmarkAblationSketchEpsilon(b *testing.B) {
	fix := benchSets()
	for _, epsMilli := range []int{250, 500, 900} {
		b.Run(benchName("eps_milli", epsMilli), func(b *testing.B) {
			d, err := fairnn.NewSetIndependent(fix.sets, benchRadius,
				fairnn.IndependentOptions{SketchEpsilon: float64(epsMilli) / 1000}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fix.sets[fix.queries[i%len(fix.queries)]]
				d.Sample(q, nil)
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkScalingSection5 regenerates the Theorem 3 scaling check at
// reduced size, reporting the fitted growth exponent of the per-query
// candidate work (theory: ρ < 1).
func BenchmarkScalingSection5(b *testing.B) {
	cfg := experiments.DefaultScaling()
	cfg.Ns = []int{500, 1000, 2000}
	cfg.QueriesPerN = 10
	var last *experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.CandidateExponent, "exponent")
	b.ReportMetric(last.Rho, "rho_theory")
}

// BenchmarkAblationSketchKind compares the Section 2.3 KMV sketch against
// HyperLogLog as the Section 4 candidate estimator: build time, stored
// sketch memory, and query latency.
func BenchmarkAblationSketchKind(b *testing.B) {
	fix := benchSets()
	for _, kind := range []struct {
		name string
		k    sketch.Kind
	}{{"kmv", sketch.KMV}, {"hll", sketch.HyperLogLog}} {
		b.Run(kind.name, func(b *testing.B) {
			// SketchMinBucket 2 forces sketches to be stored for (nearly)
			// every bucket so the memory comparison is visible.
			d, err := fairnn.NewSetIndependent(fix.sets, benchRadius,
				fairnn.IndependentOptions{SketchKind: kind.k, SketchMinBucket: 2}, benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			_, words := d.StoredSketches()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fix.sets[fix.queries[i%len(fix.queries)]]
				d.Sample(q, nil)
			}
			b.ReportMetric(float64(words), "sketch_words")
		})
	}
}
