// The multi-core throughput gauge behind scripts/bench.sh: it drives the
// Section 5 vector sampler from W concurrent workers at GOMAXPROCS = W
// for each point of the sweep and reports aggregate samples/sec as
// machine-parseable PARALLEL lines that the bench script folds into
// BENCH_PR7.json. The scaling curve is the end-to-end proof that the
// query path has no hidden serialization: queriers come from the pool,
// per-query RNG streams split off an atomic counter, and the kernels are
// read-only, so throughput should track core count on multi-core hosts
// (on a single-core host the curve is honestly flat).
//
// Knobs (env): FAIRNN_PAR_N (indexed points, default 2000 so the regular
// test run stays light; bench.sh sets more), FAIRNN_PAR_DRAWS (SampleK
// calls per worker, default 50) and FAIRNN_PAR_SWEEP (space-separated
// GOMAXPROCS values, default "1 2 4").

package fairnn_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fairnn"
	"fairnn/internal/dataset"
)

func envGaugeInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envGaugeInts(name string, def []int) []int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	var out []int
	for _, f := range strings.Fields(s) {
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return def
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return def
	}
	return out
}

func TestParallelThroughputGauge(t *testing.T) {
	n := envGaugeInt("FAIRNN_PAR_N", 2000)
	draws := envGaugeInt("FAIRNN_PAR_DRAWS", 50)
	sweep := envGaugeInts("FAIRNN_PAR_SWEEP", []int{1, 2, 4})
	const perCall = 100

	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: n, Dim: 64, Alpha: 0.8, Beta: 0.5,
		BallSize: max(20, n/100), MidSize: max(40, n/50), Seed: 977,
	})
	fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 983)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	base := 0.0
	for _, g := range sweep {
		runtime.GOMAXPROCS(g)
		var wg sync.WaitGroup
		var empty sync.Once
		failed := false
		start := time.Now()
		for wk := 0; wk < g; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]int32, 0, perCall)
				for i := 0; i < draws; i++ {
					dst = fi.SampleKInto(w.Query, perCall, dst, nil)
					if len(dst) == 0 {
						empty.Do(func() { failed = true })
					}
				}
			}()
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		if failed {
			t.Fatalf("gomaxprocs=%d: SampleKInto returned no samples on the planted ball", g)
		}
		tput := float64(g*draws*perCall) / secs
		if base == 0 {
			base = tput
		}
		fmt.Printf("PARALLEL gomaxprocs=%d workers=%d samples=%d secs=%.3f samples_per_sec=%.0f speedup_vs_first=%.2f\n",
			g, g, g*draws*perCall, secs, tput, tput/base)
	}
}
