package fairnn_test

import (
	"math"
	"testing"

	"fairnn"
	"fairnn/internal/dataset"
)

// smallSets is a tiny clustered workload for façade tests.
func smallSets() ([]fairnn.Set, fairnn.Set) {
	var sets []fairnn.Set
	// A cluster of 6 sets close to the query.
	base := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sets = append(sets, fairnn.SetFromSlice(base))
	for i := 0; i < 5; i++ {
		items := append([]uint32(nil), base...)
		items[i] = 100 + uint32(i) // swap one element out
		sets = append(sets, fairnn.SetFromSlice(items))
	}
	// 30 far sets.
	for i := 0; i < 30; i++ {
		lo := uint32(1000 + 20*i)
		var items []uint32
		for v := lo; v < lo+10; v++ {
			items = append(items, v)
		}
		sets = append(sets, fairnn.SetFromSlice(items))
	}
	return sets, fairnn.SetFromSlice(base)
}

func TestFacadeSetSampler(t *testing.T) {
	sets, q := smallSets()
	s, err := fairnn.NewSetSampler(sets, 0.6, fairnn.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := s.Sample(q, nil)
	if !ok {
		t.Fatal("no sample")
	}
	if sim := fairnn.Jaccard(q, s.Point(id)); sim < 0.6 {
		t.Fatalf("similarity %v below radius", sim)
	}
	if got := s.SampleK(q, 3, nil); len(got) != 3 {
		t.Fatalf("SampleK returned %d", len(got))
	}
}

func TestFacadeSetIndependentUniform(t *testing.T) {
	sets, q := smallSets()
	d, err := fairnn.NewSetIndependent(sets, 0.6, fairnn.IndependentOptions{}, fairnn.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	const reps = 6000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(q, nil)
		if !ok {
			t.Fatal("no sample")
		}
		counts[id]++
	}
	if len(counts) != 6 {
		t.Fatalf("support size %d, want the 6-set cluster", len(counts))
	}
	for id, c := range counts {
		p := float64(c) / reps
		if math.Abs(p-1.0/6.0) > 0.035 {
			t.Errorf("point %d has probability %v, want ~1/6", id, p)
		}
	}
}

func TestFacadeStandardAndExactAgreeOnBall(t *testing.T) {
	sets, q := smallSets()
	std, err := fairnn.NewSetStandard(sets, 0.6, fairnn.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact := fairnn.NewSetExact(sets, 0.6, 7)
	ball := exact.Ball(q, nil)
	if len(ball) != 6 {
		t.Fatalf("exact ball size %d, want 6", len(ball))
	}
	recalled := std.RecalledBall(q, nil)
	if len(recalled) < 5 {
		t.Errorf("standard structure recalled only %d of 6", len(recalled))
	}
}

func TestFacadeManualParamsRespected(t *testing.T) {
	sets, _ := smallSets()
	s, err := fairnn.NewSetSampler(sets, 0.6, fairnn.Config{K: 4, L: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Params(); p.K != 4 || p.L != 7 {
		t.Fatalf("params %+v, want K=4 L=7", p)
	}
}

func TestFacadeVecIndependent(t *testing.T) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 250, Dim: 24, Alpha: 0.8, Beta: 0.5, BallSize: 8, MidSize: 20, Seed: 11,
	})
	fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range fi.SampleK(w.Query, 50, nil) {
		if ip := fairnn.Dot(w.Query, fi.Point(id)); ip < 0.8 {
			t.Fatalf("inner product %v below alpha", ip)
		}
	}
}

func TestFacadeVecSamplerSimHash(t *testing.T) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 250, Dim: 24, Alpha: 0.8, Beta: 0.5, BallSize: 8, MidSize: 20, Seed: 17,
	})
	s, err := fairnn.NewVecSampler(w.Points, 0.8, fairnn.VecConfig{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := s.Sample(w.Query, nil)
	if !ok {
		t.Fatal("SimHash sampler found nothing in a planted ball of 8")
	}
	if ip := fairnn.Dot(w.Query, s.Point(id)); ip < 0.8 {
		t.Fatalf("inner product %v below alpha", ip)
	}
}

func TestFacadeVecSamplerIndependentCrossPolytope(t *testing.T) {
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 250, Dim: 24, Alpha: 0.8, Beta: 0.5, BallSize: 8, MidSize: 20, Seed: 23,
	})
	d, err := fairnn.NewVecSamplerIndependent(w.Points, 0.8, fairnn.IndependentOptions{},
		fairnn.VecConfig{CrossPolytope: true, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 60; i++ {
		if id, ok := d.Sample(w.Query, nil); ok {
			found++
			if ip := fairnn.Dot(w.Query, d.Point(id)); ip < 0.8 {
				t.Fatalf("inner product %v below alpha", ip)
			}
		}
	}
	if found < 45 {
		t.Errorf("cross-polytope sampler found only %d/60", found)
	}
}

func TestFacadeWeighted(t *testing.T) {
	sets, q := smallSets()
	// Quadratic preference for higher similarity.
	weight := func(sim float64) float64 { return sim * sim }
	wt, err := fairnn.NewSetWeighted(sets, 0.6, weight, 1, fairnn.IndependentOptions{}, fairnn.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	const reps = 8000
	for i := 0; i < reps; i++ {
		if id, ok := wt.Sample(q, nil); ok {
			counts[id]++
		}
	}
	// Point 0 is the query itself (sim 1); others have sim 9/11.
	p0 := float64(counts[0]) / reps
	pOther := float64(counts[1]) / reps
	wantRatio := 1.0 / ((9.0 / 11.0) * (9.0 / 11.0))
	if pOther == 0 {
		t.Fatal("cluster member never sampled")
	}
	if gotRatio := p0 / pOther; math.Abs(gotRatio-wantRatio) > 0.5 {
		t.Errorf("weight ratio %v, want ≈ %v", gotRatio, wantRatio)
	}
}

func TestFacadeMultiRadius(t *testing.T) {
	sets, q := smallSets()
	m, err := fairnn.NewSetMultiRadius(sets, []float64{0.3, 0.6, 0.95}, fairnn.IndependentOptions{}, fairnn.Config{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	id, r, ok := m.SampleTightest(q, nil)
	if !ok {
		t.Fatal("no sample")
	}
	if r != 0.95 {
		t.Errorf("picked radius %v, want 0.95 (query itself is indexed)", r)
	}
	if fairnn.Jaccard(q, m.At(0).Point(id)) < 0.95 {
		t.Error("returned point below chosen threshold")
	}
}

func TestFacadeHelpers(t *testing.T) {
	s := fairnn.SetFromSlice([]uint32{3, 1, 2, 3})
	if s.Len() != 3 {
		t.Errorf("SetFromSlice len %d", s.Len())
	}
	v := fairnn.Normalize(fairnn.Vec{3, 4})
	if math.Abs(fairnn.Dot(v, v)-1) > 1e-12 {
		t.Error("Normalize/Dot broken")
	}
	if fairnn.Jaccard(s, s) != 1 {
		t.Error("Jaccard broken")
	}
}

func TestFacadeDynamic(t *testing.T) {
	d, err := fairnn.NewSetDynamic(0.6, 64, fairnn.Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	sets, q := smallSets()
	ids := make([]int32, len(sets))
	for i, s := range sets {
		ids[i], err = d.Insert(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	id, ok := d.Sample(q, nil)
	if !ok {
		t.Fatal("no sample after inserts")
	}
	if fairnn.Jaccard(q, d.Point(id)) < 0.6 {
		t.Fatal("far point returned")
	}
	// Delete the whole cluster except the query's own copy.
	for _, i := range ids[1:6] {
		if !d.Delete(i) {
			t.Fatal("delete failed")
		}
	}
	id, ok = d.Sample(q, nil)
	if !ok || id != ids[0] {
		t.Fatalf("after deletions expected the surviving copy, got %d (%v)", id, ok)
	}
}

// TestFacadeSampleKInto exercises the zero-allocation bulk variant
// through the façade type aliases on every sampler that offers it.
func TestFacadeSampleKInto(t *testing.T) {
	sets, q := smallSets()
	d, err := fairnn.NewSetIndependent(sets, 0.6, fairnn.IndependentOptions{}, fairnn.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 0, 8)
	dst = d.SampleKInto(q, 8, dst, nil)
	if len(dst) == 0 {
		t.Fatal("SetIndependent.SampleKInto found nothing")
	}
	for _, id := range dst {
		if sim := fairnn.Jaccard(q, d.Point(id)); sim < 0.6 {
			t.Fatalf("similarity %v below radius", sim)
		}
	}

	s, err := fairnn.NewSetSampler(sets, 0.6, fairnn.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SampleKInto(q, 3, dst, nil); len(got) != 3 {
		t.Fatalf("SetSampler.SampleKInto returned %d, want 3", len(got))
	}

	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 200, Dim: 16, Alpha: 0.8, Beta: 0.5, BallSize: 8, MidSize: 20, Seed: 11,
	})
	fi, err := fairnn.NewVecIndependent(w.Points, 0.8, 0.5, fairnn.VecOptions{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	vdst := fi.SampleKInto(w.Query, 8, nil, nil)
	if len(vdst) == 0 {
		t.Fatal("VecIndependent.SampleKInto found nothing")
	}
	for _, id := range vdst {
		if ip := fairnn.Dot(w.Query, fi.Point(id)); ip < 0.8 {
			t.Fatalf("inner product %v below alpha", ip)
		}
	}
}
