// Package fairnn is a Go implementation of the fair near-neighbor data
// structures from Aumüller, Pagh and Silvestri, "Fair Near Neighbor Search:
// Independent Range Sampling in High Dimensions" (PODS 2020).
//
// The r-near neighbor sampling problem asks for a data structure that, for
// a query q, returns a point sampled uniformly at random from the ball
// B_S(q, r) = {p ∈ S : D(p, q) ≤ r}. Standard LSH indexes are biased: the
// probability of reporting a point grows with its similarity to the query.
// This package provides the paper's unbiased alternatives:
//
//   - SetSampler (Section 3): uniform sampling via a random rank
//     permutation over LSH buckets. Deterministic per build; supports
//     k-samples without replacement and a rank-perturbation mode
//     (Appendix A) that makes repetitions of one query independent.
//   - SetIndependent (Section 4): fully independent uniform sampling
//     (the r-NNIS problem) using per-bucket rank indices and mergeable
//     count-distinct sketches.
//   - VecIndependent (Section 5): independent uniform sampling under inner
//     product similarity in nearly-linear space, built on locality-
//     sensitive filters.
//   - SetStandard: the classic biased LSH baseline, plus the naive fair
//     and approximate-neighborhood samplers used in the paper's
//     experimental comparison.
//
// Points are either item sets (Jaccard similarity; type Set) or unit
// vectors (inner product; type Vec). The underlying generic implementations
// in internal/core work for any metric with an LSH family.
//
// # One contract, many constructions
//
// Every structure in the library answers the same question — draw samples
// from B_S(q, r) — so they all satisfy the generic Sampler interface:
// Sample / SampleK / SampleKInto, the context-aware SampleContext and
// streaming Samples, plus Size and RetainedScratchBytes introspection.
// Middleware (metrics, tracing, sharded fan-out, reservoir consumers) is
// written once against Sampler[Set] or Sampler[Vec] and works with any
// construction.
//
// Construction goes through one functional-options builder per point
// type:
//
//	s, err := fairnn.NewSet(points,
//	    fairnn.Radius(0.5),
//	    fairnn.Algorithm(fairnn.NNIS), // the default
//	    fairnn.WithSeed(7),
//	)
//	v, err := fairnn.NewVec(vecs,
//	    fairnn.Radius(0.8),                 // alpha
//	    fairnn.Algorithm(fairnn.Filter),    // Section 5
//	    fairnn.WithBeta(0.5),
//	)
//
// Option validation returns typed errors (ErrBadRadius, ErrNoPoints,
// ErrDimMismatch, ErrBadOption) matched with errors.Is. The legacy
// constructors (NewSetSampler, NewSetIndependent, ...) remain fully
// supported — the builder delegates to them, so a builder-made sampler
// produces bit-identical same-seed sample streams to its legacy twin.
//
// # Cancellation and streaming
//
// SampleContext runs one draw under a context: the Section 4/5 rejection
// loops poll ctx.Err() every few dozen rounds (amortized — the
// zero-allocation steady state is preserved), so a query spinning under
// an adversarial workload returns context.Canceled or
// context.DeadlineExceeded within one check interval; a failed but
// uncanceled query returns ErrNoSample. Samples returns an unbounded
// independent sample stream as a Go iterator with no output buffer:
//
//	for id, err := range s.Samples(ctx, q) {
//	    if err != nil { break } // ctx done, or ErrNoSample
//	    consume(id)
//	}
//
// The stream shares one query plan (and one memo epoch) across all its
// draws, exactly like SampleK. SampleBatchContext and SampleKBatchContext
// are the cancellation-aware bulk fan-outs.
//
// # Sharding
//
// WithShards(s) partitions the point set across s shards — round-robin by
// default, or by a seeded index hash via
// WithPartitioner(HashPartitioner(seed)) — and builds one Section 4
// structure per shard, in parallel. The resulting Sharded sampler answers
// the full Sampler contract with ids in the global index space of the
// original point slice (the shard→global translation tables are built
// once at construction).
//
// Uniformity over the union is not free: shards hold different numbers of
// near neighbors of q, so picking a shard uniformly and sampling inside
// it would be biased toward points in sparse shards. Sharded instead uses
// the paper's union-of-buckets machinery: each query estimates every
// shard's near count from its count-distinct sketches, picks a shard with
// probability proportional to the estimate (concretely, a segment
// uniformly at random from the union of all shards' rank-segment pools),
// counts the segment's near points exactly, and accepts with probability
// λ_q,h/λ under one λ shared by all shards. Per round, the probability of
// emitting any particular near point is 1/(λ·Σk) — independent of which
// shard holds it and of all the estimates — so every accepted draw is
// exactly uniform over the union ball and successive draws are
// independent (Theorem 2 lifted to the partitioned index); the rejection
// step absorbs all sketch-estimate error. All randomness of one logical
// query flows from a single stream split off the seed, so outputs are
// deterministic per query index no matter how the per-shard work is
// scheduled; with WithShards(1) the sharded sampler is bit-identical —
// same-seed streams and all — to the unsharded sampler it wraps.
//
// On sharded queries, QueryStats reports per-shard rejection rounds
// (ShardRounds), per-shard estimates (ShardEstimates) and the shard that
// produced the sample (ShardChosen). Sharding wraps read-only samplers
// only: combining WithShards with Algorithm(Dynamic) returns
// ErrShardedDynamic (a mutable shard would silently skew the union
// distribution); keep one unsharded SetDynamic for a mutable working set
// and rebuild the sharded index offline.
//
// # Resilience
//
// Each shard of a sharded sampler is an explicit failure domain behind a
// per-shard backend seam: the three per-shard operations of a query —
// arming (estimate + plan setup), per-round segment reports, and the
// final point pick — go through an interface an RPC backend can later
// implement, and the in-process backend the library ships wraps today's
// per-shard structures with zero overhead. On top of that seam sits an
// opt-in resilience policy, assembled with builder options on sharded
// builds only (they return ErrBadOption without WithShards):
//
//   - WithShardDeadline(d) bounds every per-shard call attempt with a
//     context deadline.
//   - WithShardRetry(n) retries a failed call up to n times under capped
//     exponential backoff with full jitter (WithShardBackoff tunes the
//     base and cap). Backoff randomness comes from a derived substream,
//     never the query's own sample stream.
//   - WithDegradedMode() opts into graceful degradation: a shard that
//     exhausts its deadline/retry budget is excluded from the union pool
//     and the query proceeds over the survivors. The two-stage draw's
//     per-round emit probability, 1/(λ·Σk), never depended on which
//     shards contribute — so a degraded answer is still exactly uniform,
//     over the surviving shards' union ball. Degraded answers are not
//     errors; they are reported on QueryStats.Degraded (DegradedInfo:
//     lost shards, lost point count, estimated surviving coverage of the
//     union ball). Without degraded mode the query fails fast with a
//     typed *ShardError naming the shard, operation and cause — match
//     the whole family with errors.Is(err, ErrDegraded).
//
// Exhausted shards land in a per-sampler health registry that fails fast
// (skipping the dead shard without paying its deadline again) and probes
// it for re-admission every WithShardProbeEvery(n)-th query it would
// have served; a probe that arms successfully restores the shard. Health
// is observable via Sharded.Health. With no faults and no resilience
// options the plain query path is untouched: zero allocations, and
// same-seed streams bit-identical to a policy-free build — an idle
// injector or an un-triggered policy is contractually invisible.
//
// Worker panics are contained everywhere the library fans out: parallel
// shard builds surface a typed *BuildError naming the shard and point
// (wrapping a *PanicError with the worker's stack) instead of crashing
// the process; SampleBatch re-panics a worker panic on the caller's
// goroutine as a catchable *PanicError after draining the batch; the
// context batch variants return it as the batch error; and a panic
// inside a resilient per-shard call is just another failed attempt.
//
// WithFaultInjection(inj) interposes a deterministic fault harness
// (tests only) on every backend call of a sharded sampler: a
// FaultInjector built from NewFaultInjector(shards, seed, specs...)
// injects latency, transient errors, stalls and panics per FaultSpec,
// with every decision a pure function of (seed, shard, operation, call
// ordinal) — a schedule that kills shard 2's third arm call kills it on
// every run, under the race detector, at any GOMAXPROCS. The fairnn
// command's "-exp chaos" runs seeded random schedules end to end — both
// injected faults in process and real kill/restart cycles against live
// loopback servers.
//
// # Serving
//
// The serving subsystem runs a sharded sampler's backends out of
// process, over a versioned length-prefixed binary protocol on TCP
// (internal/wire; stdlib only, pipelined requests, propagated
// deadlines, typed error codes). cmd/fairnn-server builds one shard's
// Section 4 structure from a shared deterministic spec and serves the
// three backend operations; internal/shard.Connect dials one server per
// shard and assembles a Sharded sampler whose remote backends sit
// behind the same Backend seam — so deadlines, retries, degraded mode,
// the health registry and fault injection from the Resilience section
// apply over the wire unchanged.
//
// The servers hold no randomness: arming mirrors the (ŝ, k0) estimate
// state back to the client, segment requests carry the client's halving
// state, and the pick request carries an index drawn client-side from
// the query's own stream. A fault-free network fleet therefore emits
// same-seed sample streams bit-identical to the in-process sampler over
// the same build, and killing a server process degrades exactly like an
// in-process shard loss: answers stay exactly uniform over the
// survivors' union ball, the loss lands on QueryStats.Degraded, and a
// restarted server — its build identity re-verified at the redial
// handshake — is probed back in by the health registry. Connections
// cross-check the whole fleet's build identity (global point count, λ,
// Σ budget, radius, shard index and count, point codec) at the
// handshake, so a mis-assembled or mixed-build fleet fails loudly at
// Connect instead of sampling from a subtly wrong distribution. The
// fairnn command's "-exp serve" load-tests a loopback fleet end to end
// and reports full latency histograms (p50/p90/p99/p999), throughput,
// and the sampler's health registry over a wire endpoint of its own.
//
// # Observability
//
// Observe(r) attaches a telemetry Registry (NewRegistry) to a sampler;
// every instrument watches a specific invariant of the construction:
//
//   - fairnn_rejection_rounds_total against fairnn_draws_total is the
//     rejection-loop round count per draw — the paper's λ/Σ resolution
//     made visible. Theorem 2's accounting keeps expected rounds O(1)
//     when the per-query near-count estimate resolves correctly; a
//     drifting rounds-per-draw ratio is the earliest sign a build's
//     estimate quality has degraded.
//   - fairnn_memo_hits_total and fairnn_batch_scored_total split the
//     scoring work between the per-query memo and the batched distance
//     kernels; together with fairnn_score_evals_total they watch the
//     "each candidate scored at most once per Sample" memoization
//     contract.
//   - fairnn_degraded_draws_total counts draws answered from a
//     survivors-only union ball. Each such draw is still exactly
//     uniform — over a smaller population — so this counter is the
//     operator's measure of how often answers carried that asterisk.
//   - fairnn_shard_op_latency_seconds / _errors_total / _retries_total
//     (labeled by shard and arm/segment/pick), the backoff counters,
//     and fairnn_shard_health_down_total / _readmit_total watch the
//     resilience policy itself: which failure domains are paying the
//     deadline/retry budget and how often the health registry cycles a
//     shard out and back in.
//   - The wire client and server register per-op request latency,
//     redials, deadline sheds, refused-while-draining counts, and
//     active plan/connection gauges — the serving section's drain and
//     shed behavior as numbers instead of anecdotes.
//
// WithTraceSampling(everyN) additionally captures, for one query in
// everyN, the full span tree across the sharded backend seam — the arm
// fan-out, each shard's segment reports and point picks, annotated with
// retries, degraded transitions, and failure notes — retained in the
// registry's trace ring (Registry.Tracer, TraceRing.Recent). The
// trace-or-not decision is a pure hash of the query's stream seed in a
// derived substream, a discipline the rngstream analyzer enforces
// statically: sampling decisions drawn from the query's own RNG stream
// would shift every subsequent draw.
//
// The whole subsystem honors the idle-invisibility contract the fault
// injector set: no Observe (a nil registry) means bit-identical
// same-seed sample streams and zero extra allocations on the Sample hot
// path — and an attached registry changes cost only, never output.
// Both halves are pinned by CI oracles (stream-equality tests and
// testing.AllocsPerRun with a fully enabled registry). For operators,
// fairnn-server's -obs flag serves the registry as /metrics (Prometheus
// text format) plus the standard /debug/pprof profiles on a separate
// listener, and MetricsHandler mounts the same exposition in any
// process embedding the library.
//
// # Concurrency
//
// All indexes are immutable after construction and their query methods are
// safe for concurrent use: per-query scratch (bucket keys, candidate
// buffers, sketch accumulators, memo tables) is pooled, and each query
// draws its randomness from a dedicated stream split off the seed by an
// atomic query counter, so concurrent queries remain uniform and mutually
// independent. Steady-state queries on the Section 3, Section 4 and
// Section 5 structures perform zero heap allocations. Two exceptions
// mutate the index and must not run concurrently with any other call:
// SetSampler.SampleRepeated (Appendix A rank perturbation) and
// SetDynamic's Insert/Delete. Hashing is served by a batched signature
// engine that computes all L·K hash values of a point in a single pass
// over its elements; see SampleBatch/SampleKBatch for a ready-made
// bulk-query fan-out.
//
// The rejection-sampling queries are memoized per query: each distinct
// candidate is distance-scored at most once per Sample (and once across
// an entire SampleK — the paper's independence guarantees need fresh
// randomness per sample, not fresh distance evaluations, so results are
// exact), and long rejection loops adaptively merge their LSH buckets
// into one deduplicated rank-sorted cursor. Every SampleK has a
// SampleKInto(q, k, dst, st) variant that recycles the caller's output
// buffer for a zero-allocation steady state.
//
// # Memory budget
//
// Pooled per-query scratch is bounded. The memo tables backing the
// rejection-loop caches come in two interchangeable flavors, selected by
// MemoOptions (the Memo field of Config, VecConfig, IndependentOptions
// and VecOptions): below MemoOptions.DenseThreshold indexed points
// (default 2²⁰) each pooled querier carries dense epoch-stamped arrays —
// the fastest lookups, at 8–16 bytes per indexed point — and above it a
// compact open-addressing table sized to the query's live candidate set,
// which is o(n) by construction. Operators can force either backend via
// MemoOptions.Backend (MemoDense / MemoCompact). Independently, each
// index retains at most MemoOptions.MaxRetainedQueriers queriers across
// checkouts and frees scratch past MemoOptions.ScratchBudget bytes on
// release, so a one-time burst of G concurrent queries no longer pins
// O(G·n) memory for the process lifetime. (When the resolved backend is
// dense, the effective budget is raised to cover the dense arrays —
// freeing them every release would turn pooling into a per-query O(n)
// allocation; pick MemoCompact to bound scratch below that.) The backend choice affects
// only cost, never any sampler's output distribution;
// QueryStats.MemoProbes and ScoreCacheHits make the memo behavior
// observable per query, and each structure's RetainedScratchBytes
// reports what its pool currently pins.
//
// # Performance
//
// Distance scoring — the inner loop of every rejection sampler — runs on
// a two-tier kernel stack. The portable tier is straight-line Go
// (4-way-unrolled dot product and squared ℓ2 distance) and compiles
// everywhere. On amd64 hosts with AVX2+FMA, an assembly tier processes
// 16 float64 lanes per iteration across four independent FMA
// accumulator chains; the CPU features are probed once at startup and
// the faster tier is selected automatically. Batched variants score a
// whole block of candidates against one query in a single call, and the
// query pipeline is organized around them: the Section 4 sampler
// filters its memo-miss candidates per block through the optional
// ScoreSqBatch seam of its metric space, the Section 5 sampler runs its
// existence scan and filter evaluations over fixed-size blocks, and the
// hash-signing engines compute their projection rows through the same
// batched kernels. Batching and acceleration change cost only, never
// output: within one build the batched and per-candidate paths produce
// bit-identical sample streams and identical QueryStats counters
// (ScoreEvals, ScoreCacheHits, MemoProbes), with BatchScored counting
// how many of the scores went through a batched call.
//
// The portable tier remains fully supported: building with the purego
// (or noasm) build tag compiles the assembly out, and setting the
// FAIRNN_NOASM environment variable before process start disables it at
// runtime on binaries that carry it. The two tiers reduce floating-
// point sums in different orders, so across tiers streams are expected —
// but not guaranteed — to be bit-identical; where a last-bit difference
// flips a threshold verdict, the sampler's actual contract (uniformity
// on the ball) still holds and is pinned by the repo's chi-squared
// stream tests. Measured on the reference box, the accelerated squared-
// distance kernel is ~3.3× the portable one at d = 128 (see
// BENCH_PR7.json for the full dimension sweep and the multi-core
// throughput gauge).
//
// # Static guarantees
//
// The contracts above are enforced twice. At run time, CI oracles
// measure them directly: testing.AllocsPerRun pins the zero-allocation
// steady state, chi-squared tests pin stream uniformity, and the fault
// harness pins idle-injector bit-equivalence. At compile time, the
// fairnnlint analyzer suite (cmd/fairnnlint, built on internal/analysis)
// rejects the code shapes that would erode those oracles between
// measurements:
//
//   - rngstream: math/rand never appears outside tests, RNG sources are
//     constructed only at build time, and every mid-query seed derives
//     from the stream-splitting mixer — so per-query streams stay
//     deterministic and mutually independent.
//   - noalloc: functions marked //fairnn:noalloc (the steady-state query
//     path) contain no allocating constructs, transitively; escapes are
//     explicit //fairnn:allocok lines with a reviewable reason.
//   - ctxpoll: unbounded loops in context-taking functions poll
//     cancellation, keeping the SampleContext latency bound honest.
//   - frozenindex: types marked //fairnn:frozen (the immutable
//     post-construction indexes) are never field-assigned outside
//     construction or //fairnn:mutates-annotated methods, and package
//     initializers never read variables that func init assigns.
//   - panicfanout: every goroutine launch recovers or routes through a
//     //fairnn:fanout-safe helper, so a worker panic is a typed error,
//     not a process crash.
//
// The suite runs standalone (go run ./cmd/fairnnlint ./...) or through
// go vet -vettool, and scripts/lint.sh wires both into CI. It is
// standard-library only; the module stays dependency-free.
//
// Memo precedence gotcha: structures that take both a Config/VecConfig
// and an IndependentOptions/VecOptions read the memo discipline from both
// (opts.Memo wins over cfg.Memo). "Wins" is decided by comparison against
// the MemoOptions zero value, so a zeroed opts.Memo does NOT override a
// non-zero cfg.Memo — it defers to it. This is harmless (the zero value
// is the default discipline) but means an explicit
// "opts.Memo = MemoOptions{}" cannot reset a Config-level choice; set the
// desired values explicitly instead. The options builder has the same
// rule between WithMemo and the Memo field of
// WithIndependentOptions/WithVecOptions.
//
// All structures are deterministic given their seed: a fixed sequence of
// single-goroutine queries is reproducible, while concurrent queries are
// deterministic up to scheduling (each query's stream is fixed by its
// arrival index).
package fairnn

import (
	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/vector"
)

// Set is a point for Jaccard similarity: a sorted set of item ids.
type Set = set.Set

// Vec is a point for inner-product similarity: a dense vector (callers
// should normalize to unit length; see vector helpers below).
type Vec = vector.Vec

// QueryStats carries per-query cost counters; pass nil when not needed.
type QueryStats = core.QueryStats

// PanicError is a panic recovered by the library's containment layer
// (worker fan-outs, resilient shard calls), with the panicking
// goroutine's stack captured; recover it from error chains with
// errors.As.
type PanicError = core.PanicError

// BuildError is a construction failure caused by a panic inside a
// parallel-build worker, naming the shard (when sharded) and the point
// or table being processed. It wraps the underlying *PanicError.
type BuildError = core.BuildError

// Params are the classic LSH (K, L) parameters.
type Params = lsh.Params

// SetSampler solves r-NNS for Jaccard similarity (Section 3).
type SetSampler = core.Sampler[set.Set]

// SetIndependent solves r-NNIS for Jaccard similarity (Section 4).
type SetIndependent = core.Independent[set.Set]

// SetStandard is the classic biased LSH structure plus the fair-by-
// postprocessing baselines (Section 2.2 / Section 6).
type SetStandard = core.Standard[set.Set]

// SetExact is the linear-scan ground truth for Jaccard similarity.
type SetExact = core.Exact[set.Set]

// VecIndependent solves α-NNIS for inner-product similarity in nearly-
// linear space (Section 5).
type VecIndependent = core.FilterIndependent

// IndependentOptions tunes SetIndependent; the zero value follows the paper.
type IndependentOptions = core.IndependentOptions

// VecOptions tunes VecIndependent; the zero value follows the paper.
type VecOptions = core.FilterIndependentOptions

// MemoOptions is the per-query memory discipline shared by all samplers:
// the dense→compact memo threshold, the querier-pool retention cap, and
// the per-querier scratch budget (see the package's "Memory budget"
// section). The zero value keeps the dense fast path at small n and
// bounds pooled memory at large n.
type MemoOptions = core.MemoOptions

// MemoBackend selects the per-query memo implementation.
type MemoBackend = core.MemoBackend

// Memo backend choices: MemoAuto picks dense below
// MemoOptions.DenseThreshold points and compact above it; MemoDense and
// MemoCompact force one side.
const (
	MemoAuto    = core.MemoAuto
	MemoDense   = core.MemoDense
	MemoCompact = core.MemoCompact
)

// Config controls LSH parameter selection for the set-based structures.
// The zero value reproduces the paper's experimental setup: 1-bit MinHash,
// K chosen so that at most FarBudget points at similarity FarSim are
// expected to collide, and L chosen for Recall at the query radius.
type Config struct {
	// K and L override automatic parameter selection when both are > 0.
	K, L int
	// FullMinHash uses full 64-bit MinHash bucket keys instead of the
	// 1-bit scheme of Li and König. Full keys expose the clustered-
	// neighborhood correlations studied in Section 6.2.
	FullMinHash bool
	// FarSim is the "far" similarity for ChooseK (default 0.1).
	FarSim float64
	// FarBudget is the expected number of far collisions (default 5).
	FarBudget float64
	// Recall is the target recall at the radius for ChooseL (default 0.99).
	Recall float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Memo is the per-query memory discipline (memo backend threshold,
	// querier retention cap, scratch budget). For structures that also
	// take an IndependentOptions/VecOptions, an explicitly set
	// opts.Memo wins over this field.
	Memo MemoOptions
}

func (c Config) family() lsh.Family[set.Set] {
	if c.FullMinHash {
		return lsh.MinHash{}
	}
	return lsh.OneBitMinHash{}
}

// withDefaults resolves the zero-value fields to their documented
// defaults — the one place the set-side defaults live (NewSetMultiRadius
// reuses the resolved copy for its per-radius parameter choice).
func (c Config) withDefaults() Config {
	c.FarSim = orDefault(c.FarSim, 0.1)
	c.FarBudget = orDefault(c.FarBudget, 5)
	c.Recall = orDefault(c.Recall, 0.99)
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// paramsAt picks (K, L) for one radius: the explicit override when both
// are set, automatic ChooseK/ChooseL otherwise. c must already carry its
// defaults.
func (c Config) paramsAt(n int, radius float64) lsh.Params {
	if c.K > 0 && c.L > 0 {
		return lsh.Params{K: c.K, L: c.L}
	}
	fam := c.family()
	k := lsh.ChooseK[set.Set](fam, n, c.FarSim, c.FarBudget)
	l := lsh.ChooseL[set.Set](fam, k, radius, c.Recall)
	return lsh.Params{K: k, L: l}
}

func (c Config) resolve(n int, radius float64) (lsh.Family[set.Set], lsh.Params, uint64) {
	c = c.withDefaults()
	return c.family(), c.paramsAt(n, radius), c.Seed
}

// orDefault substitutes def for an unset (≤ 0) numeric config field — the
// one shared default-resolution helper behind Config.withDefaults and
// VecConfig.withDefaults.
func orDefault(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

// memoOr resolves the memo precedence: an explicitly set opts-level memo
// wins; otherwise the config-level default applies. Note the zero-value
// gotcha this implies: opts.Memo counts as "explicitly set" only when it
// differs from the MemoOptions zero value, so passing a zeroed
// MemoOptions in opts defers to the Config-level Memo rather than
// overriding it (the two have identical semantics anyway — the zero
// value is the default discipline).
func memoOr(opts, cfg MemoOptions) MemoOptions {
	if opts == (MemoOptions{}) {
		return cfg
	}
	return opts
}

// NewSetSampler indexes the sets for uniform r-near neighbor sampling under
// Jaccard similarity (radius is the minimum similarity r).
func NewSetSampler(sets []Set, radius float64, cfg Config) (*SetSampler, error) {
	fam, params, seed := cfg.resolve(len(sets), radius)
	return core.NewSamplerMemo[set.Set](core.Jaccard(), fam, params, sets, radius, cfg.Memo, seed)
}

// NewSetIndependent indexes the sets for independent uniform r-near
// neighbor sampling (the r-NNIS problem) under Jaccard similarity.
func NewSetIndependent(sets []Set, radius float64, opts IndependentOptions, cfg Config) (*SetIndependent, error) {
	fam, params, seed := cfg.resolve(len(sets), radius)
	opts.Memo = memoOr(opts.Memo, cfg.Memo)
	return core.NewIndependent[set.Set](core.Jaccard(), fam, params, sets, radius, opts, seed)
}

// NewSetStandard indexes the sets with the classic biased LSH structure.
func NewSetStandard(sets []Set, radius float64, cfg Config) (*SetStandard, error) {
	fam, params, seed := cfg.resolve(len(sets), radius)
	return core.NewStandard[set.Set](core.Jaccard(), fam, params, sets, radius, seed)
}

// NewSetExact builds the linear-scan ground truth (radius is the minimum
// Jaccard similarity).
func NewSetExact(sets []Set, radius float64, seed uint64) *SetExact {
	return core.NewExact[set.Set](core.Jaccard(), sets, radius, seed)
}

// NewVecIndependent indexes unit vectors for independent uniform sampling
// from {p : ⟨p, q⟩ ≥ alpha}, with far threshold beta (Section 5).
func NewVecIndependent(points []Vec, alpha, beta float64, opts VecOptions, seed uint64) (*VecIndependent, error) {
	return core.NewFilterIndependent(points, alpha, beta, opts, seed)
}

// Jaccard returns the Jaccard similarity of two sets.
func Jaccard(a, b Set) float64 { return set.Jaccard(a, b) }

// SetFromSlice builds a Set from arbitrary items (sorted, deduplicated).
func SetFromSlice(items []uint32) Set { return set.FromSlice(items) }

// Dot returns the inner product of two vectors.
func Dot(a, b Vec) float64 { return vector.Dot(a, b) }

// Normalize scales v to unit length in place and returns it.
func Normalize(v Vec) Vec { return vector.Normalize(v) }
