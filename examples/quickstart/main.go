// Quickstart: index a small collection of item sets and draw fair
// (uniform) near-neighbor samples, contrasting them with the biased output
// of standard LSH.
//
// Construction uses the functional-options builder — one constructor
// shape for every algorithm — and querying goes through the Sampler
// interface, so swapping constructions is a one-option change.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairnn"
)

func main() {
	// A toy catalogue: users are sets of item ids. Users 0-3 are all close
	// to the query (Jaccard >= 0.5); the rest are unrelated.
	users := []fairnn.Set{
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),          // J = 1.0
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 11}),          // J = 0.82
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5, 6, 7, 12, 13, 14}),        // J = 0.54
		fairnn.SetFromSlice([]uint32{1, 2, 3, 4, 5, 6, 8, 9, 15, 16}),         // J = 0.67
		fairnn.SetFromSlice([]uint32{100, 101, 102, 103, 104, 105, 106, 107}), // far
		fairnn.SetFromSlice([]uint32{200, 201, 202, 203, 204, 205, 206, 207}), // far
	}
	query := users[0]

	// The fair sampler (Section 4 of the paper, the default algorithm):
	// every near neighbor is equally likely, and repeated queries are
	// independent. "Near" means Jaccard similarity at least 0.5.
	fair, err := fairnn.NewSet(users,
		fairnn.Radius(0.5),
		fairnn.Algorithm(fairnn.NNIS),
		fairnn.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	// The classic biased baseline — same builder, one option changed.
	std, err := fairnn.NewSet(users,
		fairnn.Radius(0.5),
		fairnn.Algorithm(fairnn.Standard),
		fairnn.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	biased := std.(*fairnn.SetStandard) // the biased first-hit query is baseline-specific

	const trials = 10000
	fairCounts := map[int32]int{}
	stdCounts := map[int32]int{}
	for i := 0; i < trials; i++ {
		if id, ok := fair.Sample(query, nil); ok {
			fairCounts[id]++
		}
		if id, ok := biased.QueryRandomTableOrder(query, nil); ok {
			stdCounts[id]++
		}
	}

	fmt.Println("user  similarity  P[returned] fair  P[returned] standard LSH")
	for id := int32(0); id < 4; id++ {
		fmt.Printf("%4d  %9.2f  %16.3f  %24.3f\n",
			id,
			fairnn.Jaccard(query, users[id]),
			float64(fairCounts[id])/trials,
			float64(stdCounts[id])/trials,
		)
	}
	fmt.Println()
	fmt.Println("The fair sampler returns every user in the neighborhood with")
	fmt.Println("probability ~1/4; standard LSH is biased toward users most")
	fmt.Println("similar to the query.")
}
