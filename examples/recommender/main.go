// Recommender: fair sampling for diverse recommendations under inner
// product similarity, the motivating application from the paper's
// introduction.
//
// A matrix-factorization recommender scores articles by the inner product
// of user and item embeddings. Always recommending the top-scoring article
// over-exposes a few items; sampling uniformly from the set of items above
// a relevance threshold (the α-ball) gives every sufficiently relevant
// article the same exposure — "equal opportunity" for content.
//
// Run with: go run ./examples/recommender
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"fairnn"
	"fairnn/internal/dataset"
)

func main() {
	// Synthetic matrix-factorization embeddings: 4 topics, 600 articles.
	emb := dataset.NewEmbeddings(dataset.EmbeddingsConfig{
		Items:  600,
		Users:  5,
		Dim:    32,
		Topics: 4,
		Spread: 0.1, // same-topic inner products concentrate near 1/(1+d·Spread²) ≈ 0.76
		Seed:   2024,
	})

	const alpha = 0.70 // relevance threshold: recommendable articles
	const beta = 0.45  // irrelevance threshold for the filter structure

	// The Section 5 filter structure via the options builder: nearly
	// linear space, independent uniform draws from the α-ball.
	rec, err := fairnn.NewVec(emb.Items,
		fairnn.Radius(alpha),
		fairnn.Algorithm(fairnn.Filter),
		fairnn.WithBeta(beta),
		fairnn.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	user := emb.Users[0]
	// Ground truth: which articles are relevant to this user?
	type scored struct {
		id    int32
		score float64
	}
	var relevant []scored
	for id, item := range emb.Items {
		if s := fairnn.Dot(user, item); s >= alpha {
			relevant = append(relevant, scored{int32(id), s})
		}
	}
	sort.Slice(relevant, func(i, j int) bool { return relevant[i].score > relevant[j].score })
	if len(relevant) == 0 {
		log.Fatal("no relevant articles for this user; regenerate embeddings")
	}
	fmt.Printf("user 0 has %d articles with relevance >= %.2f (best %.3f, worst %.3f)\n\n",
		len(relevant), alpha, relevant[0].score, relevant[len(relevant)-1].score)

	// Top-1 recommendation always exposes the same article.
	fmt.Printf("top-1 policy: article %d every single time\n\n", relevant[0].id)

	// Fair policy: sample 12 independent recommendations.
	fmt.Println("fair policy (12 independent draws, uniform over the relevant set):")
	recs := rec.SampleK(user, 12, nil)
	for _, id := range recs {
		fmt.Printf("  article %4d  relevance %.3f  topic %d\n",
			id, fairnn.Dot(user, emb.Items[id]), emb.TopicOf[id])
	}

	// Exposure comparison over many sessions, consumed as one unbounded
	// independent sample stream (the query plan is built once and shared
	// across all draws).
	const sessions = 4000
	exposure := map[int32]int{}
	served := 0
	for id, err := range rec.Samples(context.Background(), user) {
		if err != nil {
			// A draw fails with probability ≤ δ and ends the stream; keep
			// whatever exposure evidence was collected.
			fmt.Printf("(sample stream ended after %d sessions: %v)\n", served, err)
			break
		}
		exposure[id]++
		if served++; served == sessions {
			break
		}
	}
	maxExp, minExp := 0, sessions
	for _, r := range relevant {
		e := exposure[r.id]
		if e > maxExp {
			maxExp = e
		}
		if e < minExp {
			minExp = e
		}
	}
	fmt.Printf("\nover %d sessions, every relevant article was recommended between %d and %d times\n",
		served, minExp, maxExp)
	fmt.Printf("(uniform target = %.0f each; top-1 policy would give one article %d and the rest 0)\n",
		float64(served)/float64(len(relevant)), served)
}
