// Adaptive: the "parameterless" direction from the paper's conclusion —
// rather than fixing the radius r up front, index a grid of radii and let
// each query sample fairly from the *tightest non-empty* neighborhood.
//
// This matters in practice because a good r is data- and query-dependent:
// a mainstream user has thousands of neighbors at Jaccard 0.3, a niche
// user may have none above 0.15. The multi-radius sampler serves both with
// one structure and still returns every member of the chosen ball with
// equal probability.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"fairnn"
	"fairnn/internal/dataset"
)

func main() {
	// A Last.FM-like user-artist workload.
	cfg := dataset.LastFMLike()
	cfg.Users = 800
	cfg.Communities = 16
	users := dataset.Generate(cfg)

	radii := []float64{0.5, 0.35, 0.25, 0.15}
	m, err := fairnn.NewSetMultiRadius(users, radii, fairnn.IndependentOptions{}, fairnn.Config{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Probe a few users: the chosen radius adapts to their neighborhood
	// density, and sampling stays uniform within it.
	queries := dataset.InterestingQueries(users, 0.2, 10, 3, 7)
	if len(queries) == 0 {
		log.Fatal("no dense users found")
	}
	// Also probe a sparse user: the loosest radius that is non-empty wins.
	exact := fairnn.NewSetExact(users, 0, 1)
	sparse := -1
	for u := range users {
		n015 := 0
		for v := range users {
			if v != u && fairnn.Jaccard(users[u], users[v]) >= 0.35 {
				n015++
			}
		}
		if n015 == 0 {
			sparse = u
			break
		}
	}
	_ = exact

	probes := append([]int{}, queries...)
	if sparse >= 0 {
		probes = append(probes, sparse)
	}
	for _, u := range probes {
		id, r, ok := m.SampleTightest(users[u], nil)
		if !ok {
			fmt.Printf("user %4d: no neighbors at any indexed radius\n", u)
			continue
		}
		sim := fairnn.Jaccard(users[u], m.At(0).Point(id))
		fmt.Printf("user %4d: sampled neighbor %4d at similarity %.2f (adaptive radius %.2f)\n",
			u, id, sim, r)
	}

	// A floor on the neighborhood size: "give me a fair sample from a pool
	// of at least 25 comparable users" — the top-ℓ-then-sample recipe for
	// recommendation diversity, without materializing a top-ℓ list.
	u := queries[0]
	id, r, ok := m.SampleAtLeast(users[u], 25, nil)
	if !ok {
		log.Fatal("no radius with 25 neighbors")
	}
	fmt.Printf("\nuser %4d with a 25-neighbor floor: radius %.2f, sampled %4d (similarity %.2f)\n",
		u, r, id, fairnn.Jaccard(users[u], m.At(0).Point(id)))
}
