// Discrimination discovery: use independent range sampling for situation
// testing, the application from Luong, Ruggieri and Turini (KDD 2011)
// discussed in the paper's introduction and related-work sections.
//
// The idea: to decide whether an individual was treated unfairly, compare
// the outcomes of *similar* individuals (legally admissible attributes
// only) across protected groups. Exhaustively enumerating the neighborhood
// is expensive; the paper's data structures return independent uniform
// samples from the neighborhood, giving an unbiased estimate of the
// outcome rates with statistical guarantees — and, crucially, without the
// similarity-proportional bias a standard LSH index would introduce.
//
// Run with: go run ./examples/discrimination
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fairnn"
	"fairnn/internal/rng"
)

// applicant is a loan applicant with a set of categorical feature values
// (encoded as item ids), a protected-group flag and a decision outcome.
type applicant struct {
	features fairnn.Set
	group    int // 0 = majority, 1 = protected
	approved bool
}

func main() {
	applicants := synthesize(3000)

	points := make([]fairnn.Set, len(applicants))
	for i, a := range applicants {
		points[i] = a.features
	}
	const radius = 0.4 // neighborhood: Jaccard similarity of admissible features
	sampler, err := fairnn.NewSet(points,
		fairnn.Radius(radius),
		fairnn.Algorithm(fairnn.NNIS),
		fairnn.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Audit one protected-group applicant who was denied.
	probe := -1
	for i, a := range applicants {
		if a.group == 1 && !a.approved {
			probe = i
			break
		}
	}
	if probe < 0 {
		log.Fatal("no denied protected applicant in synthetic data")
	}

	// Stream independent samples from the probe's neighborhood and compare
	// approval rates across groups among *similar* applicants. The Samples
	// iterator is the natural shape for an online audit: one unbounded
	// independent stream, consumed until the evidence budget (here a count
	// and a deadline) is met — no output buffer, and the deadline also
	// cuts short any pathologically slow rejection loop.
	const samples = 3000
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ap [2]int
	var tot [2]int
	drawn := 0
	for id, err := range sampler.Samples(ctx, points[probe]) {
		if err != nil {
			// Deadline hit or a δ-probability draw failure: the stream is
			// over, so conclude the audit with the evidence collected.
			fmt.Printf("(audit stream ended after %d draws: %v)\n", drawn, err)
			break
		}
		a := applicants[id]
		tot[a.group]++
		if a.approved {
			ap[a.group]++
		}
		if drawn++; drawn == samples {
			break
		}
	}
	if tot[0] == 0 || tot[1] == 0 {
		log.Fatal("neighborhood too small; increase data size")
	}
	rate0 := float64(ap[0]) / float64(tot[0])
	rate1 := float64(ap[1]) / float64(tot[1])
	fmt.Printf("audit of applicant %d (protected group, denied):\n", probe)
	fmt.Printf("  sampled %d similar applicants (independent uniform draws)\n", tot[0]+tot[1])
	fmt.Printf("  approval rate among similar majority applicants:  %.2f (n=%d)\n", rate0, tot[0])
	fmt.Printf("  approval rate among similar protected applicants: %.2f (n=%d)\n", rate1, tot[1])
	fmt.Printf("  difference: %+.2f — ", rate0-rate1)
	if rate0-rate1 > 0.1 {
		fmt.Println("substantial gap; flag for review (situation testing)")
	} else {
		fmt.Println("no substantial gap at this threshold")
	}
}

// synthesize builds a population where, within the same qualification
// profile, protected-group applicants are approved less often — the signal
// the audit is supposed to find.
//
//fairnn:rng-source dataset synthesis with a fixed demo seed, not a query path
func synthesize(n int) []applicant {
	r := rng.New(99)
	out := make([]applicant, n)
	for i := range out {
		// 12 admissible features from a pool of 20 per qualification tier,
		// so same-tier applicants form a dense Jaccard neighborhood.
		tier := r.Intn(4)
		items := make([]uint32, 0, 12)
		base := uint32(tier * 20)
		for len(items) < 12 {
			items = append(items, base+uint32(r.Intn(20)))
		}
		group := 0
		if r.Float64() < 0.3 {
			group = 1
		}
		// Approval depends on the tier... and unfairly on the group.
		pApprove := 0.25 + 0.18*float64(tier)
		if group == 1 {
			pApprove -= 0.15
		}
		out[i] = applicant{
			features: fairnn.SetFromSlice(items),
			group:    group,
			approved: r.Float64() < pApprove,
		}
	}
	return out
}
