// Adversarial: reproduce the paper's Section 6.2 demonstration that the
// *approximate neighborhood* relaxation of fair NN search can be exploited
// to suppress a specific user.
//
// The instance plants a "victim" set Y inside a tight cluster M of nearly
// identical sets. Under approximate-neighborhood sampling, whenever Y
// reaches the candidate buckets it is accompanied by hundreds of cluster
// members, so its selection probability collapses — while the isolated set
// X (which is *less* similar to the query than Y) is returned orders of
// magnitude more often. Exact-neighborhood sampling (this library's
// default) is immune: sampling is uniform over the true r-ball.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"fairnn"
	"fairnn/internal/dataset"
)

func main() {
	inst := dataset.Adversarial()
	fmt.Printf("instance: %d sets over universe {1..30}\n", len(inst.Points))
	fmt.Printf("  X = {16..30}   similarity to query: %.2f (isolated)\n", fairnn.Jaccard(inst.Query, inst.Points[inst.X]))
	fmt.Printf("  Y = {1..18}    similarity to query: %.2f (inside a cluster of %d near-duplicates)\n",
		fairnn.Jaccard(inst.Query, inst.Points[inst.Y]), len(inst.Points)-int(inst.MStart))
	fmt.Printf("  Z = {1..27}    similarity to query: %.2f (the only 0.9-near point)\n\n", fairnn.Jaccard(inst.Query, inst.Points[inst.Z]))

	const r = 0.9
	const cr = 0.5
	const builds = 400
	cfg := fairnn.Config{FullMinHash: true}

	counts := map[int32]int{}
	total := 0
	for b := 0; b < builds; b++ {
		cfg.Seed = uint64(b + 1)
		std, err := fairnn.NewSetStandard(inst.Points, r, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for rep := 0; rep < 8; rep++ {
			if id, ok := std.ApproxFairSample(inst.Query, cr, nil); ok {
				counts[id]++
				total++
			}
		}
	}
	pX := float64(counts[inst.X]) / float64(total)
	pY := float64(counts[inst.Y]) / float64(total)
	pZ := float64(counts[inst.Z]) / float64(total)
	fmt.Println("approximate-neighborhood sampling (threshold cr = 0.5):")
	fmt.Printf("  P[X] = %.4f   P[Y] = %.4f   P[Z] = %.4f\n", pX, pY, pZ)
	if pY > 0 {
		fmt.Printf("  X is %.0fx more likely than Y despite being LESS similar to the query\n\n", pX/pY)
	} else {
		fmt.Printf("  Y was never returned in %d draws; X clearly dominates\n\n", total)
	}

	// The exact-neighborhood fair sampler has no such failure mode: the
	// 0.9-ball contains only Z, and Z is returned every time.
	fair, err := fairnn.NewSet(inst.Points, fairnn.Radius(r), fairnn.Algorithm(fairnn.NNIS), fairnn.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	zHits, fairTotal := 0, 0
	for i := 0; i < 500; i++ {
		if id, ok := fair.Sample(inst.Query, nil); ok {
			fairTotal++
			if id == inst.Z {
				zHits++
			}
		}
	}
	fmt.Println("exact-neighborhood fair sampling (threshold r = 0.9):")
	fmt.Printf("  %d/%d draws returned Z — the entire true ball, sampled uniformly\n", zHits, fairTotal)
}
