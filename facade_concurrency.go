package fairnn

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fairnn/internal/core"
)

// This file is the concurrency surface of the façade. Since the
// single-pass signature engine rework, every sampler's query methods are
// safe for concurrent use (SetSampler.SampleRepeated, which perturbs
// ranks, is the one exception), so callers can simply share one structure
// across goroutines. The helpers below add a convenient fan-out for bulk
// query workloads.

// QuerySampler is the single-sample query interface shared by the fair
// samplers (SetSampler, SetIndependent, VecIndependent, SetExact, ...).
type QuerySampler[P any] interface {
	Sample(q P, st *QueryStats) (id int32, ok bool)
}

// panicSlot collects the first panic recovered from a batch worker, so
// the fan-out drains (no goroutine leaked mid-batch, no WaitGroup
// wedged) and the panic resurfaces on the caller's goroutine as a
// *PanicError with the worker's stack — catchable by an ordinary
// recover, instead of an unrecoverable crash on a goroutine the caller
// never sees.
type panicSlot struct{ p atomic.Pointer[PanicError] }

// capture is the deferred worker-side half: call it directly via defer.
func (s *panicSlot) capture() {
	if r := recover(); r != nil {
		pe, ok := r.(*PanicError)
		if !ok {
			pe = core.NewPanicError(r)
		}
		s.p.CompareAndSwap(nil, pe)
	}
}

// rethrow is the caller-side half, after the WaitGroup drains.
func (s *panicSlot) rethrow() {
	if pe := s.p.Load(); pe != nil {
		panic(pe)
	}
}

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	// ID is the sampled point id (valid only when OK).
	ID int32
	// OK reports whether a near point was found.
	OK bool
}

// SampleBatch answers all queries against one shared sampler, fanning the
// work out over min(workers, len(queries)) goroutines; workers <= 0 uses
// GOMAXPROCS. Results are positionally aligned with queries. The sampler's
// per-query randomness streams keep the outputs independent regardless of
// how the queries interleave across goroutines.
func SampleBatch[P any](s QuerySampler[P], queries []P, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		for i, q := range queries {
			id, ok := s.Sample(q, nil)
			out[i] = BatchResult{ID: id, OK: ok}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var ps panicSlot
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ps.capture()
			for ps.p.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				id, ok := s.Sample(queries[i], nil)
				out[i] = BatchResult{ID: id, OK: ok}
			}
		}()
	}
	wg.Wait()
	ps.rethrow()
	return out
}

// ContextSampler is the context-aware single-sample interface (a subset
// of Sampler, satisfied by every structure in the library).
type ContextSampler[P any] interface {
	SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error)
}

// SampleBatchContext is SampleBatch under a context: every worker runs
// SampleContext, so cancellation propagates into the per-query rejection
// loops, and workers stop picking up new queries once ctx is done.
// Results stay positionally aligned with queries; queries that found no
// near point (ErrNoSample) and queries abandoned to an error report
// OK=false. The error is ctx.Err() when the batch was cut short by
// cancellation, or the first foreign error a custom ContextSampler
// returned (which also aborts the batch) — nil only when every query ran
// to completion.
func SampleBatchContext[P any](ctx context.Context, s ContextSampler[P], queries []P, workers int) ([]BatchResult, error) {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var abort atomic.Bool
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		abort.Store(true)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A worker panic (poisoned query point, custom sampler bug)
			// aborts the batch and surfaces as the batch error — the
			// context variant has an error channel, so no re-panic.
			defer func() {
				if r := recover(); r != nil {
					pe, ok := r.(*PanicError)
					if !ok {
						pe = core.NewPanicError(r)
					}
					fail(pe)
				}
			}()
			for ctx.Err() == nil && !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				id, err := s.SampleContext(ctx, queries[i], nil)
				switch {
				case err == nil:
					out[i] = BatchResult{ID: id, OK: true}
				case errors.Is(err, ErrNoSample):
					// Leave the zero BatchResult: ran, found nothing.
				case ctx.Err() != nil:
					return // the batch context is done; ctx.Err() reports it
				default:
					// A custom ContextSampler failed for its own reason —
					// including a context error of its own (e.g. a per-query
					// timeout) while the batch context is still live: abort
					// the batch and surface the error instead of returning a
					// silently incomplete result set.
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, firstErr
}

// KSampler is the k-sample query interface (with- or without-replacement
// depending on the structure).
type KSampler[P any] interface {
	SampleK(q P, k int, st *QueryStats) []int32
}

// SampleKBatch draws k samples per query against one shared sampler,
// fanned out like SampleBatch. Result i holds the samples for queries[i].
func SampleKBatch[P any](s KSampler[P], queries []P, k, workers int) [][]int32 {
	out, _ := sampleKBatch(context.Background(), s, queries, k, workers)
	return out
}

// SampleKBatchContext is SampleKBatch under a context: cancellation
// propagates to the workers, which stop picking up queries once ctx is
// done (already-started SampleK calls run to completion — per-draw
// cancellation needs SampleContext/Samples). Result slots for abandoned
// queries stay nil; the error is ctx.Err() when the batch was cut short.
func SampleKBatchContext[P any](ctx context.Context, s KSampler[P], queries []P, k, workers int) ([][]int32, error) {
	return sampleKBatch(ctx, s, queries, k, workers)
}

func sampleKBatch[P any](ctx context.Context, s KSampler[P], queries []P, k, workers int) ([][]int32, error) {
	out := make([][]int32, len(queries))
	if len(queries) == 0 {
		return out, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var ps panicSlot
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ps.capture()
			for ctx.Err() == nil && ps.p.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = s.SampleK(queries[i], k, nil)
			}
		}()
	}
	wg.Wait()
	ps.rethrow()
	return out, ctx.Err()
}
