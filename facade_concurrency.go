package fairnn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the concurrency surface of the façade. Since the
// single-pass signature engine rework, every sampler's query methods are
// safe for concurrent use (SetSampler.SampleRepeated, which perturbs
// ranks, is the one exception), so callers can simply share one structure
// across goroutines. The helpers below add a convenient fan-out for bulk
// query workloads.

// QuerySampler is the single-sample query interface shared by the fair
// samplers (SetSampler, SetIndependent, VecIndependent, SetExact, ...).
type QuerySampler[P any] interface {
	Sample(q P, st *QueryStats) (id int32, ok bool)
}

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	// ID is the sampled point id (valid only when OK).
	ID int32
	// OK reports whether a near point was found.
	OK bool
}

// SampleBatch answers all queries against one shared sampler, fanning the
// work out over min(workers, len(queries)) goroutines; workers <= 0 uses
// GOMAXPROCS. Results are positionally aligned with queries. The sampler's
// per-query randomness streams keep the outputs independent regardless of
// how the queries interleave across goroutines.
func SampleBatch[P any](s QuerySampler[P], queries []P, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		for i, q := range queries {
			id, ok := s.Sample(q, nil)
			out[i] = BatchResult{ID: id, OK: ok}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				id, ok := s.Sample(queries[i], nil)
				out[i] = BatchResult{ID: id, OK: ok}
			}
		}()
	}
	wg.Wait()
	return out
}

// KSampler is the k-sample query interface (with- or without-replacement
// depending on the structure).
type KSampler[P any] interface {
	SampleK(q P, k int, st *QueryStats) []int32
}

// SampleKBatch draws k samples per query against one shared sampler,
// fanned out like SampleBatch. Result i holds the samples for queries[i].
func SampleKBatch[P any](s KSampler[P], queries []P, k, workers int) [][]int32 {
	out := make([][]int32, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = s.SampleK(queries[i], k, nil)
			}
		}()
	}
	wg.Wait()
	return out
}
