package fairnn_test

import (
	"testing"

	"fairnn"
	"fairnn/internal/dataset"
)

// This file pins the observability contract at the façade: an attached
// telemetry registry changes cost only, never output (same-seed sample
// streams stay bit-identical to an unobserved twin), and a fully
// enabled registry keeps the Sample hot path allocation-free.

// drawStats pulls n Sample ids with a reused QueryStats for stream +
// stats comparison.
func drawStats[P any](s fairnn.Sampler[P], q P, n int) ([]int32, fairnn.QueryStats) {
	out := make([]int32, 0, n)
	var st fairnn.QueryStats
	for i := 0; i < n; i++ {
		if id, ok := s.Sample(q, &st); ok {
			out = append(out, id)
		} else {
			out = append(out, -1)
		}
	}
	return out, st
}

// TestObserveBitEquivalence builds twin samplers — one bare, one with a
// live registry (and, where sharded, trace sampling) — over every
// instrumented construction and memo backend, and requires identical
// sample streams and per-query counters. The registry must also have
// actually recorded draws, so the test cannot pass with telemetry
// silently disconnected.
func TestObserveBitEquivalence(t *testing.T) {
	sets, q := smallSets()
	w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 400, Dim: 24, Alpha: 0.8, Beta: 0.4, BallSize: 12, MidSize: 40, Seed: 9,
	})
	const draws = 200

	check := func(t *testing.T, got, want []int32, gotSt, wantSt fairnn.QueryStats) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("draw %d diverged: observed %d, bare %d", i, got[i], want[i])
			}
		}
		if gotSt.Rounds != wantSt.Rounds || gotSt.ScoreEvals != wantSt.ScoreEvals ||
			gotSt.ScoreCacheHits != wantSt.ScoreCacheHits || gotSt.BatchScored != wantSt.BatchScored {
			t.Fatalf("final QueryStats diverged: observed {rounds=%d evals=%d hits=%d batch=%d}, bare {rounds=%d evals=%d hits=%d batch=%d}",
				gotSt.Rounds, gotSt.ScoreEvals, gotSt.ScoreCacheHits, gotSt.BatchScored,
				wantSt.Rounds, wantSt.ScoreEvals, wantSt.ScoreCacheHits, wantSt.BatchScored)
		}
	}
	recorded := func(t *testing.T, reg *fairnn.Registry, layer string) {
		t.Helper()
		c := reg.Counter("fairnn_draws_total", fairnn.MetricLabels("layer", layer), "")
		if c.Value() == 0 {
			t.Fatalf("registry recorded no draws for layer %q", layer)
		}
	}

	for _, backend := range []struct {
		name string
		memo fairnn.MemoOptions
	}{
		{"dense", fairnn.MemoOptions{Backend: fairnn.MemoDense}},
		{"compact", fairnn.MemoOptions{Backend: fairnn.MemoCompact}},
	} {
		t.Run("set-nnis-"+backend.name, func(t *testing.T) {
			bare, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(23), fairnn.WithMemo(backend.memo))
			if err != nil {
				t.Fatal(err)
			}
			reg := fairnn.NewRegistry()
			obsd, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(23), fairnn.WithMemo(backend.memo), fairnn.Observe(reg))
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt := drawStats[fairnn.Set](bare, q, draws)
			got, gotSt := drawStats[fairnn.Set](obsd, q, draws)
			check(t, got, want, gotSt, wantSt)
			recorded(t, reg, "core")
		})
		t.Run("vec-filter-"+backend.name, func(t *testing.T) {
			bare, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.Algorithm(fairnn.Filter),
				fairnn.WithBeta(0.4), fairnn.WithSeed(47), fairnn.WithMemo(backend.memo))
			if err != nil {
				t.Fatal(err)
			}
			reg := fairnn.NewRegistry()
			obsd, err := fairnn.NewVec(w.Points, fairnn.Radius(0.8), fairnn.Algorithm(fairnn.Filter),
				fairnn.WithBeta(0.4), fairnn.WithSeed(47), fairnn.WithMemo(backend.memo), fairnn.Observe(reg))
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt := drawStats[fairnn.Vec](bare, w.Query, draws)
			got, gotSt := drawStats[fairnn.Vec](obsd, w.Query, draws)
			check(t, got, want, gotSt, wantSt)
			recorded(t, reg, "filter")
		})
	}

	for _, S := range []int{1, 4} {
		t.Run(map[int]string{1: "sharded-1", 4: "sharded-4"}[S], func(t *testing.T) {
			bare, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(31), fairnn.WithShards(S))
			if err != nil {
				t.Fatal(err)
			}
			reg := fairnn.NewRegistry()
			obsd, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(31), fairnn.WithShards(S),
				fairnn.Observe(reg), fairnn.WithTraceSampling(3))
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt := drawStats[fairnn.Set](bare, q, draws)
			got, gotSt := drawStats[fairnn.Set](obsd, q, draws)
			check(t, got, want, gotSt, wantSt)
			recorded(t, reg, "shard")
			trc := reg.Tracer()
			if trc == nil {
				t.Fatal("WithTraceSampling left the registry without a tracer")
			}
			if trc.Sampled() == 0 {
				t.Fatalf("no query traced across %d draws at everyN=3", draws)
			}
			if len(trc.Recent()) == 0 {
				t.Fatal("trace ring is empty despite sampled queries")
			}
		})
	}
}

// TestObserveSampleZeroAlloc is the cost half of the contract: with a
// fully enabled metrics registry attached, the steady-state Sample path
// still performs zero heap allocations — instruments are preallocated at
// registration and recording is lock-free.
func TestObserveSampleZeroAlloc(t *testing.T) {
	sets, q := smallSets()
	var st fairnn.QueryStats

	reg := fairnn.NewRegistry()
	s, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(23), fairnn.Observe(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // warm the pooled querier
		s.Sample(q, &st)
	}
	if n := testing.AllocsPerRun(200, func() { s.Sample(q, &st) }); n != 0 {
		t.Errorf("unsharded observed Sample allocates %v/op, want 0", n)
	}

	sreg := fairnn.NewRegistry()
	sh, err := fairnn.NewSet(sets, fairnn.Radius(0.6), fairnn.WithSeed(31), fairnn.WithShards(4), fairnn.Observe(sreg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		sh.Sample(q, &st)
	}
	if n := testing.AllocsPerRun(200, func() { sh.Sample(q, &st) }); n != 0 {
		t.Errorf("sharded observed Sample allocates %v/op, want 0", n)
	}
	if c := sreg.Counter("fairnn_draws_total", fairnn.MetricLabels("layer", "shard"), ""); c.Value() == 0 {
		t.Fatal("alloc oracle ran with an idle registry")
	}
}
