package fairnn

import (
	"context"
	"iter"

	"fairnn/internal/core"
)

// This file is the polymorphic query contract of the library. Every
// public sampler — all Section 3/4/5 structures, the baselines, and the
// extensions — answers the same question (draw samples from B_S(q, r)),
// so they all satisfy one interface. Middleware (metrics, tracing,
// sharded fan-out, reservoir consumers) is written once against
// Sampler[P] and works with any construction.

// ErrNoSample is returned by SampleContext (and yielded once by Samples)
// when a query finds no near point: the recalled ball is empty, or a
// rejection budget was exhausted (a probability-≤δ event under the
// paper's constants). It corresponds exactly to ok=false from Sample.
var ErrNoSample = core.ErrNoSample

// Sampler is the uniform near-neighbor sampling contract shared by every
// structure in the library (P is the point type: Set or Vec).
//
// The methods split into three groups:
//
//   - Plain queries: Sample draws one id from B_S(q, r) (ok=false when
//     nothing near is recalled); SampleK draws k — with or without
//     replacement depending on the structure, see each type's docs — and
//     SampleKInto is its zero-allocation variant writing into dst.
//   - Context-aware queries: SampleContext is Sample under a context —
//     the Section 4/5 rejection loops poll ctx.Err() every few dozen
//     rounds, so a query spinning under deadline pressure returns
//     context.DeadlineExceeded (or context.Canceled) within one check
//     interval; a failed but uncanceled query returns ErrNoSample.
//     Samples returns an unbounded sample stream (Go 1.23 iterator) with
//     no output buffer — the natural shape for online audits and
//     reservoir consumers; the stream ends when the consumer breaks, ctx
//     is done, or a draw fails.
//   - Introspection: Size is the number of indexed points and
//     RetainedScratchBytes the pooled per-query scratch the structure
//     currently pins between queries (0 for structures that retain
//     none).
//
// Whether outputs are independent across draws depends on the structure
// (SetIndependent, VecSamplerIndependent, VecIndependent, SetWeighted,
// SetExact and SetStandard's naive fair baseline are; SetSampler and
// SetDynamic are deterministic per build), exactly as with Sample.
// All implementations are safe for concurrent use on the query paths
// (SetDynamic streams must not overlap Insert/Delete).
type Sampler[P any] interface {
	Sample(q P, st *QueryStats) (id int32, ok bool)
	SampleK(q P, k int, st *QueryStats) []int32
	SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32
	SampleContext(ctx context.Context, q P, st *QueryStats) (id int32, err error)
	Samples(ctx context.Context, q P) iter.Seq2[int32, error]
	Size() int
	RetainedScratchBytes() int
}

// Compile-time conformance: every public sampler type satisfies the
// Sampler interface.
var (
	_ Sampler[Set] = (*SetSampler)(nil)
	_ Sampler[Set] = (*SetIndependent)(nil)
	_ Sampler[Set] = (*SetStandard)(nil)
	_ Sampler[Set] = (*SetExact)(nil)
	_ Sampler[Set] = (*SetWeighted)(nil)
	_ Sampler[Set] = (*SetMultiRadius)(nil)
	_ Sampler[Set] = (*SetDynamic)(nil)
	_ Sampler[Set] = (*Sharded[Set])(nil)
	_ Sampler[Vec] = (*VecSampler)(nil)
	_ Sampler[Vec] = (*VecSamplerIndependent)(nil)
	_ Sampler[Vec] = (*VecIndependent)(nil)
	_ Sampler[Vec] = (*VecExact)(nil)
	_ Sampler[Vec] = (*Sharded[Vec])(nil)
)
