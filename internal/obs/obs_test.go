package obs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryInvisible is the disabled-telemetry contract in one
// place: a nil registry hands out nil instruments, and every recorder
// and reader on those nil instruments is a safe no-op.
func TestNilRegistryInvisible(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", "")
	g := r.Gauge("x", "", "")
	h := r.Histogram("x_seconds", "", "")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned live instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(3)
	c.AddInt(-1)
	g.Set(7)
	g.Inc()
	g.Dec()
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Snapshot() != nil {
		t.Fatal("nil instruments reported nonzero state")
	}
	if r.EnableTracing(4, 8) != nil || r.Tracer() != nil {
		t.Fatal("nil registry produced a tracer")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var trc *Tracer
	if trc.ShouldSample(1) || trc.Start(1) != nil || trc.Sampled() != 0 || trc.Recent() != nil {
		t.Fatal("nil tracer is not inert")
	}
	trc.Publish(nil)
	var tr *Trace
	sp := tr.Begin("op", 0)
	if sp != nil {
		t.Fatal("nil trace opened a span")
	}
	sp.Done(nil)
	sp.Retry()
	sp.Note("x")
	if sp.Child("op", 0) != nil {
		t.Fatal("nil span produced a child")
	}
}

// TestRegistryGetOrCreate pins the registration semantics: same (name,
// labels) returns the identical instrument; different labels under one
// name are distinct; re-registering a name as a different kind panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", Labels("shard", "0"), "help")
	b := r.Counter("ops_total", Labels("shard", "0"), "")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if c := r.Counter("ops_total", Labels("shard", "1"), ""); c == a {
		t.Fatal("distinct labels shared one counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("aliased counter sees %d, want 2", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("ops_total", "", "")
}

// TestEnableTracingIdempotent: the first enable wins; later calls reuse
// the same tracer so layers can enable independently.
func TestEnableTracingIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Tracer() != nil {
		t.Fatal("fresh registry already has a tracer")
	}
	a := r.EnableTracing(4, 8)
	b := r.EnableTracing(9, 2)
	if a == nil || a != b || r.Tracer() != a {
		t.Fatalf("EnableTracing not idempotent: %p %p %p", a, b, r.Tracer())
	}
	if r.EnableTracing(0, 8) != nil {
		t.Fatal("everyN=0 returned a tracer")
	}
}

// TestHistogramQuantile checks the interpolated quantiles against a
// point mass and a two-bucket split: the answer must land inside the
// observed value's bucket, and the median of an even split must sit in
// the lower mass.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond) // 1000ns
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		// 1000ns lands in a √2-spaced bucket (707, 1000]; interpolation
		// may return anything within it, including the lower edge at q=0.
		if got < 707 || got > 1001 {
			t.Fatalf("q=%v: got %dns, want within the bucket containing 1000ns", q, got)
		}
	}
	if h.Count() != 100 || h.Sum() != 100_000 {
		t.Fatalf("count=%d sum=%d, want 100 / 100000", h.Count(), h.Sum())
	}

	split := NewHistogram()
	for i := 0; i < 500; i++ {
		split.Observe(time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		split.Observe(time.Millisecond)
	}
	if p10 := split.Quantile(0.10); p10 > 1001 {
		t.Fatalf("p10 of a 1µs/1ms split is %dns, want ≈1µs", p10)
	}
	if p90 := split.Quantile(0.90); p90 < 500_000 {
		t.Fatalf("p90 of a 1µs/1ms split is %dns, want ≈1ms", p90)
	}

	// Out-of-range inputs clamp rather than misbehave.
	if split.Quantile(-1) != split.Quantile(0) || split.Quantile(2) != split.Quantile(1) {
		t.Fatal("quantile arguments did not clamp to [0, 1]")
	}
}

// TestHistogramOverflowSnapshot: an observation beyond the last bound
// lands in the overflow bucket, marked UpperNanos == 0 in snapshots.
func TestHistogramOverflowSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Microsecond)
	h.Observe(100 * time.Second) // past the ≈47s top bound
	h.Observe(-time.Second)      // clamps to 0, first bucket
	snap := h.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d buckets, want 3: %+v", len(snap), snap)
	}
	if snap[len(snap)-1].UpperNanos != 0 || snap[len(snap)-1].Count != 1 {
		t.Fatalf("overflow bucket not marked: %+v", snap[len(snap)-1])
	}
	for _, b := range snap[:len(snap)-1] {
		if b.UpperNanos <= 0 {
			t.Fatalf("finite bucket with non-positive bound: %+v", b)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// run under -race this is the lock-free recording proof — and checks
// no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: count=%d, want %d", h.Count(), workers*per)
	}
}

// TestRecordPathZeroAlloc is the preallocation contract at the
// instrument level: recording into registered instruments allocates
// nothing.
func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", Labels("shard", "0"), "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h_seconds", "", "")
	trc := r.EnableTracing(1<<20, 4) // enabled but effectively never firing
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(time.Microsecond)
		if trc.ShouldSample(42) {
			t.Fatal("1-in-2^20 gate fired on a fixed non-zero-hash seed")
		}
	}); n != 0 {
		t.Fatalf("record path allocates %v/op, want 0", n)
	}
}

// TestWritePrometheus checks the text exposition: HELP/TYPE headers,
// label rendering, cumulative le-buckets ending at +Inf == _count, and
// seconds units on histogram bounds.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("fairnn_ops_total", Labels("op", "arm", "shard", "3"), "ops served").Add(7)
	r.Gauge("fairnn_active", "", "live things").Set(-2)
	h := r.Histogram("fairnn_lat_seconds", Labels("shard", "1"), "latency")
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	h.Observe(100 * time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP fairnn_ops_total ops served",
		"# TYPE fairnn_ops_total counter",
		`fairnn_ops_total{op="arm",shard="3"} 7`,
		"# TYPE fairnn_active gauge",
		"fairnn_active -2",
		"# TYPE fairnn_lat_seconds histogram",
		`fairnn_lat_seconds_bucket{shard="1",le="+Inf"} 3`,
		`fairnn_lat_seconds_count{shard="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative: the two 1µs observations appear
	// in every bucket from 1µs up, so some finite bucket already reads 2.
	if !strings.Contains(out, `fairnn_lat_seconds_bucket{shard="1",le="1.`) {
		t.Errorf("no finite bucket bound around 1µs in seconds units:\n%s", out)
	}

	// The handler serves the same bytes with the Prometheus content type.
	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	if rec.Body.String() != out {
		t.Error("handler body differs from WritePrometheus output")
	}
}

// TestLabels: keys sort so logically equal sets share a registry slot,
// and an odd argument count is a programming error.
func TestLabels(t *testing.T) {
	if got := Labels("shard", "3", "op", "arm"); got != `op="arm",shard="3"` {
		t.Fatalf("Labels = %q", got)
	}
	if Labels("a", "1") != `a="1"` || Labels() != "" {
		t.Fatal("single/empty label rendering wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd key/value count did not panic")
		}
	}()
	Labels("dangling")
}

// TestTracerDeterministicSampling: the gate is a pure function of the
// seed, it fires ≈1-in-N over a seed sweep, and everyN=1 traces
// everything.
func TestTracerDeterministicSampling(t *testing.T) {
	trc := NewTracer(8, 4)
	const seeds = 8000
	hits := 0
	for s := uint64(0); s < seeds; s++ {
		first := trc.ShouldSample(s)
		if first != trc.ShouldSample(s) {
			t.Fatalf("seed %d: gate is not deterministic", s)
		}
		if first {
			hits++
		}
	}
	if hits < seeds/16 || hits > seeds/4 {
		t.Fatalf("1-in-8 gate fired %d/%d times", hits, seeds)
	}
	all := NewTracer(1, 2)
	for s := uint64(0); s < 64; s++ {
		if !all.ShouldSample(s) {
			t.Fatalf("everyN=1 skipped seed %d", s)
		}
	}
}

// TestTracerRing: the ring retains the last capacity traces oldest
// first, and Sampled counts every Start.
func TestTracerRing(t *testing.T) {
	trc := NewTracer(1, 3)
	for s := uint64(1); s <= 5; s++ {
		tr := trc.Start(s)
		sp := tr.Begin("arm", int(s))
		sp.Retry()
		sp.Note("probe")
		sp.Child("segment", int(s)).Done(nil)
		sp.Done(errors.New("boom"))
		trc.Publish(tr)
	}
	if trc.Sampled() != 5 {
		t.Fatalf("Sampled = %d, want 5", trc.Sampled())
	}
	recent := trc.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(recent))
	}
	for i, tr := range recent {
		if want := uint64(3 + i); tr.Seed != want {
			t.Fatalf("ring[%d].Seed = %d, want %d (oldest first)", i, tr.Seed, want)
		}
		if len(tr.Spans) != 1 {
			t.Fatalf("ring[%d] has %d root spans, want 1", i, len(tr.Spans))
		}
		sp := tr.Spans[0]
		if sp.Op != "arm" || sp.Attempts != 1 || sp.Err != "boom" ||
			len(sp.Notes) != 1 || len(sp.Children) != 1 || sp.Children[0].Op != "segment" {
			t.Fatalf("ring[%d] span mangled: %+v", i, sp)
		}
	}
}
