package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"fairnn/internal/rng"
)

// saltTrace keys the trace-sampling substream. The 1-in-N decision for
// a query is rng.Mix64(querySeed ^ saltTrace) % N — a pure function of
// the query's seed through a derived substream, exactly the
// backoff-jitter discipline: the query's own sample stream is never
// consulted, so tracing on/off cannot move a single draw. (The
// rngstream analyzer enforces this shape statically: trace-sampling
// gates must never be fed from a .rng stream field.)
const saltTrace = 0x712a_ce5e

// Tracer samples roughly one query in everyN for structured tracing and
// retains the most recent traces in a fixed ring. A nil *Tracer never
// samples. Sampling decisions are deterministic per query seed, so a
// rerun of the same seeded workload traces the same queries.
type Tracer struct {
	everyN  uint64
	sampled atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
	n    int
}

// NewTracer builds a tracer sampling 1-in-everyN queries with a ring of
// capacity retained traces (capacity < 1 defaults to 16).
func NewTracer(everyN, capacity int) *Tracer {
	if everyN < 1 {
		everyN = 1
	}
	if capacity < 1 {
		capacity = 16
	}
	return &Tracer{everyN: uint64(everyN), ring: make([]*Trace, capacity)}
}

// ShouldSample reports whether the query with the given per-query seed
// is traced. Pure, zero-alloc, draws no randomness from any stream.
//
//fairnn:noalloc
func (t *Tracer) ShouldSample(querySeed uint64) bool {
	if t == nil {
		return false
	}
	return rng.Mix64(querySeed^saltTrace)%t.everyN == 0
}

// Start begins a trace for a sampled query. Allocates — call only after
// ShouldSample said yes (the 1-in-N path).
func (t *Tracer) Start(querySeed uint64) *Trace {
	if t == nil {
		return nil
	}
	t.sampled.Add(1)
	return &Trace{Seed: querySeed, start: time.Now()}
}

// Publish retires a finished trace into the ring.
func (t *Tracer) Publish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Wall = time.Since(tr.start)
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Sampled returns how many queries have been traced.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Recent returns the retained traces, oldest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.next-t.n+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Trace is one sampled query's span tree. Span mutation goes through a
// trace-wide mutex, so spans may be opened and closed from the parallel
// arm fan-out workers.
type Trace struct {
	// Seed is the query's per-query stream seed (the trace identity).
	Seed uint64
	// Wall is the whole query's wall time, stamped by Publish.
	Wall time.Duration
	// Spans are the root-level spans in creation order.
	Spans []*Span

	start time.Time
	mu    sync.Mutex
}

// Span is one timed operation in a trace: a backend op (arm / segment /
// pick), a rejection round, or any annotated stage, with child spans
// nested under it.
type Span struct {
	// Op names the operation ("arm", "round", "segment", "pick", ...).
	Op string
	// Shard is the shard index the op ran against, -1 when not
	// shard-scoped.
	Shard int
	// Start and End are offsets from the trace start.
	Start, End time.Duration
	// Attempts counts resilient-call attempts beyond the first (retry
	// annotation).
	Attempts int
	// Err is the final error of a failed op, "" on success.
	Err string
	// Notes carries event annotations (degraded, fault, backoff, ...).
	Notes []string
	// Children are nested spans in creation order.
	Children []*Span

	tr *Trace
}

// Begin opens a root-level span. Nil-safe: returns nil on a nil trace.
func (tr *Trace) Begin(op string, shard int) *Span {
	if tr == nil {
		return nil
	}
	sp := &Span{Op: op, Shard: shard, Start: time.Since(tr.start), tr: tr}
	tr.mu.Lock()
	tr.Spans = append(tr.Spans, sp)
	tr.mu.Unlock()
	return sp
}

// Child opens a span nested under sp. Nil-safe.
func (sp *Span) Child(op string, shard int) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{Op: op, Shard: shard, Start: time.Since(sp.tr.start), tr: sp.tr}
	sp.tr.mu.Lock()
	sp.Children = append(sp.Children, c)
	sp.tr.mu.Unlock()
	return c
}

// Done closes the span, recording err (nil for success). Nil-safe.
func (sp *Span) Done(err error) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.End = time.Since(sp.tr.start)
	if err != nil {
		sp.Err = err.Error()
	}
	sp.tr.mu.Unlock()
}

// Retry records one additional call attempt. Nil-safe.
func (sp *Span) Retry() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.Attempts++
	sp.tr.mu.Unlock()
}

// Note appends an event annotation. Nil-safe.
func (sp *Span) Note(s string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.Notes = append(sp.Notes, s)
	sp.tr.mu.Unlock()
}
