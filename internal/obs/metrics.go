package obs

import "time"

// QueryMetrics is the shared instrument bundle of a sampler's rejection
// loop — the Section 4 and Section 5 draw loops and the sharded union
// draw all record the same vocabulary, distinguished by the layer
// label. Every field tolerates nil (the whole bundle is nil when
// telemetry is off), and ObserveDraw is zero-alloc, so the bundle can
// sit directly on the Sample hot path.
type QueryMetrics struct {
	// Draws counts logical draw attempts (one Sample, or one iteration
	// of a SampleK / Samples stream).
	Draws *Counter
	// Found / NoSample split draws by outcome.
	Found    *Counter
	NoSample *Counter
	// Rounds counts rejection-loop rounds; Rejections counts the rounds
	// that did not emit the accepted point (rounds − 1 on success, all
	// rounds on failure) — the direct observable of the paper's λ/Σ
	// resolution quality.
	Rounds     *Counter
	Rejections *Counter
	// MemoHits counts similarity-memo reuse; BatchScored counts scores
	// that went through a batched kernel call; ScoreEvals counts fresh
	// distance evaluations.
	MemoHits    *Counter
	BatchScored *Counter
	ScoreEvals  *Counter
	// Degraded counts draws answered over a reduced shard set.
	Degraded *Counter
	// Latency is the per-draw wall-time histogram.
	Latency *Histogram
}

// NewQueryMetrics registers the draw-loop bundle under the given layer
// label ("core", "filter", "shard"). Returns nil on a nil registry.
func NewQueryMetrics(r *Registry, layer string) *QueryMetrics {
	if r == nil {
		return nil
	}
	l := Labels("layer", layer)
	return &QueryMetrics{
		Draws:       r.Counter("fairnn_draws_total", l, "logical sample draws attempted"),
		Found:       r.Counter("fairnn_draws_found_total", l, "draws that returned a sample"),
		NoSample:    r.Counter("fairnn_draws_nosample_total", l, "draws that found no near point"),
		Rounds:      r.Counter("fairnn_rejection_rounds_total", l, "rejection-loop rounds executed"),
		Rejections:  r.Counter("fairnn_rejections_total", l, "rejection-loop rounds that did not emit the sample"),
		MemoHits:    r.Counter("fairnn_memo_hits_total", l, "similarity-memo cache hits"),
		BatchScored: r.Counter("fairnn_batch_scored_total", l, "distance scores computed through batched kernels"),
		ScoreEvals:  r.Counter("fairnn_score_evals_total", l, "fresh distance evaluations"),
		Degraded:    r.Counter("fairnn_degraded_draws_total", l, "draws answered over a reduced shard set"),
		Latency:     r.Histogram("fairnn_draw_latency_seconds", l, "per-draw wall time"),
	}
}

// ObserveDraw records one finished draw: outcome, rejection-loop round
// count, memo/batch/score deltas, degradation, and wall time. Zero
// allocations; no-op on a nil bundle.
//
//fairnn:noalloc
func (m *QueryMetrics) ObserveDraw(d time.Duration, found bool, rounds, memoHits, batchScored, scoreEvals int, degraded bool) {
	if m == nil {
		return
	}
	m.Draws.Inc()
	rejected := rounds
	if found {
		m.Found.Inc()
		rejected--
	} else {
		m.NoSample.Inc()
	}
	m.Rounds.AddInt(rounds)
	m.Rejections.AddInt(rejected)
	m.MemoHits.AddInt(memoHits)
	m.BatchScored.AddInt(batchScored)
	m.ScoreEvals.AddInt(scoreEvals)
	if degraded {
		m.Degraded.Inc()
	}
	m.Latency.Observe(d)
}
