package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Prometheus text exposition (version 0.0.4): one # HELP / # TYPE pair
// per family, counters and gauges as single samples, histograms as
// cumulative le-bucketed series plus _sum and _count. Durations are
// exposed in seconds per Prometheus convention (internal storage is
// nanoseconds).

// WritePrometheus writes the registry's instruments in Prometheus text
// exposition format. Safe to call concurrently with recording; values
// are point-in-time atomic loads. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, labels := range f.order {
			switch it := f.items[labels].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(labels), it.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(labels), it.Value())
			case *Histogram:
				writeHistogram(bw, f.name, labels, it)
			}
		}
	}
	return bw.Flush()
}

// renderLabels wraps a pre-rendered label body in braces, or returns
// the empty string for an unlabeled instrument.
func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE appends the le label to a (possibly empty) label body.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		var le string
		if i < len(h.bounds) {
			le = strconv.FormatFloat(float64(h.bounds[i])/1e9, 'g', -1, 64)
		} else {
			le = "+Inf"
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), strconv.FormatFloat(float64(h.Sum())/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.Count())
}

// MetricsHandler returns an http.Handler serving the registry in
// Prometheus text exposition format — the /metrics endpoint of the
// fairnn-server operator listener.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Labels renders a Prometheus label body from alternating key, value
// pairs: Labels("shard", "3", "op", "arm") → `op="arm",shard="3"`.
// Keys are sorted so the same logical label set always produces the
// same registry slot. Construction-time helper; allocates.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs.Labels: odd key/value count")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + p.v + `"`
	}
	return out
}
