// Package obs is the repository's telemetry subsystem: a lock-free
// metrics registry (atomic counters, gauges, and fixed-boundary
// log-spaced latency histograms), a sampled per-query tracer, and
// Prometheus text exposition — standard library only, like everything
// else in the module.
//
// The design contract mirrors the fault injector's: an absent registry
// is contractually invisible. Every instrument method tolerates a nil
// receiver as a no-op, and every registration helper returns nil when
// handed a nil registry, so instrumented hot paths read as
//
//	m.Rounds.Add(n)   // no-op when telemetry is off
//
// with no outer branching, no randomness, and no heap traffic. All
// instrument storage is preallocated at registration time; the
// steady-state record path is atomic loads/adds only and is
// //fairnn:noalloc-clean, so a fully enabled registry keeps the
// samplers' zero-allocation oracles green. Telemetry never draws from
// any random stream — the tracer's 1-in-N sampling decision is a pure
// hash of the query seed through a derived substream (rng.Mix64 under a
// dedicated salt), never the query's own sample stream — so enabling or
// disabling observability cannot perturb same-seed sample streams.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op recorder.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//fairnn:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//fairnn:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// AddInt adds n when n > 0 (negative and zero deltas are dropped — a
// counter is monotone).
//
//fairnn:noalloc
func (c *Counter) AddInt(n int) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count (0 on nil).
//
//fairnn:noalloc
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; a
// nil *Gauge is a no-op recorder.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
//
//fairnn:noalloc
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
//
//fairnn:noalloc
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one.
//
//fairnn:noalloc
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//fairnn:noalloc
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
//
//fairnn:noalloc
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// latencyBounds are the shared fixed histogram boundaries: upper bucket
// bounds in nanoseconds, log-spaced at two buckets per doubling (factor
// √2) from 250ns to ≈ 47s — fine enough that an interpolated p999 is
// within ~20% of truth, coarse enough that one histogram is 56 words.
// Fixed boundaries mean every histogram is fully preallocated at
// registration and the record path is one binary search plus two atomic
// adds.
var latencyBounds = makeLatencyBounds()

func makeLatencyBounds() []int64 {
	const buckets = 55
	b := make([]int64, buckets)
	v := 250.0 // ns
	const sqrt2 = 1.41421356237309504880
	for i := range b {
		b[i] = int64(v)
		v *= sqrt2
	}
	return b
}

// Histogram is a fixed-boundary log-spaced latency histogram: counts
// per bucket plus a running sum, all atomic. The final implicit bucket
// is +Inf. The zero value is NOT ready — construct with NewHistogram or
// through a Registry — but a nil *Histogram is a no-op recorder.
type Histogram struct {
	bounds []int64 // ascending upper bounds, ns
	counts []atomic.Uint64
	sum    atomic.Int64 // total observed ns
	total  atomic.Uint64
}

// NewHistogram returns a standalone (unregistered) latency histogram
// over the shared log-spaced boundaries — for harnesses that want
// quantiles without a registry (the serve load test, the resilience
// gauge).
func NewHistogram() *Histogram {
	return &Histogram{bounds: latencyBounds, counts: make([]atomic.Uint64, len(latencyBounds)+1)}
}

// Observe records one duration. Safe for concurrent use; zero
// allocations; no-op on nil.
//
//fairnn:noalloc
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Binary search for the first bound >= ns; the overflow bucket is
	// len(bounds).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(ns)
	h.total.Add(1)
}

// Count returns the number of observations.
//
//fairnn:noalloc
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the summed observations in nanoseconds.
//
//fairnn:noalloc
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in nanoseconds,
// linearly interpolated inside the containing bucket. It returns 0 on
// an empty (or nil) histogram. Concurrent Observes make the answer a
// point-in-time approximation, which is all a latency summary needs.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n > rank {
			var lo int64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			// Position of the target rank inside this bucket.
			frac := float64(rank-cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one non-empty histogram bucket in a snapshot: the upper
// bound in nanoseconds (0 marks the overflow bucket) and the
// non-cumulative count.
type Bucket struct {
	UpperNanos int64
	Count      uint64
}

// Snapshot returns the non-empty buckets in ascending bound order.
func (h *Histogram) Snapshot() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		var up int64
		if i < len(h.bounds) {
			up = h.bounds[i]
		}
		out = append(out, Bucket{UpperNanos: up, Count: n})
	}
	return out
}

// kindOf tags a registered family for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric family: every labeled instrument sharing a name.
type family struct {
	name  string
	help  string
	kind  string
	order []string // label sets in registration order
	items map[string]any
}

// Registry is a process- or sampler-scoped collection of instruments.
// Registration (Counter/Gauge/Histogram) is get-or-create keyed on
// (name, labels) under a mutex and may allocate; it is a
// construction-time operation. The instruments it returns are lock-free
// and zero-alloc to record into. A nil *Registry is valid everywhere
// and returns nil instruments — the disabled-telemetry contract.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
	trc   *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// lookup finds or creates the (name, labels) slot of a family,
// returning the existing instrument when one is registered. A kind
// mismatch on an existing name panics: metric names are a compile-time
// vocabulary, and two layers disagreeing on one is a programming error
// better caught at construction than exposed as garbled exposition.
func (r *Registry) lookup(kind, name, labels, help string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, items: make(map[string]any)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as " + f.kind + " and " + kind)
	}
	if f.help == "" {
		f.help = help
	}
	it, ok := f.items[labels]
	if !ok {
		it = mk()
		f.items[labels] = it
		f.order = append(f.order, labels)
	}
	return it
}

// Counter registers (or fetches) the counter name{labels}. labels is a
// pre-rendered Prometheus label body (`shard="3",op="arm"`), possibly
// empty. Returns nil on a nil registry.
func (r *Registry) Counter(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(kindCounter, name, labels, help, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or fetches) the gauge name{labels}. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(kindGauge, name, labels, help, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or fetches) the latency histogram name{labels}
// over the shared log-spaced boundaries. Returns nil on a nil registry.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(kindHistogram, name, labels, help, func() any { return NewHistogram() }).(*Histogram)
}

// EnableTracing attaches a sampled per-query tracer to the registry:
// roughly one query in everyN is traced, and the last capacity traces
// are retained in a ring. Returns the tracer (idempotent: a second call
// returns the existing one). No-op (nil) on a nil registry or
// everyN <= 0.
func (r *Registry) EnableTracing(everyN, capacity int) *Tracer {
	if r == nil || everyN <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trc == nil {
		r.trc = NewTracer(everyN, capacity)
	}
	return r.trc
}

// Tracer returns the registry's tracer, or nil when tracing is off.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trc
}
