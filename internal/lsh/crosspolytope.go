package lsh

import (
	"math"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// CrossPolytope is the cross-polytope LSH family of Andoni, Indyk,
// Laarhoven, Razenshteyn and Schmidt (NIPS 2015) for angular similarity:
// apply a random rotation (here a dense Gaussian matrix, sufficient for
// the non-asymptotic regimes of this library) and map the vector to the
// index (and sign) of its largest-magnitude coordinate. It is the bucket-
// style analogue of the argmax filters of Section 5 and converges to the
// optimal ρ for angular distance as the dimension grows.
type CrossPolytope struct {
	// Dim is the input dimensionality.
	Dim int
	// ProjDim is the rotated dimensionality d' (number of Gaussian rows);
	// 0 means Dim.
	ProjDim int
}

func (f CrossPolytope) projDim() int {
	if f.ProjDim > 0 {
		return f.ProjDim
	}
	return f.Dim
}

// New draws one rotated argmax function. The returned key encodes both the
// winning coordinate and its sign: 2*i for +e_i, 2*i+1 for -e_i.
func (f CrossPolytope) New(r *rng.Source) Func[vector.Vec] {
	d := f.projDim()
	rows := make([]vector.Vec, d)
	for i := range rows {
		rows[i] = vector.Gaussian(r, f.Dim)
	}
	return func(v vector.Vec) uint64 {
		best := 0
		bestAbs := math.Inf(-1)
		bestNeg := false
		for i, row := range rows {
			p := vector.Dot(row, v)
			a := math.Abs(p)
			if a > bestAbs {
				bestAbs = a
				best = i
				bestNeg = p < 0
			}
		}
		key := uint64(2 * best)
		if bestNeg {
			key++
		}
		return key
	}
}

// CollisionProb returns the collision probability of two unit vectors at
// inner product s, estimated via the asymptotic formula of the
// cross-polytope analysis: ln(1/p) ≈ (d'-dependent constant) · (1-s)/(1+s)
// · ln d'. The normalization is fixed so that p(1) = 1 and p(0) matches
// the 1/(2d') probability of two independent argmax draws agreeing.
func (f CrossPolytope) CollisionProb(s float64) float64 {
	if s >= 1 {
		return 1
	}
	if s <= -1 {
		return 0
	}
	d := float64(2 * f.projDim())
	// At s = 0 the two vectors hash independently: p = 1/d. The exponent
	// interpolates with the (1-s)/(1+s) law of the cross-polytope family.
	expo := (1 - s) / (1 + s)
	return math.Pow(1/d, expo)
}

// Cauchy is the p-stable LSH family for ℓ1 distance (Datar et al., with
// 1-stable Cauchy projections): h(x) = ⌊(<a,x> + b)/w⌋ with a ~ Cauchy^d.
type Cauchy struct {
	Dim int
	W   float64
}

// New draws one 1-stable function.
func (f Cauchy) New(r *rng.Source) Func[vector.Vec] {
	a := make(vector.Vec, f.Dim)
	for i := range a {
		// Standard Cauchy via the ratio of the tangent transform.
		a[i] = math.Tan(math.Pi * (r.Float64() - 0.5))
	}
	b := r.Float64() * f.W
	return func(v vector.Vec) uint64 {
		return uint64(int64(math.Floor((vector.Dot(a, v) + b) / f.W)))
	}
}

// CollisionProb returns the collision probability at ℓ1 distance d:
// p(d) = 2·atan(w/d)/π − (d/(π·w))·ln(1 + (w/d)²).
func (f Cauchy) CollisionProb(d float64) float64 {
	if d <= 0 {
		return 1
	}
	u := f.W / d
	p := 2*math.Atan(u)/math.Pi - math.Log(1+u*u)/(math.Pi*u)
	if p < 0 {
		return 0
	}
	return p
}
