package lsh

import "fairnn/internal/rng"

// This file is the batched signature engine: instead of evaluating L·K
// independently drawn hash closures — each rescanning the point — a whole
// table set's worth of functions is drawn at once and evaluated in a single
// pass over the point's elements. Families opt in via BatchFamily; families
// without a batch implementation fall back to per-function evaluation with
// identical output (the draw order matches sequential Family.New calls, so
// bucket keys are bit-for-bit the same either way).

// Batch is a block of hash functions drawn together from one family. A
// batch evaluates any contiguous sub-range of its functions on a point in
// one pass over the point's elements, writing the raw (pre-concatenation)
// hash values.
type Batch[P any] interface {
	// Size returns the number of functions in the batch.
	Size() int
	// Hash writes the raw values of functions [lo, hi) for p into
	// out[0 : hi-lo].
	Hash(p P, lo, hi int, out []uint64)
}

// BatchFamily is an optional capability of a Family: drawing m functions
// at once, with seeds/projections stored contiguously so that evaluating
// all of them is cache-friendly and scans the point once. Implementations
// must consume randomness from r exactly as m sequential New calls would,
// so batched and unbatched builds of the same seed are identical.
type BatchFamily[P any] interface {
	Family[P]
	// NewBatch draws m functions using randomness from r.
	NewBatch(m int, r *rng.Source) Batch[P]
}

// Signer computes whole LSH signatures — the raw values of all m = L·K
// concatenated functions of a table set — for one point at a time. It uses
// the family's batch path when available and falls back to m independent
// draws otherwise. A Signer is immutable after construction and safe for
// concurrent use (callers supply the output buffer).
//
//fairnn:frozen
type Signer[P any] struct {
	batch Batch[P]
	funcs []Func[P]
}

// NewSigner draws m hash functions from family. The functions are ordered
// table-major: function j of table i is index i*K + j when m = L·K.
func NewSigner[P any](family Family[P], m int, r *rng.Source) *Signer[P] {
	if m < 1 {
		panic("lsh: NewSigner with m < 1")
	}
	if bf, ok := family.(BatchFamily[P]); ok {
		return &Signer[P]{batch: bf.NewBatch(m, r)}
	}
	fns := make([]Func[P], m)
	for i := range fns {
		fns[i] = family.New(r)
	}
	return &Signer[P]{funcs: fns}
}

// Size returns the number of functions m.
//
//fairnn:noalloc
func (s *Signer[P]) Size() int {
	if s.batch != nil {
		return s.batch.Size()
	}
	return len(s.funcs)
}

// Sign writes the full signature of p into out (len(out) must be Size()).
//
//fairnn:noalloc
func (s *Signer[P]) Sign(p P, out []uint64) {
	s.SignRange(p, 0, s.Size(), out)
}

// SignRange writes the raw values of functions [lo, hi) into
// out[0 : hi-lo]. Sub-range signing lets early-exit query paths (for
// example the classic biased LSH scan) hash one table at a time while
// still scanning the point only once per table.
//
//fairnn:noalloc
func (s *Signer[P]) SignRange(p P, lo, hi int, out []uint64) {
	if s.batch != nil {
		s.batch.Hash(p, lo, hi, out)
		return
	}
	for i := lo; i < hi; i++ {
		out[i-lo] = s.funcs[i](p)
	}
}

// TableKey reduces the K raw values of one table to its bucket key,
// producing exactly the key Concat would: Mix64 of the single value for
// K = 1 and the Combine fold otherwise.
//
//fairnn:noalloc
func TableKey(raw []uint64) uint64 {
	if len(raw) == 1 {
		return rng.Mix64(raw[0])
	}
	acc := uint64(0x51ef23a8a1b7c94d)
	for _, v := range raw {
		acc = rng.Combine(acc, v)
	}
	return acc
}

// CombineKeys reduces an L·K signature (table-major) to the L bucket keys,
// writing them into keys (len(keys) = len(sig)/k).
//
//fairnn:noalloc
func CombineKeys(sig []uint64, k int, keys []uint64) {
	for i := range keys {
		keys[i] = TableKey(sig[i*k : (i+1)*k])
	}
}
