package lsh

import (
	"math"
	"testing"

	"fairnn/internal/rng"
	"fairnn/internal/set"
	"fairnn/internal/vector"
)

// collisionRate estimates Pr[h(a)=h(b)] over draws from the family.
func collisionRate[P any](f Family[P], a, b P, trials int, seed uint64) float64 {
	r := rng.New(seed)
	coll := 0
	for i := 0; i < trials; i++ {
		h := f.New(r)
		if h(a) == h(b) {
			coll++
		}
	}
	return float64(coll) / float64(trials)
}

func TestMinHashCollisionMatchesJaccard(t *testing.T) {
	cases := []struct {
		a, b set.Set
	}{
		{set.Range(1, 30), set.Range(1, 27)},  // J = 0.9
		{set.Range(1, 30), set.Range(1, 18)},  // J = 0.6
		{set.Range(1, 30), set.Range(16, 30)}, // J = 0.5
		{set.Range(1, 10), set.Range(11, 20)}, // J = 0
	}
	for i, c := range cases {
		want := set.Jaccard(c.a, c.b)
		got := collisionRate[set.Set](MinHash{}, c.a, c.b, 20000, uint64(i+1))
		if math.Abs(got-want) > 0.02 {
			t.Errorf("case %d: collision rate %v, want %v", i, got, want)
		}
	}
}

func TestMinHashIdenticalSetsAlwaysCollide(t *testing.T) {
	a := set.Range(5, 25)
	if got := collisionRate[set.Set](MinHash{}, a, a.Clone(), 200, 9); got != 1 {
		t.Errorf("identical sets collide at rate %v", got)
	}
}

func TestMinHashEmptySetsCollide(t *testing.T) {
	if got := collisionRate[set.Set](MinHash{}, nil, nil, 100, 10); got != 1 {
		t.Errorf("empty sets collide at rate %v, want 1", got)
	}
}

func TestOneBitMinHashCollision(t *testing.T) {
	a, b := set.Range(1, 30), set.Range(1, 18) // J = 0.6
	want := (1 + 0.6) / 2
	got := collisionRate[set.Set](OneBitMinHash{}, a, b, 30000, 11)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("collision rate %v, want %v", got, want)
	}
	if p := (OneBitMinHash{}).CollisionProb(0.6); math.Abs(p-want) > 1e-12 {
		t.Errorf("CollisionProb = %v, want %v", p, want)
	}
}

func TestSimHashCollision(t *testing.T) {
	r := rng.New(12)
	q := vector.RandomUnit(r, 32)
	for _, s := range []float64{0.9, 0.5, 0.0} {
		p := vector.UnitWithInnerProduct(r, q, s)
		want := (SimHash{Dim: 32}).CollisionProb(s)
		got := collisionRate[vector.Vec](SimHash{Dim: 32}, q, p, 20000, uint64(100*s)+13)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("s=%v: collision rate %v, want %v", s, got, want)
		}
	}
}

func TestEuclideanCollisionMonotone(t *testing.T) {
	f := Euclidean{Dim: 8, W: 4}
	prev := f.CollisionProb(0.001)
	if prev < 0.95 {
		t.Errorf("p(~0) = %v, want ≈ 1", prev)
	}
	for _, d := range []float64{0.5, 1, 2, 4, 8, 16} {
		p := f.CollisionProb(d)
		if p > prev+1e-12 {
			t.Errorf("collision prob not monotone at d=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestEuclideanEmpirical(t *testing.T) {
	r := rng.New(14)
	f := Euclidean{Dim: 16, W: 4}
	a := vector.Gaussian(r, 16)
	b := vector.Clone(a)
	b[0] += 2 // distance exactly 2
	want := f.CollisionProb(2)
	got := collisionRate[vector.Vec](f, a, b, 20000, 15)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
}

func TestBitSamplingCollision(t *testing.T) {
	f := BitSampling{Dim: 20}
	a := make(vector.Vec, 20)
	b := make(vector.Vec, 20)
	for i := 0; i < 5; i++ {
		b[i] = 1 // Hamming distance 5
	}
	want := f.CollisionProb(5) // 0.75
	got := collisionRate[vector.Vec](f, a, b, 20000, 16)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
}

func TestConcatReducesCollision(t *testing.T) {
	a, b := set.Range(1, 30), set.Range(1, 18) // J = 0.6, 1-bit p = 0.8
	r := rng.New(17)
	const trials = 20000
	coll := 0
	for i := 0; i < trials; i++ {
		g := Concat[set.Set](OneBitMinHash{}, 4, r)
		if g(a) == g(b) {
			coll++
		}
	}
	got := float64(coll) / trials
	want := math.Pow(0.8, 4)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("K=4 collision %v, want %v", got, want)
	}
}

func TestConcatPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat[set.Set](MinHash{}, 0, rng.New(1))
}

func TestChooseKRule(t *testing.T) {
	// Section 6 rule: n·p(0.1)^K ≤ 5 with 1-bit MinHash (p = 0.55).
	n := 990
	k := ChooseK[set.Set](OneBitMinHash{}, n, 0.1, 5)
	p := (OneBitMinHash{}).CollisionProb(0.1)
	if float64(n)*math.Pow(p, float64(k)) > 5 {
		t.Errorf("K=%d does not satisfy the bound", k)
	}
	if k > 1 && float64(n)*math.Pow(p, float64(k-1)) <= 5 {
		t.Errorf("K=%d is not minimal", k)
	}
}

func TestChooseLRule(t *testing.T) {
	k := 9
	l := ChooseL[set.Set](OneBitMinHash{}, k, 0.9, 0.99)
	pk := math.Pow((OneBitMinHash{}).CollisionProb(0.9), float64(k))
	recall := 1 - math.Pow(1-pk, float64(l))
	if recall < 0.99 {
		t.Errorf("L=%d gives recall %v < 0.99", l, recall)
	}
	if l > 1 {
		recallPrev := 1 - math.Pow(1-pk, float64(l-1))
		if recallPrev >= 0.99 {
			t.Errorf("L=%d is not minimal", l)
		}
	}
}

func TestTheoryParams(t *testing.T) {
	p := TheoryParams(0.9, 0.3, 10000)
	if p.K < 1 || p.L < 1 {
		t.Fatalf("bad params %+v", p)
	}
	// p2^K ≤ 1/n must hold approximately.
	if math.Pow(0.3, float64(p.K)) > 1.0/10000*1.01 {
		t.Errorf("K=%d does not drive p2^K below 1/n", p.K)
	}
}

func TestRho(t *testing.T) {
	if got := Rho(0.5, 0.25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rho = %v, want 0.5", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 0, L: 1}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if err := (Params{K: 1, L: 0}).Validate(); err == nil {
		t.Error("L=0 accepted")
	}
	if err := (Params{K: 1, L: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestTablesSelfRecall(t *testing.T) {
	// A point always shares every bucket with itself, so its candidate set
	// must contain it.
	r := rng.New(18)
	points := make([]set.Set, 50)
	for i := range points {
		items := make([]uint32, 10)
		for j := range items {
			items[j] = uint32(r.Intn(200))
		}
		points[i] = set.FromSlice(items)
	}
	tb, err := Build[set.Set](OneBitMinHash{}, Params{K: 4, L: 6}, points, r)
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range points {
		found := false
		for _, c := range tb.CandidateSet(p, nil) {
			if c == int32(id) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %d not in its own candidate set", id)
		}
	}
	if tb.N() != 50 {
		t.Errorf("N = %d", tb.N())
	}
	if tb.TotalBucketEntries() != 50*6 {
		t.Errorf("TotalBucketEntries = %d", tb.TotalBucketEntries())
	}
	if tb.MaxBucketLoad() < 1 {
		t.Errorf("MaxBucketLoad = %d", tb.MaxBucketLoad())
	}
}

func TestTablesBucketConsistency(t *testing.T) {
	r := rng.New(19)
	points := []set.Set{set.Range(1, 10), set.Range(5, 15), set.Range(100, 110)}
	tb, err := Build[set.Set](MinHash{}, Params{K: 1, L: 3}, points, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for id, p := range points {
			key := tb.Key(i, p)
			inBucket := false
			for _, c := range tb.BucketByKey(i, key) {
				if c == int32(id) {
					inBucket = true
				}
			}
			if !inBucket {
				t.Fatalf("point %d missing from its bucket in table %d", id, i)
			}
			// Bucket(q) must agree with BucketByKey(Key(q)).
			got := tb.Bucket(i, p)
			want := tb.BucketByKey(i, key)
			if len(got) != len(want) {
				t.Fatalf("Bucket and BucketByKey disagree")
			}
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build[set.Set](MinHash{}, Params{K: 0, L: 1}, []set.Set{set.Range(1, 2)}, rng.New(1)); err == nil {
		t.Error("bad params accepted")
	}
}
