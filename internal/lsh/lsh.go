// Package lsh implements the locality-sensitive hashing framework of
// Section 2.2: hash families (MinHash, 1-bit MinHash, SimHash, p-stable
// E2LSH, bit sampling), AND-composition of K functions into one bucket key,
// the L-table structure, and the parameter-selection rules the paper's
// experiments use (Section 6: pick K so that few far points collide, pick L
// so that near points are recalled with 99% probability).
//
// A family is generic over the point type P (sparse sets for Jaccard,
// dense vectors for angular/Euclidean), so the fair samplers in
// internal/core work with any distance for which an LSH family exists —
// the "black box" property of the Section 3 and 4 data structures.
package lsh

import (
	"errors"
	"math"

	"fairnn/internal/rng"
)

// Func is a single hash function drawn from an LSH family: it maps a point
// to a 64-bit bucket key.
type Func[P any] func(P) uint64

// Family describes a distribution over hash functions (Definition 3).
type Family[P any] interface {
	// New draws one hash function using randomness from r.
	New(r *rng.Source) Func[P]
	// CollisionProb returns Pr[h(x)=h(y)] as a function of the similarity
	// (for similarity-oriented families) or distance (for distance-oriented
	// families) between x and y.
	CollisionProb(s float64) float64
}

// Concat AND-composes k independent draws from family into one function
// whose collision probability is CollisionProb(s)^k. Keys are combined with
// a strong mixer, so distinct k-tuples map to distinct uint64 keys except
// with negligible probability.
func Concat[P any](family Family[P], k int, r *rng.Source) Func[P] {
	if k < 1 {
		panic("lsh: Concat with k < 1")
	}
	fns := make([]Func[P], k)
	for i := range fns {
		fns[i] = family.New(r)
	}
	if k == 1 {
		f := fns[0]
		return func(p P) uint64 { return rng.Mix64(f(p)) }
	}
	return func(p P) uint64 {
		acc := uint64(0x51ef23a8a1b7c94d)
		for _, f := range fns {
			acc = rng.Combine(acc, f(p))
		}
		return acc
	}
}

// Params bundles the classic (K, L) parameters of an LSH table set.
type Params struct {
	// K is the number of AND-concatenated hash functions per table.
	K int
	// L is the number of tables (OR-repetitions).
	L int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return errors.New("lsh: K must be >= 1")
	}
	if p.L < 1 {
		return errors.New("lsh: L must be >= 1")
	}
	return nil
}

// Tables is the standard L-table LSH structure over a fixed point slice:
// table i partitions the points by the AND-composition g_i of K functions.
// Buckets store point indices in insertion order; the fair data structures
// in internal/core layer rank-sorted buckets on top instead.
type Tables[P any] struct {
	params Params
	signer *Signer[P]
	// buckets[i] maps g_i(p) to the indices of the points in that bucket.
	buckets []map[uint64][]int32
	n       int
}

// Build constructs the L tables over points. The same drawn functions g_i
// are applied to every point — collisions across points within one table
// are therefore correlated, which is essential to the phenomena studied in
// Section 6.2. All L·K hash values of a point are computed by the batched
// signature engine in one pass over the point.
func Build[P any](family Family[P], params Params, points []P, r *rng.Source) (*Tables[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	t := &Tables[P]{
		params:  params,
		signer:  NewSigner(family, params.L*params.K, r),
		buckets: make([]map[uint64][]int32, params.L),
		n:       len(points),
	}
	for i := range t.buckets {
		t.buckets[i] = make(map[uint64][]int32)
	}
	sig := make([]uint64, params.L*params.K)
	keys := make([]uint64, params.L)
	for id, p := range points {
		t.signer.Sign(p, sig)
		CombineKeys(sig, params.K, keys)
		for i, key := range keys {
			t.buckets[i][key] = append(t.buckets[i][key], int32(id))
		}
	}
	return t, nil
}

// Params returns the (K, L) pair the table set was built with.
func (t *Tables[P]) Params() Params { return t.params }

// N returns the number of indexed points.
func (t *Tables[P]) N() int { return t.n }

// Keys appends the L bucket keys of p (one per table) and returns them.
func (t *Tables[P]) Keys(p P) []uint64 {
	sig := make([]uint64, t.params.L*t.params.K)
	t.signer.Sign(p, sig)
	keys := make([]uint64, t.params.L)
	CombineKeys(sig, t.params.K, keys)
	return keys
}

// Key returns g_i(p), the bucket key of p in table i.
func (t *Tables[P]) Key(i int, p P) uint64 {
	sig := make([]uint64, t.params.K)
	t.signer.SignRange(p, i*t.params.K, (i+1)*t.params.K, sig)
	return TableKey(sig)
}

// Bucket returns the ids colliding with q in table i (nil when empty).
// The returned slice is owned by the table and must not be modified.
func (t *Tables[P]) Bucket(i int, q P) []int32 {
	return t.buckets[i][t.Key(i, q)]
}

// BucketByKey returns the ids stored under key in table i.
func (t *Tables[P]) BucketByKey(i int, key uint64) []int32 {
	return t.buckets[i][key]
}

// CandidateSet returns the deduplicated union of q's buckets over all L
// tables — the set S_q of Section 3. The scratch slice, if non-nil, is
// reused to avoid allocation.
func (t *Tables[P]) CandidateSet(q P, scratch []int32) []int32 {
	seen := make(map[int32]struct{})
	out := scratch[:0]
	for i, key := range t.Keys(q) {
		for _, id := range t.buckets[i][key] {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// TotalBucketEntries returns the total number of (table, point) entries,
// i.e. L·n; exposed for space accounting in the experiments.
func (t *Tables[P]) TotalBucketEntries() int { return t.params.L * t.n }

// MaxBucketLoad returns the size of the largest bucket over all tables.
func (t *Tables[P]) MaxBucketLoad() int {
	max := 0
	for _, b := range t.buckets {
		for _, ids := range b {
			if len(ids) > max {
				max = len(ids)
			}
		}
	}
	return max
}

// powNonNeg returns p^k for k >= 0 without math.Pow edge cases.
func powNonNeg(p float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= p
	}
	return out
}

// ChooseK returns the smallest K such that the expected number of colliding
// points at similarity (or distance) sFar is at most maxExpected:
// n · p(sFar)^K ≤ maxExpected. This is the rule used in Section 6
// ("we set K such that we expect no more than 5 points with Jaccard
// similarity at most 0.1 to have the same hash value as the query").
func ChooseK[P any](family Family[P], n int, sFar float64, maxExpected float64) int {
	p := family.CollisionProb(sFar)
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 64 // degenerate family; cap concatenation
	}
	k := 1
	exp := float64(n) * p
	for exp > maxExpected && k < 64 {
		k++
		exp *= p
	}
	return k
}

// ChooseL returns the smallest L such that a point at similarity (or
// distance) sNear collides with the query in at least one of the L tables
// with probability at least successProb: 1-(1-p(sNear)^K)^L ≥ successProb.
// This is the Section 6 rule with successProb = 0.99.
func ChooseL[P any](family Family[P], k int, sNear float64, successProb float64) int {
	pk := powNonNeg(family.CollisionProb(sNear), k)
	if pk >= 1 {
		return 1
	}
	if pk <= 0 {
		return 1 << 20 // unreachable similarity; caller should validate
	}
	l := math.Log(1-successProb) / math.Log(1-pk)
	if l < 1 {
		return 1
	}
	return int(math.Ceil(l))
}

// TheoryParams returns the textbook parameters of Section 2.2 for an
// (r, cr, p1, p2)-sensitive family: K = ⌈log(1/n)/log(p2)⌉ drives p2^K ≤ 1/n,
// and L = ⌈ln(n)/p1^K⌉ gives high-probability recall of every near point.
func TheoryParams(p1, p2 float64, n int) Params {
	if p2 >= 1 {
		p2 = 1 - 1e-9
	}
	k := int(math.Ceil(math.Log(float64(n)) / math.Log(1/p2)))
	if k < 1 {
		k = 1
	}
	p1k := math.Pow(p1, float64(k))
	l := int(math.Ceil(math.Log(float64(n)) / p1k))
	if l < 1 {
		l = 1
	}
	return Params{K: k, L: l}
}

// Rho returns the LSH quality ρ = log(p1)/log(p2) of Definition 3.
func Rho(p1, p2 float64) float64 {
	return math.Log(p1) / math.Log(p2)
}
