package lsh

import (
	"math"
	"testing"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

func TestCrossPolytopeIdenticalVectorsCollide(t *testing.T) {
	r := rng.New(1)
	f := CrossPolytope{Dim: 16}
	q := vector.RandomUnit(r, 16)
	if got := collisionRate[vector.Vec](f, q, vector.Clone(q), 300, 2); got != 1 {
		t.Errorf("identical vectors collide at rate %v", got)
	}
}

func TestCrossPolytopeMonotoneInSimilarity(t *testing.T) {
	r := rng.New(3)
	f := CrossPolytope{Dim: 24}
	q := vector.RandomUnit(r, 24)
	prev := 1.1
	for _, s := range []float64{0.95, 0.8, 0.5, 0.0} {
		p := vector.UnitWithInnerProduct(r, q, s)
		got := collisionRate[vector.Vec](f, q, p, 4000, uint64(10*s)+5)
		if got > prev+0.03 {
			t.Errorf("collision rate not decreasing: s=%v rate=%v prev=%v", s, got, prev)
		}
		prev = got
	}
}

func TestCrossPolytopeOppositeRarelyCollide(t *testing.T) {
	r := rng.New(7)
	f := CrossPolytope{Dim: 16}
	q := vector.RandomUnit(r, 16)
	neg := vector.Scale(q, -1)
	// -q maps to the same coordinate with opposite sign: never collides.
	if got := collisionRate[vector.Vec](f, q, neg, 500, 8); got != 0 {
		t.Errorf("antipodal vectors collide at rate %v", got)
	}
}

func TestCrossPolytopeKeyRange(t *testing.T) {
	r := rng.New(9)
	f := CrossPolytope{Dim: 8, ProjDim: 4}
	h := f.New(r)
	for i := 0; i < 200; i++ {
		v := vector.RandomUnit(r, 8)
		if key := h(v); key >= 8 { // 2 * ProjDim
			t.Fatalf("key %d out of range for ProjDim 4", key)
		}
	}
}

func TestCrossPolytopeCollisionProbShape(t *testing.T) {
	f := CrossPolytope{Dim: 32}
	if p := f.CollisionProb(1); p != 1 {
		t.Errorf("p(1) = %v", p)
	}
	if p := f.CollisionProb(-1); p != 0 {
		t.Errorf("p(-1) = %v", p)
	}
	if p0 := f.CollisionProb(0); math.Abs(p0-1.0/64.0) > 1e-12 {
		t.Errorf("p(0) = %v, want 1/2d = %v", p0, 1.0/64.0)
	}
	prev := 1.0
	for _, s := range []float64{0.9, 0.6, 0.3, 0, -0.4, -0.9} {
		p := f.CollisionProb(s)
		if p > prev {
			t.Errorf("CollisionProb not monotone at %v", s)
		}
		prev = p
	}
}

func TestCauchyCollisionEmpirical(t *testing.T) {
	r := rng.New(11)
	f := Cauchy{Dim: 12, W: 4}
	a := vector.Gaussian(r, 12)
	b := vector.Clone(a)
	b[0] += 1.0
	b[1] += 1.0 // ℓ1 distance exactly 2
	want := f.CollisionProb(2)
	got := collisionRate[vector.Vec](f, a, b, 20000, 12)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical %v vs analytic %v", got, want)
	}
}

func TestCauchyCollisionProbMonotone(t *testing.T) {
	f := Cauchy{Dim: 4, W: 2}
	if p := f.CollisionProb(0); p != 1 {
		t.Errorf("p(0) = %v", p)
	}
	prev := 1.0
	for _, d := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		p := f.CollisionProb(d)
		if p > prev+1e-12 {
			t.Errorf("not monotone at %v", d)
		}
		prev = p
	}
}
