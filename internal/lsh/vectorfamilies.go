package lsh

import (
	"math"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// SimHash is Charikar's sign-random-projection family for angular
// similarity (STOC 2002): h(x) = sign(<a, x>) with a ~ N(0, I). Two unit
// vectors with inner product s collide with probability 1 - arccos(s)/π.
type SimHash struct {
	// Dim is the dimensionality of the indexed vectors.
	Dim int
}

// New draws one random hyperplane function.
func (f SimHash) New(r *rng.Source) Func[vector.Vec] {
	a := vector.Gaussian(r, f.Dim)
	return func(v vector.Vec) uint64 {
		if vector.Dot(a, v) >= 0 {
			return 1
		}
		return 0
	}
}

// NewBatch draws m hyperplanes stored as one contiguous m×Dim matrix; a
// signature is m sign bits of one matrix-vector product.
func (f SimHash) NewBatch(m int, r *rng.Source) Batch[vector.Vec] {
	b := &simHashBatch{dim: f.Dim, rows: make([]float64, m*f.Dim)}
	for i := 0; i < m; i++ {
		copy(b.rows[i*f.Dim:(i+1)*f.Dim], vector.Gaussian(r, f.Dim))
	}
	return b
}

type simHashBatch struct {
	dim  int
	rows []float64
}

func (b *simHashBatch) Size() int { return len(b.rows) / b.dim }

// signChunk bounds the stack buffer the batch signers stage row inner
// products through — large enough to amortize kernel dispatch, small
// enough to stay off the heap.
const signChunk = 32

func (b *simHashBatch) Hash(v vector.Vec, lo, hi int, out []uint64) {
	// vector.DotRows runs the same resolved kernel as the per-function
	// vector.Dot, so batched and sequential signatures stay bit-equal.
	var dots [signChunk]float64
	for i := lo; i < hi; i += signChunk {
		end := min(i+signChunk, hi)
		vector.DotRows(b.rows, b.dim, v, i, end, dots[:end-i])
		for k := 0; k < end-i; k++ {
			if dots[k] >= 0 {
				out[i-lo+k] = 1
			} else {
				out[i-lo+k] = 0
			}
		}
	}
}

// CollisionProb returns 1 - arccos(s)/π for inner-product similarity s of
// unit vectors.
func (SimHash) CollisionProb(s float64) float64 {
	if s > 1 {
		s = 1
	}
	if s < -1 {
		s = -1
	}
	return 1 - math.Acos(s)/math.Pi
}

// Euclidean is the p-stable LSH family of Datar, Immorlica, Indyk and
// Mirrokni for ℓ2 distance: h(x) = ⌊(<a,x> + b)/w⌋ with a ~ N(0, I) and
// b ~ U[0, w). Collision probability is a decreasing function of the
// distance between the points.
type Euclidean struct {
	// Dim is the dimensionality of the indexed vectors.
	Dim int
	// W is the quantization width w.
	W float64
}

// New draws one p-stable function.
func (f Euclidean) New(r *rng.Source) Func[vector.Vec] {
	a := vector.Gaussian(r, f.Dim)
	b := r.Float64() * f.W
	return func(v vector.Vec) uint64 {
		return uint64(int64(math.Floor((vector.Dot(a, v) + b) / f.W)))
	}
}

// NewBatch draws m p-stable functions with projections stored as one
// contiguous m×Dim matrix plus an offset vector.
func (f Euclidean) NewBatch(m int, r *rng.Source) Batch[vector.Vec] {
	b := &euclideanBatch{dim: f.Dim, w: f.W, rows: make([]float64, m*f.Dim), bs: make([]float64, m)}
	for i := 0; i < m; i++ {
		copy(b.rows[i*f.Dim:(i+1)*f.Dim], vector.Gaussian(r, f.Dim))
		b.bs[i] = r.Float64() * f.W
	}
	return b
}

type euclideanBatch struct {
	dim  int
	w    float64
	rows []float64
	bs   []float64
}

func (b *euclideanBatch) Size() int { return len(b.bs) }

func (b *euclideanBatch) Hash(v vector.Vec, lo, hi int, out []uint64) {
	// Same chunked staging as simHashBatch.Hash: row inner products are
	// bit-equal to the per-function vector.Dot on either kernel tier.
	var dots [signChunk]float64
	for i := lo; i < hi; i += signChunk {
		end := min(i+signChunk, hi)
		vector.DotRows(b.rows, b.dim, v, i, end, dots[:end-i])
		for k := 0; k < end-i; k++ {
			out[i-lo+k] = uint64(int64(math.Floor((dots[k] + b.bs[i+k]) / b.w)))
		}
	}
}

// CollisionProb returns the collision probability at ℓ2 distance d:
// p(d) = 1 - 2Φ(-w/d) - (2d/(√(2π)·w))·(1 - e^{-w²/(2d²)}).
func (f Euclidean) CollisionProb(d float64) float64 {
	if d <= 0 {
		return 1
	}
	u := f.W / d
	phi := stdNormalCDF(-u)
	p := 1 - 2*phi - (2/(math.Sqrt(2*math.Pi)*u))*(1-math.Exp(-u*u/2))
	if p < 0 {
		return 0
	}
	return p
}

// stdNormalCDF is the standard normal CDF Φ.
func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BitSampling is the Indyk–Motwani family for Hamming distance over
// {0,1}^Dim, with vectors represented as float64 slices holding 0/1
// entries: h(x) = x_i for a uniformly random coordinate i. Collision
// probability at Hamming distance d is 1 - d/Dim.
type BitSampling struct {
	Dim int
}

// New draws one coordinate-sampling function.
func (f BitSampling) New(r *rng.Source) Func[vector.Vec] {
	i := r.Intn(f.Dim)
	return func(v vector.Vec) uint64 {
		if v[i] != 0 {
			return 1
		}
		return 0
	}
}

// NewBatch draws m sampled coordinates stored contiguously.
func (f BitSampling) NewBatch(m int, r *rng.Source) Batch[vector.Vec] {
	coords := make([]int, m)
	for i := range coords {
		coords[i] = r.Intn(f.Dim)
	}
	return &bitSamplingBatch{coords: coords}
}

type bitSamplingBatch struct {
	coords []int
}

func (b *bitSamplingBatch) Size() int { return len(b.coords) }

func (b *bitSamplingBatch) Hash(v vector.Vec, lo, hi int, out []uint64) {
	for i := lo; i < hi; i++ {
		if v[b.coords[i]] != 0 {
			out[i-lo] = 1
		} else {
			out[i-lo] = 0
		}
	}
}

// CollisionProb returns 1 - d/Dim at Hamming distance d.
func (f BitSampling) CollisionProb(d float64) float64 {
	p := 1 - d/float64(f.Dim)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
