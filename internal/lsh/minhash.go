package lsh

import (
	"fairnn/internal/rng"
	"fairnn/internal/set"
)

// MinHash is the classic min-wise hashing family of Broder for Jaccard
// similarity: one function hashes every element of a set with a fixed
// random 64-bit mixer and returns the minimum hashed value. Two sets agree
// with probability equal to their Jaccard similarity.
//
// The empty set hashes to a sentinel (MaxUint64), so two empty sets always
// collide — consistent with Jaccard(∅, ∅) = 1.
type MinHash struct{}

// New draws one min-wise function keyed by a random 64-bit seed.
func (MinHash) New(r *rng.Source) Func[set.Set] {
	seed := r.Uint64()
	return func(s set.Set) uint64 { return minHashValue(s, seed) }
}

// CollisionProb returns Pr[h(x)=h(y)] = J(x,y).
func (MinHash) CollisionProb(jaccard float64) float64 { return clamp01(jaccard) }

func minHashValue(s set.Set, seed uint64) uint64 {
	min := ^uint64(0)
	for _, e := range s {
		if v := rng.Mix64(seed ^ uint64(e)); v < min {
			min = v
		}
	}
	return min
}

// OneBitMinHash is the b-bit minwise hashing scheme of Li and König
// (WWW 2010) with b = 1: each function keeps only the lowest bit of the
// min-wise hash value. Collision probability at Jaccard similarity J is
// (1+J)/2 — the scheme used in the Section 6 experiments.
type OneBitMinHash struct{}

// New draws one 1-bit min-wise function.
func (OneBitMinHash) New(r *rng.Source) Func[set.Set] {
	seed := r.Uint64()
	return func(s set.Set) uint64 { return minHashValue(s, seed) & 1 }
}

// CollisionProb returns (1+J)/2.
func (OneBitMinHash) CollisionProb(jaccard float64) float64 {
	return (1 + clamp01(jaccard)) / 2
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
