package lsh

import (
	"fairnn/internal/rng"
	"fairnn/internal/set"
)

// MinHash is the classic min-wise hashing family of Broder for Jaccard
// similarity: one function hashes every element of a set with a fixed
// random 64-bit mixer and returns the minimum hashed value. Two sets agree
// with probability equal to their Jaccard similarity.
//
// The empty set hashes to a sentinel (MaxUint64), so two empty sets always
// collide — consistent with Jaccard(∅, ∅) = 1.
type MinHash struct{}

// New draws one min-wise function keyed by a random 64-bit seed.
func (MinHash) New(r *rng.Source) Func[set.Set] {
	seed := r.Uint64()
	return func(s set.Set) uint64 { return minHashValue(s, seed) }
}

// NewBatch draws m min-wise functions with contiguously stored seeds; the
// batch computes all m minima in one pass over the set.
func (MinHash) NewBatch(m int, r *rng.Source) Batch[set.Set] {
	return newMinHashBatch(m, r, false)
}

// CollisionProb returns Pr[h(x)=h(y)] = J(x,y).
func (MinHash) CollisionProb(jaccard float64) float64 { return clamp01(jaccard) }

func minHashValue(s set.Set, seed uint64) uint64 {
	min := ^uint64(0)
	for _, e := range s {
		if v := rng.Mix64(seed ^ uint64(e)); v < min {
			min = v
		}
	}
	return min
}

// OneBitMinHash is the b-bit minwise hashing scheme of Li and König
// (WWW 2010) with b = 1: each function keeps only the lowest bit of the
// min-wise hash value. Collision probability at Jaccard similarity J is
// (1+J)/2 — the scheme used in the Section 6 experiments.
type OneBitMinHash struct{}

// New draws one 1-bit min-wise function.
func (OneBitMinHash) New(r *rng.Source) Func[set.Set] {
	seed := r.Uint64()
	return func(s set.Set) uint64 { return minHashValue(s, seed) & 1 }
}

// NewBatch draws m 1-bit min-wise functions evaluated in one pass over the
// set.
func (OneBitMinHash) NewBatch(m int, r *rng.Source) Batch[set.Set] {
	return newMinHashBatch(m, r, true)
}

// CollisionProb returns (1+J)/2.
func (OneBitMinHash) CollisionProb(jaccard float64) float64 {
	return (1 + clamp01(jaccard)) / 2
}

// minHashBatch evaluates m min-wise functions in a single pass: the outer
// loop visits each set element once, the inner loop updates the m running
// minima against the contiguously stored seeds. The per-element work is
// identical to m separate evaluations, but the set is scanned once instead
// of m times and there is no per-function closure dispatch.
type minHashBatch struct {
	seeds  []uint64
	oneBit bool
}

func newMinHashBatch(m int, r *rng.Source, oneBit bool) *minHashBatch {
	seeds := make([]uint64, m)
	for i := range seeds {
		seeds[i] = r.Uint64()
	}
	return &minHashBatch{seeds: seeds, oneBit: oneBit}
}

func (b *minHashBatch) Size() int { return len(b.seeds) }

// smallSetLen bounds the "set fits comfortably in L1" regime: below it a
// per-seed scan keeps the running minimum in a register and re-reads the
// cache-resident set; above it the set is streamed once per 16-seed tile
// so large sets are not re-fetched from memory m times.
const smallSetLen = 1024

func (b *minHashBatch) Hash(s set.Set, lo, hi int, out []uint64) {
	out = out[:hi-lo]
	seeds := b.seeds[lo:hi]
	if len(s) <= smallSetLen {
		for i, seed := range seeds {
			min := ^uint64(0)
			for _, e := range s {
				if v := rng.Mix64(seed ^ uint64(e)); v < min {
					min = v
				}
			}
			out[i] = min
		}
	} else {
		var mins [16]uint64
		for base := 0; base < len(seeds); base += len(mins) {
			blk := seeds[base:]
			if len(blk) > len(mins) {
				blk = blk[:len(mins)]
			}
			for j := range blk {
				mins[j] = ^uint64(0)
			}
			for _, e := range s {
				x := uint64(e)
				for j, seed := range blk {
					if v := rng.Mix64(seed ^ x); v < mins[j] {
						mins[j] = v
					}
				}
			}
			copy(out[base:], mins[:len(blk)])
		}
	}
	if b.oneBit {
		for i := range out {
			out[i] &= 1
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
