package lsh

import (
	"testing"

	"fairnn/internal/rng"
	"fairnn/internal/set"
	"fairnn/internal/vector"
)

// noBatch hides a family's NewBatch capability so NewSigner takes the
// per-function fallback path.
type noBatch[P any] struct{ f Family[P] }

func (n noBatch[P]) New(r *rng.Source) Func[P]       { return n.f.New(r) }
func (n noBatch[P]) CollisionProb(s float64) float64 { return n.f.CollisionProb(s) }

// TestBatchMatchesSequentialDraws pins the seed-compatibility contract of
// the signature engine: a batched signer must consume randomness exactly
// like m sequential Family.New calls and produce identical raw values, so
// batched and unbatched builds of the same seed yield the same index.
func TestBatchMatchesSequentialDraws(t *testing.T) {
	const m = 24
	sets := []set.Set{
		nil,
		set.FromSlice([]uint32{5}),
		set.FromSlice([]uint32{1, 2, 3, 10, 99, 1000}),
		set.Range(0, 200),
	}
	for _, fam := range []Family[set.Set]{MinHash{}, OneBitMinHash{}} {
		batched := NewSigner[set.Set](fam, m, rng.New(7))
		fallback := NewSigner[set.Set](noBatch[set.Set]{fam}, m, rng.New(7))
		got := make([]uint64, m)
		want := make([]uint64, m)
		for _, s := range sets {
			batched.Sign(s, got)
			fallback.Sign(s, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%T: function %d differs on set of size %d: batch %x, sequential %x", fam, i, s.Len(), got[i], want[i])
				}
			}
		}
	}

	vecs := []vector.Vec{
		vector.Gaussian(rng.New(3), 16),
		vector.Gaussian(rng.New(4), 16),
	}
	for _, fam := range []Family[vector.Vec]{SimHash{Dim: 16}, Euclidean{Dim: 16, W: 2}, BitSampling{Dim: 16}} {
		batched := NewSigner[vector.Vec](fam, m, rng.New(9))
		fallback := NewSigner[vector.Vec](noBatch[vector.Vec]{fam}, m, rng.New(9))
		got := make([]uint64, m)
		want := make([]uint64, m)
		for _, v := range vecs {
			batched.Sign(v, got)
			fallback.Sign(v, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%T: function %d differs: batch %x, sequential %x", fam, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSignRangeMatchesFullSign checks that sub-range signing (the lazy
// per-table path of the classic LSH scan) agrees with the full signature.
func TestSignRangeMatchesFullSign(t *testing.T) {
	const m = 20
	s := NewSigner[set.Set](MinHash{}, m, rng.New(5))
	p := set.Range(10, 80)
	full := make([]uint64, m)
	s.Sign(p, full)
	for lo := 0; lo < m; lo += 4 {
		hi := lo + 4
		part := make([]uint64, hi-lo)
		s.SignRange(p, lo, hi, part)
		for i, v := range part {
			if v != full[lo+i] {
				t.Fatalf("SignRange(%d,%d)[%d] = %x, want %x", lo, hi, i, v, full[lo+i])
			}
		}
	}
}

// TestCombineKeysMatchesConcat pins that the signature reduction produces
// exactly the bucket keys of the closure-based Concat composition.
func TestCombineKeysMatchesConcat(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		const L = 4
		concat := make([]Func[set.Set], L)
		r := rng.New(13)
		for i := range concat {
			concat[i] = Concat[set.Set](MinHash{}, k, r)
		}
		signer := NewSigner[set.Set](MinHash{}, L*k, rng.New(13))
		p := set.FromSlice([]uint32{3, 14, 15, 92, 65})
		sig := make([]uint64, L*k)
		keys := make([]uint64, L)
		signer.Sign(p, sig)
		CombineKeys(sig, k, keys)
		for i := range keys {
			if want := concat[i](p); keys[i] != want {
				t.Fatalf("K=%d table %d: CombineKeys %x, Concat %x", k, i, keys[i], want)
			}
		}
	}
}
