package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"fairnn/internal/rng"
)

func mustHLLFamily(t *testing.T, p uint8, seed uint64) *HLLFamily {
	t.Helper()
	f, err := NewHLLFamily(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHLLPrecisionBounds(t *testing.T) {
	if _, err := NewHLLFamily(3, rng.New(1)); err == nil {
		t.Error("precision 3 accepted")
	}
	if _, err := NewHLLFamily(17, rng.New(1)); err == nil {
		t.Error("precision 17 accepted")
	}
	f := mustHLLFamily(t, 10, 1)
	if f.Registers() != 1024 {
		t.Errorf("Registers = %d", f.Registers())
	}
	if math.Abs(f.StdError()-1.04/32) > 1e-12 {
		t.Errorf("StdError = %v", f.StdError())
	}
}

func TestHLLSmallCardinalityExactish(t *testing.T) {
	f := mustHLLFamily(t, 12, 2)
	s := f.NewSketch()
	for i := uint64(0); i < 100; i++ {
		s.Add(i)
		s.Add(i) // duplicates ignored
	}
	est := s.Estimate()
	if est < 90 || est > 110 {
		t.Errorf("estimate %v for 100 distinct (linear counting regime)", est)
	}
}

func TestHLLLargeCardinalityAccuracy(t *testing.T) {
	const n = 200000
	f := mustHLLFamily(t, 12, 3) // std err ≈ 1.6%
	s := f.NewSketch()
	for i := uint64(0); i < n; i++ {
		s.Add(i * 0x9e3779b97f4a7c15)
	}
	est := s.Estimate()
	if math.Abs(est-n)/n > 0.08 { // 5 sigma
		t.Errorf("estimate %v for %d distinct", est, n)
	}
}

func TestHLLMergeEqualsWholeStream(t *testing.T) {
	f := mustHLLFamily(t, 10, 4)
	whole, pa, pb := f.NewSketch(), f.NewSketch(), f.NewSketch()
	for i := uint64(0); i < 50000; i++ {
		whole.Add(i)
		if i%2 == 0 {
			pa.Add(i)
		} else {
			pb.Add(i)
		}
	}
	if err := pa.Merge(pb); err != nil {
		t.Fatal(err)
	}
	if pa.Estimate() != whole.Estimate() {
		t.Errorf("merged %v != whole %v", pa.Estimate(), whole.Estimate())
	}
	for i := range whole.registers {
		if whole.registers[i] != pa.registers[i] {
			t.Fatal("registers differ after merge")
		}
	}
}

func TestHLLMergePropertyQuick(t *testing.T) {
	f := mustHLLFamily(t, 8, 5)
	prop := func(a, b []uint32) bool {
		sa, sb, sw := f.NewSketch(), f.NewSketch(), f.NewSketch()
		for _, v := range a {
			sa.Add(uint64(v))
			sw.Add(uint64(v))
		}
		for _, v := range b {
			sb.Add(uint64(v))
			sw.Add(uint64(v))
		}
		if err := sa.Merge(sb); err != nil {
			return false
		}
		return sa.Estimate() == sw.Estimate()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHLLMergeFamilyMismatch(t *testing.T) {
	f1 := mustHLLFamily(t, 8, 6)
	f2 := mustHLLFamily(t, 8, 7)
	if err := f1.NewSketch().Merge(f2.NewSketch()); err == nil {
		t.Error("cross-family merge accepted")
	}
	if err := f1.NewSketch().Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestHLLCloneIndependent(t *testing.T) {
	f := mustHLLFamily(t, 8, 8)
	s := f.Sketch([]int32{1, 2, 3})
	c := s.Clone()
	for i := uint64(100); i < 2000; i++ {
		c.Add(i)
	}
	if s.Estimate() == c.Estimate() {
		t.Error("clone shares registers")
	}
}

func TestHLLMemoryMuchSmallerThanKMV(t *testing.T) {
	// The point of offering HLL: at comparable accuracy (~12-13% rel err),
	// HLL with p=6 stores 64 registers = 8 words, while the KMV Distinct
	// at ε=0.5 stores tens of rows × 64 values.
	hf := mustHLLFamily(t, 6, 9)
	hs := hf.NewSketch()
	kf, err := NewFamily(Params{Epsilon: 0.5, Delta: 0.05}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	ks := kf.NewSketch()
	for i := uint64(0); i < 10000; i++ {
		hs.Add(i)
		ks.Add(i)
	}
	if hs.MemoryWords()*10 > ks.MemoryWords() {
		t.Errorf("HLL %d words not far below KMV %d words", hs.MemoryWords(), ks.MemoryWords())
	}
}
