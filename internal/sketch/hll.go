package sketch

import (
	"errors"
	"math"

	"fairnn/internal/rng"
)

// HLL is a HyperLogLog count-distinct sketch (Flajolet, Fusy, Gandouet,
// Meunier 2007) offered as a drop-in alternative to the KMV-style Distinct
// sketch of Section 2.3. HyperLogLog trades the KMV sketch's clean
// (ε, δ) analysis under pairwise independence for a much smaller memory
// footprint (m 6-bit registers vs Δ·t words) with standard error
// ≈ 1.04/√m. Like Distinct, HLL sketches of stream segments merge into
// exactly the sketch of the concatenated stream — the property Section 4
// needs — by taking register-wise maxima.
type HLL struct {
	family    *HLLFamily
	registers []uint8
}

// HLLFamily fixes the register count and the shared hash function so that
// sketches are mergeable.
type HLLFamily struct {
	precision uint8 // p: m = 2^p registers
	mask      uint64
	hash      rng.PairwiseHash
	hashMix   uint64
	alphaMM   float64
}

// NewHLLFamily creates a family with 2^precision registers
// (4 ≤ precision ≤ 16).
func NewHLLFamily(precision uint8, r *rng.Source) (*HLLFamily, error) {
	if precision < 4 || precision > 16 {
		return nil, errors.New("sketch: HLL precision must be in [4, 16]")
	}
	m := float64(uint64(1) << precision)
	var alpha float64
	switch precision {
	case 4:
		alpha = 0.673
	case 5:
		alpha = 0.697
	case 6:
		alpha = 0.709
	default:
		alpha = 0.7213 / (1 + 1.079/m)
	}
	return &HLLFamily{
		precision: precision,
		mask:      uint64(1)<<precision - 1,
		hash:      rng.NewPairwiseHash(r),
		hashMix:   r.Uint64(),
		alphaMM:   alpha * m * m,
	}, nil
}

// Registers returns m = 2^precision.
func (f *HLLFamily) Registers() int { return 1 << f.precision }

// StdError returns the nominal relative standard error 1.04/√m.
func (f *HLLFamily) StdError() float64 {
	return 1.04 / math.Sqrt(float64(f.Registers()))
}

// NewSketch returns an empty HLL bound to the family.
func (f *HLLFamily) NewSketch() *HLL {
	return &HLL{family: f, registers: make([]uint8, f.Registers())}
}

// Sketch builds an HLL of the given ids in one pass.
func (f *HLLFamily) Sketch(ids []int32) *HLL {
	s := f.NewSketch()
	for _, id := range ids {
		s.Add(uint64(uint32(id)))
	}
	return s
}

// Add inserts element x.
func (s *HLL) Add(x uint64) {
	f := s.family
	// The pairwise hash has a 61-bit range; re-mix to fill 64 bits so the
	// leading-zero count behaves like a uniform word.
	h := rng.Mix64(f.hash.Hash(x) ^ f.hashMix)
	idx := h & f.mask
	rest := h >> f.precision
	// rho = position of the leftmost 1-bit in the remaining 64-p bits.
	rho := uint8(1)
	width := 64 - int(f.precision)
	for b := width - 1; b >= 0; b-- {
		if rest&(1<<uint(b)) != 0 {
			break
		}
		rho++
	}
	if rho > s.registers[idx] {
		s.registers[idx] = rho
	}
}

// Reset zeroes all registers for reuse.
func (s *HLL) Reset() {
	clear(s.registers)
}

// Merge folds other into s (register-wise max). Both sketches must come
// from the same family.
func (s *HLL) Merge(other *HLL) error {
	if other == nil {
		return nil
	}
	if s.family != other.family {
		return errors.New("sketch: cannot merge HLLs from different families")
	}
	for i, v := range other.registers {
		if v > s.registers[i] {
			s.registers[i] = v
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *HLL) Clone() *HLL {
	c := s.family.NewSketch()
	copy(c.registers, s.registers)
	return c
}

// Estimate returns the estimated number of distinct elements, with the
// small-range (linear counting) correction of the original paper.
func (s *HLL) Estimate() float64 {
	f := s.family
	m := float64(f.Registers())
	var sum float64
	zeros := 0
	for _, v := range s.registers {
		sum += math.Pow(2, -float64(v))
		if v == 0 {
			zeros++
		}
	}
	e := f.alphaMM / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for small cardinalities.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// MemoryWords returns the register storage in 64-bit words.
func (s *HLL) MemoryWords() int { return (len(s.registers) + 7) / 8 }
