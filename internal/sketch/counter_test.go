package sketch

import (
	"testing"

	"fairnn/internal/rng"
)

func TestNewCounterFamilyKinds(t *testing.T) {
	for _, kind := range []Kind{KMV, HyperLogLog} {
		f, err := NewCounterFamily(kind, 0.5, 0.01, rng.New(uint64(kind)+1))
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		c := f.SketchIDs([]int32{1, 2, 3, 2, 1})
		if est := c.Estimate(); est < 2 || est > 4 {
			t.Errorf("kind %v: estimate %v for 3 distinct", kind, est)
		}
	}
	if _, err := NewCounterFamily(Kind(99), 0.5, 0.01, rng.New(1)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestCounterFamilyMergeInto(t *testing.T) {
	for _, kind := range []Kind{KMV, HyperLogLog} {
		f, err := NewCounterFamily(kind, 0.5, 0.01, rng.New(uint64(kind)+5))
		if err != nil {
			t.Fatal(err)
		}
		a := f.SketchIDs([]int32{1, 2, 3})
		b := f.SketchIDs([]int32{3, 4, 5})
		if err := f.MergeInto(a, b); err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		if est := a.Estimate(); est < 3.5 || est > 7 {
			t.Errorf("kind %v: merged estimate %v for union of 5", kind, est)
		}
	}
}

func TestCounterFamilyMergeTypeMismatch(t *testing.T) {
	kmv, _ := NewCounterFamily(KMV, 0.5, 0.01, rng.New(1))
	hll, _ := NewCounterFamily(HyperLogLog, 0.5, 0.01, rng.New(2))
	if err := kmv.MergeInto(kmv.NewCounter(), hll.NewCounter()); err == nil {
		t.Error("KMV family accepted an HLL sketch")
	}
	if err := hll.MergeInto(hll.NewCounter(), kmv.NewCounter()); err == nil {
		t.Error("HLL family accepted a KMV sketch")
	}
}

func TestHLLPrecisionSelection(t *testing.T) {
	// eps 0.5 → smallest p with 1.04/sqrt(2^p) <= 0.5 is p=4 (1.04/4=0.26).
	f, err := NewCounterFamily(HyperLogLog, 0.5, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	hf := f.(hllFamily).f
	if hf.Registers() != 16 {
		t.Errorf("eps 0.5 picked %d registers, want 16", hf.Registers())
	}
	// eps 0.02 → 1.04/sqrt(m) <= 0.02 → m >= 2704 → p=12.
	f2, err := NewCounterFamily(HyperLogLog, 0.02, 0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if f2.(hllFamily).f.Registers() != 4096 {
		t.Errorf("eps 0.02 picked %d registers, want 4096", f2.(hllFamily).f.Registers())
	}
}
