package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"fairnn/internal/rng"
)

func mustFamily(t *testing.T, eps, delta float64, seed uint64) *Family {
	t.Helper()
	f, err := NewFamily(Params{Epsilon: eps, Delta: delta}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Delta: 0.1},
		{Epsilon: 1, Delta: 0.1},
		{Epsilon: 0.5, Delta: 0},
		{Epsilon: 0.5, Delta: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Params{Epsilon: 0.5, Delta: 0.01}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestExactForSmallCounts(t *testing.T) {
	f := mustFamily(t, 0.5, 0.01, 1)
	s := f.NewSketch()
	for i := uint64(0); i < 20; i++ {
		s.Add(i)
		s.Add(i) // duplicates must not count
	}
	if got := s.Estimate(); got != 20 {
		t.Errorf("Estimate = %v, want exactly 20 (below row capacity)", got)
	}
}

func TestDuplicateInsensitivity(t *testing.T) {
	f := mustFamily(t, 0.5, 0.01, 2)
	a := f.NewSketch()
	b := f.NewSketch()
	for i := uint64(0); i < 5000; i++ {
		a.Add(i)
		b.Add(i)
		b.Add(i)
		b.Add(i % 100) // extra duplicates
	}
	if ea, eb := a.Estimate(), b.Estimate(); ea != eb {
		t.Errorf("duplicates changed estimate: %v vs %v", ea, eb)
	}
}

func TestAccuracyLargeStream(t *testing.T) {
	const n = 50000
	misses := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		f := mustFamily(t, 0.5, 0.05, uint64(trial+10))
		s := f.NewSketch()
		for i := uint64(0); i < n; i++ {
			s.Add(i * 2654435761) // spread-out ids
		}
		est := s.Estimate()
		if est < n*0.5 || est > n*1.5 {
			misses++
		}
	}
	if misses > 1 {
		t.Errorf("estimate outside (1±ε) range in %d/%d trials", misses, trials)
	}
}

func TestMergeEqualsWholeStream(t *testing.T) {
	// Sketch(A) merged with Sketch(B) must equal Sketch(A++B) exactly —
	// the segment-merge property Section 4 relies on.
	f := mustFamily(t, 0.5, 0.05, 3)
	whole := f.NewSketch()
	partA := f.NewSketch()
	partB := f.NewSketch()
	for i := uint64(0); i < 3000; i++ {
		whole.Add(i)
		if i%2 == 0 {
			partA.Add(i)
		} else {
			partB.Add(i)
		}
	}
	if err := partA.Merge(partB); err != nil {
		t.Fatal(err)
	}
	if got, want := partA.Estimate(), whole.Estimate(); got != want {
		t.Errorf("merged estimate %v != whole-stream estimate %v", got, want)
	}
	for w := range whole.rows {
		if len(whole.rows[w]) != len(partA.rows[w]) {
			t.Fatalf("row %d lengths differ", w)
		}
		for i := range whole.rows[w] {
			if whole.rows[w][i] != partA.rows[w][i] {
				t.Fatalf("row %d differs at %d", w, i)
			}
		}
	}
}

func TestMergePropertyQuick(t *testing.T) {
	f := mustFamily(t, 0.5, 0.1, 4)
	prop := func(a, b []uint32) bool {
		sa, sb, sw := f.NewSketch(), f.NewSketch(), f.NewSketch()
		for _, v := range a {
			sa.Add(uint64(v))
			sw.Add(uint64(v))
		}
		for _, v := range b {
			sb.Add(uint64(v))
			sw.Add(uint64(v))
		}
		if err := sa.Merge(sb); err != nil {
			return false
		}
		return sa.Estimate() == sw.Estimate()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFamilyMismatch(t *testing.T) {
	f1 := mustFamily(t, 0.5, 0.1, 5)
	f2 := mustFamily(t, 0.5, 0.1, 6)
	s1, s2 := f1.NewSketch(), f2.NewSketch()
	if err := s1.Merge(s2); err == nil {
		t.Error("merging across families must fail")
	}
}

func TestMergeNil(t *testing.T) {
	f := mustFamily(t, 0.5, 0.1, 7)
	s := f.NewSketch()
	if err := s.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v", err)
	}
}

func TestMergedEstimate(t *testing.T) {
	f := mustFamily(t, 0.5, 0.05, 8)
	s1 := f.Sketch([]int32{1, 2, 3})
	s2 := f.Sketch([]int32{3, 4, 5})
	est, err := MergedEstimate(s1, nil, s2)
	if err != nil {
		t.Fatal(err)
	}
	if est != 5 {
		t.Errorf("MergedEstimate = %v, want 5 (small union is exact)", est)
	}
	est, err = MergedEstimate()
	if err != nil || est != 0 {
		t.Errorf("empty MergedEstimate = %v, %v", est, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := mustFamily(t, 0.5, 0.1, 9)
	s := f.Sketch([]int32{1, 2, 3})
	c := s.Clone()
	c.Add(100)
	if s.Estimate() == c.Estimate() {
		t.Error("Clone shares row storage")
	}
}

func TestOverlappingUnionEstimate(t *testing.T) {
	// The merged estimate must track |A ∪ B|, not |A| + |B|.
	f := mustFamily(t, 0.5, 0.05, 11)
	const n = 20000
	sa, sb := f.NewSketch(), f.NewSketch()
	for i := uint64(0); i < n; i++ {
		sa.Add(i)
		sb.Add(i + n/2) // 50% overlap; union = 1.5n
	}
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	est := sa.Estimate()
	want := 1.5 * n
	if math.Abs(est-want)/want > 0.5 {
		t.Errorf("union estimate %v, want ≈ %v", est, want)
	}
}

func TestMemoryWords(t *testing.T) {
	f := mustFamily(t, 0.5, 0.1, 12)
	s := f.NewSketch()
	if s.MemoryWords() != 0 {
		t.Error("empty sketch has nonzero memory")
	}
	s.Add(1)
	if s.MemoryWords() != f.Rows() {
		t.Errorf("one element should occupy one slot per row: %d vs %d", s.MemoryWords(), f.Rows())
	}
}
