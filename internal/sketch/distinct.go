// Package sketch implements the mergeable count-distinct (F0) sketch of
// Section 2.3 of the paper, following Bar-Yossef, Jayram, Kumar, Sivakumar
// and Trevisan ("Counting Distinct Elements in a Data Stream", RANDOM 2002),
// which generalizes Flajolet–Martin.
//
// The sketch keeps Δ = Θ(log 1/δ) independent rows; row w stores the
// t = Θ(1/ε²) smallest distinct values of {ψ_w(x)} over the stream, where
// ψ_w is drawn from a pairwise-independent family. The estimate is the
// median over rows of t·M/v_t, with v_t the t-th smallest value in the row
// and M the hash range. With probability at least 1-δ the estimate is
// within (1±ε) of the true number of distinct elements.
//
// Sketches of stream segments can be merged (union of rows, keep the t
// smallest), which is the property Section 4 uses: every LSH bucket stores
// a sketch, and a query merges the L sketches of its buckets to estimate
// s_q = |S_q|.
package sketch

import (
	"errors"
	"math"
	"sort"

	"fairnn/internal/rng"
)

// Params fixes the accuracy of a Distinct sketch.
type Params struct {
	// Epsilon is the multiplicative estimation error (ε in the paper).
	Epsilon float64
	// Delta is the failure probability (δ in the paper).
	Delta float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return errors.New("sketch: Epsilon must be in (0,1)")
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return errors.New("sketch: Delta must be in (0,1)")
	}
	return nil
}

// rows returns Δ = Θ(log 1/δ).
func (p Params) rows() int {
	d := int(math.Ceil(4 * math.Log(1/p.Delta)))
	if d < 1 {
		d = 1
	}
	// The median trick needs an odd number of rows.
	if d%2 == 0 {
		d++
	}
	return d
}

// capacityPerRow returns t = Θ(1/ε²).
func (p Params) capacityPerRow() int {
	t := int(math.Ceil(16 / (p.Epsilon * p.Epsilon)))
	if t < 2 {
		t = 2
	}
	return t
}

// FamilySeed identifies the shared hash functions ψ_1..ψ_Δ. Two sketches
// can only be merged if they were created from the same Family.
type Family struct {
	params Params
	t      int
	hashes []rng.PairwiseHash
}

// NewFamily draws the Δ pairwise-independent hash functions. All sketches
// of one Section 4 data structure share a single Family so that per-bucket
// sketches are mergeable.
func NewFamily(params Params, r *rng.Source) (*Family, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rows := params.rows()
	hashes := make([]rng.PairwiseHash, rows)
	for i := range hashes {
		hashes[i] = rng.NewPairwiseHash(r)
	}
	return &Family{params: params, t: params.capacityPerRow(), hashes: hashes}, nil
}

// Rows returns Δ, the number of independent estimator rows.
func (f *Family) Rows() int { return len(f.hashes) }

// Capacity returns t, the number of minima kept per row.
func (f *Family) Capacity() int { return f.t }

// Distinct is one F0 sketch. The zero value is not usable; create sketches
// with Family.NewSketch.
type Distinct struct {
	family *Family
	// rows[w] holds the at most t smallest distinct hash values seen by ψ_w,
	// kept as a sorted ascending slice (t is small, insertion is a memmove).
	rows [][]uint64
	// estScratch backs Estimate's per-row medians so repeated estimates on
	// a reused sketch do not allocate.
	estScratch []float64
}

// NewSketch returns an empty sketch bound to the family.
func (f *Family) NewSketch() *Distinct {
	rows := make([][]uint64, f.Rows())
	return &Distinct{family: f, rows: rows}
}

// Sketch builds a sketch of the given ids in one pass.
func (f *Family) Sketch(ids []int32) *Distinct {
	s := f.NewSketch()
	for _, id := range ids {
		s.Add(uint64(uint32(id)))
	}
	return s
}

// Add inserts element x into the sketch.
func (s *Distinct) Add(x uint64) {
	for w, h := range s.family.hashes {
		s.insert(w, h.Hash(x))
	}
}

// insert places value v into row w if it is among the t smallest distinct
// values, keeping the row sorted.
func (s *Distinct) insert(w int, v uint64) {
	row := s.rows[w]
	t := s.family.t
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return // already present (distinct values only)
	}
	if len(row) == t && i == t {
		return // larger than current t-th minimum
	}
	if len(row) < t {
		row = append(row, 0)
	}
	copy(row[i+1:], row[i:])
	row[i] = v
	s.rows[w] = row
}

// Reset empties the sketch, keeping each row's capacity for reuse.
func (s *Distinct) Reset() {
	for w := range s.rows {
		s.rows[w] = s.rows[w][:0]
	}
}

// Merge folds other into s. Both sketches must come from the same Family.
// Merging sketches of stream segments yields exactly the sketch of the
// concatenated stream (the property Section 4 relies on).
func (s *Distinct) Merge(other *Distinct) error {
	if other == nil {
		return nil
	}
	if s.family != other.family {
		return errors.New("sketch: cannot merge sketches from different families")
	}
	for w, row := range other.rows {
		for _, v := range row {
			s.insert(w, v)
		}
	}
	return nil
}

// Clone returns a deep copy of s (same family).
func (s *Distinct) Clone() *Distinct {
	c := s.family.NewSketch()
	for w, row := range s.rows {
		c.rows[w] = append([]uint64(nil), row...)
	}
	return c
}

// Estimate returns the estimated number of distinct elements: the median
// over rows of t·M/v_t, or the exact count when a row holds fewer than t
// values (then the row has seen every distinct element).
func (s *Distinct) Estimate() float64 {
	f := s.family
	if cap(s.estScratch) < len(s.rows) {
		s.estScratch = make([]float64, 0, len(s.rows))
	}
	ests := s.estScratch[:0]
	for w, row := range s.rows {
		if len(row) < f.t {
			// Fewer than t distinct hashed values: exact distinct count
			// (pairwise-independent hashing over a 61-bit range makes
			// collisions negligible at the scales used here).
			ests = append(ests, float64(len(row)))
			continue
		}
		vt := row[len(row)-1]
		if vt == 0 {
			ests = append(ests, float64(len(row)))
			continue
		}
		m := float64(f.hashes[w].Range())
		ests = append(ests, float64(f.t)*m/float64(vt))
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// MergedEstimate merges the given sketches (without mutating them) and
// returns the estimate of the union. A nil entry is skipped. Returns 0 when
// all inputs are nil or empty.
func MergedEstimate(sketches ...*Distinct) (float64, error) {
	var acc *Distinct
	for _, sk := range sketches {
		if sk == nil {
			continue
		}
		if acc == nil {
			acc = sk.Clone()
			continue
		}
		if err := acc.Merge(sk); err != nil {
			return 0, err
		}
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// MemoryWords returns an estimate of the sketch size in 64-bit words,
// used by the Section 4 construction to decide whether storing the sketch
// is cheaper than re-sketching a small bucket on demand.
func (s *Distinct) MemoryWords() int {
	n := 0
	for _, row := range s.rows {
		n += len(row)
	}
	return n
}
