package sketch

import (
	"errors"
	"math"

	"fairnn/internal/rng"
)

// Counter is the common interface of the two count-distinct sketches
// (the Section 2.3 KMV/BJKST sketch and HyperLogLog), letting the
// Section 4 data structure treat its per-bucket sketches generically.
type Counter interface {
	// Add inserts an element.
	Add(x uint64)
	// Estimate returns the estimated number of distinct elements.
	Estimate() float64
	// MemoryWords returns the sketch size in 64-bit words.
	MemoryWords() int
	// Reset empties the counter while keeping its internal capacity, so
	// hot query paths can reuse one counter without allocating.
	Reset()
}

// CounterFamily creates mergeable counters that share hash functions.
type CounterFamily interface {
	// NewCounter returns an empty counter.
	NewCounter() Counter
	// SketchIDs builds a counter over point ids in one pass.
	SketchIDs(ids []int32) Counter
	// MergeInto folds src into dst; both must come from this family.
	MergeInto(dst, src Counter) error
}

// Kind selects a counter implementation.
type Kind int

const (
	// KMV is the paper's Section 2.3 sketch (t smallest hash values per
	// row, Δ rows): clean (ε, δ) guarantees under pairwise independence.
	KMV Kind = iota
	// HyperLogLog trades the analysis for ~10x smaller sketches at
	// comparable practical accuracy.
	HyperLogLog
)

// NewCounterFamily constructs a family of the given kind. For KMV, eps and
// delta carry the Section 2.3 parameters; for HyperLogLog, eps picks the
// precision p as the smallest with 1.04/√(2^p) ≤ eps (delta is unused).
func NewCounterFamily(kind Kind, eps, delta float64, r *rng.Source) (CounterFamily, error) {
	switch kind {
	case KMV:
		f, err := NewFamily(Params{Epsilon: eps, Delta: delta}, r)
		if err != nil {
			return nil, err
		}
		return kmvFamily{f}, nil
	case HyperLogLog:
		// Smallest precision p with nominal error 1.04/√(2^p) ≤ eps.
		p := uint8(4)
		for p < 16 && 1.04/math.Sqrt(float64(uint64(1)<<p)) > eps {
			p++
		}
		f, err := NewHLLFamily(p, r)
		if err != nil {
			return nil, err
		}
		return hllFamily{f}, nil
	default:
		return nil, errors.New("sketch: unknown counter kind")
	}
}

type kmvFamily struct{ f *Family }

func (k kmvFamily) NewCounter() Counter { return k.f.NewSketch() }

func (k kmvFamily) SketchIDs(ids []int32) Counter { return k.f.Sketch(ids) }

func (k kmvFamily) MergeInto(dst, src Counter) error {
	d, ok := dst.(*Distinct)
	if !ok {
		return errors.New("sketch: dst is not a KMV sketch")
	}
	s, ok := src.(*Distinct)
	if !ok {
		return errors.New("sketch: src is not a KMV sketch")
	}
	return d.Merge(s)
}

type hllFamily struct{ f *HLLFamily }

func (h hllFamily) NewCounter() Counter { return h.f.NewSketch() }

func (h hllFamily) SketchIDs(ids []int32) Counter { return h.f.Sketch(ids) }

func (h hllFamily) MergeInto(dst, src Counter) error {
	d, ok := dst.(*HLL)
	if !ok {
		return errors.New("sketch: dst is not an HLL sketch")
	}
	s, ok := src.(*HLL)
	if !ok {
		return errors.New("sketch: src is not an HLL sketch")
	}
	return d.Merge(s)
}
