// Package stats provides the statistical machinery the experiments use to
// quantify (un)fairness: empirical frequency tables over returned
// neighbors, total-variation distance from the uniform distribution,
// a χ² uniformity test (with its own regularized incomplete gamma
// implementation, since the stdlib has none), quantiles and summaries.
package stats

import (
	"math"
	"sort"
)

// Frequency counts occurrences of int32 outcomes (returned point ids).
type Frequency struct {
	counts map[int32]int
	total  int
}

// NewFrequency returns an empty frequency table.
func NewFrequency() *Frequency {
	return &Frequency{counts: make(map[int32]int)}
}

// Observe records one outcome.
func (f *Frequency) Observe(id int32) {
	f.counts[id]++
	f.total++
}

// Total returns the number of observations.
func (f *Frequency) Total() int { return f.total }

// Count returns the number of observations of id.
func (f *Frequency) Count(id int32) int { return f.counts[id] }

// Rel returns the relative frequency of id.
func (f *Frequency) Rel(id int32) float64 {
	if f.total == 0 {
		return 0
	}
	return float64(f.counts[id]) / float64(f.total)
}

// Support returns the observed outcomes in ascending order.
func (f *Frequency) Support() []int32 {
	out := make([]int32, 0, len(f.counts))
	for id := range f.counts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TVFromUniform returns the total-variation distance between the empirical
// distribution restricted to domain and the uniform distribution over
// domain: ½ Σ |p̂(i) − 1/|domain||. Observations outside domain contribute
// their full mass (they should not have been returned at all).
func (f *Frequency) TVFromUniform(domain []int32) float64 {
	if f.total == 0 || len(domain) == 0 {
		return 0
	}
	inDomain := make(map[int32]struct{}, len(domain))
	for _, id := range domain {
		inDomain[id] = struct{}{}
	}
	u := 1 / float64(len(domain))
	tv := 0.0
	for _, id := range domain {
		tv += math.Abs(f.Rel(id) - u)
	}
	for id, c := range f.counts {
		if _, ok := inDomain[id]; !ok {
			tv += float64(c) / float64(f.total)
		}
	}
	return tv / 2
}

// ChiSquareUniform returns the χ² statistic and p-value of the empirical
// counts against the uniform null over domain. Observations outside the
// domain are pooled into one extra cell. The p-value uses the χ² survival
// function with len(domain)-1 (+1 if the extra cell is non-empty) degrees
// of freedom.
func (f *Frequency) ChiSquareUniform(domain []int32) (statistic, pValue float64) {
	if f.total == 0 || len(domain) == 0 {
		return 0, 1
	}
	expected := float64(f.total) / float64(len(domain))
	chi2 := 0.0
	seen := make(map[int32]struct{}, len(domain))
	for _, id := range domain {
		seen[id] = struct{}{}
		d := float64(f.counts[id]) - expected
		chi2 += d * d / expected
	}
	outside := 0
	for id, c := range f.counts {
		if _, ok := seen[id]; !ok {
			outside += c
		}
	}
	df := float64(len(domain) - 1)
	if outside > 0 {
		// Pool out-of-domain mass into one cell with expectation ~0⁺; treat
		// as expected-1 cell to keep the statistic finite but punishing.
		d := float64(outside) - 1
		chi2 += d*d/1 + 1
		df++
	}
	return chi2, ChiSquareSurvival(chi2, df)
}

// ChiSquareSurvival returns P[X ≥ x] for X ~ χ²(df).
func ChiSquareSurvival(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - RegularizedGammaP(df/2, x/2)
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction for x ≥ a+1 (Numerical Recipes style, using math.Lgamma).
func RegularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of values using linear
// interpolation; the input is not modified.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	Q25, Q75  float64
}

// Summarize computes descriptive statistics of values.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		s.Mean, s.Std = math.NaN(), math.NaN()
		s.Min, s.Max = math.NaN(), math.NaN()
		s.Median, s.Q25, s.Q75 = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sum := 0.0
	s.Min, s.Max = values[0], values[0]
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	if len(values) > 1 {
		s.Std = math.Sqrt(ss / float64(len(values)-1))
	}
	s.Median = Quantile(values, 0.5)
	s.Q25 = Quantile(values, 0.25)
	s.Q75 = Quantile(values, 0.75)
	return s
}

// Histogram bins values into nbins equal-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with nbins bins covering [lo, hi].
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Observe adds a value (clamped into range).
func (h *Histogram) Observe(v float64) {
	if len(h.Counts) == 0 {
		return
	}
	frac := (v - h.Lo) / (h.Hi - h.Lo)
	i := int(frac * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
