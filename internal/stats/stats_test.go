package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrequencyBasics(t *testing.T) {
	f := NewFrequency()
	if f.Total() != 0 || f.Rel(1) != 0 {
		t.Fatal("empty frequency wrong")
	}
	f.Observe(1)
	f.Observe(1)
	f.Observe(2)
	if f.Total() != 3 || f.Count(1) != 2 {
		t.Fatal("counts wrong")
	}
	if math.Abs(f.Rel(1)-2.0/3.0) > 1e-12 {
		t.Fatal("rel wrong")
	}
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 2 {
		t.Fatalf("support %v", sup)
	}
}

func TestTVFromUniformExactlyUniform(t *testing.T) {
	f := NewFrequency()
	domain := []int32{0, 1, 2, 3}
	for i := 0; i < 1000; i++ {
		f.Observe(int32(i % 4))
	}
	if tv := f.TVFromUniform(domain); tv > 1e-12 {
		t.Errorf("TV = %v for perfectly uniform counts", tv)
	}
}

func TestTVFromUniformPointMass(t *testing.T) {
	f := NewFrequency()
	domain := []int32{0, 1, 2, 3}
	for i := 0; i < 100; i++ {
		f.Observe(0)
	}
	// Point mass vs uniform over 4: TV = 1 - 1/4.
	if tv := f.TVFromUniform(domain); math.Abs(tv-0.75) > 1e-12 {
		t.Errorf("TV = %v, want 0.75", tv)
	}
}

func TestTVOutOfDomainMassCounts(t *testing.T) {
	f := NewFrequency()
	domain := []int32{0, 1}
	f.Observe(0)
	f.Observe(1)
	f.Observe(99) // outside
	tv := f.TVFromUniform(domain)
	// p = (1/3, 1/3) on domain, 1/3 outside: TV = ½(|1/3−1/2|·2 + 1/3) = 1/3.
	if math.Abs(tv-1.0/3.0) > 1e-12 {
		t.Errorf("TV = %v, want 1/3", tv)
	}
}

func TestTVBounds(t *testing.T) {
	prop := func(obs []uint8) bool {
		f := NewFrequency()
		for _, o := range obs {
			f.Observe(int32(o % 16))
		}
		tv := f.TVFromUniform([]int32{0, 1, 2, 3, 4, 5, 6, 7})
		return tv >= -1e-12 && tv <= 1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	f := NewFrequency()
	domain := make([]int32, 10)
	for i := range domain {
		domain[i] = int32(i)
	}
	for i := 0; i < 10000; i++ {
		f.Observe(int32(i % 10))
	}
	stat, p := f.ChiSquareUniform(domain)
	if stat > 1e-9 {
		t.Errorf("statistic %v for exact uniform", stat)
	}
	if p < 0.99 {
		t.Errorf("p = %v for exact uniform", p)
	}
}

func TestChiSquareUniformRejectsSkew(t *testing.T) {
	f := NewFrequency()
	domain := []int32{0, 1, 2, 3}
	for i := 0; i < 1000; i++ {
		f.Observe(0)
	}
	for i := 0; i < 10; i++ {
		f.Observe(1)
		f.Observe(2)
		f.Observe(3)
	}
	if _, p := f.ChiSquareUniform(domain); p > 1e-6 {
		t.Errorf("p = %v for extreme skew", p)
	}
}

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// Chi-square with 2 df: survival(x) = e^{-x/2}.
	for _, x := range []float64{0.5, 1, 3, 10} {
		want := math.Exp(-x / 2)
		if got := ChiSquareSurvival(x, 2); math.Abs(got-want) > 1e-9 {
			t.Errorf("survival(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi-square_1 ≈ 0.4549.
	if got := ChiSquareSurvival(0.4549, 1); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("survival at median = %v", got)
	}
}

func TestRegularizedGammaPEdges(t *testing.T) {
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Errorf("P(2,0) = %v", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("negative a accepted")
	}
	if !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Error("negative x accepted")
	}
	if got := RegularizedGammaP(3, 1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("P(3,large) = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(vals, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatal("N wrong")
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %v %v", s.Min, s.Max)
	}
	if math.Abs(s.Std-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Errorf("std %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Error("empty summary wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, v := range []float64{0.1, 0.3, 0.6, 0.9, -5, 5} {
		h.Observe(v)
	}
	if h.Total != 6 {
		t.Fatalf("total %d", h.Total)
	}
	if h.Counts[0] != 2 { // 0.1 and clamped -5
		t.Errorf("bin 0 count %d", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 0.9 and clamped 5
		t.Errorf("bin 3 count %d", h.Counts[3])
	}
	if math.Abs(h.BinCenter(0)-0.125) > 1e-12 {
		t.Errorf("bin center %v", h.BinCenter(0))
	}
}
