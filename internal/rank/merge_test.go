package rank

import (
	"slices"
	"testing"

	"fairnn/internal/rng"
)

// buildBuckets makes buckets over overlapping id sets under one shared
// assignment, so the merge sees genuine duplicates.
func buildBuckets(t *testing.T, n int, groups [][]int32) (*Assignment, []*Bucket) {
	t.Helper()
	a := NewAssignment(n, rng.New(19))
	buckets := make([]*Bucket, len(groups))
	for i, g := range groups {
		buckets[i] = NewBucket(slices.Clone(g), a)
	}
	return a, buckets
}

func TestMergerStreamsInRankOrder(t *testing.T) {
	a, buckets := buildBuckets(t, 32, [][]int32{
		{0, 1, 2, 3, 4, 5},
		{3, 4, 5, 6, 7},
		{},
		{7, 8, 9, 0},
	})
	var m Merger
	m.Reset(buckets)
	prev := int32(-1)
	count := 0
	for {
		id, r, ok := m.Next()
		if !ok {
			break
		}
		count++
		if r != a.Of(id) {
			t.Fatalf("emitted rank %d for id %d, want %d", r, id, a.Of(id))
		}
		if r < prev {
			t.Fatalf("ranks not non-decreasing: %d after %d", r, prev)
		}
		prev = r
	}
	// Total emissions = total multiplicity (duplicates are emitted once
	// per containing bucket).
	if want := 6 + 5 + 0 + 4; count != want {
		t.Fatalf("emitted %d entries, want %d", count, want)
	}
}

func TestMergeDedup(t *testing.T) {
	_, buckets := buildBuckets(t, 64, [][]int32{
		{10, 11, 12, 13},
		{12, 13, 14},
		{10, 14, 15, 16},
	})
	var m Merger
	ids, ranks := MergeDedup(&m, buckets, nil, nil)
	if len(ids) != len(ranks) {
		t.Fatalf("ids/ranks length mismatch: %d vs %d", len(ids), len(ranks))
	}
	want := []int32{10, 11, 12, 13, 14, 15, 16}
	got := slices.Clone(ids)
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("deduplicated ids = %v, want %v", got, want)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i-1] >= ranks[i] {
			t.Fatalf("ranks not strictly ascending at %d: %v", i, ranks)
		}
	}
	// Reuse with recycled buffers: same result, nil buckets skipped.
	ids2, ranks2 := MergeDedup(&m, append(buckets, nil), ids[:0], ranks[:0])
	if !slices.Equal(ids2, ids[:len(ids2)]) || len(ids2) != len(want) {
		t.Fatalf("recycled merge differs: %v", ids2)
	}
	_ = ranks2
}

func TestSearchRanksBoundaries(t *testing.T) {
	ranks := []int32{2, 5, 5, 9}
	cases := map[int32]int{0: 0, 2: 0, 3: 1, 5: 1, 6: 3, 9: 3, 10: 4}
	for target, want := range cases {
		if got := SearchRanks(ranks, target); got != want {
			t.Errorf("SearchRanks(%v, %d) = %d, want %d", ranks, target, got, want)
		}
	}
	if got := SearchRanks(nil, 3); got != 0 {
		t.Errorf("SearchRanks(nil) = %d, want 0", got)
	}
}
