package rank

import (
	"testing"
	"testing/quick"

	"fairnn/internal/rng"
)

func TestTreapBasicOps(t *testing.T) {
	a := NewAssignment(50, rng.New(1))
	tr := NewTreap([]int32{3, 7, 11, 19, 23}, a)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Valid(a) {
		t.Fatal("invalid after build")
	}
	for _, id := range []int32{3, 7, 11, 19, 23} {
		if !tr.Contains(a, id) {
			t.Fatalf("missing %d", id)
		}
	}
	if tr.Contains(a, 4) {
		t.Fatal("phantom member")
	}
	if !tr.Remove(a, 11) {
		t.Fatal("Remove existing failed")
	}
	if tr.Remove(a, 11) {
		t.Fatal("Remove missing succeeded")
	}
	if tr.Len() != 4 || !tr.Valid(a) {
		t.Fatal("invalid after removal")
	}
	tr.Insert(a, 11)
	tr.Insert(a, 11) // duplicate insert is a no-op
	if tr.Len() != 5 || !tr.Valid(a) {
		t.Fatal("invalid after reinsert")
	}
}

func TestTreapMin(t *testing.T) {
	a := IdentityAssignment(20)
	tr := NewTreap([]int32{9, 4, 15}, a)
	id, ok := tr.Min()
	if !ok || id != 4 {
		t.Fatalf("Min = %d, %v", id, ok)
	}
	empty := NewTreap(nil, a)
	if _, ok := empty.Min(); ok {
		t.Fatal("Min on empty succeeded")
	}
}

func TestTreapMatchesBucketReference(t *testing.T) {
	// Property: Treap and the sorted-slice Bucket agree on every
	// operation for arbitrary id sets and rank ranges.
	prop := func(seed uint64, rawIDs []uint8, loRaw, hiRaw uint8) bool {
		const n = 150
		a := NewAssignment(n, rng.New(seed))
		seen := map[int32]bool{}
		var ids []int32
		for _, v := range rawIDs {
			id := int32(v) % n
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		tr := NewTreap(append([]int32(nil), ids...), a)
		bk := NewBucket(append([]int32(nil), ids...), a)
		if tr.Len() != bk.Len() {
			return false
		}
		lo := int32(loRaw) % n
		hi := int32(hiRaw) % n
		if lo > hi {
			lo, hi = hi, lo
		}
		gotT := tr.RangeReport(lo, hi, nil)
		gotB := bk.RangeReport(a, lo, hi, nil)
		if len(gotT) != len(gotB) {
			return false
		}
		for i := range gotT {
			if gotT[i] != gotB[i] {
				return false
			}
		}
		if tr.CountRange(lo, hi) != bk.CountRange(a, lo, hi) {
			return false
		}
		// In-order traversal equals the bucket's rank order.
		all := tr.InOrder(nil)
		if len(all) != bk.Len() {
			return false
		}
		for i, id := range all {
			if id != bk.At(i) {
				return false
			}
		}
		return tr.Valid(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapRandomOpsStayValid(t *testing.T) {
	prop := func(seed uint64, ops []uint16) bool {
		const n = 100
		a := NewAssignment(n, rng.New(seed))
		tr := NewTreap(nil, a)
		member := map[int32]bool{}
		for _, op := range ops {
			id := int32(op) % n
			switch (op / n) % 3 {
			case 0:
				tr.Insert(a, id)
				member[id] = true
			case 1:
				got := tr.Remove(a, id)
				if got != member[id] {
					return false
				}
				delete(member, id)
			case 2:
				if tr.Contains(a, id) != member[id] {
					return false
				}
			}
		}
		return tr.Len() == len(member) && tr.Valid(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapRankSwapWorkflow(t *testing.T) {
	// The Appendix A update on a treap: remove both ids, swap, reinsert.
	const n = 60
	a := NewAssignment(n, rng.New(4))
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	tr := NewTreap(all, a)
	src := rng.New(5)
	for i := 0; i < 300; i++ {
		x := int32(src.Intn(n))
		y := int32(src.Intn(n))
		tr.Remove(a, x)
		if x != y {
			tr.Remove(a, y)
		}
		a.Swap(x, y)
		tr.Insert(a, x)
		if x != y {
			tr.Insert(a, y)
		}
		if !tr.Valid(a) {
			t.Fatalf("invalid after swap %d", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("lost elements: %d", tr.Len())
	}
}

func TestTreapReinsertAfterRankChange(t *testing.T) {
	const n = 40
	a := NewAssignment(n, rng.New(7))
	tr := NewTreap([]int32{1, 2, 3, 4, 5}, a)
	// Swap ranks *without* removing first — the stale-rank path.
	a.Swap(2, 3)
	tr.Reinsert(a, 2)
	tr.Reinsert(a, 3)
	if !tr.Valid(a) {
		t.Fatal("invalid after Reinsert")
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTreapDepthIsLogarithmic(t *testing.T) {
	const n = 4096
	a := NewAssignment(n, rng.New(9))
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	tr := NewTreap(ids, a)
	d := depth(tr.root)
	// Expected depth ~ 3·log2(n) ≈ 36 for a treap; fail above 5·log2(n).
	if d > 60 {
		t.Errorf("treap depth %d too large for n=%d", d, n)
	}
}

func depth(n *treapNode) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
