package rank

import (
	"fmt"
	"testing"

	"fairnn/internal/rng"
)

// Crossover benchmarks: sorted-slice Bucket vs Treap for the operations
// the core data structures perform. Slices win for the small buckets LSH
// typically produces (O(bucket) memmove beats pointer chasing); treaps win
// for the large, frequently-updated buckets of the Appendix A workload.

func benchIDs(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

func BenchmarkBucketVsTreap(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		a := NewAssignment(size, rng.New(1))
		src := rng.New(2)
		b.Run(fmt.Sprintf("slice/update/n=%d", size), func(b *testing.B) {
			bk := NewBucket(benchIDs(size), a)
			for i := 0; i < b.N; i++ {
				id := int32(src.Intn(size))
				bk.Remove(a, id)
				bk.Insert(a, id)
			}
		})
		b.Run(fmt.Sprintf("treap/update/n=%d", size), func(b *testing.B) {
			tr := NewTreap(benchIDs(size), a)
			for i := 0; i < b.N; i++ {
				id := int32(src.Intn(size))
				tr.Remove(a, id)
				tr.Insert(a, id)
			}
		})
		b.Run(fmt.Sprintf("slice/range/n=%d", size), func(b *testing.B) {
			bk := NewBucket(benchIDs(size), a)
			out := make([]int32, 0, 64)
			for i := 0; i < b.N; i++ {
				lo := int32(src.Intn(size))
				out = bk.RangeReport(a, lo, lo+int32(size/16)+1, out[:0])
			}
		})
		b.Run(fmt.Sprintf("treap/range/n=%d", size), func(b *testing.B) {
			tr := NewTreap(benchIDs(size), a)
			out := make([]int32, 0, 64)
			for i := 0; i < b.N; i++ {
				lo := int32(src.Intn(size))
				out = tr.RangeReport(lo, lo+int32(size/16)+1, out[:0])
			}
		})
	}
}
