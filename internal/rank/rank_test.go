package rank

import (
	"testing"
	"testing/quick"

	"fairnn/internal/rng"
)

func TestAssignmentBijection(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		return NewAssignment(n, rng.New(seed)).Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAssignment(t *testing.T) {
	a := IdentityAssignment(10)
	if !a.Valid() {
		t.Fatal("identity not valid")
	}
	for i := int32(0); i < 10; i++ {
		if a.Of(i) != i || a.IDAt(i) != i {
			t.Fatalf("identity broken at %d", i)
		}
	}
}

func TestSwapPreservesBijection(t *testing.T) {
	f := func(seed uint64, swaps []uint16) bool {
		const n = 64
		a := NewAssignment(n, rng.New(seed))
		for _, s := range swaps {
			id1 := int32(s % n)
			id2 := int32((s / n) % n)
			r1, r2 := a.Of(id1), a.Of(id2)
			a.Swap(id1, id2)
			if a.Of(id1) != r2 || a.Of(id2) != r1 {
				return false
			}
		}
		return a.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapSelf(t *testing.T) {
	a := NewAssignment(5, rng.New(1))
	r := a.Of(2)
	a.Swap(2, 2)
	if a.Of(2) != r || !a.Valid() {
		t.Fatal("self-swap broke assignment")
	}
}

func TestBucketSortedAndRangeReport(t *testing.T) {
	f := func(seed uint64, rawIDs []uint8, loRaw, hiRaw uint8) bool {
		const n = 200
		a := NewAssignment(n, rng.New(seed))
		// Build a bucket from distinct ids.
		seen := map[int32]bool{}
		var ids []int32
		for _, v := range rawIDs {
			id := int32(v) % n
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		b := NewBucket(ids, a)
		if !b.Sorted(a) {
			return false
		}
		lo := int32(loRaw) % n
		hi := int32(hiRaw) % n
		if lo > hi {
			lo, hi = hi, lo
		}
		got := b.RangeReport(a, lo, hi, nil)
		// Reference: filter the bucket's ids naively.
		var want []int32
		for id := range seen {
			if a.Of(id) >= lo && a.Of(id) < hi {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			return false
		}
		if b.CountRange(a, lo, hi) != len(want) {
			return false
		}
		// got must be sorted by rank and contain exactly want's members.
		wantSet := map[int32]bool{}
		for _, id := range want {
			wantSet[id] = true
		}
		prev := int32(-1)
		for _, id := range got {
			if !wantSet[id] {
				return false
			}
			if a.Of(id) <= prev {
				return false
			}
			prev = a.Of(id)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRemoveInsert(t *testing.T) {
	const n = 50
	a := NewAssignment(n, rng.New(3))
	ids := []int32{1, 5, 9, 13, 21, 34}
	b := NewBucket(append([]int32(nil), ids...), a)
	if !b.Remove(a, 9) {
		t.Fatal("Remove existing returned false")
	}
	if b.Remove(a, 9) {
		t.Fatal("Remove missing returned true")
	}
	if b.Contains(a, 9) {
		t.Fatal("still contains removed id")
	}
	b.Insert(a, 9)
	if !b.Contains(a, 9) || !b.Sorted(a) {
		t.Fatal("Insert broke bucket")
	}
	if b.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(ids))
	}
}

func TestBucketSwapWorkflow(t *testing.T) {
	// Simulate the Appendix A update: remove both, swap ranks, reinsert.
	const n = 40
	a := NewAssignment(n, rng.New(4))
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	b := NewBucket(append([]int32(nil), all...), a)
	src := rng.New(5)
	for i := 0; i < 200; i++ {
		x := int32(src.Intn(n))
		y := int32(src.Intn(n))
		b.Remove(a, x)
		if x != y {
			b.Remove(a, y)
		}
		a.Swap(x, y)
		b.Insert(a, x)
		if x != y {
			b.Insert(a, y)
		}
		if !b.Sorted(a) {
			t.Fatalf("bucket unsorted after swap %d", i)
		}
		if b.Len() != n {
			t.Fatalf("bucket lost elements: %d", b.Len())
		}
	}
	if !a.Valid() {
		t.Fatal("assignment invalid after swaps")
	}
}

func TestBucketAtAndIDs(t *testing.T) {
	a := IdentityAssignment(10)
	b := NewBucket([]int32{7, 3, 5}, a)
	if b.At(0) != 3 || b.At(1) != 5 || b.At(2) != 7 {
		t.Fatalf("order wrong: %v", b.IDs())
	}
}

func TestRangeReportAppends(t *testing.T) {
	a := IdentityAssignment(10)
	b := NewBucket([]int32{1, 2, 3}, a)
	pre := []int32{99}
	out := b.RangeReport(a, 0, 10, pre)
	if len(out) != 4 || out[0] != 99 {
		t.Fatalf("RangeReport did not append: %v", out)
	}
}
