package rank

// This file implements the allocation-free k-way merge over rank-sorted
// buckets shared by the Section 3 k-sample query (streaming consumption)
// and the Section 4 merged candidate cursor (full materialization). The
// merge is a hand-rolled binary heap over a reusable cursor slice rather
// than container/heap, whose interface{} boxing allocates per operation.

// mergeCursor is a position inside one rank-sorted bucket, ordered by the
// rank of the current id.
type mergeCursor struct {
	ids   []int32
	ranks []int32
	pos   int
	r     int32
}

//fairnn:noalloc
func cursorSiftDown(h []mergeCursor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].r < h[l].r {
			m = r
		}
		if h[i].r <= h[m].r {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Merger streams the union of several rank-sorted buckets in ascending
// rank order. The cursor slice is retained across Reset calls, so a
// pooled Merger performs zero allocations in steady state. Duplicate ids
// (the same point stored in several buckets) are emitted once per bucket
// but are always adjacent, because a point's rank is the same everywhere —
// callers deduplicate by comparing against the previously emitted id.
type Merger struct {
	h []mergeCursor
}

// Reset points the merger at a new set of buckets (nil/empty entries are
// skipped) and rebuilds the heap.
//
//fairnn:noalloc
func (m *Merger) Reset(buckets []*Bucket) {
	h := m.h[:0]
	for _, b := range buckets {
		if b == nil || len(b.ids) == 0 {
			continue
		}
		h = append(h, mergeCursor{ids: b.ids, ranks: b.ranks, r: b.ranks[0]})
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		cursorSiftDown(h, i)
	}
	m.h = h
}

// Next pops the minimum-rank (id, rank) pair among the remaining entries.
// ok is false once all buckets are exhausted.
//
//fairnn:noalloc
func (m *Merger) Next() (id, rank int32, ok bool) {
	h := m.h
	if len(h) == 0 {
		return 0, 0, false
	}
	cur := &h[0]
	id, rank = cur.ids[cur.pos], cur.r
	if cur.pos+1 < len(cur.ids) {
		cur.pos++
		cur.r = cur.ranks[cur.pos]
		cursorSiftDown(h, 0)
	} else {
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		cursorSiftDown(h, 0)
		m.h = h
	}
	return id, rank, true
}

// MergeDedup appends the deduplicated union of the buckets to ids and
// ranks, in ascending rank order, and returns the extended slices. Both
// output slices grow in lockstep; pass recycled buffers (sliced to length
// zero) for an allocation-free steady state. The merger m provides the
// reusable heap.
//
//fairnn:noalloc
func MergeDedup(m *Merger, buckets []*Bucket, ids, ranks []int32) ([]int32, []int32) {
	m.Reset(buckets)
	last := int32(-1)
	for {
		id, r, ok := m.Next()
		if !ok {
			break
		}
		if id == last {
			continue // duplicate across buckets (equal ranks are adjacent)
		}
		last = id
		ids = append(ids, id)
		ranks = append(ranks, r)
	}
	return ids, ranks
}

// SearchRanks returns the first index of ranks holding a value >= target;
// ranks must be ascending. Exported for the merged-cursor segment scan.
//
//fairnn:noalloc
func SearchRanks(ranks []int32, target int32) int {
	return searchRanks(ranks, target)
}
