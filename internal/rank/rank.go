// Package rank implements the random-rank machinery shared by the Section 3
// and Section 4 data structures: a random permutation assigning each point a
// rank, and buckets kept sorted by rank that support (a) scanning in rank
// order, (b) reporting all ids with rank inside a segment [lo, hi) in
// O(log n + output) time (the per-bucket "index" of Section 4), and (c) the
// rank swaps of Appendix A.
package rank

import "slices"

import "fairnn/internal/rng"

// Assignment is a bijection between point ids [0, n) and ranks [0, n).
// Lower rank means "earlier in the random permutation Λ".
//
//fairnn:frozen
type Assignment struct {
	rank   []int32 // rank[id] = rank of point id
	byRank []int32 // byRank[rank] = id holding that rank
}

// NewAssignment draws a uniform random permutation of n points.
func NewAssignment(n int, r *rng.Source) *Assignment {
	byRank := r.Perm(n)
	rank := make([]int32, n)
	for pos, id := range byRank {
		rank[id] = int32(pos)
	}
	return &Assignment{rank: rank, byRank: byRank}
}

// IdentityAssignment returns the identity permutation; useful in tests to
// demonstrate the bias that the random permutation removes.
func IdentityAssignment(n int) *Assignment {
	rank := make([]int32, n)
	byRank := make([]int32, n)
	for i := 0; i < n; i++ {
		rank[i] = int32(i)
		byRank[i] = int32(i)
	}
	return &Assignment{rank: rank, byRank: byRank}
}

// N returns the number of points.
func (a *Assignment) N() int { return len(a.rank) }

// Of returns the rank of point id.
func (a *Assignment) Of(id int32) int32 { return a.rank[id] }

// IDAt returns the id holding the given rank.
func (a *Assignment) IDAt(rank int32) int32 { return a.byRank[rank] }

// Swap exchanges the ranks of two points (the Fisher–Yates-style
// perturbation of Appendix A). Swapping a point with itself is a no-op.
//
//fairnn:mutates Appendix A rank perturbation; callers serialize via the Dynamic write lock
func (a *Assignment) Swap(id1, id2 int32) {
	r1, r2 := a.rank[id1], a.rank[id2]
	a.rank[id1], a.rank[id2] = r2, r1
	a.byRank[r1], a.byRank[r2] = id2, id1
}

// Valid reports whether the assignment is a bijection (for property tests).
func (a *Assignment) Valid() bool {
	if len(a.rank) != len(a.byRank) {
		return false
	}
	for id, r := range a.rank {
		if r < 0 || int(r) >= len(a.byRank) || a.byRank[r] != int32(id) {
			return false
		}
	}
	return true
}

// Bucket is a list of point ids kept sorted by ascending rank under a fixed
// Assignment. It is the bucket representation of both Section 3 (scan in
// rank order, stop at first near point) and Section 4 (rank-range
// reporting). Ranks are stored inline next to the ids (struct-of-arrays),
// so range queries binary-search a local contiguous slice instead of
// chasing Assignment.Of per probe. Mutating operations that follow an
// Assignment.Swap must bracket the swap with Remove (before) and Insert
// (after) so the cached ranks stay consistent — exactly the discipline the
// Appendix A perturbation uses.
//
//fairnn:frozen
type Bucket struct {
	ids   []int32
	ranks []int32 // ranks[i] = rank of ids[i], strictly ascending
}

// NewBucket builds a bucket over ids, sorting them by rank. The id slice is
// taken over by the bucket.
func NewBucket(ids []int32, a *Assignment) *Bucket {
	ranks := make([]int32, len(ids))
	for i, id := range ids {
		ranks[i] = a.Of(id)
	}
	if len(ids) <= 32 {
		// LSH buckets are typically tiny; insertion sort on the pair of
		// arrays avoids any temporary.
		for i := 1; i < len(ids); i++ {
			r, id := ranks[i], ids[i]
			j := i - 1
			for ; j >= 0 && ranks[j] > r; j-- {
				ranks[j+1], ids[j+1] = ranks[j], ids[j]
			}
			ranks[j+1], ids[j+1] = r, id
		}
		return &Bucket{ids: ids, ranks: ranks}
	}
	// Pack (rank, id) pairs into single words so one flat sort orders both
	// arrays; ranks and ids are both non-negative int32s.
	packed := make([]uint64, len(ids))
	for i, id := range ids {
		packed[i] = uint64(uint32(ranks[i]))<<32 | uint64(uint32(id))
	}
	slices.Sort(packed)
	for i, pk := range packed {
		ranks[i] = int32(uint32(pk >> 32))
		ids[i] = int32(uint32(pk))
	}
	return &Bucket{ids: ids, ranks: ranks}
}

// Len returns the number of ids in the bucket.
//
//fairnn:noalloc
func (b *Bucket) Len() int { return len(b.ids) }

// IDs returns the ids in ascending rank order. The slice is owned by the
// bucket and must not be modified.
//
//fairnn:noalloc
func (b *Bucket) IDs() []int32 { return b.ids }

// Ranks returns the ranks aligned with IDs(). The slice is owned by the
// bucket and must not be modified.
//
//fairnn:noalloc
func (b *Bucket) Ranks() []int32 { return b.ranks }

// At returns the i-th id in rank order.
func (b *Bucket) At(i int) int32 { return b.ids[i] }

// RankAt returns the rank of the i-th id in rank order.
func (b *Bucket) RankAt(i int) int32 { return b.ranks[i] }

// searchRanks returns the first index whose rank is >= target. Manual
// binary search over the local rank slice: no closure, no Assignment
// indirection, no allocation.
//
//fairnn:noalloc
func searchRanks(ranks []int32, target int32) int {
	lo, hi := 0, len(ranks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ranks[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RangeReport appends to out every id whose rank lies in [loRank, hiRank),
// in ascending rank order, using binary search: O(log |bucket| + output).
//
//fairnn:noalloc
func (b *Bucket) RangeReport(_ *Assignment, loRank, hiRank int32, out []int32) []int32 {
	i := searchRanks(b.ranks, loRank)
	for ; i < len(b.ranks) && b.ranks[i] < hiRank; i++ {
		out = append(out, b.ids[i])
	}
	return out
}

// CountRange returns the number of ids with rank in [loRank, hiRank).
func (b *Bucket) CountRange(_ *Assignment, loRank, hiRank int32) int {
	return searchRanks(b.ranks, hiRank) - searchRanks(b.ranks, loRank)
}

// Remove deletes id from the bucket (identified by its current rank).
// It reports whether the id was present.
//
//fairnn:mutates deletion API; callers serialize via the Dynamic write lock
func (b *Bucket) Remove(a *Assignment, id int32) bool {
	i := searchRanks(b.ranks, a.Of(id))
	if i >= len(b.ids) || b.ids[i] != id {
		return false
	}
	b.ids = append(b.ids[:i], b.ids[i+1:]...)
	b.ranks = append(b.ranks[:i], b.ranks[i+1:]...)
	return true
}

// Insert adds id at the position given by its current rank.
func (b *Bucket) Insert(a *Assignment, id int32) {
	r := a.Of(id)
	i := searchRanks(b.ranks, r)
	b.ids = append(b.ids, 0)
	copy(b.ids[i+1:], b.ids[i:])
	b.ids[i] = id
	b.ranks = append(b.ranks, 0)
	copy(b.ranks[i+1:], b.ranks[i:])
	b.ranks[i] = r
}

// Contains reports whether id is present (by rank lookup).
func (b *Bucket) Contains(a *Assignment, id int32) bool {
	i := searchRanks(b.ranks, a.Of(id))
	return i < len(b.ids) && b.ids[i] == id
}

// Sorted reports whether the bucket is sorted by rank and its cached ranks
// agree with the assignment (invariant check for property tests).
func (b *Bucket) Sorted(a *Assignment) bool {
	for i := range b.ids {
		if b.ranks[i] != a.Of(b.ids[i]) {
			return false
		}
		if i > 0 && b.ranks[i-1] >= b.ranks[i] {
			return false
		}
	}
	return true
}
