package rank

import "fairnn/internal/rng"

// Treap is a randomized balanced search tree over point ids keyed by their
// current rank. It offers the O(log n) insert/delete/range-report bounds
// the paper assumes for the per-bucket "index" (Section 4) and "priority
// queue" (Appendix A); the sorted-slice Bucket has the same interface with
// O(bucket) updates, which is faster for the small buckets LSH typically
// produces. Benchmarks in bucket_bench_test.go quantify the crossover.
//
// Tree priorities are derived deterministically from the id via a strong
// mixer, which makes the structure reproducible without storing a
// generator and keeps expected depth O(log n) for any insertion order.
type Treap struct {
	root *treapNode
	size int
}

type treapNode struct {
	id          int32
	rank        int32 // cached key; updated on Reinsert
	priority    uint64
	left, right *treapNode
}

// NewTreap builds a treap over ids with ranks from a.
func NewTreap(ids []int32, a *Assignment) *Treap {
	t := &Treap{}
	for _, id := range ids {
		t.Insert(a, id)
	}
	return t
}

// Len returns the number of stored ids.
func (t *Treap) Len() int { return t.size }

func treapPriority(id int32) uint64 {
	return rng.Mix64(uint64(uint32(id)) ^ 0x72616e6b74726565)
}

// rotateRight / rotateLeft restore the heap property on priorities.
func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// Insert adds id under its current rank. Duplicate ids are rejected
// (idempotent insert) to preserve the bucket-set semantics.
func (t *Treap) Insert(a *Assignment, id int32) {
	if t.Contains(a, id) {
		return
	}
	t.root = t.insert(t.root, id, a.Of(id))
	t.size++
}

func (t *Treap) insert(n *treapNode, id, rank int32) *treapNode {
	if n == nil {
		return &treapNode{id: id, rank: rank, priority: treapPriority(id)}
	}
	if rank < n.rank {
		n.left = t.insert(n.left, id, rank)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		}
	} else {
		n.right = t.insert(n.right, id, rank)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		}
	}
	return n
}

// Remove deletes id (located by its current rank). Returns whether the id
// was present.
func (t *Treap) Remove(a *Assignment, id int32) bool {
	removed := false
	t.root = t.remove(t.root, id, a.Of(id), &removed)
	if removed {
		t.size--
	}
	return removed
}

func (t *Treap) remove(n *treapNode, id, rank int32, removed *bool) *treapNode {
	if n == nil {
		return nil
	}
	switch {
	case rank < n.rank:
		n.left = t.remove(n.left, id, rank, removed)
	case rank > n.rank:
		n.right = t.remove(n.right, id, rank, removed)
	case n.id != id:
		// Same rank, different id cannot happen under a bijective
		// Assignment; defensively search both sides.
		n.left = t.remove(n.left, id, rank, removed)
		if !*removed {
			n.right = t.remove(n.right, id, rank, removed)
		}
	default:
		*removed = true
		// Rotate the node down until it is a leaf, then drop it.
		switch {
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		case n.left.priority > n.right.priority:
			n = rotateRight(n)
			n.right = t.remove(n.right, id, rank, removed)
		default:
			n = rotateLeft(n)
			n.left = t.remove(n.left, id, rank, removed)
		}
	}
	return n
}

// Contains reports whether id is present (by rank lookup).
func (t *Treap) Contains(a *Assignment, id int32) bool {
	rank := a.Of(id)
	n := t.root
	for n != nil {
		switch {
		case rank < n.rank:
			n = n.left
		case rank > n.rank:
			n = n.right
		default:
			return n.id == id
		}
	}
	return false
}

// Min returns the id with the smallest rank, or ok=false when empty.
func (t *Treap) Min() (id int32, ok bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.id, true
}

// RangeReport appends every id with rank in [loRank, hiRank) to out, in
// ascending rank order: O(log n + output).
func (t *Treap) RangeReport(loRank, hiRank int32, out []int32) []int32 {
	return rangeReport(t.root, loRank, hiRank, out)
}

func rangeReport(n *treapNode, lo, hi int32, out []int32) []int32 {
	if n == nil {
		return out
	}
	if lo < n.rank {
		out = rangeReport(n.left, lo, hi, out)
	}
	if n.rank >= lo && n.rank < hi {
		out = append(out, n.id)
	}
	if hi > n.rank {
		out = rangeReport(n.right, lo, hi, out)
	}
	return out
}

// CountRange returns the number of ids with rank in [loRank, hiRank).
func (t *Treap) CountRange(loRank, hiRank int32) int {
	return countRange(t.root, loRank, hiRank)
}

func countRange(n *treapNode, lo, hi int32) int {
	if n == nil {
		return 0
	}
	c := 0
	if lo < n.rank {
		c += countRange(n.left, lo, hi)
	}
	if n.rank >= lo && n.rank < hi {
		c++
	}
	if hi > n.rank {
		c += countRange(n.right, lo, hi)
	}
	return c
}

// InOrder appends all ids in ascending rank order.
func (t *Treap) InOrder(out []int32) []int32 {
	return rangeReport(t.root, -1<<31, 1<<31-1, out)
}

// Reinsert refreshes id's position after its rank changed in a: it removes
// the node under the old cached rank and reinserts under the current one.
// Callers that cannot guarantee removal-before-swap should use this.
func (t *Treap) Reinsert(a *Assignment, id int32) {
	// The cached rank inside the tree may be stale; locate by scanning the
	// path for both old and new key. Removing by stored key:
	removed := false
	t.root = removeByID(t.root, id, &removed)
	if removed {
		t.size--
	}
	t.Insert(a, id)
}

// removeByID removes the node with the given id wherever it is (O(n) worst
// case; only used by Reinsert's stale-rank path).
func removeByID(n *treapNode, id int32, removed *bool) *treapNode {
	if n == nil || *removed {
		return n
	}
	if n.id == id {
		*removed = true
		switch {
		case n.left == nil:
			return n.right
		case n.right == nil:
			return n.left
		case n.left.priority > n.right.priority:
			n = rotateRight(n)
			n.right = removeByID(n.right, id, removed)
		default:
			n = rotateLeft(n)
			n.left = removeByID(n.left, id, removed)
		}
		return n
	}
	n.left = removeByID(n.left, id, removed)
	if !*removed {
		n.right = removeByID(n.right, id, removed)
	}
	return n
}

// Valid verifies the BST-on-rank and heap-on-priority invariants plus the
// cached ranks against a (for property tests).
func (t *Treap) Valid(a *Assignment) bool {
	count := 0
	ok := validate(t.root, a, nil, nil, &count)
	return ok && count == t.size
}

func validate(n *treapNode, a *Assignment, lo, hi *int32, count *int) bool {
	if n == nil {
		return true
	}
	*count++
	if a.Of(n.id) != n.rank {
		return false // stale cached rank
	}
	if lo != nil && n.rank <= *lo {
		return false
	}
	if hi != nil && n.rank >= *hi {
		return false
	}
	if n.left != nil && n.left.priority > n.priority {
		return false
	}
	if n.right != nil && n.right.priority > n.priority {
		return false
	}
	return validate(n.left, a, lo, &n.rank, count) && validate(n.right, a, &n.rank, hi, count)
}
