package dataset

import "fairnn/internal/set"

// AdversarialInstance is the Section 6.2 dataset demonstrating that the
// *approximate neighborhood* fairness notion can discriminate between
// points at the same distance: over the universe U = {1, ..., 30} it
// contains
//
//	X = {16, ..., 30}            similarity 0.5 to the query,
//	Y = {1, ..., 18}             similarity 0.6 to the query,
//	Z = {1, ..., 27}             similarity 0.9 to the query,
//	M = all subsets of Y with at least 15 elements (excluding Y itself),
//	    similarities in [0.5, 17/30],
//
// and the query Q = {1, ..., 30}. The M sets form a tight cluster around Y,
// so whenever Y appears in the query's buckets it is accompanied by many
// cluster members, while X sits alone in its neighborhood — the
// approximate-neighborhood sampler therefore returns X far more often than
// Y even though Y is more similar to Q.
type AdversarialInstance struct {
	// Points contains X, Y, Z followed by the 987 M sets.
	Points []set.Set
	// Query is Q = {1, ..., 30}.
	Query set.Set
	// X, Y, Z are the indices of the three distinguished points.
	X, Y, Z int32
	// MStart is the index of the first M set (they occupy [MStart, len)).
	MStart int32
}

// Adversarial constructs the instance. |M| = C(18,15)+C(18,16)+C(18,17) =
// 816+153+18 = 987, so the instance has 990 points.
func Adversarial() AdversarialInstance {
	x := set.Range(16, 30)
	y := set.Range(1, 18)
	z := set.Range(1, 27)
	points := []set.Set{x, y, z}
	yItems := []uint32(y)
	for size := 15; size <= 17; size++ {
		points = appendSubsets(points, yItems, size)
	}
	return AdversarialInstance{
		Points: points,
		Query:  set.Range(1, 30),
		X:      0,
		Y:      1,
		Z:      2,
		MStart: 3,
	}
}

// appendSubsets appends every size-element subset of items to dst.
func appendSubsets(dst []set.Set, items []uint32, size int) []set.Set {
	n := len(items)
	if size > n {
		return dst
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		subset := make([]uint32, size)
		for i, j := range idx {
			subset[i] = items[j]
		}
		dst = append(dst, set.Set(subset)) // items sorted ⇒ subset sorted
		// Advance the combination.
		i := size - 1
		for i >= 0 && idx[i] == n-size+i {
			i--
		}
		if i < 0 {
			return dst
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
