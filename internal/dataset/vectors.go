package dataset

import (
	"math"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// PlantedBall is a vector workload with known ground truth for the
// Section 5 experiments: a query on the unit sphere, BallSize points
// planted at inner products uniformly spread over [Alpha, AlphaMax], a
// band of MidSize points in (Beta, Alpha), and background points that are
// nearly orthogonal to the query.
type PlantedBall struct {
	Points []vector.Vec
	Query  vector.Vec
	// BallIDs are the indices of the planted near points (⟨p, q⟩ ≥ Alpha).
	BallIDs []int32
	// MidIDs are the indices of the (Beta, Alpha) band points.
	MidIDs []int32
}

// PlantedBallConfig parameterizes NewPlantedBall.
type PlantedBallConfig struct {
	N        int     // total points
	Dim      int     // dimensionality
	Alpha    float64 // near threshold
	AlphaMax float64 // highest planted similarity (default 0.95)
	Beta     float64 // far threshold
	BallSize int     // number of near points
	MidSize  int     // number of (Beta, Alpha) band points
	Seed     uint64
}

// NewPlantedBall builds the workload. All points are unit vectors.
func NewPlantedBall(cfg PlantedBallConfig) PlantedBall {
	if cfg.AlphaMax <= cfg.Alpha {
		cfg.AlphaMax = math.Min(0.98, cfg.Alpha+0.2)
	}
	r := rng.New(cfg.Seed)
	q := vector.RandomUnit(r, cfg.Dim)
	points := make([]vector.Vec, 0, cfg.N)
	var ballIDs, midIDs []int32
	for i := 0; i < cfg.BallSize; i++ {
		// Spread similarities over (Alpha, AlphaMax]; the +0.5 offset keeps
		// the lowest planted point strictly above Alpha so that float
		// rounding in later dot products cannot drop it out of the ball.
		frac := (float64(i) + 0.5) / float64(cfg.BallSize)
		sim := cfg.Alpha + frac*(cfg.AlphaMax-cfg.Alpha)
		ballIDs = append(ballIDs, int32(len(points)))
		points = append(points, vector.UnitWithInnerProduct(r, q, sim))
	}
	for i := 0; i < cfg.MidSize; i++ {
		frac := (float64(i) + 0.5) / float64(cfg.MidSize)
		sim := cfg.Beta + frac*(cfg.Alpha-cfg.Beta)*0.96
		midIDs = append(midIDs, int32(len(points)))
		points = append(points, vector.UnitWithInnerProduct(r, q, sim))
	}
	for len(points) < cfg.N {
		points = append(points, vector.RandomUnit(r, cfg.Dim))
	}
	return PlantedBall{Points: points, Query: q, BallIDs: ballIDs, MidIDs: midIDs}
}

// Embeddings is a matrix-factorization-style recommender workload: item
// and user vectors living near a small number of topic directions, as
// produced by factorizing a ratings matrix (Koren–Bell–Volinsky). Used by
// the recommender example and the Section 5 benchmarks.
type Embeddings struct {
	Items []vector.Vec
	Users []vector.Vec
	// TopicOf[i] is the dominant topic of item i.
	TopicOf []int
}

// EmbeddingsConfig parameterizes NewEmbeddings.
type EmbeddingsConfig struct {
	Items  int
	Users  int
	Dim    int
	Topics int
	// Spread is the within-topic angular noise (0.1–0.5 sensible).
	Spread float64
	Seed   uint64
}

// NewEmbeddings builds unit-norm item and user vectors clustered by topic.
func NewEmbeddings(cfg EmbeddingsConfig) Embeddings {
	if cfg.Spread <= 0 {
		cfg.Spread = 0.25
	}
	r := rng.New(cfg.Seed)
	topics := make([]vector.Vec, cfg.Topics)
	for t := range topics {
		topics[t] = vector.RandomUnit(r, cfg.Dim)
	}
	mk := func(topic int) vector.Vec {
		noise := vector.Gaussian(r, cfg.Dim)
		v := make(vector.Vec, cfg.Dim)
		for i := range v {
			v[i] = topics[topic][i] + cfg.Spread*noise[i]
		}
		return vector.Normalize(v)
	}
	e := Embeddings{
		Items:   make([]vector.Vec, cfg.Items),
		Users:   make([]vector.Vec, cfg.Users),
		TopicOf: make([]int, cfg.Items),
	}
	for i := range e.Items {
		t := r.Intn(cfg.Topics)
		e.TopicOf[i] = t
		e.Items[i] = mk(t)
	}
	for u := range e.Users {
		e.Users[u] = mk(r.Intn(cfg.Topics))
	}
	return e
}
