package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"fairnn/internal/set"
)

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadLastFM(t *testing.T) {
	path := writeFixture(t, "user_artists.dat",
		"userID\tartistID\tweight\n"+
			"2\t51\t100\n"+
			"2\t52\t200\n"+
			"2\t53\t50\n"+
			"3\t51\t10\n"+
			"3\t99\t20\n")
	sets, err := LoadLastFM(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("got %d users", len(sets))
	}
	// User 2's top-2 by weight: artists 52 (200) and 51 (100), not 53.
	if sets[0].Len() != 2 {
		t.Fatalf("user 2 set size %d", sets[0].Len())
	}
	// Artists 51 and 52 map to dense ids; user 3 shares artist 51.
	if got := set.IntersectionSize(sets[0], sets[1]); got != 1 {
		t.Errorf("users share %d artists, want 1 (artist 51)", got)
	}
}

func TestLoadMovieLens(t *testing.T) {
	path := writeFixture(t, "user_ratedmovies.dat",
		"userID\tmovieID\trating\tdate_day\n"+
			"75\t3\t1.0\t29\n"+
			"75\t32\t4.5\t29\n"+
			"75\t110\t4.0\t29\n"+
			"78\t3\t5.0\t12\n")
	sets, err := LoadMovieLens(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("got %d users", len(sets))
	}
	if sets[0].Len() != 2 { // movies 32 and 110; movie 3 rated 1.0 excluded
		t.Errorf("user 75 kept %d movies, want 2", sets[0].Len())
	}
	if sets[1].Len() != 1 {
		t.Errorf("user 78 kept %d movies, want 1", sets[1].Len())
	}
}

func TestLoadRejectsBadHeader(t *testing.T) {
	path := writeFixture(t, "bad.dat", "foo\tbar\tbaz\n1\t2\t3\n")
	if _, err := LoadLastFM(path, 20); err == nil {
		t.Error("bad header accepted")
	}
}

func TestLoadRejectsShortRow(t *testing.T) {
	path := writeFixture(t, "short.dat", "userID\tartistID\tweight\n1\t2\n")
	if _, err := LoadLastFM(path, 20); err == nil {
		t.Error("short row accepted")
	}
}

func TestLoadRejectsBadNumbers(t *testing.T) {
	path := writeFixture(t, "nan.dat", "userID\tartistID\tweight\n1\tx\t3\n")
	if _, err := LoadLastFM(path, 20); err == nil {
		t.Error("non-numeric artistID accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadLastFM("/nonexistent/file.dat", 20); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	path := writeFixture(t, "blank.dat",
		"userID\tartistID\tweight\n\n1\t10\t5\n\n")
	sets, err := LoadLastFM(path, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Len() != 1 {
		t.Errorf("unexpected result: %v", sets)
	}
}
