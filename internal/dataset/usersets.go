// Package dataset provides the workload substrates for the Section 6
// experiments. The paper evaluates on the HetRec-2011 MovieLens and Last.FM
// datasets, which are not redistributable here; this package instead builds
// synthetic user–item set collections matched to the published summary
// statistics (user count, universe size, mean/σ of set sizes) and to the
// neighborhood structure the experiments need (50 "interesting" queries
// with at least 40 neighbors at Jaccard ≥ 0.2). See DESIGN.md §3 for the
// substitution argument.
//
// The package also constructs the Section 6.2 adversarial instance exactly
// as specified, plus vector workloads (planted balls and low-rank
// matrix-factorization-style embeddings) for the Section 5 experiments.
package dataset

import (
	"math"
	"sort"

	"fairnn/internal/rng"
	"fairnn/internal/set"
)

// SetConfig parameterizes the synthetic user–item set generator. Users are
// partitioned into latent communities; each community has a preference pool
// of items, and a user draws a configurable fraction of its items from its
// community pool and the rest from a global Zipf popularity distribution.
// Communities create the dense neighborhoods (J ≥ 0.2) that make queries
// "interesting"; the Zipf background creates the long similarity tail that
// drives the b_cr/b_r ratios of Figure 3.
type SetConfig struct {
	// Users is the number of user sets to generate.
	Users int
	// Universe is the number of distinct items.
	Universe int
	// MeanSize and SizeStdDev describe the user set size distribution
	// (lognormal when SizeStdDev > MeanSize/2, else normal).
	MeanSize   float64
	SizeStdDev float64
	// Communities is the number of latent communities.
	Communities int
	// PoolSize is the number of items in each community's preference pool.
	PoolSize int
	// CommunityFraction is the fraction of a user's items drawn from its
	// community pool (the rest follow global popularity).
	CommunityFraction float64
	// ZipfExponent shapes global item popularity (≈1 is realistic).
	ZipfExponent float64
	// Seed drives all randomness.
	Seed uint64
}

// MovieLensLike matches the MovieLens statistics reported in Section 6:
// 2112 users, 65536 unique movies, mean set size 178.1 (σ = 187.5).
func MovieLensLike() SetConfig {
	return SetConfig{
		Users:             2112,
		Universe:          65536,
		MeanSize:          178.1,
		SizeStdDev:        187.5,
		Communities:       24,
		PoolSize:          330,
		CommunityFraction: 0.6,
		ZipfExponent:      1.2,
		Seed:              0x4d4f564945, // "MOVIE"
	}
}

// LastFMLike matches the Last.FM statistics reported in Section 6:
// 1892 users, 18739 unique artists, top-20 artists per user
// (mean 19.8, σ = 1.78).
func LastFMLike() SetConfig {
	return SetConfig{
		Users:             1892,
		Universe:          18739,
		MeanSize:          19.8,
		SizeStdDev:        1.78,
		Communities:       36,
		PoolSize:          40,
		CommunityFraction: 0.9,
		ZipfExponent:      0.9,
		Seed:              0x4c415354464d, // "LASTFM"
	}
}

// Generate builds the user sets.
func Generate(cfg SetConfig) []set.Set {
	r := rng.New(cfg.Seed)
	zipf := rng.NewZipf(cfg.Universe, cfg.ZipfExponent)
	// Item ids are assigned to Zipf ranks via a random relabeling so that
	// popularity is not correlated with id order.
	relabel := r.Perm(cfg.Universe)

	// Build community pools: each pool mixes popular items (drawn from the
	// Zipf head) with niche items unique to the community, so that pools
	// overlap mildly (as real genres do).
	pools := make([][]uint32, cfg.Communities)
	for c := range pools {
		pool := make(map[uint32]struct{}, cfg.PoolSize)
		for len(pool) < cfg.PoolSize {
			item := uint32(relabel[zipf.Sample(r)])
			pool[item] = struct{}{}
		}
		flat := make([]uint32, 0, len(pool))
		for it := range pool {
			flat = append(flat, it)
		}
		// Map iteration order is randomized by the runtime; sort so that
		// generation is deterministic for a fixed seed.
		sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })
		pools[c] = flat
	}

	sizeSampler := newSizeSampler(cfg.MeanSize, cfg.SizeStdDev)
	sets := make([]set.Set, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		community := u % cfg.Communities // balanced communities
		size := sizeSampler(r)
		if size < 1 {
			size = 1
		}
		if size > cfg.Universe {
			size = cfg.Universe
		}
		items := make(map[uint32]struct{}, size)
		fromPool := int(math.Round(cfg.CommunityFraction * float64(size)))
		pool := pools[community]
		if fromPool > len(pool) {
			fromPool = len(pool)
		}
		for len(items) < fromPool {
			items[pool[r.Intn(len(pool))]] = struct{}{}
		}
		for len(items) < size {
			items[uint32(relabel[zipf.Sample(r)])] = struct{}{}
		}
		flat := make([]uint32, 0, len(items))
		for it := range items {
			flat = append(flat, it)
		}
		sets[u] = set.FromSlice(flat)
	}
	return sets
}

// newSizeSampler returns a sampler for user set sizes: lognormal when the
// distribution is heavy-tailed (σ large relative to the mean, as in
// MovieLens), truncated normal otherwise (as in Last.FM).
func newSizeSampler(mean, sd float64) func(*rng.Source) int {
	if sd > mean/2 {
		// Lognormal with matching mean and standard deviation.
		sigma2 := math.Log(1 + (sd*sd)/(mean*mean))
		mu := math.Log(mean) - sigma2/2
		sigma := math.Sqrt(sigma2)
		return func(r *rng.Source) int {
			return int(math.Round(math.Exp(mu + sigma*r.NormFloat64())))
		}
	}
	return func(r *rng.Source) int {
		return int(math.Round(mean + sd*r.NormFloat64()))
	}
}

// InterestingQueries selects up to k user indices that have at least
// minCount other users at Jaccard similarity ≥ minSim — the query-selection
// rule of Section 6 ("a user X is interesting if there exist at least 40
// other users with Jaccard similarity at least 0.2 with X"). Candidates are
// scanned in a random order so repeated runs with different seeds pick
// different query sets.
//
//fairnn:rng-source experiment-setup stream derived from the caller's explicit seed
func InterestingQueries(sets []set.Set, minSim float64, minCount, k int, seed uint64) []int {
	r := rng.New(seed)
	order := r.Perm(len(sets))
	var out []int
	for _, u := range order {
		cnt := 0
		for v := range sets {
			if v == int(u) {
				continue
			}
			if set.Jaccard(sets[u], sets[v]) >= minSim {
				cnt++
				if cnt >= minCount {
					break
				}
			}
		}
		if cnt >= minCount {
			out = append(out, int(u))
			if len(out) == k {
				break
			}
		}
	}
	return out
}
