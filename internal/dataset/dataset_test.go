package dataset

import (
	"math"
	"testing"

	"fairnn/internal/set"
	"fairnn/internal/vector"
)

func TestAdversarialStructure(t *testing.T) {
	inst := Adversarial()
	if got := len(inst.Points); got != 990 {
		t.Fatalf("instance has %d points, want 990 (3 + 987 M sets)", got)
	}
	q := inst.Query
	if q.Len() != 30 {
		t.Fatalf("query size %d", q.Len())
	}
	checks := []struct {
		id   int32
		want float64
	}{
		{inst.X, 0.5},
		{inst.Y, 0.6},
		{inst.Z, 0.9},
	}
	for _, c := range checks {
		if got := set.Jaccard(q, inst.Points[c.id]); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("similarity of point %d = %v, want %v", c.id, got, c.want)
		}
	}
	// All M sets are subsets of Y with 15..17 elements and similarity in
	// [0.5, 17/30].
	y := inst.Points[inst.Y]
	for i := int(inst.MStart); i < len(inst.Points); i++ {
		m := inst.Points[i]
		if m.Len() < 15 || m.Len() > 17 {
			t.Fatalf("M set %d has size %d", i, m.Len())
		}
		if set.IntersectionSize(m, y) != m.Len() {
			t.Fatalf("M set %d is not a subset of Y", i)
		}
		sim := set.Jaccard(q, m)
		if sim < 0.5-1e-12 || sim > 17.0/30.0+1e-12 {
			t.Fatalf("M set %d similarity %v out of range", i, sim)
		}
	}
	// No duplicates among the M sets.
	seen := map[string]bool{}
	for i := int(inst.MStart); i < len(inst.Points); i++ {
		key := ""
		for _, v := range inst.Points[i] {
			key += string(rune(v)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate M set")
		}
		seen[key] = true
	}
}

func TestGenerateMatchesTargetStatistics(t *testing.T) {
	cfg := LastFMLike()
	cfg.Users = 400 // smaller for test speed; statistics are per-user
	sets := Generate(cfg)
	if len(sets) != 400 {
		t.Fatalf("got %d sets", len(sets))
	}
	var sum, sumsq float64
	for _, s := range sets {
		if !s.Valid() {
			t.Fatal("invalid set representation")
		}
		sum += float64(s.Len())
		sumsq += float64(s.Len()) * float64(s.Len())
	}
	mean := sum / 400
	sd := math.Sqrt(sumsq/400 - mean*mean)
	if math.Abs(mean-cfg.MeanSize) > 2 {
		t.Errorf("mean size %v, want ≈ %v", mean, cfg.MeanSize)
	}
	if sd > 4*cfg.SizeStdDev+2 {
		t.Errorf("size sd %v too large vs target %v", sd, cfg.SizeStdDev)
	}
	for _, s := range sets {
		for _, item := range s {
			if int(item) >= cfg.Universe {
				t.Fatalf("item %d outside universe", item)
			}
		}
	}
}

func TestGenerateHasDenseNeighborhoods(t *testing.T) {
	cfg := LastFMLike()
	cfg.Users = 400
	sets := Generate(cfg)
	qs := InterestingQueries(sets, 0.2, 10, 20, 99)
	if len(qs) < 10 {
		t.Errorf("found only %d interesting queries; communities too sparse", len(qs))
	}
	for _, q := range qs {
		cnt := 0
		for v := range sets {
			if v != q && set.Jaccard(sets[q], sets[v]) >= 0.2 {
				cnt++
			}
		}
		if cnt < 10 {
			t.Errorf("query %d has only %d neighbors", q, cnt)
		}
	}
}

func TestGenerateMovieLensLikeSmall(t *testing.T) {
	cfg := MovieLensLike()
	cfg.Users = 300
	sets := Generate(cfg)
	var sum float64
	maxLen := 0
	for _, s := range sets {
		sum += float64(s.Len())
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	mean := sum / 300
	if mean < 100 || mean > 260 {
		t.Errorf("mean size %v far from 178", mean)
	}
	// Lognormal tail: some users should be much larger than the mean.
	if float64(maxLen) < 2*mean {
		t.Errorf("no heavy tail: max %d vs mean %v", maxLen, mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := LastFMLike()
	cfg.Users = 50
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if set.Jaccard(a[i], b[i]) != 1 {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

func TestPlantedBallGroundTruth(t *testing.T) {
	w := NewPlantedBall(PlantedBallConfig{
		N: 200, Dim: 24, Alpha: 0.8, Beta: 0.5, BallSize: 15, MidSize: 25, Seed: 5,
	})
	if len(w.Points) != 200 {
		t.Fatalf("got %d points", len(w.Points))
	}
	if len(w.BallIDs) != 15 || len(w.MidIDs) != 25 {
		t.Fatalf("planted counts wrong: %d, %d", len(w.BallIDs), len(w.MidIDs))
	}
	for _, id := range w.BallIDs {
		if ip := vector.Dot(w.Query, w.Points[id]); ip < 0.8-1e-9 {
			t.Errorf("ball point %d has inner product %v", id, ip)
		}
	}
	for _, id := range w.MidIDs {
		ip := vector.Dot(w.Query, w.Points[id])
		if ip < 0.5-1e-9 || ip >= 0.8 {
			t.Errorf("mid point %d has inner product %v", id, ip)
		}
	}
	// Count points in the ball: exactly the planted ones (background is
	// nearly orthogonal in dim 24 whp).
	count := 0
	for _, p := range w.Points {
		if vector.Dot(w.Query, p) >= 0.8 {
			count++
		}
	}
	if count != 15 {
		t.Errorf("ball contains %d points, want 15", count)
	}
	for _, p := range w.Points {
		if n := vector.Norm(p); math.Abs(n-1) > 1e-9 {
			t.Fatalf("non-unit point: %v", n)
		}
	}
}

func TestEmbeddingsTopicStructure(t *testing.T) {
	e := NewEmbeddings(EmbeddingsConfig{Items: 200, Users: 50, Dim: 16, Topics: 4, Spread: 0.2, Seed: 7})
	if len(e.Items) != 200 || len(e.Users) != 50 || len(e.TopicOf) != 200 {
		t.Fatal("wrong counts")
	}
	for _, v := range e.Items {
		if math.Abs(vector.Norm(v)-1) > 1e-9 {
			t.Fatal("item not unit norm")
		}
	}
	// Same-topic items should be more similar on average than cross-topic.
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			ip := vector.Dot(e.Items[i], e.Items[j])
			if e.TopicOf[i] == e.TopicOf[j] {
				same += ip
				nSame++
			} else {
				cross += ip
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate topic assignment")
	}
	if same/float64(nSame) <= cross/float64(nCross) {
		t.Error("topic structure missing: same-topic similarity not higher")
	}
}

func TestInterestingQueriesRespectsBounds(t *testing.T) {
	sets := []set.Set{set.Range(1, 10), set.Range(1, 10), set.Range(1, 10), set.Range(100, 120)}
	qs := InterestingQueries(sets, 0.5, 2, 10, 1)
	for _, q := range qs {
		if q == 3 {
			t.Error("isolated set selected as interesting")
		}
	}
	if len(qs) != 3 {
		t.Errorf("got %d interesting queries, want 3", len(qs))
	}
}
