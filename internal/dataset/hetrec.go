package dataset

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"fairnn/internal/set"
)

// Loaders for the real HetRec-2011 files (https://grouplens.org/datasets/
// hetrec-2011). The experiments default to the synthetic stand-ins in this
// package, but when the original files are available these loaders
// reproduce the paper's exact preprocessing:
//
//   - Last.FM (user_artists.dat): the top-20 artists per user by listening
//     weight.
//   - MovieLens (user_ratedmovies.dat): every movie the user rated at
//     least 4.
//
// Both files are tab-separated with a header line. Item ids are remapped
// to a dense [0, universe) range.

// LoadLastFM parses a user_artists.dat file into top-`top` artist sets.
func LoadLastFM(path string, top int) ([]set.Set, error) {
	if top <= 0 {
		top = 20
	}
	type pair struct {
		item   uint32
		weight float64
	}
	perUser := make(map[int][]pair)
	err := readTSV(path, []string{"userID", "artistID", "weight"}, func(fields []string) error {
		user, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("bad userID %q", fields[0])
		}
		item, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad artistID %q", fields[1])
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("bad weight %q", fields[2])
		}
		perUser[user] = append(perUser[user], pair{item: uint32(item), weight: w})
		return nil
	})
	if err != nil {
		return nil, err
	}
	users := sortedKeys(perUser)
	remap := newItemRemap()
	out := make([]set.Set, 0, len(users))
	for _, u := range users {
		items := perUser[u]
		sort.Slice(items, func(i, j int) bool {
			if items[i].weight != items[j].weight {
				return items[i].weight > items[j].weight
			}
			return items[i].item < items[j].item // deterministic tie-break
		})
		if len(items) > top {
			items = items[:top]
		}
		ids := make([]uint32, len(items))
		for i, it := range items {
			ids[i] = remap.id(it.item)
		}
		out = append(out, set.FromSlice(ids))
	}
	return out, nil
}

// LoadMovieLens parses a user_ratedmovies.dat file into sets of movies
// rated at least minRating (the paper uses 4).
func LoadMovieLens(path string, minRating float64) ([]set.Set, error) {
	if minRating <= 0 {
		minRating = 4
	}
	perUser := make(map[int][]uint32)
	err := readTSV(path, []string{"userID", "movieID", "rating"}, func(fields []string) error {
		user, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("bad userID %q", fields[0])
		}
		item, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad movieID %q", fields[1])
		}
		rating, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("bad rating %q", fields[2])
		}
		if rating >= minRating {
			perUser[user] = append(perUser[user], uint32(item))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	users := sortedKeys(perUser)
	remap := newItemRemap()
	out := make([]set.Set, 0, len(users))
	for _, u := range users {
		ids := make([]uint32, len(perUser[u]))
		for i, it := range perUser[u] {
			ids[i] = remap.id(it)
		}
		out = append(out, set.FromSlice(ids))
	}
	return out, nil
}

// readTSV streams a tab-separated file with a header, validating that the
// header starts with the expected column names, and calls fn per data row
// with at least len(want) fields.
func readTSV(path string, want []string, fn func(fields []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("dataset: %s is empty", path)
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), "\t")
	if len(header) < len(want) {
		return fmt.Errorf("dataset: %s has %d columns, want at least %d", path, len(header), len(want))
	}
	for i, col := range want {
		if !strings.EqualFold(strings.TrimSpace(header[i]), col) {
			return fmt.Errorf("dataset: %s column %d is %q, want %q", path, i, header[i], col)
		}
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < len(want) {
			return fmt.Errorf("dataset: %s:%d has %d fields, want at least %d", path, line, len(fields), len(want))
		}
		if err := fn(fields); err != nil {
			return fmt.Errorf("dataset: %s:%d: %w", path, line, err)
		}
	}
	return sc.Err()
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// itemRemap densifies raw item ids.
type itemRemap struct {
	ids map[uint32]uint32
}

func newItemRemap() *itemRemap { return &itemRemap{ids: make(map[uint32]uint32)} }

func (r *itemRemap) id(raw uint32) uint32 {
	if v, ok := r.ids[raw]; ok {
		return v
	}
	v := uint32(len(r.ids))
	r.ids[raw] = v
	return v
}
