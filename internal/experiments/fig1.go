package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

// Fig1Config parameterizes the Q1 experiment (§6.1 / Figure 1): compare the
// output distribution of standard LSH against fair LSH on a set-similarity
// dataset.
type Fig1Config struct {
	// Dataset is the user-set generator configuration.
	Dataset dataset.SetConfig
	// Radius is the similarity threshold r (paper: 0.15 for Last.FM,
	// 0.2 for MovieLens in the shown plots).
	Radius float64
	// Queries is the number of interesting queries (paper: 50).
	Queries int
	// MinSim and MinNeighbors define "interesting" queries (paper: at
	// least 40 neighbors at Jaccard >= 0.2). Zero values select the
	// paper's thresholds.
	MinSim       float64
	MinNeighbors int
	// Builds is the number of independent data-structure constructions;
	// query repetitions are spread across them so that both construction
	// and query randomness are exercised (the paper repeats the full
	// process 26 000 times).
	Builds int
	// RepsPerBuild is the number of repetitions per build and query.
	RepsPerBuild int
	// FarSim and FarBudget drive the ChooseK rule (paper: ≤5 expected
	// collisions at similarity 0.1).
	FarSim    float64
	FarBudget float64
	// Recall drives the ChooseL rule (paper: 0.99 at similarity Radius).
	Recall float64
	// Seed drives everything.
	Seed uint64
}

// DefaultFig1LastFM mirrors the paper's Last.FM plot (top row of Figure 1).
func DefaultFig1LastFM() Fig1Config {
	return Fig1Config{
		Dataset:      dataset.LastFMLike(),
		Radius:       0.15,
		Queries:      50,
		Builds:       20,
		RepsPerBuild: 1300, // 26 000 total
		FarSim:       0.1,
		FarBudget:    5,
		Recall:       0.99,
		Seed:         161,
	}
}

// DefaultFig1MovieLens mirrors the paper's MovieLens plot (bottom row).
func DefaultFig1MovieLens() Fig1Config {
	return Fig1Config{
		Dataset:      dataset.MovieLensLike(),
		Radius:       0.2,
		Queries:      50,
		Builds:       20,
		RepsPerBuild: 1300,
		FarSim:       0.1,
		FarBudget:    5,
		Recall:       0.99,
		Seed:         162,
	}
}

// Fig1Row is one scatter point of Figure 1: the average relative report
// frequency over all ball points of one query sharing the same similarity.
type Fig1Row struct {
	Query      int     // query index (y-axis of the figure)
	Similarity float64 // similarity level (x-axis), rounded to 2 decimals
	PointsAt   int     // number of ball points at this similarity
	RelStd     float64 // average relative frequency under standard LSH
	RelFair    float64 // average relative frequency under fair LSH
}

// Fig1QueryStat summarizes one query: the total-variation distance of each
// method's output distribution from uniform over the true ball.
type Fig1QueryStat struct {
	Query    int
	BallSize int
	TVStd    float64
	TVFair   float64
}

// Fig1Result carries the full figure.
type Fig1Result struct {
	Config                Fig1Config
	Params                lsh.Params
	Rows                  []Fig1Row
	PerQuery              []Fig1QueryStat
	MeanTVStd, MeanTVFair float64
}

// RunFig1 executes the experiment.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	sets := dataset.Generate(cfg.Dataset)
	minSim, minNb := cfg.MinSim, cfg.MinNeighbors
	if minSim <= 0 {
		minSim = 0.2
	}
	if minNb <= 0 {
		minNb = 40
	}
	queries := dataset.InterestingQueries(sets, minSim, minNb, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, fmt.Errorf("fig1: no interesting queries in dataset")
	}
	k := lsh.ChooseK[set.Set](lsh.OneBitMinHash{}, len(sets), cfg.FarSim, cfg.FarBudget)
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, cfg.Radius, cfg.Recall)
	params := lsh.Params{K: k, L: l}

	space := core.Jaccard()
	exact := core.NewExact[set.Set](space, sets, cfg.Radius, cfg.Seed+7)

	// Ground-truth balls per query.
	balls := make([][]int32, len(queries))
	for qi, q := range queries {
		balls[qi] = exact.Ball(sets[q], nil)
	}

	freqStd := make([]*stats.Frequency, len(queries))
	freqFair := make([]*stats.Frequency, len(queries))
	for qi := range queries {
		freqStd[qi] = stats.NewFrequency()
		freqFair[qi] = stats.NewFrequency()
	}

	for b := 0; b < cfg.Builds; b++ {
		std, err := core.NewStandard[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, cfg.Seed+uint64(1000+b))
		if err != nil {
			return nil, err
		}
		for qi, q := range queries {
			for rep := 0; rep < cfg.RepsPerBuild; rep++ {
				if id, ok := std.QueryRandomTableOrder(sets[q], nil); ok {
					freqStd[qi].Observe(id)
				}
				if id, ok := std.NaiveFairSample(sets[q], nil); ok {
					freqFair[qi].Observe(id)
				}
			}
		}
	}

	res := &Fig1Result{Config: cfg, Params: params}
	var tvStdSum, tvFairSum float64
	for qi, q := range queries {
		ball := balls[qi]
		// Group ball points by similarity (2 decimals, as in the plot).
		groups := make(map[float64][]int32)
		for _, id := range ball {
			sim := math.Round(set.Jaccard(sets[q], sets[id])*100) / 100
			groups[sim] = append(groups[sim], id)
		}
		for _, sim := range sortedKeysF64(groups) {
			ids := groups[sim]
			var sumStd, sumFair float64
			for _, id := range ids {
				sumStd += freqStd[qi].Rel(id)
				sumFair += freqFair[qi].Rel(id)
			}
			res.Rows = append(res.Rows, Fig1Row{
				Query:      qi,
				Similarity: sim,
				PointsAt:   len(ids),
				RelStd:     sumStd / float64(len(ids)),
				RelFair:    sumFair / float64(len(ids)),
			})
		}
		tvStd := freqStd[qi].TVFromUniform(ball)
		tvFair := freqFair[qi].TVFromUniform(ball)
		res.PerQuery = append(res.PerQuery, Fig1QueryStat{
			Query: qi, BallSize: len(ball), TVStd: tvStd, TVFair: tvFair,
		})
		tvStdSum += tvStd
		tvFairSum += tvFair
	}
	res.MeanTVStd = tvStdSum / float64(len(queries))
	res.MeanTVFair = tvFairSum / float64(len(queries))
	return res, nil
}

// BiasSlope quantifies the Figure 1 gradient for one method: the
// correlation between a ball point's similarity and its report frequency.
// Standard LSH shows a strongly positive slope (bias towards near points);
// fair LSH shows a slope near zero.
func (r *Fig1Result) BiasSlope(fair bool) float64 {
	var xs, ys []float64
	for _, row := range r.Rows {
		v := row.RelStd
		if fair {
			v = row.RelFair
		}
		// Weight groups by the number of points they average over.
		for i := 0; i < row.PointsAt; i++ {
			xs = append(xs, row.Similarity)
			ys = append(ys, v)
		}
	}
	return correlation(xs, ys)
}

func correlation(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Render writes the figure as text tables.
func (r *Fig1Result) Render(w io.Writer, name string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Query),
			f2(row.Similarity),
			fmt.Sprintf("%d", row.PointsAt),
			f(row.RelStd),
			f(row.RelFair),
		})
	}
	if err := WriteTable(w, fmt.Sprintf("Figure 1 (%s, r=%.2f, K=%d, L=%d): relative report frequency by similarity", name, r.Config.Radius, r.Params.K, r.Params.L),
		[]string{"query", "similarity", "#points", "rel.freq standard", "rel.freq fair"}, rows); err != nil {
		return err
	}
	qrows := make([][]string, 0, len(r.PerQuery))
	for _, s := range r.PerQuery {
		qrows = append(qrows, []string{
			fmt.Sprintf("%d", s.Query), fmt.Sprintf("%d", s.BallSize), f(s.TVStd), f(s.TVFair),
		})
	}
	sort.Slice(qrows, func(i, j int) bool { return qrows[i][0] < qrows[j][0] })
	if err := WriteTable(w, fmt.Sprintf("Figure 1 (%s): per-query TV distance from uniform", name),
		[]string{"query", "ball size", "TV standard", "TV fair"}, qrows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nmean TV standard = %.4f   mean TV fair = %.4f   bias slope standard = %.3f   fair = %.3f\n",
		r.MeanTVStd, r.MeanTVFair, r.BiasSlope(false), r.BiasSlope(true))
	return err
}
