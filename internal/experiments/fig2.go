package experiments

import (
	"fmt"
	"io"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

// Fig2Config parameterizes the Q2 experiment (§6.2 / Figure 2): empirical
// sampling probabilities of the distinguished points X, Y, Z on the
// adversarial instance under approximate-neighborhood sampling.
type Fig2Config struct {
	// R and CR are the exact and approximate thresholds (paper: 0.9, 0.5).
	R, CR float64
	// Batches is the number of batches over which the quartile error bars
	// are computed.
	Batches int
	// BuildsPerBatch is the number of independent constructions per batch.
	// Fresh builds matter: the candidate set S' of a fixed build is
	// deterministic, so the sampling probability marginalizes over the
	// construction randomness (as in the paper's "repeat independently"
	// protocol).
	BuildsPerBatch int
	// RepsPerBuild is the number of sampled queries per build.
	RepsPerBuild int
	// FarSim/FarBudget/Recall drive the K and L selection rules as in §6.
	FarSim    float64
	FarBudget float64
	Recall    float64
	// OneBit switches to the 1-bit MinHash scheme. The default (full
	// MinHash bucket keys) reproduces the paper's clustered-neighborhood
	// effect: collisions of the M sets with the query are decided by the
	// identity of the shared min-wise elements, so the cluster enters the
	// candidate set nearly all-or-nothing. With 1-bit keys at the K the
	// selection rule picks, the parity bits re-randomize per set and the
	// correlation (and hence the X≫Y effect) largely disappears — kept
	// here as an ablation.
	OneBit bool
	Seed   uint64
}

// DefaultFig2 mirrors the paper's setup.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		R: 0.9, CR: 0.5,
		Batches:        12,
		BuildsPerBatch: 40,
		RepsPerBuild:   64,
		FarSim:         0.1,
		FarBudget:      5,
		Recall:         0.99,
		Seed:           262,
	}
}

// Fig2Stat is the empirical sampling probability of one point with
// quartiles over independent builds.
type Fig2Stat struct {
	Median, Q25, Q75 float64
}

// Fig2Result carries the figure: the three bars with error bars, plus the
// fair-baseline probabilities and the headline X/Y ratio.
type Fig2Result struct {
	Config Fig2Config
	Params lsh.Params
	// Approximate-neighborhood sampling probabilities (the unfair method).
	X, Y, Z Fig2Stat
	// Mean per-M-set probability under the approximate method.
	MMean float64
	// RatioXY is median P[X] / median P[Y] — the paper reports > 50.
	RatioXY float64
	// FairX/FairY/FairZ are the probabilities when sampling uniformly from
	// the exact neighborhood B(q, r) instead (all mass on Z here, since Z
	// is the only 0.9-near point).
	FairX, FairY, FairZ float64
}

// RunFig2 executes the experiment.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	inst := dataset.Adversarial()
	n := len(inst.Points)
	var family lsh.Family[set.Set] = lsh.MinHash{}
	if cfg.OneBit {
		family = lsh.OneBitMinHash{}
	}
	k := lsh.ChooseK[set.Set](family, n, cfg.FarSim, cfg.FarBudget)
	l := lsh.ChooseL[set.Set](family, k, cfg.R, cfg.Recall)
	params := lsh.Params{K: k, L: l}
	space := core.Jaccard()

	var pX, pY, pZ []float64
	var mMassSum float64
	fairFreq := stats.NewFrequency()
	fairTotal := 0

	build := 0
	for batch := 0; batch < cfg.Batches; batch++ {
		freq := stats.NewFrequency()
		for bb := 0; bb < cfg.BuildsPerBatch; bb++ {
			build++
			std, err := core.NewStandard[set.Set](space, family, params, inst.Points, cfg.R, cfg.Seed+uint64(build*37+1))
			if err != nil {
				return nil, err
			}
			for rep := 0; rep < cfg.RepsPerBuild; rep++ {
				if id, ok := std.ApproxFairSample(inst.Query, cfg.CR, nil); ok {
					freq.Observe(id)
				}
				// The exact-neighborhood (fair) baseline for contrast.
				if id, ok := std.NaiveFairSample(inst.Query, nil); ok {
					fairFreq.Observe(id)
					fairTotal++
				}
			}
		}
		total := float64(cfg.BuildsPerBatch * cfg.RepsPerBuild)
		pX = append(pX, float64(freq.Count(inst.X))/total)
		pY = append(pY, float64(freq.Count(inst.Y))/total)
		pZ = append(pZ, float64(freq.Count(inst.Z))/total)
		mMass := 0.0
		for i := int(inst.MStart); i < n; i++ {
			mMass += float64(freq.Count(int32(i))) / total
		}
		mMassSum += mMass / float64(n-int(inst.MStart))
	}

	quart := func(v []float64) Fig2Stat {
		return Fig2Stat{
			Median: stats.Quantile(v, 0.5),
			Q25:    stats.Quantile(v, 0.25),
			Q75:    stats.Quantile(v, 0.75),
		}
	}
	res := &Fig2Result{
		Config: cfg,
		Params: params,
		X:      quart(pX),
		Y:      quart(pY),
		Z:      quart(pZ),
		MMean:  mMassSum / float64(cfg.Batches),
	}
	if res.Y.Median > 0 {
		res.RatioXY = res.X.Median / res.Y.Median
	} else {
		// Y was never sampled; lower-bound the ratio by assuming one hit.
		res.RatioXY = res.X.Median * float64(cfg.Batches*cfg.BuildsPerBatch*cfg.RepsPerBuild)
	}
	if fairTotal > 0 {
		res.FairX = fairFreq.Rel(inst.X)
		res.FairY = fairFreq.Rel(inst.Y)
		res.FairZ = fairFreq.Rel(inst.Z)
	}
	return res, nil
}

// Render writes the figure as a text table.
func (r *Fig2Result) Render(w io.Writer) error {
	rows := [][]string{
		{"X", "0.50", f(r.X.Median), f(r.X.Q25), f(r.X.Q75)},
		{"Y", "0.60", f(r.Y.Median), f(r.Y.Q25), f(r.Y.Q75)},
		{"Z", "0.90", f(r.Z.Median), f(r.Z.Q25), f(r.Z.Q75)},
	}
	if err := WriteTable(w,
		fmt.Sprintf("Figure 2 (adversarial, r=%.1f cr=%.1f, K=%d, L=%d): approximate-neighborhood sampling probabilities", r.Config.R, r.Config.CR, r.Params.K, r.Params.L),
		[]string{"point", "similarity", "median P", "q25", "q75"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nmean per-M-set probability = %.6f\nP[X]/P[Y] (medians) = %.1f   (paper reports X more than 50x as likely as Y)\nexact-neighborhood baseline: P[X]=%.4f P[Y]=%.4f P[Z]=%.4f (Z is the only r-near point)\n",
		r.MMean, r.RatioXY, r.FairX, r.FairY, r.FairZ)
	return err
}
