package experiments

import (
	"fmt"
	"io"
	"math"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/shard"
	"fairnn/internal/stats"
)

// ValidateConfig parameterizes the theory-check experiment: empirical
// verification of the fairness theorems (1, 2, 4, 5) on a workload with a
// known ground-truth ball. For each structure it reports the
// total-variation distance of the output distribution from uniform over
// the recalled ball, the χ² p-value, and — for the independent samplers —
// the TV of the consecutive-pair distribution from the product measure.
type ValidateConfig struct {
	// Users sizes the clustered set workload.
	Users int
	// Radius is the Jaccard threshold.
	Radius float64
	// Samples per structure.
	Samples int
	Seed    uint64
	// Memo is the per-query memory discipline passed to the pooled
	// samplers; the zero value keeps the defaults (the CLI's -memo flag
	// lands here).
	Memo core.MemoOptions
	// Shards, when > 0, adds a sharded Section 4 row: the same workload
	// partitioned round-robin across Shards shards, so the uniformity and
	// independence checks cover the two-stage union draw (the CLI's
	// -shards flag lands here).
	Shards int
}

// DefaultValidate returns a configuration that runs in a few seconds.
func DefaultValidate() ValidateConfig {
	return ValidateConfig{Users: 500, Radius: 0.2, Samples: 20000, Seed: 565}
}

// ValidateRow is one structure's empirical fairness check.
type ValidateRow struct {
	Structure string
	Theorem   string
	BallSize  int
	TV        float64
	ChiP      float64
	// PairTV is the TV of consecutive output pairs from uniform²; NaN for
	// structures without an independence guarantee.
	PairTV float64
	// HasPair reports whether PairTV applies.
	HasPair bool
	// NoiseTV and PairNoiseTV are the expected TV of a *perfectly uniform*
	// sampler at this sample size (≈ sqrt(m/(2πN)) for m cells): an
	// empirical TV at or below this floor is indistinguishable from exact
	// uniformity.
	NoiseTV     float64
	PairNoiseTV float64
}

// noiseFloor returns the expected TV distance between the empirical
// distribution of n uniform samples over m cells and the uniform law.
func noiseFloor(m, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(float64(m) / (2 * math.Pi * float64(n)))
}

// ValidateResult carries the table.
type ValidateResult struct {
	Config ValidateConfig
	Rows   []ValidateRow
}

// RunValidate executes the checks.
func RunValidate(cfg ValidateConfig) (*ValidateResult, error) {
	dcfg := dataset.LastFMLike()
	dcfg.Users = cfg.Users
	dcfg.Communities = max(4, cfg.Users/50)
	sets := dataset.Generate(dcfg)
	queries := dataset.InterestingQueries(sets, cfg.Radius, 10, 1, cfg.Seed)
	if len(queries) == 0 {
		return nil, fmt.Errorf("validate: no suitable query")
	}
	q := sets[queries[0]]
	space := core.Jaccard()
	k := lsh.ChooseK[set.Set](lsh.OneBitMinHash{}, len(sets), 0.1, 5)
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, cfg.Radius, 0.999)
	params := lsh.Params{K: k, L: l}

	exact := core.NewExact[set.Set](space, sets, cfg.Radius, cfg.Seed)
	ball := exact.Ball(q, nil)
	ballIndex := make(map[int32]int32, len(ball))
	for i, id := range ball {
		ballIndex[id] = int32(i)
	}
	b := len(ball)

	res := &ValidateResult{Config: cfg}

	observe := func(name, theorem string, hasPair bool, sample func() (int32, bool)) {
		freq := stats.NewFrequency()
		pair := stats.NewFrequency()
		prev := int32(-1)
		for i := 0; i < cfg.Samples; i++ {
			id, ok := sample()
			if !ok {
				continue
			}
			freq.Observe(id)
			if pi, inBall := ballIndex[id]; inBall && hasPair {
				if prev >= 0 {
					pair.Observe(prev*int32(b) + pi)
				}
				prev = pi
			}
		}
		_, chiP := freq.ChiSquareUniform(ball)
		row := ValidateRow{
			Structure: name,
			Theorem:   theorem,
			BallSize:  b,
			TV:        freq.TVFromUniform(ball),
			ChiP:      chiP,
			HasPair:   hasPair,
			NoiseTV:   noiseFloor(b, freq.Total()),
		}
		if hasPair {
			pairDomain := make([]int32, b*b)
			for i := range pairDomain {
				pairDomain[i] = int32(i)
			}
			row.PairTV = pair.TVFromUniform(pairDomain)
			row.PairNoiseTV = noiseFloor(b*b, pair.Total())
		}
		res.Rows = append(res.Rows, row)
	}

	// Theorem 5: Appendix A rank-perturbation on a single repeated query.
	smp, err := core.NewSamplerMemo[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, cfg.Memo, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	observe("Section 3 + Appendix A (SampleRepeated)", "Thm 5", true, func() (int32, bool) {
		return smp.SampleRepeated(q, nil)
	})

	// Theorem 2: the Section 4 NNIS structure.
	ind, err := core.NewIndependent[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, core.IndependentOptions{Memo: cfg.Memo}, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	observe("Section 4 (Independent)", "Thm 2", true, func() (int32, bool) {
		return ind.Sample(q, nil)
	})

	// Theorem 2 across a partitioned index: the sharded union draw must be
	// just as uniform and independent as the single structure.
	if cfg.Shards > 0 {
		sh, err := shard.Build[set.Set](space, lsh.OneBitMinHash{},
			func(int) lsh.Params { return params }, sets, cfg.Radius,
			core.IndependentOptions{Memo: cfg.Memo}, cfg.Shards, shard.RoundRobin{}, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		observe(fmt.Sprintf("Sharded Section 4 (S=%d)", cfg.Shards), "Thm 2", true, func() (int32, bool) {
			return sh.Sample(q, nil)
		})
	}

	// Baseline contrast: the biased standard query (no theorem — shows
	// what failure looks like).
	std, err := core.NewStandard[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	observe("standard LSH (biased baseline)", "—", false, func() (int32, bool) {
		return std.QueryRandomTableOrder(q, nil)
	})

	// Naive fair baseline (uniform but linear in the candidate set).
	observe("naive fair (collect all)", "—", false, func() (int32, bool) {
		return std.NaiveFairSample(q, nil)
	})
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render writes the table.
func (r *ValidateResult) Render(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		pairCell, pairFloor := "n/a", "n/a"
		if row.HasPair {
			pairCell = f(row.PairTV)
			pairFloor = f(row.PairNoiseTV)
		}
		rows = append(rows, []string{
			row.Structure, row.Theorem,
			fmt.Sprintf("%d", row.BallSize),
			f(row.TV), f(row.NoiseTV), f(row.ChiP), pairCell, pairFloor,
		})
	}
	return WriteTable(w,
		fmt.Sprintf("Theory check (n=%d, r=%.2f, %d samples): uniformity and independence", r.Config.Users, r.Config.Radius, r.Config.Samples),
		[]string{"structure", "theorem", "ball", "TV vs uniform", "noise floor", "chi2 p", "pair TV", "pair floor"},
		rows)
}
