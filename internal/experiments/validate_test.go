package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateFairStructuresAtNoiseFloor(t *testing.T) {
	cfg := DefaultValidate()
	cfg.Users = 350
	cfg.Samples = 2500
	res, err := RunValidate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.Structure {
		case "standard LSH (biased baseline)":
			// The biased baseline must be far above the noise floor and
			// decisively rejected by the χ² test.
			if row.TV < 5*row.NoiseTV {
				t.Errorf("biased baseline TV %v suspiciously close to floor %v", row.TV, row.NoiseTV)
			}
			if row.ChiP > 1e-6 {
				t.Errorf("biased baseline χ² p = %v, want ≈ 0", row.ChiP)
			}
		default:
			// Every fair structure sits near the noise floor.
			if row.TV > 3*row.NoiseTV {
				t.Errorf("%s: TV %v above 3x noise floor %v", row.Structure, row.TV, row.NoiseTV)
			}
			if row.ChiP < 1e-4 {
				t.Errorf("%s: χ² rejects uniformity (p=%v)", row.Structure, row.ChiP)
			}
			if row.HasPair && row.PairTV > 1.5*row.PairNoiseTV {
				t.Errorf("%s: pair TV %v above 1.5x pair floor %v — outputs correlated", row.Structure, row.PairTV, row.PairNoiseTV)
			}
		}
	}
}

func TestValidateRender(t *testing.T) {
	cfg := DefaultValidate()
	cfg.Users = 300
	cfg.Samples = 600
	res, err := RunValidate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Theory check", "Thm 2", "Thm 5", "noise floor"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestNoiseFloor(t *testing.T) {
	// More samples → lower floor; more cells → higher floor.
	if noiseFloor(10, 1000) <= noiseFloor(10, 100000) {
		t.Error("floor not decreasing in samples")
	}
	if noiseFloor(100, 1000) <= noiseFloor(10, 1000) {
		t.Error("floor not increasing in cells")
	}
	if noiseFloor(10, 0) != 0 {
		t.Error("zero samples should give zero floor")
	}
}
