package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Shape assertions: the experiments must reproduce the paper's qualitative
// findings even at reduced Monte-Carlo scale. Absolute numbers differ (our
// datasets are synthetic stand-ins), but who wins and by what order must
// match Section 6.

func smallFig1() Fig1Config {
	cfg := DefaultFig1LastFM()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Queries = 6
	cfg.Builds = 3
	cfg.RepsPerBuild = 150
	cfg.MinNeighbors = 10
	return cfg
}

func TestFig1StandardIsBiasedFairIsNot(t *testing.T) {
	res, err := RunFig1(smallFig1())
	if err != nil {
		t.Fatal(err)
	}
	// Q1 headline: standard LSH's output distribution is far from uniform,
	// fair LSH's is close.
	if res.MeanTVStd < 3*res.MeanTVFair {
		t.Errorf("TV separation too small: std %v vs fair %v", res.MeanTVStd, res.MeanTVFair)
	}
	if res.MeanTVFair > 0.35 {
		t.Errorf("fair LSH TV %v too high", res.MeanTVFair)
	}
	// The bias gradient: standard frequencies increase with similarity.
	if slope := res.BiasSlope(false); slope < 0.3 {
		t.Errorf("standard bias slope %v, want strongly positive", slope)
	}
	if slope := res.BiasSlope(true); slope > 0.4 {
		t.Errorf("fair bias slope %v, want near zero", slope)
	}
}

func TestFig1RowsCoverEveryQuery(t *testing.T) {
	res, err := RunFig1(smallFig1())
	if err != nil {
		t.Fatal(err)
	}
	queries := map[int]bool{}
	for _, row := range res.Rows {
		queries[row.Query] = true
		if row.PointsAt <= 0 {
			t.Fatalf("empty similarity group in row %+v", row)
		}
		if row.Similarity < res.Config.Radius-0.01 {
			t.Fatalf("row below radius: %+v", row)
		}
	}
	if len(queries) != len(res.PerQuery) {
		t.Errorf("rows cover %d queries, per-query stats %d", len(queries), len(res.PerQuery))
	}
}

func TestFig1Render(t *testing.T) {
	res, err := RunFig1(smallFig1())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "TV distance", "mean TV standard"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func smallFig2() Fig2Config {
	cfg := DefaultFig2()
	cfg.Batches = 6
	cfg.BuildsPerBatch = 12
	cfg.RepsPerBuild = 40
	return cfg
}

func TestFig2ApproximateNeighborhoodIsUnfair(t *testing.T) {
	res, err := RunFig2(smallFig2())
	if err != nil {
		t.Fatal(err)
	}
	// Q2 headline: X (similarity 0.5) dominates Y (similarity 0.6).
	if res.X.Median <= res.Y.Median {
		t.Errorf("P[X]=%v not above P[Y]=%v", res.X.Median, res.Y.Median)
	}
	if res.RatioXY < 10 {
		t.Errorf("X/Y ratio %v, paper reports > 50", res.RatioXY)
	}
	// X is orders of magnitude above a typical cluster member.
	if res.MMean > 0 && res.X.Median < 10*res.MMean {
		t.Errorf("P[X]=%v not far above per-M probability %v", res.X.Median, res.MMean)
	}
	// The exact-neighborhood baseline has no such pathology: the 0.9-ball
	// is exactly {Z}.
	if res.FairZ < 0.99 {
		t.Errorf("exact-neighborhood P[Z] = %v, want ~1", res.FairZ)
	}
	if res.FairX > 0.001 || res.FairY > 0.001 {
		t.Errorf("exact-neighborhood returned X or Y: %v, %v", res.FairX, res.FairY)
	}
}

func TestFig2OneBitAblationWashesOutCorrelation(t *testing.T) {
	cfg := smallFig2()
	full, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OneBit = true
	onebit, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Under 1-bit keys the cluster enters candidate sets near-independently
	// per set, so X loses most of its advantage.
	if onebit.X.Median > full.X.Median/2 {
		t.Errorf("1-bit P[X]=%v not well below full-MinHash P[X]=%v", onebit.X.Median, full.X.Median)
	}
}

func TestFig2Render(t *testing.T) {
	res, err := RunFig2(smallFig2())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render output missing title")
	}
}

func smallFig3(base func() Fig3Config) Fig3Config {
	cfg := base()
	cfg.Dataset.Users = 450
	cfg.Dataset.Communities = 8
	cfg.Queries = 15
	cfg.MinNeighbors = 10
	return cfg
}

func TestFig3RatiosDecreaseInC(t *testing.T) {
	res, err := RunFig3(smallFig3(DefaultFig3LastFM))
	if err != nil {
		t.Fatal(err)
	}
	// For a fixed r, a larger c (threshold closer to r) means a smaller
	// b_cr, so the mean ratio must be non-increasing in c.
	byR := map[float64][]Fig3Cell{}
	for _, cell := range res.Cells {
		byR[cell.R] = append(byR[cell.R], cell)
	}
	for r, cells := range byR {
		for i := 1; i < len(cells); i++ {
			if cells[i].C <= cells[i-1].C {
				t.Fatalf("cells not ordered by c for r=%v", r)
			}
			if cells[i].MeanRatio > cells[i-1].MeanRatio+1e-9 {
				t.Errorf("r=%v: ratio increases from c=%v (%v) to c=%v (%v)",
					r, cells[i-1].C, cells[i-1].MeanRatio, cells[i].C, cells[i].MeanRatio)
			}
		}
	}
	// Ratios are at least 1 by definition (b_cr ⊇ b_r).
	for _, cell := range res.Cells {
		if cell.MeanRatio < 1-1e-9 {
			t.Errorf("ratio below 1: %+v", cell)
		}
	}
}

func TestFig3MovieLensHeavierThanLastFM(t *testing.T) {
	lfm, err := RunFig3(smallFig3(DefaultFig3LastFM))
	if err != nil {
		t.Fatal(err)
	}
	mvl, err := RunFig3(smallFig3(DefaultFig3MovieLens))
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(res *Fig3Result) float64 {
		max := 0.0
		for _, c := range res.Cells {
			if c.MeanRatio > max {
				max = c.MeanRatio
			}
		}
		return max
	}
	// The paper's bottom row (MovieLens) reaches ratios an order of
	// magnitude above the top row (Last.FM): large, popularity-skewed sets
	// accumulate weak similarities.
	if maxOf(mvl) < 2*maxOf(lfm) {
		t.Errorf("MovieLens max ratio %v not well above Last.FM %v", maxOf(mvl), maxOf(lfm))
	}
}

func TestCostOrderings(t *testing.T) {
	cfg := DefaultCost()
	cfg.Dataset.Users = 400
	cfg.Dataset.Communities = 8
	cfg.Queries = 8
	cfg.RepsPerQuery = 10
	cfg.MinNeighbors = 10
	res, err := RunCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CostRow{}
	for _, row := range res.Rows {
		byName[row.Method] = row
		if row.FoundRate < 0.95 {
			t.Errorf("%s found rate %v", row.Method, row.FoundRate)
		}
	}
	std := byName["standard LSH (first hit)"]
	naive := byName["naive fair (collect all)"]
	nns := byName["Section 3 NNS (min rank)"]
	// The biased baseline inspects far fewer points than any fair method.
	if std.MeanInspected >= nns.MeanInspected {
		t.Errorf("standard inspects %v, fair NNS %v — expected standard cheaper", std.MeanInspected, nns.MeanInspected)
	}
	// The Section 3 structure beats collecting the whole candidate set.
	if nns.MeanInspected >= naive.MeanInspected {
		t.Errorf("NNS inspects %v, naive fair %v — expected NNS cheaper", nns.MeanInspected, naive.MeanInspected)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, "title", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"title", "a", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table output", want)
		}
	}
}

func TestScalingSubLinear(t *testing.T) {
	cfg := DefaultScaling()
	cfg.Ns = []int{500, 1000, 2000, 4000}
	cfg.QueriesPerN = 20
	res, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 3 shape: candidate work clearly sub-linear, the exact scan
	// essentially linear, and per-bank space exactly linear.
	if res.CandidateExponent > 0.9 {
		t.Errorf("candidate exponent %v, want sub-linear (< 0.9)", res.CandidateExponent)
	}
	if res.ExactExponent < 0.8 {
		t.Errorf("exact-scan exponent %v, want ≈ 1", res.ExactExponent)
	}
	for _, row := range res.Rows {
		if row.SpaceRefs != row.Banks*row.N {
			t.Errorf("n=%d: %d refs for %d banks — not linear space", row.N, row.SpaceRefs, row.Banks)
		}
	}
}
