package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/filter"
	"fairnn/internal/lsh"
	"fairnn/internal/shard"
	"fairnn/internal/vector"
)

// ScalingConfig parameterizes the Section 5 scaling experiment: Theorems 3
// and 4 claim n^ρ+o(1) query cost and linear space for the filter-based
// structure, with ρ = (1-α²)(1-β²)/(1-αβ)². We plant identical query
// workloads at geometrically growing n and fit the empirical growth
// exponent of the per-query candidate work, comparing against the exact
// linear scan (exponent 1).
type ScalingConfig struct {
	// Ns are the dataset sizes (geometric grid recommended).
	Ns []int
	// Dim is the vector dimensionality.
	Dim int
	// Alpha and Beta are the similarity thresholds.
	Alpha, Beta float64
	// BallSize and MidSize are held constant across n so that only the
	// background (far-point) work scales.
	BallSize, MidSize int
	// QueriesPerN is the number of measured queries per size.
	QueriesPerN int
	Seed        uint64
	// Memo is the per-query memory discipline passed to the filter
	// structure; the zero value keeps the defaults (the CLI's -memo
	// flag lands here).
	Memo core.MemoOptions
	// Shards, when > 0, additionally builds a sharded Section 4 sampler
	// (SimHash over the same vectors, partitioned round-robin across
	// Shards shards) at every n and reports its build and query wall
	// times — the shard-count sweep of the scaling experiment (the CLI's
	// -shards flag lands here).
	Shards int
}

// DefaultScaling uses α=0.8, β=0.5 (ρ ≈ 0.75) over n = 1k..8k.
func DefaultScaling() ScalingConfig {
	return ScalingConfig{
		Ns:          []int{1000, 2000, 4000, 8000},
		Dim:         32,
		Alpha:       0.8,
		Beta:        0.5,
		BallSize:    16,
		MidSize:     48,
		QueriesPerN: 30,
		Seed:        666,
	}
}

// ScalingRow is the measurement at one dataset size.
type ScalingRow struct {
	N int
	// Candidates is the mean number of bucket entries inspected per query
	// (the n^ρ-scaling quantity of Lemma 3).
	Candidates float64
	// FilterEvals is the mean number of filter inner products per query.
	FilterEvals float64
	// Micros is the mean wall time per query.
	Micros float64
	// ExactMicros is the mean wall time of the linear-scan baseline.
	ExactMicros float64
	// SpaceRefs counts stored point references across banks (linear-space
	// check: must equal L·n exactly).
	SpaceRefs int
	Banks     int
	// ShardedBuildMicros and ShardedMicros are the sharded Section 4
	// sampler's build and mean per-query wall times (populated only when
	// Config.Shards > 0).
	ShardedBuildMicros float64
	ShardedMicros      float64
}

// ScalingResult carries the series and fitted exponents.
type ScalingResult struct {
	Config ScalingConfig
	Rho    float64 // theoretical exponent
	Rows   []ScalingRow
	// CandidateExponent is the least-squares slope of log(candidates)
	// vs log(n); Theorem 3 predicts ≈ ρ + o(1), and in particular < 1.
	CandidateExponent float64
	// ExactExponent is the slope for the linear scan (≈ 1).
	ExactExponent float64
}

// RunScaling executes the experiment.
func RunScaling(cfg ScalingConfig) (*ScalingResult, error) {
	res := &ScalingResult{Config: cfg, Rho: filter.Rho(cfg.Alpha, cfg.Beta)}
	for _, n := range cfg.Ns {
		w := dataset.NewPlantedBall(dataset.PlantedBallConfig{
			N: n, Dim: cfg.Dim, Alpha: cfg.Alpha, Beta: cfg.Beta,
			BallSize: cfg.BallSize, MidSize: cfg.MidSize,
			Seed: cfg.Seed + uint64(n),
		})
		fi, err := core.NewFilterIndependent(w.Points, cfg.Alpha, cfg.Beta, core.FilterIndependentOptions{Memo: cfg.Memo}, cfg.Seed+uint64(n)*7)
		if err != nil {
			return nil, err
		}
		exact := core.NewExact[vector.Vec](core.InnerProduct(), w.Points, cfg.Alpha, cfg.Seed)
		var cand, evals, micros, exactMicros float64
		for qi := 0; qi < cfg.QueriesPerN; qi++ {
			var st core.QueryStats
			start := time.Now()
			fi.Sample(w.Query, &st)
			micros += float64(time.Since(start).Nanoseconds()) / 1000
			cand += float64(st.PointsInspected + st.Rounds)
			evals += float64(st.FilterEvals)
			start = time.Now()
			exact.Sample(w.Query, nil)
			exactMicros += float64(time.Since(start).Nanoseconds()) / 1000
		}
		q := float64(cfg.QueriesPerN)
		row := ScalingRow{
			N:           n,
			Candidates:  cand / q,
			FilterEvals: evals / q,
			Micros:      micros / q,
			ExactMicros: exactMicros / q,
			SpaceRefs:   fi.Banks() * n,
			Banks:       fi.Banks(),
		}
		if cfg.Shards > 0 {
			build, query, err := shardedPoint(cfg, w, n)
			if err != nil {
				return nil, err
			}
			row.ShardedBuildMicros, row.ShardedMicros = build, query
		}
		res.Rows = append(res.Rows, row)
	}
	res.CandidateExponent = fitExponent(res.Rows, func(r ScalingRow) float64 { return r.Candidates })
	res.ExactExponent = fitExponent(res.Rows, func(r ScalingRow) float64 { return r.ExactMicros })
	return res, nil
}

// shardedPoint measures the sharded Section 4 sampler (SimHash over the
// same planted vectors, round-robin across cfg.Shards shards) at one
// dataset size: build wall time and mean Sample wall time, in µs. LSH
// parameters are chosen per shard from its point count, exactly as the
// façade constructor does.
func shardedPoint(cfg ScalingConfig, w dataset.PlantedBall, n int) (buildMicros, queryMicros float64, err error) {
	fam := lsh.SimHash{Dim: cfg.Dim}
	paramsFor := func(shardSize int) lsh.Params {
		k := lsh.ChooseK[vector.Vec](fam, shardSize, 0, 5)
		l := lsh.ChooseL[vector.Vec](fam, k, cfg.Alpha, 0.99)
		return lsh.Params{K: k, L: l}
	}
	start := time.Now()
	sh, err := shard.Build[vector.Vec](core.InnerProduct(), fam, paramsFor, w.Points, cfg.Alpha,
		core.IndependentOptions{Memo: cfg.Memo}, cfg.Shards, shard.RoundRobin{}, cfg.Seed+uint64(n)*13)
	if err != nil {
		return 0, 0, err
	}
	buildMicros = float64(time.Since(start).Nanoseconds()) / 1000
	start = time.Now()
	for qi := 0; qi < cfg.QueriesPerN; qi++ {
		sh.Sample(w.Query, nil)
	}
	queryMicros = float64(time.Since(start).Nanoseconds()) / 1000 / float64(cfg.QueriesPerN)
	return buildMicros, queryMicros, nil
}

// fitExponent returns the least-squares slope of log(metric) vs log(n).
func fitExponent(rows []ScalingRow, metric func(ScalingRow) float64) float64 {
	var xs, ys []float64
	for _, r := range rows {
		v := metric(r)
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r.N)))
		ys = append(ys, math.Log(v))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Render writes the table (plus the sharded columns when the sweep ran).
func (r *ScalingResult) Render(w io.Writer) error {
	sharded := r.Config.Shards > 0
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%d", row.N),
			f2(row.Candidates),
			f2(row.FilterEvals),
			f2(row.Micros),
			f2(row.ExactMicros),
			fmt.Sprintf("%d", row.SpaceRefs),
			fmt.Sprintf("%d", row.Banks),
		}
		if sharded {
			cells = append(cells, f2(row.ShardedBuildMicros), f2(row.ShardedMicros))
		}
		rows = append(rows, cells)
	}
	header := []string{"n", "candidates/query", "filter evals", "mean µs", "exact µs", "space refs", "banks"}
	title := fmt.Sprintf("Section 5 scaling (α=%.2f β=%.2f, theoretical ρ=%.3f): query work vs n", r.Config.Alpha, r.Config.Beta, r.Rho)
	if sharded {
		header = append(header, fmt.Sprintf("S=%d build µs", r.Config.Shards), fmt.Sprintf("S=%d µs", r.Config.Shards))
		title += fmt.Sprintf(" (+ sharded Section 4, S=%d)", r.Config.Shards)
	}
	if err := WriteTable(w, title, header, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nfitted exponents: candidates ~ n^%.2f (theory ρ=%.2f, sub-linear), exact scan ~ n^%.2f\n",
		r.CandidateExponent, r.Rho, r.ExactExponent)
	return err
}
