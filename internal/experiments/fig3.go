package experiments

import (
	"fmt"
	"io"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

// Fig3Config parameterizes the Q3 ratio experiment (§6.3 / Figure 3): the
// additional cost factor b_cr/b_r of solving the exact neighborhood
// variant, across radii r and approximation factors c (for similarities,
// c < 1 relaxes the threshold downwards to c·r).
type Fig3Config struct {
	Dataset dataset.SetConfig
	// Radii are the thresholds r (paper: 0.15, 0.2, 0.25).
	Radii []float64
	// Cs are the approximation factors (paper's x-axis: 1/5, 1/4, 1/3,
	// 1/2, 2/3).
	Cs []float64
	// Queries is the number of interesting queries (paper: 50).
	Queries int
	// MinSim and MinNeighbors define "interesting" queries (paper: at
	// least 40 neighbors at Jaccard >= 0.2). Zero values select the
	// paper's thresholds.
	MinSim       float64
	MinNeighbors int
	Seed         uint64
}

// DefaultFig3LastFM mirrors the top row of Figure 3.
func DefaultFig3LastFM() Fig3Config {
	return Fig3Config{
		Dataset: dataset.LastFMLike(),
		Radii:   []float64{0.15, 0.2, 0.25},
		Cs:      []float64{0.2, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0},
		Queries: 50,
		Seed:    363,
	}
}

// DefaultFig3MovieLens mirrors the bottom row of Figure 3.
func DefaultFig3MovieLens() Fig3Config {
	cfg := DefaultFig3LastFM()
	cfg.Dataset = dataset.MovieLensLike()
	cfg.Seed = 364
	return cfg
}

// Fig3Cell is one (r, c) point of the figure: the distribution of
// b_{c·r}(q)/b_r(q) over the query set.
type Fig3Cell struct {
	R, C          float64
	MeanRatio     float64
	MedianRatio   float64
	Q25, Q75, Max float64
	MeanBallR     float64
	MeanBallCR    float64
}

// Fig3Result carries the full figure for one dataset.
type Fig3Result struct {
	Config Fig3Config
	Cells  []Fig3Cell
}

// RunFig3 executes the experiment.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	sets := dataset.Generate(cfg.Dataset)
	minSim, minNb := cfg.MinSim, cfg.MinNeighbors
	if minSim <= 0 {
		minSim = 0.2
	}
	if minNb <= 0 {
		minNb = 40
	}
	queries := dataset.InterestingQueries(sets, minSim, minNb, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, fmt.Errorf("fig3: no interesting queries in dataset")
	}
	exact := core.NewExact[set.Set](core.Jaccard(), sets, 0, cfg.Seed)
	res := &Fig3Result{Config: cfg}
	for _, r := range cfg.Radii {
		// b_r per query (computed once per radius).
		br := make([]float64, len(queries))
		for qi, q := range queries {
			br[qi] = float64(exact.BallSizeAt(sets[q], r))
		}
		for _, c := range cfg.Cs {
			cr := c * r
			ratios := make([]float64, len(queries))
			var sumR, sumCR float64
			for qi, q := range queries {
				bcr := float64(exact.BallSizeAt(sets[q], cr))
				den := br[qi]
				if den < 1 {
					den = 1
				}
				ratios[qi] = bcr / den
				sumR += br[qi]
				sumCR += bcr
			}
			s := stats.Summarize(ratios)
			res.Cells = append(res.Cells, Fig3Cell{
				R: r, C: c,
				MeanRatio:   s.Mean,
				MedianRatio: s.Median,
				Q25:         s.Q25,
				Q75:         s.Q75,
				Max:         s.Max,
				MeanBallR:   sumR / float64(len(queries)),
				MeanBallCR:  sumCR / float64(len(queries)),
			})
		}
	}
	return res, nil
}

// Render writes the figure as a text table.
func (r *Fig3Result) Render(w io.Writer, name string) error {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			f2(c.R), f2(c.C), f2(c.C * c.R),
			f2(c.MeanRatio), f2(c.MedianRatio), f2(c.Q25), f2(c.Q75), f2(c.Max),
			f2(c.MeanBallR), f2(c.MeanBallCR),
		})
	}
	return WriteTable(w,
		fmt.Sprintf("Figure 3 (%s): ratio b_cr/b_r over %d queries", name, r.Config.Queries),
		[]string{"r", "c", "cr", "mean ratio", "median", "q25", "q75", "max", "mean b_r", "mean b_cr"},
		rows)
}
