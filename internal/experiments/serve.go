package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/obs"
	"fairnn/internal/rng"
	"fairnn/internal/servefix"
	"fairnn/internal/shard"
	"fairnn/internal/wire"
)

// ServeConfig parameterizes the network load-test harness: a fleet of
// in-process wire servers on loopback (the same server type
// cmd/fairnn-server runs, so every protocol path is the real one), a
// Connect-assembled sampler over it, and a pool of concurrent client
// goroutines firing queries while an optional mid-run server kill +
// restart exercises degradation and probed re-admission under load.
type ServeConfig struct {
	// N is the global point count of the line spec.
	N int
	// Shards is the server fleet size.
	Shards int
	// Radius is the query radius on the line.
	Radius float64
	// Clients is the number of concurrent client goroutines.
	Clients int
	// QueriesPerClient is each goroutine's query count.
	QueriesPerClient int
	// Kill, when set, abruptly closes one server mid-run and restarts it
	// (same build, same address) once the load finishes, then verifies
	// the health registry probes it back in.
	Kill bool
	Seed uint64
}

// DefaultServe keeps the harness in CI-smoke territory while still
// producing meaningful latency percentiles: 4 clients x 250 queries
// against a 4-shard fleet, with a mid-run kill.
func DefaultServe() ServeConfig {
	return ServeConfig{
		N:                4000,
		Shards:           4,
		Radius:           40,
		Clients:          4,
		QueriesPerClient: 250,
		Kill:             true,
		Seed:             3141,
	}
}

// ServeResult carries the aggregate load-test outcome.
type ServeResult struct {
	Config ServeConfig
	// Queries is the total query count across clients.
	Queries int
	// OK / DegradedOK / NoSample partition the successful outcomes;
	// Failed counts typed failures (all of them legitimate under a kill).
	OK, DegradedOK, NoSample, Failed int
	// P50Micros..P999Micros are latency quantiles over all queries, read
	// from the shared log-spaced obs histogram (bucket-interpolated, the
	// same summaries a /metrics scrape would yield).
	P50Micros, P90Micros, P99Micros, P999Micros float64
	// Hist is the non-empty latency buckets backing the quantiles,
	// emitted as SERVE_HIST lines for the bench history.
	Hist []obs.Bucket
	// QPS is the measured throughput (queries / wall-clock second) and
	// QueriesPerHour its hourly extrapolation — the serving-scale figure.
	QPS, QueriesPerHour float64
	// Killed and Readmitted report the kill/restart cycle (zero-valued
	// when Config.Kill is off).
	Killed     bool
	Readmitted bool
	// Health is the sampler's final health registry snapshot, as served
	// by the operator endpoint.
	Health []wire.HealthRecord
}

// serveFleet is a loopback fleet of real wire servers plus the recipe to
// restart any member on its original address.
type serveFleet struct {
	sp    servefix.Spec
	addrs []string
	srvs  []*wire.Server[int]
}

// startServeFleet builds and serves every shard of a line spec.
func startServeFleet(sp servefix.Spec) (*serveFleet, error) {
	f := &serveFleet{sp: sp, addrs: make([]string, sp.Shards), srvs: make([]*wire.Server[int], sp.Shards)}
	for j := 0; j < sp.Shards; j++ {
		if err := f.start(j, "127.0.0.1:0"); err != nil {
			f.close()
			return nil, err
		}
	}
	return f, nil
}

// start builds shard j and serves it on addr, recording the resolved
// address so a later restart can rebind it.
func (f *serveFleet) start(j int, addr string) error {
	d, meta, err := servefix.BuildLineShard(f.sp, j)
	if err != nil {
		return err
	}
	srv := wire.NewServer[int](d, wire.IntCodec{}, meta, nil)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	f.srvs[j] = srv
	f.addrs[j] = ln.Addr().String()
	go func() {
		defer func() { _ = recover() }() // containment: a dead server must not kill the harness
		_ = srv.Serve(ln)
	}()
	return nil
}

// restart rebuilds shard j (identical build) on its original address.
func (f *serveFleet) restart(j int) error { return f.start(j, f.addrs[j]) }

func (f *serveFleet) close() {
	for _, srv := range f.srvs {
		if srv != nil {
			srv.Close()
		}
	}
}

// RunServe executes the load test. Invariant violations — far points,
// untyped errors — abort the run with an error.
//
//fairnn:rng-source per-client query-point streams seeded from the serve config
func RunServe(cfg ServeConfig) (*ServeResult, error) {
	sp := servefix.Spec{Dataset: "line", N: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Radius: cfg.Radius}
	fleet, err := startServeFleet(sp)
	if err != nil {
		return nil, err
	}
	defer fleet.close()
	s, err := shard.Connect[int](wire.IntCodec{}, fleet.addrs, shard.RemoteConfig{
		Partitioner: sp.Partitioner(),
		Resilience:  shard.Resilience{Degraded: true, Deadline: 200 * time.Millisecond, Retries: 1},
		DialTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	// Operator endpoint: the sampler's own health registry over the wire
	// (the server fleet cannot know which shards a client wrote off).
	hs := wire.NewHealthServer(func() []wire.HealthRecord { return shard.HealthRecords(s) })
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() {
		defer func() { _ = recover() }()
		_ = hs.Serve(hln)
	}()
	defer hs.Close()

	res := &ServeResult{Config: cfg, Queries: cfg.Clients * cfg.QueriesPerClient}
	const killShard = 1
	var done atomic.Int64
	killAt := int64(res.Queries) / 2
	var killOnce sync.Once

	type outcome struct {
		ok, degradedOK, noSample, failed int
		err                              error
	}
	outs := make([]outcome, cfg.Clients)
	// One shared latency histogram across clients: Observe is lock-free
	// and concurrent-safe, and its quantiles are exactly what the serve
	// registry would expose — the gauge and the operator endpoint agree
	// by construction.
	hist := obs.NewHistogram()
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer func() {
				if r := recover(); r != nil {
					outs[c].err = fmt.Errorf("serve client %d panicked: %v", c, r)
				}
				wg.Done()
			}()
			r := rng.New(cfg.Seed ^ (0xc11e47<<8 + uint64(c)))
			var st core.QueryStats
			for i := 0; i < cfg.QueriesPerClient; i++ {
				if cfg.Kill && done.Load() >= killAt {
					killOnce.Do(func() {
						fleet.srvs[killShard].Close()
						res.Killed = true
					})
				}
				q := r.Intn(cfg.N)
				t0 := time.Now()
				id, err := s.SampleContext(context.Background(), q, &st)
				hist.Observe(time.Since(t0))
				done.Add(1)
				switch {
				case err == nil:
					if d := float64(id) - float64(q); d > cfg.Radius || d < -cfg.Radius {
						outs[c].err = fmt.Errorf("serve client %d: far point %d for query %d", c, id, q)
						return
					}
					if st.Degraded.Degraded() {
						outs[c].degradedOK++
					} else {
						outs[c].ok++
					}
				case errors.Is(err, core.ErrNoSample):
					outs[c].noSample++
				case errors.Is(err, shard.ErrDegraded):
					outs[c].failed++
				default:
					var se *shard.ShardError
					if errors.As(err, &se) {
						outs[c].failed++
						continue
					}
					outs[c].err = fmt.Errorf("serve client %d: untyped error %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	for c := range outs {
		if outs[c].err != nil {
			return nil, outs[c].err
		}
		res.OK += outs[c].ok
		res.DegradedOK += outs[c].degradedOK
		res.NoSample += outs[c].noSample
		res.Failed += outs[c].failed
	}
	res.P50Micros = quantileMicros(hist, 0.50)
	res.P90Micros = quantileMicros(hist, 0.90)
	res.P99Micros = quantileMicros(hist, 0.99)
	res.P999Micros = quantileMicros(hist, 0.999)
	res.Hist = hist.Snapshot()
	res.QPS = float64(hist.Count()) / wall.Seconds()
	res.QueriesPerHour = res.QPS * 3600
	if cfg.Kill && res.DegradedOK == 0 {
		return nil, fmt.Errorf("serve: server %d was killed mid-run but no query reported degradation", killShard)
	}

	if res.Killed {
		// Restart the killed shard on its original address and verify the
		// client's health registry probes it back in.
		if err := fleet.restart(killShard); err != nil {
			return nil, fmt.Errorf("serve: restart shard %d: %w", killShard, err)
		}
		deadline := time.Now().Add(10 * time.Second)
		r := rng.New(cfg.Seed ^ 0x9ead)
		for time.Now().Before(deadline) {
			var st core.QueryStats
			if _, err := s.SampleContext(context.Background(), r.Intn(cfg.N), &st); err == nil && !st.Degraded.Degraded() {
				res.Readmitted = true
				break
			}
		}
		if !res.Readmitted {
			return nil, fmt.Errorf("serve: restarted shard %d was never probed back in", killShard)
		}
	}

	// Read the final registry through the operator endpoint — the same
	// bytes an external health checker would see.
	hctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res.Health, err = wire.FetchHealth(hctx, hln.Addr().String())
	if err != nil {
		return nil, fmt.Errorf("serve: operator health endpoint: %w", err)
	}
	return res, nil
}

// quantileMicros reads the q-quantile of the histogram in microseconds.
func quantileMicros(h *obs.Histogram, q float64) float64 {
	return float64(h.Quantile(q)) / 1000
}

// Render writes the aggregate table, the health snapshot, and the
// machine-parseable SERVE / SERVE_HIST lines scripts/bench.sh folds
// into the bench history (BENCH_PR10.json).
func (r *ServeResult) Render(w io.Writer) error {
	title := fmt.Sprintf("serve: %d clients x %d queries over %d loopback servers, n=%d (kill=%v)",
		r.Config.Clients, r.Config.QueriesPerClient, r.Config.Shards, r.Config.N, r.Config.Kill)
	rows := [][]string{{
		fmt.Sprintf("%d", r.Queries),
		fmt.Sprintf("%d", r.OK),
		fmt.Sprintf("%d", r.DegradedOK),
		fmt.Sprintf("%d", r.NoSample),
		fmt.Sprintf("%d", r.Failed),
		f2(r.P50Micros),
		f2(r.P90Micros),
		f2(r.P99Micros),
		f2(r.P999Micros),
		f2(r.QPS),
	}}
	if err := WriteTable(w, title, []string{"queries", "ok", "degraded", "no-sample", "failed", "p50 µs", "p90 µs", "p99 µs", "p999 µs", "qps"}, rows); err != nil {
		return err
	}
	for _, h := range r.Health {
		state := "healthy"
		if !h.Healthy {
			state = "down"
		}
		if _, err := fmt.Fprintf(w, "health: shard %d %s (failures=%d skipped=%d probes=%d readmissions=%d)\n",
			h.Shard, state, h.Failures, h.Skipped, h.Probes, h.Readmissions); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "SERVE queries=%d ok=%d degraded_ok=%d no_sample=%d failed=%d p50_us=%.2f p90_us=%.2f p99_us=%.2f p999_us=%.2f qps=%.2f queries_per_hour=%.0f killed=%v readmitted=%v\n",
		r.Queries, r.OK, r.DegradedOK, r.NoSample, r.Failed, r.P50Micros, r.P90Micros, r.P99Micros, r.P999Micros, r.QPS, r.QueriesPerHour, r.Killed, r.Readmitted); err != nil {
		return err
	}
	// Bucket dump: one line per non-empty bucket (upper bound in µs, 0
	// marks the overflow bucket), non-cumulative counts.
	for _, b := range r.Hist {
		if _, err := fmt.Fprintf(w, "SERVE_HIST le_us=%.3f count=%d\n", float64(b.UpperNanos)/1000, b.Count); err != nil {
			return err
		}
	}
	return nil
}

// ServeChaosConfig parameterizes the network chaos schedule: seeded
// kill/restart cycles against a live loopback fleet under query load —
// the process-level analogue of RunChaos's injected faults.
type ServeChaosConfig struct {
	// Cycles is the number of kill → load → restart → recover rounds.
	Cycles int
	// N, Shards, Radius describe the fleet (line spec).
	N      int
	Shards int
	Radius float64
	// QueriesPerPhase is the query count fired while a shard is down and
	// again after its restart.
	QueriesPerPhase int
	Seed            uint64
}

// DefaultServeChaos keeps the schedule in CI-smoke territory.
func DefaultServeChaos() ServeChaosConfig {
	return ServeChaosConfig{Cycles: 3, N: 2000, Shards: 4, Radius: 40, QueriesPerPhase: 120, Seed: 2719}
}

// ServeChaosRow summarizes one kill/restart cycle.
type ServeChaosRow struct {
	Cycle  int
	Killed int
	// DownDegraded counts degraded answers while the shard was dead;
	// DownOK counts answers the surviving fleet still served cleanly
	// (before the registry noticed, or probe successes).
	DownOK, DownDegraded, DownMiss, DownFailed int
	// RecoverQueries is how many queries the re-admission took.
	RecoverQueries int
}

// ServeChaosResult carries the schedule outcome.
type ServeChaosResult struct {
	Config ServeChaosConfig
	Rows   []ServeChaosRow
	// Readmissions is the health registry's final count, summed over
	// shards — it must be at least the number of kills.
	Readmissions int
}

// RunServeChaos executes the kill/restart schedule. Invariants: every
// answered query is near, every error is typed, every down phase reports
// degradation, and every killed server is probed back in after restart.
//
//fairnn:rng-source seeded kill schedule and query streams
func RunServeChaos(cfg ServeChaosConfig) (*ServeChaosResult, error) {
	sp := servefix.Spec{Dataset: "line", N: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Radius: cfg.Radius}
	fleet, err := startServeFleet(sp)
	if err != nil {
		return nil, err
	}
	defer fleet.close()
	s, err := shard.Connect[int](wire.IntCodec{}, fleet.addrs, shard.RemoteConfig{
		Partitioner: sp.Partitioner(),
		Resilience:  shard.Resilience{Degraded: true, Deadline: 200 * time.Millisecond, Retries: 1},
		DialTimeout: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	res := &ServeChaosResult{Config: cfg}
	r := rng.New(cfg.Seed)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		j := r.Intn(cfg.Shards)
		row := ServeChaosRow{Cycle: cycle, Killed: j}
		fleet.srvs[j].Close()

		for qi := 0; qi < cfg.QueriesPerPhase; qi++ {
			q := r.Intn(cfg.N)
			var st core.QueryStats
			id, err := s.SampleContext(context.Background(), q, &st)
			switch {
			case err == nil:
				if d := float64(id) - float64(q); d > cfg.Radius || d < -cfg.Radius {
					return nil, fmt.Errorf("serve chaos cycle %d: far point %d for query %d", cycle, id, q)
				}
				if st.Degraded.Degraded() {
					row.DownDegraded++
				} else {
					row.DownOK++
				}
			case errors.Is(err, core.ErrNoSample):
				row.DownMiss++
			case errors.Is(err, shard.ErrDegraded):
				row.DownFailed++
			default:
				var se *shard.ShardError
				if errors.As(err, &se) {
					row.DownFailed++
					continue
				}
				return nil, fmt.Errorf("serve chaos cycle %d: untyped error %w", cycle, err)
			}
		}
		if row.DownDegraded == 0 {
			return nil, fmt.Errorf("serve chaos cycle %d: shard %d was dead for %d queries but none reported degradation", cycle, j, cfg.QueriesPerPhase)
		}

		if err := fleet.restart(j); err != nil {
			return nil, fmt.Errorf("serve chaos cycle %d: restart shard %d: %w", cycle, j, err)
		}
		recovered := false
		for qi := 0; qi < 50*cfg.Shards; qi++ {
			row.RecoverQueries++
			var st core.QueryStats
			if _, err := s.SampleContext(context.Background(), r.Intn(cfg.N), &st); err == nil && !st.Degraded.Degraded() {
				recovered = true
				break
			}
		}
		if !recovered {
			return nil, fmt.Errorf("serve chaos cycle %d: restarted shard %d was never probed back in", cycle, j)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, h := range s.Health() {
		res.Readmissions += int(h.Readmissions)
	}
	if res.Readmissions < cfg.Cycles {
		return nil, fmt.Errorf("serve chaos: %d kills but only %d readmissions recorded", cfg.Cycles, res.Readmissions)
	}
	return res, nil
}

// Render writes the per-cycle table and totals.
func (r *ServeChaosResult) Render(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Cycle),
			fmt.Sprintf("%d", row.Killed),
			fmt.Sprintf("%d", row.DownOK),
			fmt.Sprintf("%d", row.DownDegraded),
			fmt.Sprintf("%d", row.DownMiss),
			fmt.Sprintf("%d", row.DownFailed),
			fmt.Sprintf("%d", row.RecoverQueries),
		})
	}
	title := fmt.Sprintf("serve chaos: %d seeded kill/restart cycles x %d queries against live servers, S=%d, n=%d",
		r.Config.Cycles, r.Config.QueriesPerPhase, r.Config.Shards, r.Config.N)
	if err := WriteTable(w, title, []string{"cycle", "killed", "ok", "degraded", "no-sample", "failed", "recover-q"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\ntotals: %d kills, %d readmissions; 0 invariant violations\n", len(r.Rows), r.Readmissions)
	return err
}
