package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/fault"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/shard"
)

// ChaosConfig parameterizes the chaos experiment: every iteration draws
// a random (but seeded — the whole run replays from Seed) fault schedule
// against a sharded sampler and fires a batch of queries through it,
// checking the resilience invariants the test suite pins one case at a
// time, here under arbitrary combinations: every answered query returns
// a near point, degraded answers are reported as such, fail-fast errors
// are typed, and no injected stall or panic ever wedges or crashes the
// process.
type ChaosConfig struct {
	// Iterations is how many independent fault schedules to draw.
	Iterations int
	// Shards is the shard count of the sampler under fire.
	Shards int
	// N is the number of indexed points (a 1-D integer line, so nearness
	// is trivially checkable).
	N int
	// Radius is the query radius on the line.
	Radius float64
	// QueriesPerIteration is the batch size fired at each schedule.
	QueriesPerIteration int
	Seed                uint64
}

// DefaultChaos keeps the experiment in CI-smoke territory: 20 schedules
// x 200 queries over a 4-shard, 4000-point sampler.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{
		Iterations:          20,
		Shards:              4,
		N:                   4000,
		Radius:              40,
		QueriesPerIteration: 200,
		Seed:                2718,
	}
}

// ChaosRow summarizes one iteration (one fault schedule).
type ChaosRow struct {
	Iteration int
	// Schedule is a compact rendering of the drawn fault specs.
	Schedule string
	// DegradedMode reports whether the sampler ran with degradation on.
	DegradedMode bool
	// OK, DegradedOK, NoSample and Failed partition the queries: clean
	// answers, answers served degraded, legitimate misses, and typed
	// failures (fail-fast or all-shards-lost).
	OK, DegradedOK, NoSample, Failed int
	// MeanMicros is the mean per-query wall time.
	MeanMicros float64
}

// ChaosResult carries the per-iteration rows and run totals.
type ChaosResult struct {
	Config  ChaosConfig
	Rows    []ChaosRow
	Queries int
}

// chaosFamily buckets the integer line into fixed-width chunks — enough
// bucket structure for the rejection loop to do real work.
type chaosFamily struct{ width int }

func (f chaosFamily) New(r *rng.Source) lsh.Func[int] {
	off := r.Intn(f.width)
	w := f.width
	return func(p int) uint64 { return uint64((p + off) / w) }
}

func (chaosFamily) CollisionProb(float64) float64 { return 0.9 }

// chaosSchedule draws a random fault schedule: one to three specs, each
// aimed at a random shard with a random operation filter, a random fault
// class (error, stall, panic or a mix) at a random rate, and sometimes a
// bounded window so the outage heals and re-admission runs.
func chaosSchedule(r *rng.Source, shards int) ([]fault.Spec, string) {
	specs := make([]fault.Spec, 0, 3)
	desc := ""
	for s := 0; s < 1+r.Intn(3); s++ {
		sp := fault.Spec{Shards: []int{r.Intn(shards)}}
		if r.Bernoulli(0.5) {
			sp.Ops = []fault.Op{fault.Op(r.Intn(3))}
		}
		rate := 0.2 + 0.8*r.Float64()
		class := "err"
		switch r.Intn(4) {
		case 0:
			sp.StallRate = rate
			class = "stall"
		case 1:
			sp.PanicRate = rate
			class = "panic"
		case 2:
			sp.ErrRate = rate / 2
			sp.StallRate = rate / 4
			sp.PanicRate = rate / 4
			class = "mix"
		default:
			sp.ErrRate = rate
		}
		if r.Bernoulli(0.4) {
			sp.Limit = uint64(1 + r.Intn(8)) // transient outage: heals
			class += "*"
		}
		if desc != "" {
			desc += " "
		}
		desc += fmt.Sprintf("s%d:%s@%.1f", sp.Shards[0], class, rate)
		specs = append(specs, sp)
	}
	return specs, desc
}

// RunChaos executes the experiment. Any invariant violation — a far
// point answered, an untyped error, a query that outlived its deadline
// budget by an order of magnitude — aborts the run with an error.
//
//fairnn:rng-source fault-injection schedule generator seeded from the chaos config
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	res := &ChaosResult{Config: cfg}
	pts := make([]int, cfg.N)
	for i := range pts {
		pts[i] = i
	}
	paramsFor := func(int) lsh.Params { return lsh.Params{K: 1, L: 4} }
	space := core.Space[int]{Kind: core.Distance, Score: func(a, b int) float64 {
		return math.Abs(float64(a - b))
	}}
	r := rng.New(cfg.Seed)
	for it := 0; it < cfg.Iterations; it++ {
		specs, desc := chaosSchedule(r, cfg.Shards)
		degraded := r.Bernoulli(0.75)
		inj := fault.New(cfg.Shards, r.Uint64(), specs...)
		s, err := shard.BuildConfig[int](space, chaosFamily{width: 64}, paramsFor, pts, cfg.Radius, core.IndependentOptions{}, shard.Config{
			Shards: cfg.Shards,
			Seed:   cfg.Seed + uint64(it)*101,
			Resilience: shard.Resilience{
				Deadline: 20 * time.Millisecond,
				Retries:  r.Intn(3),
				Degraded: degraded,
			},
			Injector: inj,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos iteration %d: build: %w", it, err)
		}
		row := ChaosRow{Iteration: it, Schedule: desc, DegradedMode: degraded}
		var st core.QueryStats
		var wall time.Duration
		for qi := 0; qi < cfg.QueriesPerIteration; qi++ {
			q := r.Intn(cfg.N)
			start := time.Now()
			id, err := s.SampleContext(context.Background(), q, &st)
			d := time.Since(start)
			wall += d
			// A 20ms per-attempt deadline with at most 3 attempts per op
			// bounds any single query far under a second; anything beyond
			// means a stall escaped the deadline machinery.
			if d > 5*time.Second {
				return nil, fmt.Errorf("chaos iteration %d (%s): query took %v — stall escaped its deadline", it, desc, d)
			}
			switch {
			case err == nil:
				if dd := float64(id) - float64(q); dd > cfg.Radius || dd < -cfg.Radius {
					return nil, fmt.Errorf("chaos iteration %d (%s): far point %d for query %d", it, desc, id, q)
				}
				if st.Degraded.Degraded() {
					row.DegradedOK++
				} else {
					row.OK++
				}
			case errors.Is(err, core.ErrNoSample):
				row.NoSample++
			case errors.Is(err, shard.ErrDegraded):
				row.Failed++
			default:
				return nil, fmt.Errorf("chaos iteration %d (%s): untyped error %v", it, desc, err)
			}
		}
		row.MeanMicros = float64(wall.Nanoseconds()) / 1000 / float64(cfg.QueriesPerIteration)
		res.Rows = append(res.Rows, row)
		res.Queries += cfg.QueriesPerIteration
	}
	return res, nil
}

// Render writes the per-schedule table and the run totals.
func (r *ChaosResult) Render(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	var ok, deg, miss, failed int
	for _, row := range r.Rows {
		mode := "fail-fast"
		if row.DegradedMode {
			mode = "degraded"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Iteration),
			row.Schedule,
			mode,
			fmt.Sprintf("%d", row.OK),
			fmt.Sprintf("%d", row.DegradedOK),
			fmt.Sprintf("%d", row.NoSample),
			fmt.Sprintf("%d", row.Failed),
			f2(row.MeanMicros),
		})
		ok += row.OK
		deg += row.DegradedOK
		miss += row.NoSample
		failed += row.Failed
	}
	title := fmt.Sprintf("chaos: %d random fault schedules x %d queries, S=%d, n=%d (seeded: replays exactly)",
		r.Config.Iterations, r.Config.QueriesPerIteration, r.Config.Shards, r.Config.N)
	if err := WriteTable(w, title, []string{"iter", "schedule", "mode", "ok", "degraded", "no-sample", "failed", "mean µs"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\ntotals: %d queries — %d ok, %d degraded-ok, %d no-sample, %d typed failures; 0 invariant violations\n",
		r.Queries, ok, deg, miss, failed)
	return err
}
