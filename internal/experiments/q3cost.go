package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/stats"
	"fairnn/internal/vector"
)

// CostConfig parameterizes the Q3 cost-accounting experiment (§6.3
// discussion plus Theorems 1, 2): what is the additional computational
// price of exact fairness, measured in points inspected, similarity
// evaluations and wall time per query, for every sampler in the library.
type CostConfig struct {
	Dataset dataset.SetConfig
	// Radius is the similarity threshold r.
	Radius float64
	// Queries and RepsPerQuery shape the measurement.
	Queries      int
	RepsPerQuery int
	// MinSim and MinNeighbors define "interesting" queries (zero values
	// select the paper's 0.2 / 40).
	MinSim       float64
	MinNeighbors int
	// FarSim/FarBudget/Recall drive K/L selection.
	FarSim    float64
	FarBudget float64
	Recall    float64
	Seed      uint64
	// Memo is the per-query memory discipline passed to the pooled
	// samplers (memo backend, querier retention cap, scratch budget);
	// the zero value keeps the defaults. The CLI's -memo flag lands
	// here, so the PR 3 backend knob is exercisable end to end.
	Memo core.MemoOptions
}

// DefaultCost uses the Last.FM-like workload at r = 0.2.
func DefaultCost() CostConfig {
	return CostConfig{
		Dataset:      dataset.LastFMLike(),
		Radius:       0.2,
		Queries:      25,
		RepsPerQuery: 40,
		FarSim:       0.1,
		FarBudget:    5,
		Recall:       0.99,
		Seed:         464,
	}
}

// CostRow is one method's aggregate cost.
type CostRow struct {
	Method          string
	MeanInspected   float64 // bucket entries touched per query
	MeanScoreEvals  float64 // similarity computations per query
	MeanBatchScored float64 // score evals issued through a batched kernel call
	MeanRounds      float64 // rejection rounds (Sections 4/5)
	MeanMicros      float64 // wall time per query, microseconds
	MedianMicros    float64
	FoundRate       float64
}

// CostResult carries the table.
type CostResult struct {
	Config   CostConfig
	Params   lsh.Params
	N        int
	MeanBall float64
	Rows     []CostRow
}

type costProbe struct {
	name string
	run  func(q set.Set, st *core.QueryStats) bool
}

// RunCost executes the experiment.
func RunCost(cfg CostConfig) (*CostResult, error) {
	sets := dataset.Generate(cfg.Dataset)
	minSim, minNb := cfg.MinSim, cfg.MinNeighbors
	if minSim <= 0 {
		minSim = 0.2
	}
	if minNb <= 0 {
		minNb = 40
	}
	queries := dataset.InterestingQueries(sets, minSim, minNb, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, fmt.Errorf("q3cost: no interesting queries")
	}
	k := lsh.ChooseK[set.Set](lsh.OneBitMinHash{}, len(sets), cfg.FarSim, cfg.FarBudget)
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, cfg.Radius, cfg.Recall)
	params := lsh.Params{K: k, L: l}
	space := core.Jaccard()

	std, err := core.NewStandard[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	smp, err := core.NewSamplerMemo[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, cfg.Memo, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	ind, err := core.NewIndependent[set.Set](space, lsh.OneBitMinHash{}, params, sets, cfg.Radius, core.IndependentOptions{Memo: cfg.Memo}, cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	exact := core.NewExact[set.Set](space, sets, cfg.Radius, cfg.Seed+19)

	var meanBall float64
	for _, q := range queries {
		meanBall += float64(exact.BallSize(sets[q], nil))
	}
	meanBall /= float64(len(queries))

	probes := []costProbe{
		{"standard LSH (first hit)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := std.Query(q, st)
			return ok
		}},
		{"naive fair (collect all)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := std.NaiveFairSample(q, st)
			return ok
		}},
		{"Section 3 NNS (min rank)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := smp.Sample(q, st)
			return ok
		}},
		{"Appendix A (rank swap)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := smp.SampleRepeated(q, st)
			return ok
		}},
		{"Section 4 NNIS (segments)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := ind.Sample(q, st)
			return ok
		}},
		{"exact scan (ground truth)", func(q set.Set, st *core.QueryStats) bool {
			_, ok := exact.Sample(q, st)
			return ok
		}},
	}

	res := &CostResult{Config: cfg, Params: params, N: len(sets), MeanBall: meanBall}
	for _, p := range probes {
		res.Rows = append(res.Rows, measureProbe(p.name, len(queries)*cfg.RepsPerQuery,
			func(i int, st *core.QueryStats) bool {
				return p.run(sets[queries[i/cfg.RepsPerQuery]], st)
			}))
	}

	// Vector probes on a planted ℓ2/inner-product workload: the set
	// samplers above never batch (Jaccard has no batch kernel), so these
	// two rows are where the batched-scoring column is live — the ℓ2 NNIS
	// scores memo-miss candidate blocks through Space.ScoreSqBatch and the
	// Section 5 sampler runs its blocked existence scan.
	ball := dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: 4000, Dim: 32, Alpha: 0.8, Beta: 0.5,
		BallSize: 40, MidSize: 160, Seed: cfg.Seed + 31,
	})
	radius := math.Sqrt(2 - 2*0.8)
	vecInd, err := core.NewIndependent[vector.Vec](core.Euclidean(), lsh.Euclidean{Dim: 32, W: 2 * radius},
		lsh.Params{K: 2, L: 12}, ball.Points, radius, core.IndependentOptions{Memo: cfg.Memo}, cfg.Seed+37)
	if err != nil {
		return nil, err
	}
	fi, err := core.NewFilterIndependent(ball.Points, 0.8, 0.5, core.FilterIndependentOptions{Memo: cfg.Memo}, cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	reps := len(queries) * cfg.RepsPerQuery
	res.Rows = append(res.Rows,
		measureProbe("ℓ2 NNIS (batched kernels)", reps, func(i int, st *core.QueryStats) bool {
			_, ok := vecInd.Sample(ball.Query, st)
			return ok
		}),
		measureProbe("Section 5 α-NNIS (filters)", reps, func(i int, st *core.QueryStats) bool {
			_, ok := fi.Sample(ball.Query, st)
			return ok
		}))
	return res, nil
}

// measureProbe runs one probe `total` times and aggregates its counters.
func measureProbe(name string, total int, run func(i int, st *core.QueryStats) bool) CostRow {
	var inspected, scores, batched, rounds, micros []float64
	found := 0
	for i := 0; i < total; i++ {
		var st core.QueryStats
		start := time.Now()
		ok := run(i, &st)
		el := float64(time.Since(start).Nanoseconds()) / 1000.0
		if ok {
			found++
		}
		inspected = append(inspected, float64(st.PointsInspected))
		scores = append(scores, float64(st.ScoreEvals))
		batched = append(batched, float64(st.BatchScored))
		rounds = append(rounds, float64(st.Rounds))
		micros = append(micros, el)
	}
	return CostRow{
		Method:          name,
		MeanInspected:   stats.Summarize(inspected).Mean,
		MeanScoreEvals:  stats.Summarize(scores).Mean,
		MeanBatchScored: stats.Summarize(batched).Mean,
		MeanRounds:      stats.Summarize(rounds).Mean,
		MeanMicros:      stats.Summarize(micros).Mean,
		MedianMicros:    stats.Quantile(micros, 0.5),
		FoundRate:       float64(found) / float64(total),
	}
}

// Render writes the table.
func (r *CostResult) Render(w io.Writer) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method,
			f2(row.MeanInspected),
			f2(row.MeanScoreEvals),
			f2(row.MeanBatchScored),
			f2(row.MeanRounds),
			f2(row.MeanMicros),
			f2(row.MedianMicros),
			f2(row.FoundRate),
		})
	}
	if err := WriteTable(w,
		fmt.Sprintf("Q3 cost (n=%d, r=%.2f, K=%d, L=%d, mean ball=%.1f): per-query cost of fairness", r.N, r.Config.Radius, r.Params.K, r.Params.L, r.MeanBall),
		[]string{"method", "inspected", "score evals", "batch scored", "rounds", "mean µs", "median µs", "found"},
		rows); err != nil {
		return err
	}
	return nil
}
