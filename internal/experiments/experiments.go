// Package experiments reproduces every figure of the paper's Section 6
// evaluation as a text table / data series:
//
//   - Fig1: output distribution of standard LSH vs fair LSH on the two
//     set-similarity datasets (Q1, §6.1).
//   - Fig2: empirical sampling probabilities of X, Y, Z on the adversarial
//     instance under approximate-neighborhood sampling (Q2, §6.2).
//   - Fig3: the ratio b_cr/b_r across radii and approximation factors
//     (Q3, §6.3).
//   - Q3Cost: the additional computational cost of exact fairness —
//     points inspected and wall time per query for every sampler.
//
// Each runner returns a plain result struct so tests can assert on shapes
// (who wins, by what factor) and the CLI can print the rows.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// WriteTable renders rows as an aligned text table.
func WriteTable(w io.Writer, title string, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// f formats a float compactly for tables.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedKeysF64 returns the keys of m in ascending order.
func sortedKeysF64[V any](m map[float64]V) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}
