package set

import (
	"math"
	"testing"
	"testing/quick"
)

func ref(items []uint32) map[uint32]bool {
	m := make(map[uint32]bool)
	for _, v := range items {
		m[v] = true
	}
	return m
}

func TestFromSliceSortsAndDedupes(t *testing.T) {
	s := FromSlice([]uint32{5, 1, 5, 3, 1, 9})
	want := Set{1, 3, 5, 9}
	if len(s) != len(want) {
		t.Fatalf("got %v want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v want %v", s, want)
		}
	}
}

func TestFromSliceEmpty(t *testing.T) {
	if s := FromSlice(nil); s.Len() != 0 {
		t.Fatalf("empty input produced %v", s)
	}
}

func TestFromSlicePropertyValid(t *testing.T) {
	f := func(items []uint32) bool {
		s := FromSlice(items)
		if !s.Valid() {
			return false
		}
		m := ref(items)
		if len(s) != len(m) {
			return false
		}
		for _, v := range s {
			if !m[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	s := Range(3, 6)
	want := Set{3, 4, 5, 6}
	if len(s) != 4 {
		t.Fatalf("got %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v want %v", s, want)
		}
	}
}

func TestContains(t *testing.T) {
	s := FromSlice([]uint32{2, 4, 6})
	for _, v := range []uint32{2, 4, 6} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []uint32{1, 3, 5, 7} {
		if s.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestJaccardKnownValues(t *testing.T) {
	q := Range(1, 30)
	cases := []struct {
		s    Set
		want float64
	}{
		{Range(1, 27), 27.0 / 30.0},  // Z of Section 6.2
		{Range(1, 18), 18.0 / 30.0},  // Y
		{Range(16, 30), 15.0 / 30.0}, // X
		{q, 1},
	}
	for _, c := range cases {
		if got := Jaccard(q, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard = %v, want %v", got, c.want)
		}
	}
}

func TestJaccardEmpty(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(∅,∅) = %v, want 1", got)
	}
	if got := Jaccard(nil, Range(1, 3)); got != 0 {
		t.Errorf("Jaccard(∅,s) = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(a, b []uint32) bool {
		x, y := FromSlice(a), FromSlice(b)
		j1, j2 := Jaccard(x, y), Jaccard(y, x)
		if j1 != j2 {
			return false // symmetry
		}
		if j1 < 0 || j1 > 1 {
			return false // bounds
		}
		if Jaccard(x, x) != 1 {
			return false // reflexivity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAlgebraAgainstReference(t *testing.T) {
	f := func(a, b []uint32) bool {
		x, y := FromSlice(a), FromSlice(b)
		ma, mb := ref(a), ref(b)

		inter := Intersection(x, y)
		union := Union(x, y)
		diff := Difference(x, y)
		if !inter.Valid() || !union.Valid() || !diff.Valid() {
			return false
		}
		wantInter := 0
		for v := range ma {
			if mb[v] {
				wantInter++
			}
		}
		if inter.Len() != wantInter || IntersectionSize(x, y) != wantInter {
			return false
		}
		wantUnion := len(ma) + len(mb) - wantInter
		if union.Len() != wantUnion || UnionSize(x, y) != wantUnion {
			return false
		}
		wantDiff := len(ma) - wantInter
		if diff.Len() != wantDiff {
			return false
		}
		for _, v := range diff {
			if !ma[v] || mb[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromSlice([]uint32{1, 2, 3})
	c := s.Clone()
	c[0] = 99
	if s[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestJaccardInclusionMonotone(t *testing.T) {
	// For m ⊂ Y ⊂ Q, J(Q,m) = |m|/|Q|.
	q := Range(1, 30)
	m := Range(1, 15)
	if got, want := Jaccard(q, m), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("J = %v want %v", got, want)
	}
}
