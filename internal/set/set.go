// Package set implements the sparse set representation used for the
// Jaccard-similarity experiments of Section 6: each user is the set of item
// ids they interacted with. Sets are stored as strictly increasing []uint32
// slices, which makes intersections, Jaccard similarity and MinHash linear
// scans cache-friendly.
package set

import (
	"slices"
	"sort"
)

// Set is a set of item identifiers stored in strictly increasing order.
// The zero value is the empty set.
type Set []uint32

// FromSlice builds a Set from arbitrary (possibly duplicated, unsorted)
// items. The input slice is not modified.
func FromSlice(items []uint32) Set {
	if len(items) == 0 {
		return nil
	}
	s := make(Set, len(items))
	copy(s, items)
	slices.Sort(s)
	return slices.Compact(s)
}

// Range builds the set {lo, lo+1, ..., hi} (inclusive). It panics if hi < lo.
func Range(lo, hi uint32) Set {
	if hi < lo {
		panic("set: Range with hi < lo")
	}
	s := make(Set, 0, hi-lo+1)
	for v := lo; ; v++ {
		s = append(s, v)
		if v == hi {
			break
		}
	}
	return s
}

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s) }

// Contains reports whether v is a member of s.
func (s Set) Contains(v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Valid reports whether s is strictly increasing (the representation
// invariant). Exposed for property-based tests.
func (s Set) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// IntersectionSize returns |a ∩ b| by a linear merge.
func IntersectionSize(a, b Set) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |a ∪ b|.
func UnionSize(a, b Set) int {
	return len(a) + len(b) - IntersectionSize(a, b)
}

// Jaccard returns |a ∩ b| / |a ∪ b|; the Jaccard similarity of two empty
// sets is defined as 1 (they are identical).
func Jaccard(a, b Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := IntersectionSize(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Intersection returns a ∩ b as a new Set.
func Intersection(a, b Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns a ∪ b as a new Set.
func Union(a, b Set) Set {
	out := make(Set, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Difference returns a \ b as a new Set.
func Difference(a, b Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) || a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else if a[i] > b[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return out
}
