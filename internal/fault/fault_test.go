package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// drive replays a fixed call sequence against an injector and records
// each outcome ("ok", "err", "stall", "panic") — the fingerprint the
// determinism tests compare.
func drive(in *Injector, calls int) []string {
	out := make([]string, 0, calls)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // stalls return immediately with ctx.Err()
	for c := 0; c < calls; c++ {
		shard := c % in.Shards()
		op := Op(c % int(opCount))
		out = append(out, func() (verdict string) {
			defer func() {
				if r := recover(); r != nil {
					verdict = "panic"
				}
			}()
			switch err := in.Before(ctx, shard, op); {
			case err == nil:
				return "ok"
			case errors.Is(err, ErrInjected):
				return "err"
			default:
				return "stall"
			}
		}())
	}
	return out
}

// TestDeterministicReplay pins the core contract: identical (seed,
// specs, call sequence) produce identical fault schedules, and a
// different seed produces a different one.
func TestDeterministicReplay(t *testing.T) {
	specs := []Spec{
		{ErrRate: 0.3},
		{Shards: []int{1}, Ops: []Op{OpSegment}, PanicRate: 0.5},
		{Shards: []int{2}, StallRate: 0.4},
	}
	a := drive(New(3, 12345, specs...), 300)
	b := drive(New(3, 12345, specs...), 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical injectors: %q vs %q", i, a[i], b[i])
		}
	}
	c := drive(New(3, 54321, specs...), 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical 300-call schedules")
	}
	kinds := map[string]int{}
	for _, v := range a {
		kinds[v]++
	}
	for _, want := range []string{"ok", "err", "stall", "panic"} {
		if kinds[want] == 0 {
			t.Errorf("schedule never produced %q (got %v)", want, kinds)
		}
	}
}

// TestAfterLimitWindow pins the call-ordinal window: a spec with After
// and Limit fires exactly on matching calls [After, After+Limit) and
// never outside it.
func TestAfterLimitWindow(t *testing.T) {
	in := New(1, 7, Spec{After: 2, Limit: 3, ErrRate: Always})
	ctx := context.Background()
	for c := 0; c < 10; c++ {
		err := in.Before(ctx, 0, OpArm)
		inWindow := c >= 2 && c < 5
		if inWindow && !errors.Is(err, ErrInjected) {
			t.Errorf("call %d inside the window returned %v, want ErrInjected", c, err)
		}
		if !inWindow && err != nil {
			t.Errorf("call %d outside the window returned %v, want nil", c, err)
		}
	}
}

// TestShardOpFilters pins the matching rules: a filtered spec never
// touches other shards or operations.
func TestShardOpFilters(t *testing.T) {
	in := New(3, 9, Spec{Shards: []int{1}, Ops: []Op{OpPick}, ErrRate: Always})
	ctx := context.Background()
	for shard := 0; shard < 3; shard++ {
		for op := OpArm; op < opCount; op++ {
			err := in.Before(ctx, shard, op)
			hit := shard == 1 && op == OpPick
			if hit != (err != nil) {
				t.Errorf("shard %d op %v: err = %v, want hit = %v", shard, op, err, hit)
			}
		}
	}
}

// TestIdleInvisible pins the bit-equivalence precondition: an injector
// with only zero-rate specs reports Idle and its Before does nothing but
// advance counters.
func TestIdleInvisible(t *testing.T) {
	for _, in := range []*Injector{
		New(2, 1),
		New(2, 1, Spec{}, Spec{Shards: []int{0}}),
	} {
		if !in.Idle() {
			t.Fatal("zero-rate injector not idle")
		}
		for c := 0; c < 5; c++ {
			if err := in.Before(context.Background(), 1, OpSegment); err != nil {
				t.Fatalf("idle Before returned %v", err)
			}
		}
		if got := in.Calls(1, OpSegment); got != 5 {
			t.Errorf("Calls = %d, want 5 (counters must advance even when idle)", got)
		}
	}
	var nilInj *Injector
	if !nilInj.Idle() {
		t.Error("nil injector must report idle")
	}
}

// TestCountersPerShardOp pins counter isolation: ordinals advance
// per (shard, op), not globally — the window semantics depend on it.
func TestCountersPerShardOp(t *testing.T) {
	in := New(2, 3)
	ctx := context.Background()
	for c := 0; c < 3; c++ {
		in.Before(ctx, 0, OpArm)
	}
	in.Before(ctx, 1, OpArm)
	in.Before(ctx, 0, OpPick)
	if got := in.Calls(0, OpArm); got != 3 {
		t.Errorf("Calls(0, arm) = %d, want 3", got)
	}
	if got := in.Calls(1, OpArm); got != 1 {
		t.Errorf("Calls(1, arm) = %d, want 1", got)
	}
	if got := in.Calls(0, OpPick); got != 1 {
		t.Errorf("Calls(0, pick) = %d, want 1", got)
	}
	if got := in.Calls(1, OpSegment); got != 0 {
		t.Errorf("Calls(1, segment) = %d, want 0", got)
	}
}

// TestStallRespectsContext pins the anti-wedge contract: a stalled call
// blocks only until its context is done, then returns ctx.Err().
func TestStallRespectsContext(t *testing.T) {
	in := New(1, 5, Spec{StallRate: Always})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Before(ctx, 0, OpArm)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall held %v past a 20ms deadline", elapsed)
	}
}

// TestLatencyInterruptible pins that injected latency aborts early on
// cancellation instead of sleeping through it.
func TestLatencyInterruptible(t *testing.T) {
	in := New(1, 5, Spec{Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Before(ctx, 0, OpSegment)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency sleep returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("10s injected latency ignored a 10ms deadline (took %v)", elapsed)
	}
}

// TestPanicCarriesProvenance pins the panic payload: containment layers
// report which (shard, op, call) the injector killed.
func TestPanicCarriesProvenance(t *testing.T) {
	in := New(2, 5, Spec{Shards: []int{1}, After: 1, PanicRate: Always})
	if err := in.Before(context.Background(), 1, OpSegment); err != nil { // call 0: before the window
		t.Fatalf("call 0 (before After) returned %v", err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("recovered %#v, want PanicValue", r)
		}
		if pv.Shard != 1 || pv.Op != OpSegment || pv.Call != 1 {
			t.Errorf("PanicValue = %+v, want shard 1, op segment, call 1", pv)
		}
	}()
	in.Before(context.Background(), 1, OpSegment) // call 1: panics
}

// TestRatesPartitionUnitInterval pins that at most one fault class fires
// per call and empirical rates track the spec (loose bounds — the draw
// is deterministic, so this is a one-shot check, not a flaky one).
func TestRatesPartitionUnitInterval(t *testing.T) {
	in := New(1, 99, Spec{PanicRate: 0.2, StallRate: 0.3, ErrRate: 0.5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kinds := map[string]int{}
	const calls = 4000
	for c := 0; c < calls; c++ {
		func() {
			defer func() {
				if recover() != nil {
					kinds["panic"]++
				}
			}()
			switch err := in.Before(ctx, 0, OpArm); {
			case err == nil:
				kinds["ok"]++
			case errors.Is(err, ErrInjected):
				kinds["err"]++
			default:
				kinds["stall"]++
			}
		}()
	}
	want := map[string]float64{"panic": 0.2, "stall": 0.3, "err": 0.5, "ok": 0}
	for kind, p := range want {
		got := float64(kinds[kind]) / calls
		if got < p-0.05 || got > p+0.05 {
			t.Errorf("%s rate = %.3f, want %.1f ± 0.05", kind, got, p)
		}
	}
}

// TestFirstMatchingSpecWins pins evaluation order: when several specs
// match one call, the first spec's draw is consulted first, so a
// spec-list prefix with rate Always shadows everything after it.
func TestFirstMatchingSpecWins(t *testing.T) {
	in := New(1, 5,
		Spec{ErrRate: Always},
		Spec{PanicRate: Always},
	)
	for c := 0; c < 5; c++ {
		if err := in.Before(context.Background(), 0, OpArm); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want the first spec's ErrInjected (no panic)", c, err)
		}
	}
}
