// Package fault is a deterministic fault-injection harness for the
// sharded sampler's backend seam (internal/shard). It simulates the
// failure modes of a remote shard — added latency, transient errors,
// stalls that outlive any reasonable deadline, and outright panics —
// without touching the shard's data path, so resilience tests exercise
// the exact production code the RPC backend will sit behind.
//
// Determinism is the point: every injection decision is a pure function
// of (injector seed, shard, operation, per-shard call ordinal) through
// rng.Mix64, so a test that kills shard 2's third estimate call kills it
// on every run, under -race, at any GOMAXPROCS. The injector holds no
// time-dependent or scheduling-dependent state beyond per-shard atomic
// call counters.
//
// An idle injector (no specs, or specs whose rates are all zero) is
// contractually invisible: Before returns immediately with no error, no
// sleep, and no RNG use, so same-seed sample streams stay bit-identical
// to an uninjected sampler.
package fault

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"fairnn/internal/rng"
)

// Op names a per-shard backend operation the injector can intercept.
type Op uint8

const (
	// OpArm is the per-shard query arming call (estimate + plan setup).
	OpArm Op = iota
	// OpSegment is the per-round segment report / exact-count call.
	OpSegment
	// OpPick is the per-round point pick on the chosen shard.
	OpPick
	opCount
)

// String names the operation for error messages and logs.
func (o Op) String() string {
	switch o {
	case OpArm:
		return "arm"
	case OpSegment:
		return "segment"
	case OpPick:
		return "pick"
	}
	return "op?"
}

// ErrInjected is the error returned by injected transient failures.
// Resilient callers treat it like any backend error: retry within
// budget, then declare the shard unhealthy.
var ErrInjected = errors.New("fault: injected error")

// Spec declares one fault schedule. A Spec matches a (shard, op, call)
// triple when the shard and op filters accept it and the shard's call
// ordinal for that op is within [After, After+Limit). Rates are
// per-matching-call probabilities evaluated independently and
// deterministically; at most one fault fires per call, checked in order
// panic, stall, error, latency.
type Spec struct {
	// Shards selects which shards the spec applies to; nil means all.
	Shards []int
	// Ops selects which operations the spec applies to; nil means all.
	Ops []Op
	// After skips the first After matching calls per (shard, op) — e.g.
	// let the first query succeed, then start failing.
	After uint64
	// Limit caps how many calls (per shard and op, counted from After)
	// the spec stays active for; 0 means unlimited. A finite Limit models
	// a transient outage that heals, exercising probed re-admission.
	Limit uint64
	// ErrRate is the probability a matching call returns ErrInjected.
	ErrRate float64
	// StallRate is the probability a matching call blocks until its
	// context is cancelled — the "hung remote shard" mode. Stalled calls
	// respect ctx.Done, so a deadline unwedges them; without one they
	// model a true wedge (tests must always set deadlines for stalls).
	StallRate float64
	// PanicRate is the probability a matching call panics, exercising
	// the containment layer.
	PanicRate float64
	// Latency is added to every matching call (before rate evaluation),
	// interruptibly: the sleep aborts early if ctx is cancelled. Zero
	// adds nothing.
	Latency time.Duration
}

// active reports whether the spec matches shard/op at call ordinal n
// (0-based).
func (sp *Spec) active(shard int, op Op, n uint64) bool {
	if n < sp.After {
		return false
	}
	if sp.Limit != 0 && n >= sp.After+sp.Limit {
		return false
	}
	if sp.Shards != nil {
		ok := false
		for _, s := range sp.Shards {
			if s == shard {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if sp.Ops != nil {
		ok := false
		for _, o := range sp.Ops {
			if o == op {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Injector evaluates fault specs against backend calls. Safe for
// concurrent use. The zero value is not valid; use New.
type Injector struct {
	seed  uint64
	specs []Spec
	// calls[shard*opCount+op] is that shard's call ordinal counter for
	// the op, advanced atomically on every Before.
	calls []atomic.Uint64
	idle  bool
}

// New builds an injector for a sampler with the given shard count. The
// seed drives every probabilistic decision; identical (seed, specs,
// call sequence) → identical faults. With no specs (or only zero-rate,
// zero-latency specs) the injector is idle and invisible.
func New(shards int, seed uint64, specs ...Spec) *Injector {
	idle := true
	for _, sp := range specs {
		if sp.ErrRate > 0 || sp.StallRate > 0 || sp.PanicRate > 0 || sp.Latency > 0 {
			idle = false
			break
		}
	}
	inj := &Injector{
		seed:  seed,
		specs: append([]Spec(nil), specs...),
		calls: make([]atomic.Uint64, shards*int(opCount)),
		idle:  idle,
	}
	return inj
}

// Idle reports whether the injector can never fire — configured but
// harmless, the state the bit-equivalence oracle runs under.
func (in *Injector) Idle() bool { return in == nil || in.idle }

// Shards returns the shard count the injector was built for.
func (in *Injector) Shards() int { return len(in.calls) / int(opCount) }

// Calls returns shard's call ordinal for op so far (how many Before
// calls it has seen).
func (in *Injector) Calls(shard int, op Op) uint64 {
	return in.calls[shard*int(opCount)+int(op)].Load()
}

// PanicValue is what injected panics carry, so containment tests can
// assert the panic came from the injector.
type PanicValue struct {
	Shard int
	Op    Op
	Call  uint64
}

// Before is the injection point: backends call it at the top of every
// intercepted operation. It returns nil (possibly after injected
// latency), returns ErrInjected, blocks until ctx is done (stall), or
// panics, per the matching specs. ctx governs stalls and latency only;
// Before never inspects ctx otherwise.
func (in *Injector) Before(ctx context.Context, shard int, op Op) error {
	n := in.calls[shard*int(opCount)+int(op)].Add(1) - 1
	if in.idle {
		return nil
	}
	for i := range in.specs {
		sp := &in.specs[i]
		if !sp.active(shard, op, n) {
			continue
		}
		if sp.Latency > 0 {
			t := time.NewTimer(sp.Latency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		// One deterministic draw per (spec, shard, op, call): the 64-bit
		// mix is split into a unit uniform; fault classes partition the
		// unit interval so at most one fires and rates stay independent
		// of spec evaluation order.
		h := rng.Mix64(in.seed ^ uint64(i)<<48 ^ uint64(shard)<<32 ^ uint64(op)<<24 ^ n)
		u := float64(h>>11) / float64(1<<53)
		switch {
		case u < sp.PanicRate:
			panic(PanicValue{Shard: shard, Op: op, Call: n})
		case u < sp.PanicRate+sp.StallRate:
			<-ctx.Done()
			return ctx.Err()
		case u < sp.PanicRate+sp.StallRate+sp.ErrRate:
			return ErrInjected
		}
	}
	return nil
}

// Always is a convenience rate: a Spec with ErrRate (etc.) = Always
// fires on every matching call.
const Always = 1 + 1e-9
