package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //fairnn:noalloc — the pooled
// Sample/SampleKInto hot paths whose steady state must not touch the
// heap (the zero-alloc runtime oracles pin the behavior; this analyzer
// pins the code shape). Inside an annotated function it reports:
//
//   - calls into standard-library packages off a small allocation-free
//     allowlist (fmt.Sprintf in a hot path is the canonical violation);
//   - calls to module functions that are not themselves annotated
//     //fairnn:noalloc — the contract is transitive by annotation, so
//     the whole steady-state call tree is visibly marked;
//   - make/new, slice, map and &struct composite literals, and closure
//     (func) literals — unless the allocation sits under a lazy-init
//     guard (an if whose condition tests nil or compares len/cap), the
//     pool-miss and grow-on-demand idiom that is allocation-free in
//     steady state;
//   - append whose destination differs from its source (steady-state
//     appends recycle a pooled buffer: x = append(x, ...));
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - implicit interface boxing of non-constant, non-pointer-shaped
//     arguments;
//   - go statements.
//
// Escape hatch: //fairnn:allocok <reason> on (or directly above) the
// offending line — required to carry a reason, so every cold-branch
// allocation in a hot function is visibly justified.
//
// Known holes, by design: dynamic calls (interface methods such as the
// memoTable backends and sketch counters, and func-valued fields such as
// nearFn/batchScore) are not chased, and FuncLit bodies are not
// descended into once the literal itself is reported. The runtime
// zero-alloc oracles remain the ground truth; this analyzer makes the
// common regressions impossible to merge.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "check //fairnn:noalloc functions for allocation-introducing constructs",
	Run:  runNoAlloc,
}

// noallocStdlib is the allocation-free standard-library allowlist.
// Coarse by design (package granularity): the few allocating functions
// in these packages (slices.Clone, slices.Grow) do not appear in hot
// paths and would be caught by the runtime oracles.
var noallocStdlib = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"context":     true,
	"time":        true,
	"slices":      true,
	"cmp":         true,
	"runtime":     true,
	"iter":        true,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := pass.FuncDirective(fd, "noalloc"); ok {
				pass.checkNoAlloc(fd)
			}
		}
	}
	return nil
}

// allocExempt reports whether a finding at node is suppressed: an
// explicit //fairnn:allocok line directive, or (for lazy-init shapes) an
// enclosing if statement in stack whose condition tests nil or len/cap —
// the pool-miss / grow-on-demand idiom.
func (p *Pass) allocExempt(node ast.Node, stack []ast.Node, lazyOK bool) bool {
	if _, ok := p.LineDirective(node, "allocok"); ok {
		return true
	}
	if !lazyOK {
		return false
	}
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condTestsNilOrCap(ifs.Cond) {
			return true
		}
	}
	return false
}

// condTestsNilOrCap reports whether the condition contains a nil
// comparison or a len/cap call — the lazy-init guard shapes
// (qr == nil, cap(buf) < n, len(s) == 0).
func condTestsNilOrCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
			}
		}
		return !found
	})
	return found
}

// pointerShaped reports whether values of type t fit in an interface
// word without heap allocation: pointers, maps, channels, funcs, and
// unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func (p *Pass) checkNoAlloc(fd *ast.FuncDecl) {
	info := p.TypesInfo
	// Approve steady-state appends: x = append(x, ...) recycles x's
	// backing array (amortized growth is the documented exception — the
	// buffers are pooled and reach a fixed point).
	approvedAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				approvedAppend[call] = true
			}
		}
		return true
	})

	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := true
		switch n := n.(type) {
		case *ast.FuncLit:
			if !p.allocExempt(n, stack, true) {
				p.Reportf(n.Pos(), "closure literal in noalloc function %s: captured variables escape to the heap (//fairnn:allocok <reason> if this branch is cold)", fd.Name.Name)
			}
			descend = false // the literal is the finding; its body is a cold path
		case *ast.GoStmt:
			if !p.allocExempt(n, stack, false) {
				p.Reportf(n.Pos(), "go statement in noalloc function %s: goroutine launch allocates (and belongs in a fan-out helper)", fd.Name.Name)
			}
		case *ast.CompositeLit:
			p.checkCompositeLit(fd, n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := info.Types[n]; ok && t.Value == nil {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if !p.allocExempt(n, stack, false) {
							p.Reportf(n.Pos(), "string concatenation in noalloc function %s allocates", fd.Name.Name)
						}
					}
				}
			}
		case *ast.CallExpr:
			p.checkNoAllocCall(fd, n, stack, approvedAppend)
		}
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	}
	ast.Inspect(fd.Body, visit)
}

func (p *Pass) checkCompositeLit(fd *ast.FuncDecl, lit *ast.CompositeLit, stack []ast.Node) {
	t, ok := p.TypesInfo.Types[lit]
	if !ok {
		return
	}
	heapy := false
	what := "composite literal"
	switch t.Type.Underlying().(type) {
	case *types.Slice:
		heapy, what = true, "slice literal"
	case *types.Map:
		heapy, what = true, "map literal"
	case *types.Struct, *types.Array:
		// A value struct/array literal lives on the stack; only the
		// &T{...} form forces a heap object.
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				heapy, what = true, "&-composite literal"
			}
		}
	}
	if heapy && !p.allocExempt(lit, stack, true) {
		p.Reportf(lit.Pos(), "%s in noalloc function %s allocates (guard with a lazy-init nil/cap check, or //fairnn:allocok <reason>)", what, fd.Name.Name)
	}
}

func (p *Pass) checkNoAllocCall(fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, approvedAppend map[*ast.CallExpr]bool) {
	info := p.TypesInfo
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		p.checkConversion(fd, call, tv.Type, stack)
		return
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !p.allocExempt(call, stack, true) {
					p.Reportf(call.Pos(), "%s in noalloc function %s allocates (guard with a lazy-init nil/cap check, or //fairnn:allocok <reason>)", id.Name, fd.Name.Name)
				}
			case "append":
				if !approvedAppend[call] && !p.allocExempt(call, stack, true) {
					p.Reportf(call.Pos(), "append in noalloc function %s does not write back to its source: only the recycling form x = append(x, ...) keeps the steady state allocation-free", fd.Name.Name)
				}
			case "print", "println":
				p.Reportf(call.Pos(), "%s in noalloc function %s", id.Name, fd.Name.Name)
			}
			return
		}
	}
	fn := p.Callee(call)
	if fn == nil {
		// Func-valued call (nearFn, batchScore) — dynamic, not chased.
		p.checkBoxing(fd, call, stack)
		return
	}
	if p.IsInterfaceMethod(call) {
		// memoTable/Counter-style dynamic dispatch — not chased.
		p.checkBoxing(fd, call, stack)
		return
	}
	if pkg := fn.Pkg(); pkg != nil && !InModule(pkg) {
		if !noallocStdlib[pkg.Path()] && !p.allocExempt(call, stack, false) {
			p.Reportf(call.Pos(), "call to %s.%s in noalloc function %s: package %s is not on the allocation-free stdlib allowlist", pkg.Name(), fn.Name(), fd.Name.Name, pkg.Path())
		}
		p.checkBoxing(fd, call, stack)
		return
	}
	// Module callees must carry the annotation themselves; the lazy-init
	// guard exemption applies so pool-miss construction (if qr == nil {
	// qr = newQuerier() }) keeps working without an escape comment.
	if !p.FuncAnnotated(fn, "noalloc") && !p.allocExempt(call, stack, true) {
		p.Reportf(call.Pos(), "noalloc function %s calls %s, which is not annotated //fairnn:noalloc: the steady-state contract is transitive (annotate the callee after checking it, or //fairnn:allocok <reason> for a cold branch)", fd.Name.Name, fn.FullName())
	}
	p.checkBoxing(fd, call, stack)
}

// checkConversion flags conversions that allocate: string<->[]byte/rune
// and boxing into an interface type.
func (p *Pass) checkConversion(fd *ast.FuncDecl, call *ast.CallExpr, to types.Type, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	tv, ok := p.TypesInfo.Types[arg]
	if !ok || tv.Value != nil { // constant conversions use static data
		return
	}
	from := tv.Type
	if types.IsInterface(to.Underlying()) {
		if !types.IsInterface(from.Underlying()) && !pointerShaped(from) && !p.allocExempt(call, stack, false) {
			p.Reportf(call.Pos(), "conversion to interface in noalloc function %s boxes a non-pointer value on the heap", fd.Name.Name)
		}
		return
	}
	toB, toOK := to.Underlying().(*types.Basic)
	_, fromSlice := from.Underlying().(*types.Slice)
	if toOK && toB.Info()&types.IsString != 0 && fromSlice {
		if !p.allocExempt(call, stack, false) {
			p.Reportf(call.Pos(), "[]byte/[]rune to string conversion in noalloc function %s allocates", fd.Name.Name)
		}
		return
	}
	if _, toSlice := to.Underlying().(*types.Slice); toSlice {
		if fromB, ok := from.Underlying().(*types.Basic); ok && fromB.Info()&types.IsString != 0 {
			if !p.allocExempt(call, stack, false) {
				p.Reportf(call.Pos(), "string to slice conversion in noalloc function %s allocates", fd.Name.Name)
			}
		}
	}
}

// checkBoxing flags implicit interface conversions at call arguments:
// passing a non-constant, non-pointer-shaped concrete value where an
// interface parameter is expected heap-allocates the box.
func (p *Pass) checkBoxing(fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := p.TypesInfo.Types[arg]
		if !ok || at.Value != nil || at.IsNil() {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) || pointerShaped(at.Type) {
			continue
		}
		if !p.allocExempt(arg, stack, false) && !p.allocExempt(call, stack, false) {
			p.Reportf(arg.Pos(), "argument boxes a non-pointer value into an interface in noalloc function %s", fd.Name.Name)
		}
	}
}
