package analysis

import "testing"

func TestRNGStream(t *testing.T)   { runAnalyzer(t, RNGStream, "fairnn/lintrng") }
func TestNoAlloc(t *testing.T)     { runAnalyzer(t, NoAlloc, "fairnn/lintnoalloc") }
func TestCtxPoll(t *testing.T)     { runAnalyzer(t, CtxPoll, "fairnn/lintctx") }
func TestFrozenIndex(t *testing.T) { runAnalyzer(t, FrozenIndex, "fairnn/lintfrozen") }
func TestPanicFanout(t *testing.T) { runAnalyzer(t, PanicFanout, "fairnn/lintfanout") }

// TestSuite pins the bundle: five analyzers, stable order, distinct names.
func TestSuite(t *testing.T) {
	suite := Suite()
	wantOrder := []string{"rngstream", "noalloc", "ctxpoll", "frozenindex", "panicfanout"}
	if len(suite) != len(wantOrder) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(wantOrder))
	}
	for i, a := range suite {
		if a.Name != wantOrder[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, wantOrder[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}

// TestParseWants covers the harness's own comment parser.
func TestParseWants(t *testing.T) {
	pats, err := parseWants("// want \"first\" `sec.nd`")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 || pats[0] != "first" || pats[1] != "sec.nd" {
		t.Fatalf("parseWants = %q", pats)
	}
	if pats, err := parseWants("// plain comment"); err != nil || pats != nil {
		t.Fatalf("non-want comment: %q, %v", pats, err)
	}
	if _, err := parseWants("// want \"unterminated"); err == nil {
		t.Fatal("unterminated pattern not rejected")
	}
}
