package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Suite returns the full fairnn analyzer suite in reporting order.
// cmd/fairnnlint bundles exactly this set; tests exercise each member
// against its own testdata tree.
func Suite() []*Analyzer {
	return []*Analyzer{
		RNGStream,
		NoAlloc,
		CtxPoll,
		FrozenIndex,
		PanicFanout,
	}
}

// A Package is one type-checked compilation unit ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Check type-checks the parsed files of one package. The importer decides
// where dependencies come from: export data (the fairnnlint drivers) or
// recursive source loading (the analysistest harness).
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", "amd64"),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Run applies the analyzers to the package and returns their findings
// sorted by position then message, ready for deterministic printing.
func (p *Package) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(diags[i].Pos), p.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
