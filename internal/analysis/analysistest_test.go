package analysis

// An analysistest-style harness, stdlib-only. Each analyzer is exercised
// against a package tree under testdata/src/<importpath>; diagnostics
// are matched against // want "regexp" comments on the line they are
// expected on (several quoted patterns may follow one want). Testdata
// packages live under the fairnn/ module path so the analyzers' module
// and import-path keying behaves exactly as on the real repository; a
// stub fairnn/internal/rng package makes the trees hermetic. Standard
// library imports resolve through the GOROOT source importer, which
// needs no network and no module cache.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// testImporter resolves import paths against testdata/src first (so
// testdata packages can import each other and the rng stub), then falls
// back to the GOROOT source importer for the standard library.
type testImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
	std  types.Importer
}

func newTestImporter(fset *token.FileSet) *testImporter {
	return &testImporter{
		fset: fset,
		root: filepath.Join("testdata", "src"),
		pkgs: make(map[string]*types.Package),
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

func (im *testImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return im.std.Import(path)
	}
	files, err := parseTestdataDir(im.fset, dir)
	if err != nil {
		return nil, err
	}
	conf := &types.Config{Importer: im, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("typecheck testdata dep %s: %w", path, err)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

func parseTestdataDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// want is one expected diagnostic: a regexp on a specific file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// parseWants extracts the quoted patterns of one // want comment.
func parseWants(text string) ([]string, error) {
	rest, ok := strings.CutPrefix(text, "// want")
	if !ok {
		return nil, nil
	}
	var pats []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end == len(rest) {
				return nil, fmt.Errorf("unterminated pattern in %q", text)
			}
			pat, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad pattern in %q: %w", text, err)
			}
			pats = append(pats, pat)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", text)
			}
			pats = append(pats, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted pattern in %q", text)
		}
	}
	return pats, nil
}

// runAnalyzer loads testdata/src/<path>, runs one analyzer over it, and
// matches every diagnostic against the tree's want comments.
func runAnalyzer(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := newTestImporter(fset)
	dir := filepath.Join(imp.root, filepath.FromSlash(path))
	files, err := parseTestdataDir(fset, dir)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	pkg, err := Check(path, fset, files, imp, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	diags, err := pkg.Run([]*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, path, err)
	}

	var wants []*want
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				pats, err := parseWants(c.Text)
				if err != nil {
					t.Fatal(err)
				}
				posn := fset.Position(c.Pos())
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
