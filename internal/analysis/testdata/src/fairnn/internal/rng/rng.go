// Package rng is a hermetic stand-in for the real fairnn/internal/rng:
// the analyzers key on this import path and on the Source type's method
// set, so the stub only needs matching names and signatures, not the
// xoshiro256** implementation.
package rng

// Source mirrors the real deterministic generator's surface.
type Source struct {
	s [4]uint64
}

// New returns a seeded Source.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the stream.
func (s *Source) Seed(seed uint64) { s.s[0] = seed }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.s[0]++
	return s.s[0]
}

// Intn draws from [0, n).
func (s *Source) Intn(n int) int { return int(s.Uint64()) % n }

// Float64 draws from [0, 1).
func (s *Source) Float64() float64 { return float64(s.Uint64()%1024) / 1024 }

// Mix64 is the seed-derivation mixer.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
