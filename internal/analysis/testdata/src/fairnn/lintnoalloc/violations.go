package lintnoalloc

import "fmt"

//fairnn:noalloc
func bad(b *buf, x int32) string {
	s := fmt.Sprintf("%d", x)    // want "not on the allocation-free stdlib allowlist" "boxes a non-pointer value"
	m := map[int32]bool{x: true} // want "map literal"
	_ = m
	f := func() int32 { return x } // want "closure literal"
	_ = f
	b.scratch = append(b.out, x) // want "does not write back to its source"
	cold(b)                      // want "not annotated //fairnn:noalloc"
	go step(b, x)                // want "go statement"
	return s + "!"               // want "string concatenation"
}

//fairnn:noalloc
func fresh() *buf {
	return &buf{} // want "composite literal"
}

//fairnn:noalloc
func grow(b *buf, n int) {
	b.scratch = make([]int32, n) // want "make in noalloc function"
}

//fairnn:noalloc
func stringify(bs []byte) string {
	return string(bs) // want "to string conversion"
}

//fairnn:noalloc
func box(x int32) {
	sink(x) // want "boxes a non-pointer value into an interface"
}

//fairnn:noalloc
func sink(v any) int32 {
	if n, ok := v.(int32); ok {
		return n
	}
	return 0
}

func cold(b *buf) { b.scratch = nil }
