package lintnoalloc

import "math"

type buf struct {
	scratch []int32
	out     []int32
}

//fairnn:noalloc
func hot(b *buf, x int32) int32 {
	b.out = b.out[:0]
	b.out = append(b.out, x) // recycling append: steady state reuses the backing array
	if cap(b.scratch) < 8 {
		b.scratch = make([]int32, 0, 8) // lazy growth under a cap guard
	}
	return step(b, x) + int32(math.Abs(float64(x)))
}

//fairnn:noalloc
func step(b *buf, x int32) int32 {
	if len(b.scratch) == 0 {
		return x
	}
	return x + b.scratch[0]
}

//fairnn:noalloc
func lazyInit(b *buf) *buf {
	if b == nil {
		b = &buf{scratch: make([]int32, 0, 8)} // pool-miss construction under a nil guard
	}
	return b
}

//fairnn:noalloc
func escape(n int) []int32 {
	return make([]int32, n) //fairnn:allocok cold path: runs once per index rebuild, never per query
}
