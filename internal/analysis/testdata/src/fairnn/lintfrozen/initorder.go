package lintfrozen

// The PR 7 regression class: package-level initializers run before any
// func init(), so an initializer reading an init-assigned variable
// captures the pre-init (zero) value — here accelEnabled would be false
// even on machines where detectCPU reports true.

var cpuOK bool
var envOff bool

var accelEnabled = cpuOK && !envOff // want "assigned in func init" "assigned in func init"

func init() {
	cpuOK = detectCPU()
	envOff = readEnv()
}

// accelEnabledNow is the fix shape: evaluated after init has run.
func accelEnabledNow() bool { return cpuOK && !envOff }

func detectCPU() bool { return true }
func readEnv() bool   { return false }
