package lintfrozen

// Table is an index: immutable after construction, read concurrently
// without locks.
//
//fairnn:frozen
type Table struct {
	keys  []uint64
	count int
	stats struct{ probes int }
}

func NewTable(keys []uint64) *Table {
	t := &Table{}
	t.keys = keys // construction site: writes expected
	t.count = len(keys)
	return t
}

func (t *Table) Insert(k uint64) {
	t.keys = append(t.keys, k) // insertion path precedes freezing
	t.count++
}

func (t *Table) lookup(k uint64) int {
	t.count++        // want "write to field of frozen index type Table"
	t.stats.probes++ // want "write to field of frozen index type Table"
	for i, v := range t.keys {
		if v == k {
			return i
		}
	}
	return -1
}

func (t *Table) clobber(i int, k uint64) {
	t.keys[i] = k // want "write to field of frozen index type Table"
}

// swap reorders keys during the Appendix A rank-repair pass, which runs
// under the build lock before the index is published.
//
//fairnn:mutates rank repair runs under the build lock, pre-publication
func (t *Table) swap(i, j int) {
	t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
}

func (t *Table) size() int { return t.count } // reads are fine
