package lintctx

import (
	"context"

	"fairnn/internal/rng"
)

// drawOK polls ctx.Err every 64 rounds — the repository idiom.
func drawOK(ctx context.Context, src *rng.Source) (uint64, error) {
	for rounds := 0; ; rounds++ {
		if rounds%64 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if v := src.Uint64(); v%3 == 0 {
			return v, nil
		}
	}
}

func drawBad(ctx context.Context, src *rng.Source) uint64 {
	for { // want "unbounded loop in drawBad never observes the context"
		if v := src.Uint64(); v%3 == 0 {
			return v
		}
	}
}

func rejectionBad(ctx context.Context, src *rng.Source) uint64 {
	var v uint64
	for v == 0 { // want "rejection-sampling loop in rejectionBad"
		v = src.Uint64() % 8
	}
	return v
}

// delegates hands ctx to a callee that polls — counted as observing.
func delegates(ctx context.Context, src *rng.Source) uint64 {
	for {
		v, err := drawOK(ctx, src)
		if err != nil {
			return 0
		}
		if v%5 == 0 {
			return v
		}
	}
}

// viaDone observes the context through its Done channel.
func viaDone(ctx context.Context, src *rng.Source) uint64 {
	for {
		select {
		case <-ctx.Done():
			return 0
		default:
		}
		if v := src.Uint64(); v%3 == 0 {
			return v
		}
	}
}

// closures capture ctx: the loop inside the literal is still checked.
func inClosure(ctx context.Context, src *rng.Source) func() uint64 {
	return func() uint64 {
		for { // want "unbounded loop in inClosure"
			if v := src.Uint64(); v%3 == 0 {
				return v
			}
		}
	}
}

func exempt(ctx context.Context, src *rng.Source) uint64 {
	var v uint64
	//fairnn:ctxpoll-exempt geometric with p=1/2: bounded by the 64 draws of one word
	for v == 0 {
		v = src.Uint64() >> 63
	}
	return v
}

// boundedNoRNG terminates on its own: bounded condition, no randomness.
func boundedNoRNG(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// noCtx has no context parameter, so its loops are out of scope here.
func noCtx(src *rng.Source) uint64 {
	for {
		if v := src.Uint64(); v%3 == 0 {
			return v
		}
	}
}
