package lintfanout

import "sync"

type slot struct{ err error }

// capture is the deferred panic-capture helper: recovering here turns a
// worker panic into a recorded error.
func (s *slot) capture() {
	if r := recover(); r != nil {
		s.err = errFromPanic(r)
	}
}

// guard runs fn with a recover installed on the callee's side.
//
//fairnn:fanout-safe installs the recover around fn
func guard(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// safeGo is a blessed launcher: its own go statement is the containment.
//
//fairnn:fanout-safe spawns with a deferred recover installed
func safeGo(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { _ = recover() }()
		fn()
	}()
}

func fanOK(wg *sync.WaitGroup, work func()) {
	var s slot
	wg.Add(1)
	go func() { // deferred capture helper recovers
		defer wg.Done()
		defer s.capture()
		work()
	}()
	wg.Add(1)
	go func() { // deferred closure recovers inline
		defer wg.Done()
		defer func() { _ = recover() }()
		work()
	}()
	wg.Add(1)
	go func() { // routes through the blessed guard
		defer wg.Done()
		guard(work)
	}()
	safeGo(wg, work)
}

func fanBad(work func()) {
	go func() { // want "no panic containment"
		work()
	}()
	go work()   // want "dynamic function value"
	go helper() // want "neither recovers nor is marked"
}

func helper() {}

// contained spawns a function that recovers in its own body.
func contained() {
	go recovering()
}

func recovering() {
	defer func() { _ = recover() }()
}

func errFromPanic(r any) error { return nil }
