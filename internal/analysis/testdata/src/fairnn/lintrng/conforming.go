package lintrng

import "fairnn/internal/rng"

// newQuerier is a construction site by name: creating a generator from
// an explicit seed is the expected idiom here.
func newQuerier(seed uint64) *querier {
	return &querier{seed: seed, rng: rng.New(seed)}
}

// perQuery follows the per-query derivation idiom: the stream is seeded
// through rng.Mix64 over a counter, so reuse of the pooled Source is
// reproducible and independent across queries.
func perQuery(q *querier, qctr uint64) uint64 {
	q.rng.Seed(q.seed ^ rng.Mix64(qctr))
	return q.rng.Uint64()
}

// retryGood derives a jitter substream instead of touching the sample
// stream: fault-free rounds leave q.rng bit-identical.
func retryGood(q *querier, attempt int) int64 {
	var br rng.Source
	br.Seed(rng.Mix64(q.seed ^ uint64(attempt)<<20))
	return backoffDelay(attempt, &br)
}

// chaosStream is a blessed construction site that the name heuristic
// would not catch.
//
//fairnn:rng-source fault-injection schedule generator, not a query path
func chaosStream(seed uint64) *rng.Source {
	return rng.New(seed)
}

// traceGateGood derives the trace decision from a salted hash of the
// stream seed — a pure function, no stream draws — so traced and
// untraced runs emit identical samples.
func traceGateGood(t *tracer, q *querier, qctr uint64) bool {
	return t.ShouldSample(rng.Mix64(q.seed ^ qctr))
}
