package lintrng

import (
	mrand "math/rand" // want "forbidden outside tests"
	"time"

	"fairnn/internal/rng"
)

var _ = mrand.Int

type querier struct {
	seed uint64
	rng  *rng.Source
}

func sample(q *querier) uint64 {
	s := rng.New(42) // want "query paths must reuse the pooled per-query stream"
	return s.Uint64()
}

func draw(q *querier) uint64 {
	q.rng.Seed(q.seed + 1) // want "does not derive its stream from the seed counter"
	return q.rng.Uint64()
}

func reseed(q *querier) {
	q.rng.Seed(uint64(time.Now().UnixNano())) // want "time.Now" "does not derive its stream"
}

func newClock() *rng.Source {
	return rng.New(uint64(time.Now().UnixNano())) // want "seeded from time.Now"
}

func backoffDelay(attempt int, br *rng.Source) int64 {
	return int64(br.Uint64() >> uint(attempt))
}

func retryBad(q *querier) int64 {
	return backoffDelay(3, q.rng) // want "receives the query's sample stream"
}

// tracer mirrors the obs sampled-trace gate by name: the ShouldSample
// idiom is recognized wherever it appears.
type tracer struct{ everyN uint64 }

func (t *tracer) ShouldSample(seed uint64) bool { return seed%t.everyN == 0 }

func traceGateDrawn(t *tracer, q *querier) bool {
	return t.ShouldSample(q.rng.Uint64()) // want "draws its sampling decision from the query's RNG stream"
}

func traceGateField(t *tracer, q *querier) bool {
	return t.ShouldSample(q.seed ^ streamPeek(q.rng)) // want "draws its sampling decision from the query's RNG stream"
}

func streamPeek(s *rng.Source) uint64 { return s.Uint64() }
