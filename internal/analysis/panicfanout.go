package analysis

import (
	"go/ast"
	"go/types"
)

// PanicFanout enforces the PR 6 panic-containment contract: a panic in a
// spawned goroutine that nothing recovers kills the whole process, so a
// single poisoned shard or corrupt vector must not take the serving
// binary down with it. Every goroutine launched outside tests must be
// contained by one of:
//
//   - a deferred recover in the goroutine body — either a deferred
//     closure that calls recover(), or a deferred call to a capture
//     helper whose body recovers (panicSlot.capture, buildErrSlot.capture);
//   - routing through a //fairnn:fanout-safe launcher (parallelRange,
//     safeCall): the goroutine body's work happens inside a function
//     that installs the recover on the callee's side;
//   - the spawned function itself being //fairnn:fanout-safe or
//     recovering in its own body (verified by reading its source, also
//     cross-package);
//   - the enclosing function being annotated //fairnn:fanout-safe —
//     it IS a blessed launcher and installs recovery around the work it
//     runs.
var PanicFanout = &Analyzer{
	Name: "panicfanout",
	Doc:  "every spawned goroutine must recover panics or route through a fanout-safe launcher",
	Run:  runPanicFanout,
}

func runPanicFanout(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := pass.FuncDirective(fd, "fanout-safe"); ok {
				continue // blessed launcher: its go statements are the containment
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pass.checkGoStmt(fd, gs)
				return true
			})
		}
	}
	return nil
}

func (p *Pass) checkGoStmt(fd *ast.FuncDecl, gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if p.bodyContained(lit.Body) {
			return
		}
		p.Reportf(gs.Pos(), "goroutine in %s has no panic containment: a panic here kills the process (defer a recover, call a capture helper, or route through parallelRange/safeCall)", fd.Name.Name)
		return
	}
	if fn := p.Callee(gs.Call); fn != nil {
		if p.FuncAnnotated(fn, "fanout-safe") || p.funcRecovers(fn) {
			return
		}
		p.Reportf(gs.Pos(), "go %s in %s: the spawned function neither recovers nor is marked //fairnn:fanout-safe — a panic inside it kills the process", fn.Name(), fd.Name.Name)
		return
	}
	// Dynamic func value: cannot see the body.
	p.Reportf(gs.Pos(), "goroutine in %s spawns a dynamic function value: containment cannot be verified (wrap it in safeCall or a deferred recover)", fd.Name.Name)
}

// bodyContained reports whether a goroutine body installs containment: a
// deferred recover (directly or via a capture helper), or a call to a
// //fairnn:fanout-safe function that recovers on the callee's side.
func (p *Pass) bodyContained(body *ast.BlockStmt) bool {
	contained := false
	ast.Inspect(body, func(n ast.Node) bool {
		if contained {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				if p.callsRecover(fun.Body) {
					contained = true
				}
			default:
				if fn := p.Callee(n.Call); fn != nil && p.funcRecovers(fn) {
					contained = true
				}
			}
		case *ast.CallExpr:
			if fn := p.Callee(n); fn != nil && p.FuncAnnotated(fn, "fanout-safe") {
				contained = true
			}
		}
		return !contained
	})
	return contained
}

// callsRecover reports whether the block calls the recover builtin
// (resolved through the type info, so a shadowing local named recover
// does not count).
func (p *Pass) callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if b, ok := p.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() == "recover" {
				// No type info (harvested tree) still counts: syntax-level
				// recover is the conservative-accept side here.
				found = true
			}
		}
		return !found
	})
	return found
}

// funcRecovers reports whether fn's body contains a recover call. The
// body is found in the current pass's syntax for same-package functions,
// or harvested from fn's declaration file for cross-package ones
// (export data has no bodies). Unknown bodies count as not recovering —
// the finding stays visible and the launch site can be rewritten or the
// callee annotated.
func (p *Pass) funcRecovers(fn *types.Func) bool {
	if fn == nil || !InModule(fn.Pkg()) {
		return false
	}
	pos := fn.Pos()
	if fn.Pkg() == p.Pkg {
		if fd := p.EnclosingFunc(pos); fd != nil && fd.Body != nil {
			return p.callsRecover(fd.Body)
		}
		return false
	}
	posn := p.Fset.Position(pos)
	if posn.Filename == "" {
		return false
	}
	hf := harvestFile(posn.Filename)
	if hf.file == nil {
		return false
	}
	for _, decl := range hf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn.Name() || fd.Body == nil {
			continue
		}
		line := hf.fset.Position(fd.Name.Pos()).Line
		declLine := hf.fset.Position(fd.Pos()).Line
		if posn.Line != line && posn.Line != declLine {
			continue
		}
		// Syntax-only tree: detect recover by identifier.
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}
