package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the cancellation contract on sampling loops: a
// rejection-sampling loop has no a-priori iteration bound (the expected
// number of rounds is constant, but the tail is geometric), so every
// such loop reachable from a context-taking entry point must observe the
// context — the repository's idiom is polling ctx.Err() every
// ctxCheckRounds (64) iterations, cheap enough to be invisible in the
// hot path and tight enough that cancellation lands within microseconds.
//
// For each non-test function that has a context.Context parameter, the
// analyzer inspects every for-loop in its body (including bodies of
// closures, which capture the context): loops that are unbounded
// (no condition) or that draw randomness (call a method on an
// fairnn/internal/rng.Source) must, somewhere inside, either
//
//   - mention ctx.Err or ctx.Done on a context-typed value, or
//   - pass a context-typed argument to a call (delegation: the loop
//     body hands ctx to a callee that polls, e.g. streamOf's draw(ctx)),
//
// or carry a //fairnn:ctxpoll-exempt <reason> line directive.
// range-loops are skipped: they are bounded by their operand.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "unbounded or rejection-sampling loops in context-taking functions must poll the context",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.hasContextParam(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				pass.checkLoop(fd, loop)
				return true
			})
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func (p *Pass) hasContextParam(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := p.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func (p *Pass) checkLoop(fd *ast.FuncDecl, loop *ast.ForStmt) {
	if loop.Cond != nil && !p.loopDrawsRNG(loop) {
		return // bounded loop that draws no randomness: terminates on its own
	}
	if _, ok := p.LineDirective(loop, "ctxpoll-exempt"); ok {
		return
	}
	if p.loopObservesContext(loop) {
		return
	}
	kind := "unbounded loop"
	if loop.Cond != nil {
		kind = "rejection-sampling loop"
	}
	p.Reportf(loop.Pos(), "%s in %s never observes the context: poll ctx.Err() every ctxCheckRounds iterations (or pass ctx to a callee that does; //fairnn:ctxpoll-exempt <reason> if provably bounded)", kind, fd.Name.Name)
}

// loopDrawsRNG reports whether the loop body (or clauses) call a method
// on fairnn/internal/rng.Source — the signature of a rejection-sampling
// loop whose iteration count is randomized.
func (p *Pass) loopDrawsRNG(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := p.Callee(call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				t := sig.Recv().Type()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == rngPkgPath && obj.Name() == "Source" {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// loopObservesContext reports whether any clause or the body of the loop
// references ctx.Err/ctx.Done on a context-typed value, or passes a
// context-typed argument to a call.
func (p *Pass) loopObservesContext(loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Err" || n.Sel.Name == "Done" {
				if tv, ok := p.TypesInfo.Types[n.X]; ok && isContextType(tv.Type) {
					found = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if tv, ok := p.TypesInfo.Types[arg]; ok && isContextType(tv.Type) {
					found = true
				}
			}
		}
		return !found
	}
	for _, n := range []ast.Node{loop.Init, loop.Cond, loop.Post, loop.Body} {
		if n == nil || found {
			continue
		}
		ast.Inspect(n, check)
	}
	return found
}
