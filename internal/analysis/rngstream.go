package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGStream enforces the repository's randomness contract:
//
//   - math/rand (and math/rand/v2) never appear outside tests — every
//     data structure derives all randomness from fairnn/internal/rng so
//     experiment outputs are bit-for-bit reproducible across Go releases.
//   - rng.New is a construction-time operation. Query paths must reuse
//     the per-query stream their querier was seeded with (one stream per
//     logical query, derived from the atomic seed counter); a fresh
//     generator mid-query would break both independence across
//     concurrent queries and same-seed stream reproducibility.
//   - Source.Seed outside construction must be the per-query derivation
//     idiom: the enclosing function derives the seed with rng.Mix64
//     (qseed ^ Mix64(qctr.Add(1)), or a salted substream of it).
//   - Nothing is ever seeded from time.Now.
//   - Retry jitter (backoff helpers taking a *rng.Source) must receive a
//     derived substream, never a struct's `rng` field — the sample
//     stream must stay untouched on fault-free rounds so same-seed
//     sample streams remain bit-identical (the PR 6 idle-injector
//     contract).
//   - Trace/metrics sampling gates (obs.Tracer.ShouldSample / Start and
//     any helper named like ShouldSample) must not draw their decision
//     from the query's RNG stream: an argument that references a
//     struct's `rng` field or advances an rng.Source would shift every
//     subsequent draw, so a traced run would no longer emit the same
//     samples as an untraced one. The gate must be a pure hash of the
//     stream seed (a salted rng.Mix64 substream).
var RNGStream = &Analyzer{
	Name: "rngstream",
	Doc:  "forbid math/rand and mid-query RNG construction; per-query streams must derive from the seed counter",
	Run:  runRNGStream,
}

const (
	rngPkgPath = ModulePath + "/internal/rng"
	obsPkgPath = ModulePath + "/internal/obs"
)

// constructionFunc reports whether name marks a build/construction-time
// function, where creating generators from an explicit seed is the
// expected idiom.
func constructionFunc(name string) bool {
	for _, prefix := range []string{"New", "new", "Build", "build", "Make", "make", "Generate", "generate", "Load", "load"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return name == "init" || name == "main"
}

// isRNGNew reports whether fn is fairnn/internal/rng.New.
func isRNGNew(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == rngPkgPath &&
		fn.Name() == "New" && fn.Type().(*types.Signature).Recv() == nil
}

// recvNamed reports whether fn's receiver (possibly through a pointer)
// is the named type pkgPath.typeName.
func recvNamed(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath &&
		named.Obj().Name() == typeName
}

// isSourceMethod reports whether fn is the named method of rng.Source.
func isSourceMethod(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && recvNamed(fn, rngPkgPath, "Source")
}

// containsTimeNow reports whether the expression tree contains a call to
// time.Now.
func (p *Pass) containsTimeNow(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := p.Callee(call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			found = true
		}
		return !found
	})
	return found
}

// jitterHelper reports whether fn looks like a backoff/jitter helper: a
// module function with a *rng.Source parameter whose name mentions
// backoff, jitter, or delay.
func jitterHelper(fn *types.Func) bool {
	if fn == nil || !InModule(fn.Pkg()) {
		return false
	}
	name := strings.ToLower(fn.Name())
	if !strings.Contains(name, "backoff") && !strings.Contains(name, "jitter") && !strings.Contains(name, "delay") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if ptr, ok := sig.Params().At(i).Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == rngPkgPath &&
				named.Obj().Name() == "Source" {
				return true
			}
		}
	}
	return false
}

// traceGateHelper reports whether fn is a telemetry sampling gate: a
// method of obs.Tracer that decides or opens a sampled trace
// (ShouldSample, Start), or any module function whose name mirrors the
// ShouldSample idiom.
func traceGateHelper(fn *types.Func) bool {
	if fn == nil || !InModule(fn.Pkg()) {
		return false
	}
	if strings.Contains(strings.ToLower(fn.Name()), "shouldsample") {
		return true
	}
	return recvNamed(fn, obsPkgPath, "Tracer") && fn.Name() == "Start"
}

// drawsFromStream reports whether the expression tree references a
// struct's `rng` field or calls any rng.Source method — either way,
// evaluating it would read or advance the query's sample stream.
func (p *Pass) drawsFromStream(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "rng" {
				found = true
			}
		case *ast.CallExpr:
			if fn := p.Callee(n); fn != nil && recvNamed(fn, rngPkgPath, "Source") {
				found = true
			}
		}
		return !found
	})
	return found
}

// sampleStreamField reports whether arg denotes (the address of) a
// struct's `rng` field — by repository convention, the query's sample
// stream (querier.rng, session.rng).
func sampleStreamField(arg ast.Expr) bool {
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
		arg = u.X
	}
	sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "rng"
}

func runRNGStream(pass *Pass) error {
	if pass.Pkg.Path() == rngPkgPath {
		return nil // the generator package itself
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s is forbidden outside tests: all randomness must derive from %s (per-query streams seeded from the atomic seed counter)", strings.Trim(imp.Path.Value, `"`), rngPkgPath)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.checkRNGInFunc(fd)
		}
	}
	return nil
}

func (p *Pass) checkRNGInFunc(fd *ast.FuncDecl) {
	_, blessed := p.FuncDirective(fd, "rng-source")
	construction := blessed || constructionFunc(fd.Name.Name)
	derives := false // does the function call rng.Mix64 anywhere?
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.Callee(call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == rngPkgPath && fn.Name() == "Mix64" {
			derives = true
			return false
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.Callee(call)
		switch {
		case isRNGNew(fn):
			if p.containsTimeNow(call) {
				p.Reportf(call.Pos(), "rng.New seeded from time.Now: wall-clock seeds destroy the bit-for-bit reproducibility contract")
			}
			if !construction {
				p.Reportf(call.Pos(), "rng.New in %s: query paths must reuse the pooled per-query stream (seeded from the atomic seed counter), not construct generators; annotate //fairnn:rng-source with a justification if this is a genuine construction site", fd.Name.Name)
			}
		case isSourceMethod(fn, "Seed"):
			if p.containsTimeNow(call) {
				p.Reportf(call.Pos(), "Source.Seed from time.Now: wall-clock seeds destroy the bit-for-bit reproducibility contract")
			}
			if !construction && !derives {
				p.Reportf(call.Pos(), "Source.Seed in %s does not derive its stream from the seed counter: per-query streams must be seeded via rng.Mix64 over the atomic query counter (or annotate //fairnn:rng-source with a justification)", fd.Name.Name)
			}
		case jitterHelper(fn):
			for _, arg := range call.Args {
				if sampleStreamField(arg) {
					p.Reportf(arg.Pos(), "%s receives the query's sample stream (.rng field): retry jitter must come from a derived substream so fault-free rounds leave same-seed sample streams bit-identical", fn.Name())
				}
			}
		case traceGateHelper(fn):
			for _, arg := range call.Args {
				if p.drawsFromStream(arg) {
					p.Reportf(arg.Pos(), "%s draws its sampling decision from the query's RNG stream: trace/metrics gates must be a pure hash of the stream seed (salted rng.Mix64 substream) so instrumented runs emit bit-identical sample streams", fn.Name())
				}
			}
		}
		return true
	})
}
