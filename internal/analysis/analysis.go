// Package analysis is fairnn's static invariant-checker suite: five
// analyzers that turn the repository's load-bearing runtime contracts —
// per-query RNG streams derived from the atomic seed counter, zero-alloc
// steady-state query paths, read-only indexes after construction,
// context polling inside rejection loops, and panic-contained fan-outs —
// into compile-time checks that run in CI before any test does.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library: the module has zero external dependencies and the lint suite
// keeps it that way. cmd/fairnnlint drives the analyzers both standalone
// (loading packages via `go list -export`) and as a `go vet -vettool`
// (speaking the unitchecker .cfg protocol).
//
// # Directives
//
// The analyzers are steered by machine-readable comments of the form
// //fairnn:<name> [reason...]. On a function's doc comment:
//
//	//fairnn:noalloc        — the function is a steady-state zero-alloc
//	                          hot path; the noalloc analyzer checks its
//	                          body and requires every direct callee in
//	                          this module to carry the same annotation.
//	//fairnn:rng-source     — the function is a blessed RNG construction
//	                          site; rngstream does not flag rng.New or
//	                          Source.Seed calls inside it.
//	//fairnn:mutates        — the method legitimately writes fields of a
//	                          //fairnn:frozen type outside the build path
//	                          (e.g. the Appendix A rank-swap helpers).
//	//fairnn:fanout-safe    — the function is a blessed goroutine
//	                          launcher (parallelRange, safeCall): go
//	                          statements whose body routes through it are
//	                          contained.
//
// On a struct type's doc comment:
//
//	//fairnn:frozen         — the type is an index that must be read-only
//	                          after construction; frozenindex reports
//	                          field writes outside New*/build*/Insert
//	                          methods and //fairnn:mutates functions.
//
// On (or immediately above) an individual line:
//
//	//fairnn:allocok <why>      — suppress one noalloc finding (pool-miss
//	                              construction, lazy growth the analyzer
//	                              cannot prove, cold branches).
//	//fairnn:ctxpoll-exempt <why> — suppress one ctxpoll finding.
//
// A reason is required on the line-level suppressions: an escape hatch
// without a justification is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the help text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	dirs *directiveIndex
}

// Reportf reports a formatted diagnostic at pos, unless pos lies in a
// _test.go file: the suite's contracts govern non-test code (tests
// legitimately build ad-hoc generators, spawn bare goroutines, and
// allocate in hot loops while measuring them).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.InTestFile(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// InModule reports whether pkg belongs to this module (the lint contracts
// do not extend into the standard library).
func InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// ModulePath is the module the analyzers enforce contracts for. Testdata
// packages mirror it so analyzers can be exercised hermetically.
const ModulePath = "fairnn"

// A directive is one parsed //fairnn:<name> comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// directiveIndex is the per-pass view of every //fairnn: directive in the
// package: per-function (doc comments) and per-line (suppressions).
type directiveIndex struct {
	funcs map[*ast.FuncDecl][]directive
	types map[*ast.TypeSpec][]directive
	// lines maps filename → line → directives written on that line (a
	// trailing comment) or as a full-line comment on the line above.
	lines map[string]map[int][]directive
}

// parseDirectives extracts //fairnn: directives from a comment list.
func parseDirectives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, "//fairnn:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(text, " ")
			out = append(out, directive{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()})
		}
	}
	return out
}

// directives lazily builds (and caches) the directive index for the pass.
func (p *Pass) directives() *directiveIndex {
	if p.dirs != nil {
		return p.dirs
	}
	idx := &directiveIndex{
		funcs: make(map[*ast.FuncDecl][]directive),
		types: make(map[*ast.TypeSpec][]directive),
		lines: make(map[string]map[int][]directive),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if ds := parseDirectives(d.Doc); len(ds) > 0 {
					idx.funcs[d] = ds
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if ds := parseDirectives(d.Doc, ts.Doc, ts.Comment); len(ds) > 0 {
						idx.types[ts] = ds
					}
				}
			}
		}
		for _, g := range f.Comments {
			for _, d := range parseDirectives(g) {
				posn := p.Fset.Position(d.pos)
				m := idx.lines[posn.Filename]
				if m == nil {
					m = make(map[int][]directive)
					idx.lines[posn.Filename] = m
				}
				m[posn.Line] = append(m[posn.Line], d)
			}
		}
	}
	p.dirs = idx
	return idx
}

// FuncDirective reports whether fn's doc comment carries the named
// directive, returning its reason.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) (string, bool) {
	for _, d := range p.directives().funcs[fn] {
		if d.name == name {
			return d.reason, true
		}
	}
	return "", false
}

// TypeDirective reports whether the type spec carries the named directive.
func (p *Pass) TypeDirective(ts *ast.TypeSpec, name string) (string, bool) {
	for _, d := range p.directives().types[ts] {
		if d.name == name {
			return d.reason, true
		}
	}
	return "", false
}

// LineDirective reports whether node's starting line — or the full line
// directly above it — carries the named directive. This is the escape
// hatch for individual findings; the reason string lets reviewers audit
// every suppression.
func (p *Pass) LineDirective(node ast.Node, name string) (string, bool) {
	posn := p.Fset.Position(node.Pos())
	m := p.directives().lines[posn.Filename]
	if m == nil {
		return "", false
	}
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		for _, d := range m[line] {
			if d.name == name {
				return d.reason, true
			}
		}
	}
	return "", false
}

// EnclosingFunc returns the FuncDecl whose body contains pos, if any.
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.Pos() > pos || f.End() < pos {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// Callee resolves the static callee of a call expression: the *types.Func
// for direct calls of named functions and methods (generic instances are
// resolved to their origin). It returns nil for calls of func-typed
// values, type conversions, and builtins — dynamic targets the analyzers
// deliberately do not chase.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = p.TypesInfo.Uses[fun.Sel] // qualified identifier pkg.F
		}
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = p.TypesInfo.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = p.TypesInfo.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// IsInterfaceMethod reports whether the call is a dynamic dispatch
// through an interface method — a target the analyzers cannot chase
// statically (the memoTable backends, the sketch Counter family).
func (p *Pass) IsInterfaceMethod(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	return types.IsInterface(selection.Recv().Underlying())
}
