package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FrozenIndex enforces two build-time-only mutation contracts.
//
// First, the annotation-driven check: a struct type whose doc comment
// carries //fairnn:frozen is an index that must be immutable once its
// constructor returns — concurrent queries read it without locks, so a
// post-construction field write is a data race even if it "only" updates
// a statistic. The analyzer reports every assignment or ++/-- whose
// target is a field of a frozen type, unless the enclosing function is a
// construction site (New*/new*/Build*/build*/Make*/make*/..., init),
// an insertion path (name starting with Insert/insert/Add/add — bulk
// loading precedes freezing), or is annotated //fairnn:mutates <reason>.
//
// Second, the init-order check, which needs no annotation and guards
// against the PR 7 regression class: a package-level variable whose
// initializer reads another package variable that is assigned inside
// func init(). Package-level initializers run before init functions, so
// the reading variable captures the zero (or declared) value, not the
// value init establishes — exactly how an accelerator-enable flag once
// read a CPU-feature variable before the detecting init had run.
var FrozenIndex = &Analyzer{
	Name: "frozenindex",
	Doc:  "no writes to //fairnn:frozen index fields outside construction; no package-var initializers reading init-assigned vars",
	Run:  runFrozenIndex,
}

// insertionFunc reports whether name marks a bulk-loading path where
// index mutation is expected.
func insertionFunc(name string) bool {
	for _, prefix := range []string{"Insert", "insert", "Add", "add"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runFrozenIndex(pass *Pass) error {
	frozen := pass.frozenTypes()
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if len(frozen) > 0 {
				pass.checkFrozenWrites(fd, frozen)
			}
		}
		pass.checkInitOrder(f)
	}
	return nil
}

// frozenTypes collects the *types.TypeName of every struct annotated
// //fairnn:frozen in this package.
func (p *Pass) frozenTypes() map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for ts := range p.directives().types {
		if _, ok := p.TypeDirective(ts, "frozen"); !ok {
			continue
		}
		if tn, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
			out[tn] = true
		}
	}
	return out
}

func (p *Pass) checkFrozenWrites(fd *ast.FuncDecl, frozen map[*types.TypeName]bool) {
	if constructionFunc(fd.Name.Name) || insertionFunc(fd.Name.Name) {
		return
	}
	if _, ok := p.FuncDirective(fd, "mutates"); ok {
		return
	}
	report := func(target ast.Expr) {
		tn := p.frozenFieldOwner(target, frozen)
		if tn == nil {
			return
		}
		if _, ok := p.LineDirective(target, "mutates"); ok {
			return
		}
		p.Reportf(target.Pos(), "write to field of frozen index type %s outside construction: indexes are read concurrently without locks after New* returns (move the write into the build path, or annotate the method //fairnn:mutates <reason>)", tn.Name())
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(n.X)
		}
		return true
	})
}

// frozenFieldOwner returns the frozen type whose field the expression
// writes, or nil. It peels index/star/paren wrappers down to a selector
// x.f and checks whether x's (pointer-dereferenced, origin-resolved)
// type is frozen.
func (p *Pass) frozenFieldOwner(target ast.Expr, frozen map[*types.TypeName]bool) *types.TypeName {
	for {
		switch e := ast.Unparen(target).(type) {
		case *ast.IndexExpr:
			target = e.X
			continue
		case *ast.StarExpr:
			target = e.X
			continue
		case *ast.SelectorExpr:
			// Only field selections count; a selector chain a.b.c writes
			// into whatever owns c — but if any link in the chain is a
			// frozen struct the object is reachable from a frozen index,
			// so check each link.
			for {
				sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
				if !ok {
					return nil
				}
				if selection, ok := p.TypesInfo.Selections[sel]; ok && selection.Kind() == types.FieldVal {
					if tn := frozenTypeName(selection.Recv(), frozen); tn != nil {
						return tn
					}
				}
				target = sel.X
			}
		default:
			return nil
		}
	}
}

// frozenTypeName resolves t (possibly a pointer, possibly a generic
// instance) to a frozen *types.TypeName, or nil.
func frozenTypeName(t types.Type, frozen map[*types.TypeName]bool) *types.TypeName {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Origin().Obj()
	if frozen[tn] {
		return tn
	}
	return nil
}

// checkInitOrder reports package-level variable initializers that read a
// package variable assigned inside a func init() in the same file set —
// those initializers run before init, so they see the pre-init value.
func (p *Pass) checkInitOrder(f *ast.File) {
	// Pass over the whole package, not just f, so cross-file cases are
	// caught; but report only once per package (anchor on the first file).
	if len(p.Files) > 0 && f != p.Files[0] {
		return
	}
	// 1. Collect package vars assigned inside init functions.
	initAssigned := map[*types.Var]bool{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "init" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok && v.Parent() == p.Pkg.Scope() {
						initAssigned[v] = true
					}
				}
				return true
			})
		}
	}
	if len(initAssigned) == 0 {
		return
	}
	// 2. Scan package-level var initializer expressions for reads of them.
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, value := range vs.Values {
					ast.Inspect(value, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						v, ok := p.TypesInfo.Uses[id].(*types.Var)
						if !ok || !initAssigned[v] {
							return true
						}
						p.Reportf(id.Pos(), "package variable initializer reads %s, which is assigned in func init(): var initializers run first, so this captures the pre-init value (compute it inside init, or make it a function)", v.Name())
						return true
					})
				}
			}
		}
	}
}
