package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
)

// Cross-package annotation harvesting.
//
// Analyzers run one package at a time, but the noalloc contract is
// transitive: a //fairnn:noalloc function may only call module functions
// that are themselves annotated, and those callees usually live in a
// sibling package (core's hot loop calls rank, lsh, vector, sketch).
// Export data carries no comments, so the annotation of a cross-package
// callee is recovered from its source: the callee's declaration position
// (recorded in export data and threaded through the type checker into
// the shared FileSet) names the file and line; the file is parsed once
// (syntax + comments only, no type checking) and the doc comment of the
// FuncDecl declared there is inspected. Files are cached per process —
// the whole-repo lint run touches each hot-path file a handful of times.
//
// When a declaration file cannot be read (a build environment that
// relocated sources), the callee is conservatively treated as
// unannotated: the finding is visible and the call site can be escaped
// explicitly, rather than a contract silently going unchecked.

var harvest struct {
	sync.Mutex
	files map[string]*harvestedFile
}

type harvestedFile struct {
	file *ast.File // nil if the parse failed
	fset *token.FileSet
}

func harvestFile(filename string) *harvestedFile {
	harvest.Lock()
	defer harvest.Unlock()
	if hf, ok := harvest.files[filename]; ok {
		return hf
	}
	if harvest.files == nil {
		harvest.files = make(map[string]*harvestedFile)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
	hf := &harvestedFile{fset: fset}
	if err == nil {
		hf.file = f
	}
	harvest.files[filename] = hf
	return hf
}

// FuncAnnotated reports whether the declaration of fn carries the named
// //fairnn: directive. The declaration is searched first in the current
// pass's syntax (same-package callees), then harvested from the source
// file named by fn's declaration position (cross-package callees).
func (p *Pass) FuncAnnotated(fn *types.Func, name string) bool {
	if fn == nil {
		return false
	}
	pos := fn.Pos()
	// Same package: the FuncDecl is in the pass's own syntax trees.
	if fn.Pkg() == p.Pkg {
		if fd := p.EnclosingFunc(pos); fd != nil {
			_, ok := p.FuncDirective(fd, name)
			return ok
		}
	}
	posn := p.Fset.Position(pos)
	if posn.Filename == "" {
		return false
	}
	hf := harvestFile(posn.Filename)
	if hf.file == nil {
		return false
	}
	for _, decl := range hf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn.Name() {
			continue
		}
		// Positions come from two different FileSets (the pass's, fed by
		// export data, and the harvest parse), so match on line numbers:
		// export data records the position of the declaring identifier.
		line := hf.fset.Position(fd.Name.Pos()).Line
		declLine := hf.fset.Position(fd.Pos()).Line
		if posn.Line != line && posn.Line != declLine {
			continue
		}
		for _, d := range parseDirectives(fd.Doc) {
			if d.name == name {
				return true
			}
		}
		return false
	}
	return false
}
