// Package rng provides deterministic pseudo-randomness for the whole
// library: a fast xoshiro256** generator seeded via splitmix64, Gaussian
// variates, permutations, and the pairwise-independent hash families used
// by the count-distinct sketches and the rank permutation of the paper.
//
// The package deliberately avoids math/rand so that experiment outputs are
// bit-for-bit reproducible across Go releases; every data structure in this
// repository derives all randomness from an explicit *rng.Source.
package rng

import "math"

// Source is a deterministic pseudo-random number generator
// (xoshiro256** by Blackman and Vigna, seeded with splitmix64).
// It is not safe for concurrent use; derive independent sources with Split.
type Source struct {
	s0, s1, s2, s3 uint64
	// cached second Gaussian variate from the last Box–Muller draw.
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed (re)initializes the generator state from a single 64-bit seed
// using the splitmix64 expansion recommended by the xoshiro authors.
//
//fairnn:noalloc
func (r *Source) Seed(seed uint64) {
	sm := seed
	//fairnn:allocok non-escaping local closure; the compiler keeps it on the stack
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro must not start in the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
}

// Split returns a new Source whose stream is independent (for all practical
// purposes) of r's: it is seeded from the next value of r mixed with a
// distinct constant. Useful for handing sub-structures their own generators.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0x6a09e667f3bcc909)
}

//fairnn:noalloc
func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
//
//fairnn:noalloc
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
//
//fairnn:noalloc
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
//
//fairnn:noalloc
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// 128-bit multiply via hi/lo decomposition.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
//
//fairnn:noalloc
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
//fairnn:noalloc
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
//
//fairnn:noalloc
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
//
//fairnn:noalloc
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
//
//fairnn:noalloc
func (r *Source) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Exp returns an exponential variate with rate 1.
//
//fairnn:noalloc
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniform random permutation of [0, n) as a slice of int32.
// int32 keeps rank arrays compact; the library never indexes more than 2^31
// points (the paper's regime is n in the thousands to millions).
func (r *Source) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.ShuffleInt32(p)
	return p
}

// ShuffleInt32 performs an in-place Fisher–Yates shuffle.
//
//fairnn:noalloc
func (r *Source) ShuffleInt32(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s using inverse-transform over precomputed cumulative weights.
// For repeated sampling construct a ZipfGen instead.
type ZipfGen struct {
	cum []float64
}

// NewZipf precomputes a Zipf(s) distribution over [0, n).
func NewZipf(n int, s float64) *ZipfGen {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	return &ZipfGen{cum: cum}
}

// Sample draws one index from the Zipf distribution.
func (z *ZipfGen) Sample(r *Source) int {
	u := r.Float64()
	// Binary search for the first index with cum >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mix64 is a strong 64-bit finalizer (splitmix64's mixer). It is used as a
// cheap "random oracle" keyed by XOR with a seed, e.g. for MinHash.
//
//fairnn:noalloc
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Combine mixes a hash accumulator with the next value; used to build
// K-wise AND-compositions of LSH values into a single bucket key.
//
//fairnn:noalloc
func Combine(acc, v uint64) uint64 {
	return Mix64(acc ^ (v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)))
}
