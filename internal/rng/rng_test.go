package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(42)
	const n = 10
	const trials = 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestPermIsBijection(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of a uniform permutation of [0,n) is uniform.
	const n = 8
	const trials = 80000
	counts := make([]int, n)
	r := New(99)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("first element %d count %d, want ~%f", i, c, want)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(1234), New(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(1235)
	same := 0
	a = New(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d of 1000 draws", same)
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	a := New(5)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams agree on %d of 1000 draws", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / trials; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", p)
	}
}

func TestZipfHeadHeavierThanTail(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := New(21)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("Zipf head (%d) not heavier than tail (%d)", counts[0], counts[500])
	}
	// Rank-0 frequency should be near 1/H_1000 ≈ 0.133.
	p0 := float64(counts[0]) / 100000
	if p0 < 0.10 || p0 > 0.17 {
		t.Errorf("Zipf p(0) = %v, want ≈ 0.133", p0)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(50, 0.8)
		r := New(seed)
		for i := 0; i < 100; i++ {
			if v := z.Sample(r); v < 0 || v >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]struct{})
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if _, ok := seen[v]; ok {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = struct{}{}
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	a := Combine(Combine(1, 2), 3)
	b := Combine(Combine(1, 3), 2)
	if a == b {
		t.Error("Combine is order-insensitive; AND-composition keys would collide")
	}
}

func TestShuffleInt32Preserves(t *testing.T) {
	r := New(77)
	p := []int32{5, 6, 7, 8, 9}
	r.ShuffleInt32(p)
	seen := map[int32]bool{}
	for _, v := range p {
		seen[v] = true
	}
	for v := int32(5); v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("shuffle lost element %d", v)
		}
	}
}
