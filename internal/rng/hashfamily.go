package rng

// This file implements the pairwise-independent hash families from
// Section 2.3 of the paper (used by the count-distinct sketch) and the
// universal family used to draw the random rank permutation of Section 3.

// mersenne61 is the Mersenne prime 2^61 - 1, the classic modulus for
// Carter–Wegman universal hashing with 64-bit inputs.
const mersenne61 = (1 << 61) - 1

// PairwiseHash is a pairwise-independent hash function
// h(x) = ((a*x + b) mod p) with p = 2^61 - 1, a in [1, p), b in [0, p).
// Its outputs are uniform in [0, 2^61-1) and pairwise independent, which is
// exactly the guarantee the Bar-Yossef et al. F0 sketch requires.
type PairwiseHash struct {
	a, b uint64
}

// NewPairwiseHash draws a function from the family using r.
func NewPairwiseHash(r *Source) PairwiseHash {
	a := r.Uint64n(mersenne61-1) + 1 // a != 0
	b := r.Uint64n(mersenne61)
	return PairwiseHash{a: a, b: b}
}

// Hash evaluates the function on x. The result lies in [0, 2^61-1).
func (h PairwiseHash) Hash(x uint64) uint64 {
	// Compute (a*x + b) mod (2^61-1) using 128-bit arithmetic.
	hi, lo := mul64(h.a, x%mersenne61)
	// Reduce the 128-bit product modulo 2^61-1:
	// value = hi*2^64 + lo = hi*8*(2^61) + lo ≡ hi*8 + lo (mod 2^61-1) needs care;
	// use the standard fold: (x mod 2^61) + (x >> 61).
	folded := (lo & mersenne61) + ((lo >> 61) | (hi << 3))
	folded = (folded & mersenne61) + (folded >> 61)
	if folded >= mersenne61 {
		folded -= mersenne61
	}
	sum := folded + h.b
	sum = (sum & mersenne61) + (sum >> 61)
	if sum >= mersenne61 {
		sum -= mersenne61
	}
	return sum
}

// Range returns the size of the hash range (2^61 - 1).
func (h PairwiseHash) Range() uint64 { return mersenne61 }

// TabulationHash is a simple 4x16-bit tabulation hash over 64-bit keys.
// Tabulation hashing is 3-independent and behaves like a truly random
// function for the min-wise applications in this library; MinHash uses it
// keyed per hash function.
type TabulationHash struct {
	tables [8][256]uint64
}

// NewTabulationHash fills the tables from r.
func NewTabulationHash(r *Source) *TabulationHash {
	t := &TabulationHash{}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = r.Uint64()
		}
	}
	return t
}

// Hash evaluates the tabulation hash on x.
func (t *TabulationHash) Hash(x uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= t.tables[i][byte(x>>(8*uint(i)))]
	}
	return h
}
