package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairwiseHashRange(t *testing.T) {
	f := func(seed, x uint64) bool {
		h := NewPairwiseHash(New(seed))
		return h.Hash(x) < h.Range()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseHashDeterministic(t *testing.T) {
	h := NewPairwiseHash(New(9))
	for x := uint64(0); x < 1000; x++ {
		if h.Hash(x) != h.Hash(x) {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestPairwiseHashSpreads(t *testing.T) {
	// Bucket 100k consecutive keys into 16 buckets; each bucket should be
	// near 1/16 of the mass.
	h := NewPairwiseHash(New(31))
	const buckets = 16
	counts := make([]int, buckets)
	const n = 100000
	for x := uint64(0); x < n; x++ {
		counts[h.Hash(x)%buckets]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d, want ~%f", i, c, want)
		}
	}
}

func TestPairwiseHashPairwiseCollisions(t *testing.T) {
	// Over random function draws, Pr[h(x)=h(y) mod m] ≈ 1/m for x≠y.
	const m = 64
	const trials = 20000
	src := New(55)
	coll := 0
	for i := 0; i < trials; i++ {
		h := NewPairwiseHash(src)
		if h.Hash(12345)%m == h.Hash(67890)%m {
			coll++
		}
	}
	p := float64(coll) / trials
	if p > 2.0/m {
		t.Errorf("pairwise collision rate %v, want ≈ %v", p, 1.0/m)
	}
}

func TestTabulationHashDistinctAndDeterministic(t *testing.T) {
	h := NewTabulationHash(New(17))
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 20000; x++ {
		v := h.Hash(x)
		if v != h.Hash(x) {
			t.Fatal("tabulation hash not deterministic")
		}
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision between %d and %d", prev, x)
		}
		seen[v] = x
	}
}

func TestTabulationHashBitBalance(t *testing.T) {
	h := NewTabulationHash(New(23))
	const n = 50000
	ones := 0
	for x := uint64(0); x < n; x++ {
		ones += int(h.Hash(x) & 1)
	}
	p := float64(ones) / n
	if math.Abs(p-0.5) > 0.01 {
		t.Errorf("low bit bias: %v", p)
	}
}
