// Package servefix defines the shared serving fixtures: deterministic
// dataset + shard-build recipes that cmd/fairnn-server, the serve/chaos
// harnesses, and the cross-process tests all derive from the same
// (dataset, n, seed) triple. A server process and an in-process twin
// built from the same Spec construct bit-identical Section 4 structures
// — the property the stream-equivalence oracle rests on — because both
// sides resolve options against the global point count, partition with
// the same scheme, and seed shard j with shard.ShardSeed(seed, j),
// exactly as shard.BuildConfig does.
package servefix

import (
	"fmt"
	"math"

	"fairnn/internal/core"
	"fairnn/internal/dataset"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/shard"
	"fairnn/internal/vector"
	"fairnn/internal/wire"
)

// Spec identifies one deterministic serving build. Every process that
// shares a Spec builds the same global dataset and the same per-shard
// structures.
type Spec struct {
	// Dataset selects the workload: "line" (integers 0..N-1 under
	// absolute distance — nearness is trivially checkable) or "vec"
	// (planted-ball unit vectors under inner-product similarity).
	Dataset string
	// N is the global point count.
	N int
	// Dim is the vector dimensionality (vec only).
	Dim int
	// Shards is the fleet size S.
	Shards int
	// Seed derives the dataset, every shard structure, and the query
	// streams.
	Seed uint64
	// Radius is the query radius (line) or the similarity threshold α
	// (vec).
	Radius float64
}

// Validate checks the spec is buildable.
func (sp Spec) Validate() error {
	switch sp.Dataset {
	case "line", "vec":
	default:
		return fmt.Errorf("servefix: unknown dataset %q (want line or vec)", sp.Dataset)
	}
	if sp.N < 1 {
		return fmt.Errorf("servefix: point count %d < 1", sp.N)
	}
	if sp.Shards < 1 || sp.Shards > sp.N {
		return fmt.Errorf("servefix: shard count %d outside [1, %d]", sp.Shards, sp.N)
	}
	if sp.Dataset == "vec" && sp.Dim < 2 {
		return fmt.Errorf("servefix: vec dimension %d < 2", sp.Dim)
	}
	if sp.Radius <= 0 {
		return fmt.Errorf("servefix: radius %g <= 0", sp.Radius)
	}
	return nil
}

// Partitioner returns the fixture partitioning scheme (round-robin —
// the client and every server must agree on it).
func (sp Spec) Partitioner() shard.Partitioner { return shard.RoundRobin{} }

// CodecName returns the wire codec name the spec's point type uses.
func (sp Spec) CodecName() string {
	if sp.Dataset == "vec" {
		return wire.VecCodec{Dim: sp.Dim}.Name()
	}
	return wire.IntCodec{}.Name()
}

// LineFamily buckets the integer line into fixed-width chunks — enough
// bucket structure for the rejection loop to do real work (the chaos
// experiment's family, shared here so servers and twins agree).
type LineFamily struct {
	// Width is the chunk width.
	Width int
}

// New implements lsh.Family.
func (f LineFamily) New(r *rng.Source) lsh.Func[int] {
	off := r.Intn(f.Width)
	w := f.Width
	return func(p int) uint64 { return uint64((p + off) / w) }
}

// CollisionProb implements lsh.Family.
func (LineFamily) CollisionProb(float64) float64 { return 0.9 }

// LineSpace returns the fixture's scalar space (absolute distance).
func LineSpace() core.Space[int] {
	return core.Space[int]{Kind: core.Distance, Score: func(a, b int) float64 {
		return math.Abs(float64(a - b))
	}}
}

// LineParams is the fixture's per-shard LSH parameter choice.
func LineParams(int) lsh.Params { return lsh.Params{K: 1, L: 4} }

// LinePoints materializes the global line dataset: the integers
// 0..N-1.
func (sp Spec) LinePoints() []int {
	pts := make([]int, sp.N)
	for i := range pts {
		pts[i] = i
	}
	return pts
}

// VecWorkload materializes the global planted-ball dataset. The same
// Spec always yields the same vectors and the same planted query.
func (sp Spec) VecWorkload() dataset.PlantedBall {
	return dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: sp.N, Dim: sp.Dim, Alpha: sp.Radius, Beta: 0.5,
		BallSize: 16, MidSize: 48, Seed: sp.Seed,
	})
}

// VecFamily returns the fixture's vector LSH family.
func (sp Spec) VecFamily() lsh.SimHash { return lsh.SimHash{Dim: sp.Dim} }

// VecParams is the fixture's per-shard LSH parameter choice for
// vectors, tuned to the shard size exactly as the scaling experiment
// does.
func (sp Spec) VecParams(shardSize int) lsh.Params {
	fam := sp.VecFamily()
	k := lsh.ChooseK[vector.Vec](fam, shardSize, 0, 5)
	l := lsh.ChooseL[vector.Vec](fam, k, sp.Radius, 0.99)
	return lsh.Params{K: k, L: l}
}

// localPoints partitions a global dataset and returns shard j's slice.
func localPoints[P any](sp Spec, points []P, j int) []P {
	part := sp.Partitioner()
	var local []P
	for i, p := range points {
		if part.Assign(i, sp.N, sp.Shards) == j {
			local = append(local, p)
		}
	}
	return local
}

// meta assembles the handshake identity for shard j of the spec.
func (sp Spec) meta(j, shardN int, opts core.IndependentOptions, qseed uint64) wire.Meta {
	return wire.Meta{
		ShardIndex:      j,
		ShardCount:      sp.Shards,
		GlobalN:         sp.N,
		ShardN:          shardN,
		Lambda:          float64(opts.Lambda),
		Sigma:           opts.SigmaBudget,
		QueryStreamSeed: qseed,
		Radius:          sp.Radius,
		Codec:           sp.CodecName(),
	}
}

// BuildLineShard constructs shard j's Section 4 structure for a line
// spec, with options resolved against the GLOBAL point count and the
// shard seed derived exactly as shard.BuildConfig derives it — the
// out-of-process half of the bit-identical-build contract.
func BuildLineShard(sp Spec, j int) (*core.Independent[int], wire.Meta, error) {
	if err := sp.Validate(); err != nil {
		return nil, wire.Meta{}, err
	}
	opts := core.IndependentOptions{}.Resolved(sp.N)
	local := localPoints(sp, sp.LinePoints(), j)
	d, err := core.NewIndependent(LineSpace(), LineFamily{Width: 64}, LineParams(len(local)), local, sp.Radius, opts, shard.ShardSeed(sp.Seed, j))
	if err != nil {
		return nil, wire.Meta{}, err
	}
	return d, sp.meta(j, len(local), opts, d.QueryStreamSeed()), nil
}

// BuildVecShard is BuildLineShard for the planted-ball vector spec.
func BuildVecShard(sp Spec, j int) (*core.Independent[vector.Vec], wire.Meta, error) {
	if err := sp.Validate(); err != nil {
		return nil, wire.Meta{}, err
	}
	opts := core.IndependentOptions{}.Resolved(sp.N)
	w := sp.VecWorkload()
	local := localPoints(sp, w.Points, j)
	d, err := core.NewIndependent[vector.Vec](core.InnerProduct(), sp.VecFamily(), sp.VecParams(len(local)), local, sp.Radius, opts, shard.ShardSeed(sp.Seed, j))
	if err != nil {
		return nil, wire.Meta{}, err
	}
	return d, sp.meta(j, len(local), opts, d.QueryStreamSeed()), nil
}

// InProcLine builds the in-process twin of a line-spec server fleet:
// the same dataset through shard.BuildConfig with the same seed,
// partitioner, and per-shard parameters, so its same-seed sample
// streams are the oracle a remote fleet must reproduce bit for bit.
func InProcLine(sp Spec, cfg shard.Config) (*shard.Sharded[int], error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	cfg.Shards = sp.Shards
	cfg.Seed = sp.Seed
	if cfg.Partitioner == nil {
		cfg.Partitioner = sp.Partitioner()
	}
	return shard.BuildConfig(LineSpace(), LineFamily{Width: 64}, LineParams, sp.LinePoints(), sp.Radius, core.IndependentOptions{}, cfg)
}

// InProcVec is InProcLine for the vector spec.
func InProcVec(sp Spec, cfg shard.Config) (*shard.Sharded[vector.Vec], error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	cfg.Shards = sp.Shards
	cfg.Seed = sp.Seed
	if cfg.Partitioner == nil {
		cfg.Partitioner = sp.Partitioner()
	}
	w := sp.VecWorkload()
	return shard.BuildConfig[vector.Vec](core.InnerProduct(), sp.VecFamily(), sp.VecParams, w.Points, sp.Radius, core.IndependentOptions{}, cfg)
}
