package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fairnn/internal/lsh"
	"fairnn/internal/vector"
)

// newSpinningIndependent builds a Section 4 structure whose rejection loop
// is adversarially long: Lambda is huge, so every segment's acceptance
// probability λ_q,h/λ is ≈ 2⁻²⁷ per round, and SigmaBudget is huge, so the
// segment count is never halved — the loop would spin for (practically)
// ever without external cancellation.
func newSpinningIndependent(t *testing.T, seed uint64) *Independent[int] {
	t.Helper()
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(64), 7,
		IndependentOptions{Lambda: 1 << 30, SigmaBudget: 1 << 30}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSampleContextBackgroundMatchesSample pins the bit-compatibility
// contract: SampleContext under context.Background() consumes the seed's
// randomness stream exactly like Sample, so two same-seed structures
// queried through the two entry points emit identical ids.
func TestSampleContextBackgroundMatchesSample(t *testing.T) {
	a := newLineIndependent(t, 64, 7, 101)
	b := newLineIndependent(t, 64, 7, 101)
	for i := 0; i < 200; i++ {
		idA, okA := a.Sample(0, nil)
		idB, err := b.SampleContext(context.Background(), 0, nil)
		if err != nil || !okA {
			t.Fatalf("draw %d: Sample ok=%v, SampleContext err=%v", i, okA, err)
		}
		if idA != idB {
			t.Fatalf("draw %d: Sample = %d, SampleContext = %d — streams diverged", i, idA, idB)
		}
	}
}

// TestSampleContextNoSample pins the failure mapping: a query whose ball
// is empty returns ErrNoSample (not a nil-error zero id).
func TestSampleContextNoSample(t *testing.T) {
	d := newLineIndependent(t, 64, 3, 7)
	if _, err := d.SampleContext(context.Background(), 1000, nil); !errors.Is(err, ErrNoSample) {
		t.Fatalf("far query err = %v, want ErrNoSample", err)
	}
}

// TestSampleContextCanceledStopsSpinningLoop is the headline cancellation
// property: a rejection loop that would otherwise spin indefinitely must
// notice a pre-canceled context within one check interval and return its
// error.
func TestSampleContextCanceledStopsSpinningLoop(t *testing.T) {
	d := newSpinningIndependent(t, 131)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.SampleContext(ctx, 0, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SampleContext did not return on a canceled context")
	}
}

// TestSampleContextCancelMidQuery cancels while the loop is spinning and
// checks both the prompt return and the returned error.
func TestSampleContextCancelMidQuery(t *testing.T) {
	d := newSpinningIndependent(t, 137)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.SampleContext(ctx, 0, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SampleContext did not return after cancel")
	}
}

// TestSampleContextDeadline checks the deadline path end to end: the
// spinning query must come back with DeadlineExceeded shortly after its
// budget, not burn the full rejection schedule.
func TestSampleContextDeadline(t *testing.T) {
	d := newSpinningIndependent(t, 139)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.SampleContext(ctx, 0, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline honored only after %v", el)
	}
}

// TestFilterSampleContextCanceled covers the Section 5 rejection loop: a
// mid-point-heavy plan (one near point among thousands of (β, α) points)
// makes the loop long, and a canceled context must stop it within one
// check interval.
func TestFilterSampleContextCanceled(t *testing.T) {
	pts := filterMidHeavyInstance(4000)
	f, err := NewFilterIndependent(pts, 0.9, 0.2, FilterIndependentOptions{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	q := vector.Vec{1, 0}
	// Sanity: the query must find its near point eventually (the loop is
	// long but terminating).
	if _, ok := f.Sample(q, nil); !ok {
		t.Skip("filter plan lost the near point at this seed; cancellation target not exercised")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = f.SampleContext(ctx, q, nil)
	if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrNoSample) {
		t.Fatalf("err = %v, want context.Canceled (or ErrNoSample if the plan emptied)", err)
	}
	if errors.Is(err, ErrNoSample) {
		t.Fatalf("plan found a near point for Sample but SampleContext reported ErrNoSample")
	}
}

// filterMidHeavyInstance builds 2-D unit vectors: one point at the query
// (inner product 1 ≥ α) and n mid points at inner product ≈ 0.5, between
// β = 0.2 and α = 0.9 — never deleted, never accepted.
func filterMidHeavyInstance(n int) []vector.Vec {
	pts := make([]vector.Vec, 0, n+1)
	pts = append(pts, vector.Vec{1, 0})
	for i := 0; i < n; i++ {
		pts = append(pts, vector.Vec{0.5, 0.8660254037844386})
	}
	return pts
}

// TestSamplesStreamIndependentUniform drives the Section 4 streaming
// iterator: a bounded prefix of the unbounded stream is all-near and the
// stream honors an early break.
func TestSamplesStreamIndependentUniform(t *testing.T) {
	d := newLineIndependent(t, 64, 7, 149)
	got := 0
	for id, err := range d.Samples(context.Background(), 0) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if d.Point(id) > 7 {
			t.Fatalf("stream yielded far point %d", d.Point(id))
		}
		got++
		if got == 500 {
			break
		}
	}
	if got != 500 {
		t.Fatalf("stream ended early after %d samples", got)
	}
}

// TestSamplesStreamCanceled checks that a canceled context terminates the
// stream with its error as the final yield.
func TestSamplesStreamCanceled(t *testing.T) {
	d := newLineIndependent(t, 64, 7, 151)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	var final error
	for _, err := range d.Samples(ctx, 0) {
		if err != nil {
			final = err
			break
		}
		seen++
		if seen == 10 {
			cancel()
		}
	}
	if !errors.Is(final, context.Canceled) {
		t.Fatalf("final stream error = %v, want context.Canceled", final)
	}
	if seen < 10 {
		t.Fatalf("stream delivered only %d samples before cancel", seen)
	}
}

// TestSamplesStreamNoNear: an empty ball yields ErrNoSample once and ends.
func TestSamplesStreamNoNear(t *testing.T) {
	d := newLineIndependent(t, 64, 3, 157)
	yields := 0
	var final error
	for _, err := range d.Samples(context.Background(), 1000) {
		yields++
		final = err
	}
	if yields != 1 || !errors.Is(final, ErrNoSample) {
		t.Fatalf("empty-ball stream: %d yields, final err %v; want 1 yield of ErrNoSample", yields, final)
	}
}

// TestSampleContextZeroAllocs extends the zero-allocation contract to the
// context path: steady-state SampleContext with context.Background() must
// allocate nothing on the Section 3 and Section 4 structures.
func TestSampleContextZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	ctx := context.Background()
	d := newLineIndependent(t, 64, 7, 163)
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 2, L: 4}, lineDataset(64), 7, 163)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.SampleContext(ctx, 0, nil)
		s.SampleContext(ctx, 0, nil)
	}
	if n := testing.AllocsPerRun(200, func() { d.SampleContext(ctx, 0, nil) }); n != 0 {
		t.Errorf("Independent.SampleContext allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.SampleContext(ctx, 0, nil) }); n != 0 {
		t.Errorf("Sampler.SampleContext allocs/op = %v, want 0", n)
	}
}

// TestMultiRadiusSampleContext exercises the ladder: cancellation
// propagates and failures map to ErrNoSample.
func TestMultiRadiusSampleContext(t *testing.T) {
	m := newLineMulti(t, 64, []float64{3, 9, 27}, 167)
	id, err := m.SampleContext(context.Background(), 0, nil)
	if err != nil || m.At(0).Point(id) > 3 {
		t.Fatalf("SampleContext = (%v, %v), want a point in the tightest ball", id, err)
	}
	if _, err := m.SampleContext(context.Background(), 10000, nil); !errors.Is(err, ErrNoSample) {
		t.Fatalf("far query err = %v, want ErrNoSample", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SampleContext(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ladder err = %v, want context.Canceled", err)
	}
}

// TestDynamicAndWeightedContext smoke-tests the remaining adapters'
// SampleContext mapping.
func TestDynamicAndWeightedContext(t *testing.T) {
	dyn, err := NewDynamic[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, 9, 171)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lineDataset(32) {
		if _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if id, err := dyn.SampleContext(context.Background(), 0, nil); err != nil || dyn.Point(id) > 9 {
		t.Fatalf("Dynamic.SampleContext = (%v, %v)", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dyn.SampleContext(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Dynamic canceled err = %v", err)
	}

	w, err := NewWeighted[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(32), 9,
		func(float64) float64 { return 1 }, 1, IndependentOptions{}, 173)
	if err != nil {
		t.Fatal(err)
	}
	if id, err := w.SampleContext(context.Background(), 0, nil); err != nil || w.Point(id) > 9 {
		t.Fatalf("Weighted.SampleContext = (%v, %v)", id, err)
	}
	if _, err := w.SampleContext(ctx, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Weighted canceled err = %v", err)
	}
}
