package core

import (
	"runtime"
	"sync"
)

// This file is the pluggable per-query memo subsystem introduced by PR 3.
//
// PR 2 made the rejection loops cheap by memoizing deterministic distance
// verdicts per query, but sized every memo table n: 8 B/point for the
// near-cache and 16 B/point for the Section 5 similarity memo, checked out
// of an unbounded pool. A burst of G concurrent queries therefore pinned
// G·24·n bytes of scratch for the process lifetime — tens of GB at
// n = 10⁷. Two fixes compose here:
//
//   - memoTable: a small backend interface (get/put/reset) with two
//     implementations. The dense backends keep PR 2's epoch-stamped O(n)
//     arrays — O(1) lookups, no hashing, no clearing — and stay the
//     default below MemoOptions.DenseThreshold points. Above it, the
//     compact backend stores the memo in an open-addressing stamped hash
//     table sized to the query's *live* candidate count: a query touches
//     at most O(L·bucket) distinct candidates, so compact scratch is o(n)
//     by construction, at the price of one multiplicative hash per lookup.
//     Memoization only caches deterministic verdicts, so the backend
//     choice can change cost but never any sampler's output distribution
//     (Theorem 2 needs fresh randomness per sample, not fresh distance
//     evaluations).
//   - boundedPool: a capped free list replacing the unbounded sync.Pool.
//     Get beyond the retained set allocates as before, but Put drops
//     queriers past MaxRetainedQueriers and frees oversized scratch past
//     ScratchBudget, so a one-time concurrency burst no longer pins
//     O(burst·n) memory.

// MemoBackend selects the per-query memo implementation.
type MemoBackend int

const (
	// MemoAuto picks MemoDense below MemoOptions.DenseThreshold indexed
	// points and MemoCompact above it.
	MemoAuto MemoBackend = iota
	// MemoDense forces the epoch-stamped O(n) arrays: fastest lookups,
	// 8–16 B/point of scratch per pooled querier.
	MemoDense
	// MemoCompact forces the open-addressing stamped hash table: o(n)
	// scratch per querier, one multiplicative hash per lookup.
	MemoCompact
)

// DefaultDenseThreshold is the point count at which MemoAuto switches from
// the dense arrays to the compact table: up to 2²⁰ points the dense
// near-cache costs ≤ 8 MiB per pooled querier, which the retained-querier
// cap keeps bounded; beyond it the compact table wins on footprint.
const DefaultDenseThreshold = 1 << 20

// DefaultScratchBudget caps the scratch a pooled querier may retain
// (32 MiB — above the largest dense memo the default threshold allows, so
// the budget only trims pathological compact growth and candidate
// buffers).
const DefaultScratchBudget = 32 << 20

// MemoOptions is the memory-discipline knob shared by all pooled query
// paths (Sections 3, 4 and 5). The zero value selects the PR 2 behavior
// below DenseThreshold and the bounded compact behavior above it.
type MemoOptions struct {
	// Backend picks the memo implementation (default MemoAuto).
	Backend MemoBackend
	// DenseThreshold is the indexed-point count above which MemoAuto uses
	// the compact backend. 0 means DefaultDenseThreshold.
	DenseThreshold int
	// MaxRetainedQueriers caps how many per-query scratch structs one
	// index keeps pooled across checkouts; excess queriers from a
	// concurrency burst are garbage-collected instead of pinned. 0 means
	// max(4, 2·GOMAXPROCS). Negative means 0 (retain nothing).
	MaxRetainedQueriers int
	// ScratchBudget is the byte budget one pooled querier may retain
	// (summed across its memo table and candidate buffers); oversized
	// scratch is freed on Put. 0 means DefaultScratchBudget. Negative
	// means unlimited. When the resolved backend is dense, the effective
	// budget is raised to cover the dense arrays — retaining them is the
	// point of the dense backend, and freeing them on every Put would
	// silently replace pooling with a per-query O(n) allocation. Choose
	// MemoCompact to enforce budgets below the dense-array size.
	ScratchBudget int
}

// withDenseFloor raises the scratch budget to cover a dense memo of
// denseBytes (plus headroom for candidate buffers) when the resolved
// backend for n points is dense; see the ScratchBudget doc.
func (o MemoOptions) withDenseFloor(n, denseBytes int) MemoOptions {
	if o.resolveBackend(n) == MemoDense {
		if min := denseBytes + (1 << 20); o.ScratchBudget < min {
			o.ScratchBudget = min
		}
	}
	return o
}

// withDefaults resolves zero fields to their documented defaults.
func (o MemoOptions) withDefaults() MemoOptions {
	if o.DenseThreshold <= 0 {
		o.DenseThreshold = DefaultDenseThreshold
	}
	if o.MaxRetainedQueriers == 0 {
		o.MaxRetainedQueriers = 2 * runtime.GOMAXPROCS(0)
		if o.MaxRetainedQueriers < 4 {
			o.MaxRetainedQueriers = 4
		}
	} else if o.MaxRetainedQueriers < 0 {
		o.MaxRetainedQueriers = 0
	}
	switch {
	case o.ScratchBudget == 0:
		o.ScratchBudget = DefaultScratchBudget
	case o.ScratchBudget < 0:
		o.ScratchBudget = int(^uint(0) >> 1)
	}
	return o
}

// resolveBackend maps MemoAuto to a concrete backend for n indexed points.
func (o MemoOptions) resolveBackend(n int) MemoBackend {
	if o.Backend == MemoAuto {
		if n <= o.DenseThreshold {
			return MemoDense
		}
		return MemoCompact
	}
	return o.Backend
}

// memoTable is the pluggable per-query memo backend: a stamped id → word
// store whose entries live exactly one epoch (one logical query — a
// Sample, or all k loops of one SampleK). Callers encode their verdict in
// the word: the near-cache stores 0/1, the similarity memo stores
// math.Float64bits. reset starts a new epoch in O(1) — previous entries
// become invisible without clearing.
type memoTable interface {
	get(id int32) (val uint64, ok bool)
	put(id int32, val uint64)
	reset()
	// retainedBytes reports the backing-array footprint (for the pool's
	// scratch budget and the footprint gauge).
	retainedBytes() int
	// shrink frees backing storage when retainedBytes exceeds maxBytes;
	// the table stays usable and reallocates lazily.
	shrink(maxBytes int)
}

// newMemoTable builds the backend selected by opts for n points. wordVals
// distinguishes the two dense layouts: false packs the verdict bit into
// the stamp word (8 B/point, the near-cache), true keeps a separate value
// array (16 B/point, the similarity memo). The compact backend stores full
// words either way.
func newMemoTable(opts MemoOptions, n int, wordVals bool) memoTable {
	if opts.resolveBackend(n) == MemoCompact {
		return &compactMemo{}
	}
	if wordVals {
		return &denseWordMemo{n: n}
	}
	return &denseBitMemo{n: n}
}

// denseBitMemo is the PR 2 near-cache layout: words[id] holds
// epoch<<1 | bit, valid iff words[id]>>1 equals the current epoch. The
// array is allocated lazily on first put, so structures that never consult
// the memo (the Section 3 sampler) pay nothing.
type denseBitMemo struct {
	n     int
	words []uint64
	epoch uint64
}

// ensure allocates the backing array on first use.
func (m *denseBitMemo) ensure() []uint64 {
	if m.words == nil {
		m.words = make([]uint64, m.n)
	}
	return m.words
}

func (m *denseBitMemo) get(id int32) (uint64, bool) {
	if m.words == nil {
		return 0, false
	}
	if s := m.words[id]; s>>1 == m.epoch {
		return s & 1, true
	}
	return 0, false
}

func (m *denseBitMemo) put(id int32, val uint64) {
	m.ensure()[id] = m.epoch<<1 | val&1
}

func (m *denseBitMemo) reset() { m.epoch++ }

func (m *denseBitMemo) retainedBytes() int { return 8 * len(m.words) }

func (m *denseBitMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.words = nil
	}
}

// denseWordMemo is the PR 2 similarity-memo layout: stamp[id] == epoch
// means vals[id] holds the memoized word. Allocated lazily on first put.
type denseWordMemo struct {
	n     int
	stamp []uint64
	vals  []uint64
	epoch uint64
}

// ensure allocates the backing arrays on first use.
func (m *denseWordMemo) ensure() {
	if m.stamp == nil {
		m.stamp = make([]uint64, m.n)
		m.vals = make([]uint64, m.n)
	}
}

func (m *denseWordMemo) get(id int32) (uint64, bool) {
	if m.stamp == nil || m.stamp[id] != m.epoch {
		return 0, false
	}
	return m.vals[id], true
}

func (m *denseWordMemo) put(id int32, val uint64) {
	m.ensure()
	m.stamp[id] = m.epoch
	m.vals[id] = val
}

func (m *denseWordMemo) reset() { m.epoch++ }

func (m *denseWordMemo) retainedBytes() int { return 16 * len(m.stamp) }

func (m *denseWordMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.stamp, m.vals = nil, nil
	}
}

// compactMemoMinCap is the seed capacity (slots, power of two) of a
// compact table; 64 slots cover most rejection loops without growth.
const compactMemoMinCap = 64

// compactMemoSlotBytes is the per-slot footprint: 4 B key + 8 B stamp +
// 8 B value.
const compactMemoSlotBytes = 20

// compactMemo is the bounded backend: an open-addressing (linear-probing)
// hash table over ids whose slots are epoch-stamped — a slot is live iff
// its stamp equals the current epoch, so reset invalidates the whole table
// in O(1) with no clearing. Within one epoch no entry is ever deleted, so
// probe chains stay intact. Capacity is a power of two, grown geometrically
// at ¾ load and recycled across checkouts; a query touching C distinct
// candidates retains Θ(C) slots, independent of n.
type compactMemo struct {
	keys   []int32
	stamps []uint64
	vals   []uint64
	mask   uint64
	live   int
	epoch  uint64
}

// memoHash spreads an id over the table (Fibonacci multiplicative hash;
// the mask keeps the low bits, so the constant's high-entropy product is
// shifted down by the caller via mask on a power-of-two capacity).
func memoHash(id int32) uint64 {
	return uint64(uint32(id)) * 0x9e3779b97f4a7c15 >> 13
}

func (m *compactMemo) get(id int32) (uint64, bool) {
	if m.keys == nil {
		return 0, false
	}
	for i := memoHash(id) & m.mask; ; i = (i + 1) & m.mask {
		if m.stamps[i] != m.epoch {
			return 0, false
		}
		if m.keys[i] == id {
			return m.vals[i], true
		}
	}
}

func (m *compactMemo) put(id int32, val uint64) {
	if m.keys == nil || 4*(m.live+1) > 3*len(m.keys) {
		m.grow()
	}
	for i := memoHash(id) & m.mask; ; i = (i + 1) & m.mask {
		if m.stamps[i] != m.epoch {
			m.keys[i] = id
			m.stamps[i] = m.epoch
			m.vals[i] = val
			m.live++
			return
		}
		if m.keys[i] == id {
			m.vals[i] = val
			return
		}
	}
}

// grow doubles the capacity (or seeds it) and reinserts the live entries
// of the current epoch; stale slots are dropped, so the table tracks the
// current query's candidate count rather than its historical maximum.
func (m *compactMemo) grow() {
	newCap := compactMemoMinCap
	if len(m.keys) > 0 {
		newCap = 2 * len(m.keys)
	}
	oldKeys, oldStamps, oldVals := m.keys, m.stamps, m.vals
	m.keys = make([]int32, newCap)
	m.stamps = make([]uint64, newCap)
	m.vals = make([]uint64, newCap)
	m.mask = uint64(newCap - 1)
	m.live = 0
	for i, s := range oldStamps {
		if s == m.epoch {
			m.put(oldKeys[i], oldVals[i])
		}
	}
}

// reset starts a new epoch; the epoch starts at 0 and is bumped before
// first use (every checkout resets), so zeroed slots can never read as
// live.
func (m *compactMemo) reset() {
	m.epoch++
	m.live = 0
}

func (m *compactMemo) retainedBytes() int { return compactMemoSlotBytes * len(m.keys) }

func (m *compactMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.keys, m.stamps, m.vals = nil, nil, nil
		m.mask, m.live = 0, 0
	}
}

// boundedPool is the capped querier free list: a mutex-guarded stack that
// retains at most cap items. Get returns nil when empty (the caller
// allocates); Put beyond the cap drops the item for the garbage collector.
// The lock is held for a few instructions per query — negligible against
// the ms-scale queries it brackets — and, unlike sync.Pool, the retained
// set is inspectable (fold), which backs RetainedScratchBytes and the
// bench footprint gauge.
type boundedPool[T any] struct {
	mu    sync.Mutex
	items []*T
	cap   int
}

// setCap fixes the retention cap (called once at construction).
func (p *boundedPool[T]) setCap(c int) { p.cap = c }

// get pops a retained item, or returns nil when none is available.
func (p *boundedPool[T]) get() *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.items); n > 0 {
		it := p.items[n-1]
		p.items[n-1] = nil
		p.items = p.items[:n-1]
		return it
	}
	return nil
}

// put retains the item unless the cap is reached; it reports whether the
// item was kept.
func (p *boundedPool[T]) put(it *T) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.items) >= p.cap {
		return false
	}
	p.items = append(p.items, it)
	return true
}

// retained returns how many items the pool currently holds.
func (p *boundedPool[T]) retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}

// fold calls fn on every retained item under the pool lock (accounting
// only; fn must not check items out).
func (p *boundedPool[T]) fold(fn func(*T)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, it := range p.items {
		fn(it)
	}
}
