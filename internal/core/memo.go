package core

import (
	"runtime"
	"sync"
)

// This file is the pluggable per-query memo subsystem introduced by PR 3.
//
// PR 2 made the rejection loops cheap by memoizing deterministic distance
// verdicts per query, but sized every memo table n: 8 B/point for the
// near-cache and 16 B/point for the Section 5 similarity memo, checked out
// of an unbounded pool. A burst of G concurrent queries therefore pinned
// G·24·n bytes of scratch for the process lifetime — tens of GB at
// n = 10⁷. Two fixes compose here:
//
//   - memoTable: a small backend interface (get/put/reset) with two
//     implementations. The dense backends keep PR 2's epoch-stamped O(n)
//     arrays — O(1) lookups, no hashing, no clearing — and stay the
//     default below MemoOptions.DenseThreshold points. Above it, the
//     compact backend stores the memo in an open-addressing stamped hash
//     table sized to the query's *live* candidate count: a query touches
//     at most O(L·bucket) distinct candidates, so compact scratch is o(n)
//     by construction, at the price of one multiplicative hash per lookup.
//     Memoization only caches deterministic verdicts, so the backend
//     choice can change cost but never any sampler's output distribution
//     (Theorem 2 needs fresh randomness per sample, not fresh distance
//     evaluations).
//   - BoundedPool: a capped free list replacing the unbounded sync.Pool.
//     Get beyond the retained set allocates as before, but Put drops
//     queriers past MaxRetainedQueriers and frees oversized scratch past
//     ScratchBudget, so a one-time concurrency burst no longer pins
//     O(burst·n) memory.

// MemoBackend selects the per-query memo implementation.
type MemoBackend int

const (
	// MemoAuto picks MemoDense below MemoOptions.DenseThreshold indexed
	// points and MemoCompact above it.
	MemoAuto MemoBackend = iota
	// MemoDense forces the epoch-stamped O(n) arrays: fastest lookups,
	// 8–16 B/point of scratch per pooled querier.
	MemoDense
	// MemoCompact forces the open-addressing stamped hash table: o(n)
	// scratch per querier, one multiplicative hash per lookup.
	MemoCompact
)

// DefaultDenseThreshold is the point count at which MemoAuto switches from
// the dense arrays to the compact table: up to 2²⁰ points the dense
// near-cache costs ≤ 8 MiB per pooled querier, which the retained-querier
// cap keeps bounded; beyond it the compact table wins on footprint.
const DefaultDenseThreshold = 1 << 20

// DefaultScratchBudget caps the scratch a pooled querier may retain
// (32 MiB — above the largest dense memo the default threshold allows, so
// the budget only trims pathological compact growth and candidate
// buffers).
const DefaultScratchBudget = 32 << 20

// MemoOptions is the memory-discipline knob shared by all pooled query
// paths (Sections 3, 4 and 5). The zero value selects the PR 2 behavior
// below DenseThreshold and the bounded compact behavior above it.
type MemoOptions struct {
	// Backend picks the memo implementation (default MemoAuto).
	Backend MemoBackend
	// DenseThreshold is the indexed-point count above which MemoAuto uses
	// the compact backend. 0 means DefaultDenseThreshold.
	DenseThreshold int
	// MaxRetainedQueriers caps how many per-query scratch structs one
	// index keeps pooled across checkouts; excess queriers from a
	// concurrency burst are garbage-collected instead of pinned. 0 means
	// max(4, 2·GOMAXPROCS). Negative means 0 (retain nothing).
	MaxRetainedQueriers int
	// ScratchBudget is the byte budget one pooled querier may retain
	// (summed across its memo table and candidate buffers); oversized
	// scratch is freed on Put. 0 means DefaultScratchBudget. Negative
	// means unlimited. When the resolved backend is dense, the effective
	// budget is raised to cover the dense arrays — retaining them is the
	// point of the dense backend, and freeing them on every Put would
	// silently replace pooling with a per-query O(n) allocation. Choose
	// MemoCompact to enforce budgets below the dense-array size.
	ScratchBudget int
}

// withDenseFloor raises the scratch budget to cover a dense memo of
// denseBytes (plus headroom for candidate buffers) when the resolved
// backend for n points is dense; see the ScratchBudget doc.
func (o MemoOptions) withDenseFloor(n, denseBytes int) MemoOptions {
	if o.resolveBackend(n) == MemoDense {
		if min := denseBytes + (1 << 20); o.ScratchBudget < min {
			o.ScratchBudget = min
		}
	}
	return o
}

// Resolved returns o with zero fields resolved to their documented
// defaults — the knob values a structure built from o actually runs
// with. The sharded sampler sizes its session pool from the resolved
// MaxRetainedQueriers, so one retention knob governs both pooling
// layers.
func (o MemoOptions) Resolved() MemoOptions { return o.withDefaults() }

// withDefaults resolves zero fields to their documented defaults.
func (o MemoOptions) withDefaults() MemoOptions {
	if o.DenseThreshold <= 0 {
		o.DenseThreshold = DefaultDenseThreshold
	}
	if o.MaxRetainedQueriers == 0 {
		o.MaxRetainedQueriers = 2 * runtime.GOMAXPROCS(0)
		if o.MaxRetainedQueriers < 4 {
			o.MaxRetainedQueriers = 4
		}
	} else if o.MaxRetainedQueriers < 0 {
		o.MaxRetainedQueriers = 0
	}
	switch {
	case o.ScratchBudget == 0:
		o.ScratchBudget = DefaultScratchBudget
	case o.ScratchBudget < 0:
		o.ScratchBudget = int(^uint(0) >> 1)
	}
	return o
}

// resolveBackend maps MemoAuto to a concrete backend for n indexed points.
func (o MemoOptions) resolveBackend(n int) MemoBackend {
	if o.Backend == MemoAuto {
		if n <= o.DenseThreshold {
			return MemoDense
		}
		return MemoCompact
	}
	return o.Backend
}

// memoTable is the pluggable per-query memo backend: a stamped id → word
// store whose entries live exactly one epoch (one logical query — a
// Sample, or all k loops of one SampleK). Callers encode their verdict in
// the word: the near-cache stores 0/1, the similarity memo stores
// math.Float64bits. reset starts a new epoch in O(1) — previous entries
// become invisible without clearing.
type memoTable interface {
	get(id int32) (val uint64, ok bool)
	put(id int32, val uint64)
	reset()
	// retainedBytes reports the backing-array footprint (for the pool's
	// scratch budget and the footprint gauge).
	retainedBytes() int
	// shrink frees backing storage when retainedBytes exceeds maxBytes;
	// the table stays usable and reallocates lazily.
	shrink(maxBytes int)
}

// newMemoTable builds the backend selected by opts for n points. wordVals
// distinguishes the two value layouts: false packs the verdict bit into
// the stamp word (8 B/point dense, 8 B/slot compact — the near-cache),
// true keeps a separate value array (16 B/point dense, 16 B/slot compact
// — the similarity memo).
func newMemoTable(opts MemoOptions, n int, wordVals bool) memoTable {
	if opts.resolveBackend(n) == MemoCompact {
		return &compactMemo{wordVals: wordVals}
	}
	if wordVals {
		return &denseWordMemo{n: n}
	}
	return &denseBitMemo{n: n}
}

// denseBitMemo is the PR 2 near-cache layout: words[id] holds
// epoch<<1 | bit, valid iff words[id]>>1 equals the current epoch. The
// array is allocated lazily on first put, so structures that never consult
// the memo (the Section 3 sampler) pay nothing.
type denseBitMemo struct {
	n     int
	words []uint64
	epoch uint64
}

// ensure allocates the backing array on first use.
//
//fairnn:noalloc
func (m *denseBitMemo) ensure() []uint64 {
	if m.words == nil {
		m.words = make([]uint64, m.n)
	}
	return m.words
}

func (m *denseBitMemo) get(id int32) (uint64, bool) {
	if m.words == nil {
		return 0, false
	}
	if s := m.words[id]; s>>1 == m.epoch {
		return s & 1, true
	}
	return 0, false
}

func (m *denseBitMemo) put(id int32, val uint64) {
	m.ensure()[id] = m.epoch<<1 | val&1
}

func (m *denseBitMemo) reset() { m.epoch++ }

func (m *denseBitMemo) retainedBytes() int { return 8 * len(m.words) }

func (m *denseBitMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.words = nil
	}
}

// denseWordMemo is the PR 2 similarity-memo layout: stamp[id] == epoch
// means vals[id] holds the memoized word. Allocated lazily on first put.
type denseWordMemo struct {
	n     int
	stamp []uint64
	vals  []uint64
	epoch uint64
}

// ensure allocates the backing arrays on first use.
//
//fairnn:noalloc
func (m *denseWordMemo) ensure() {
	if m.stamp == nil {
		m.stamp = make([]uint64, m.n)
		m.vals = make([]uint64, m.n)
	}
}

func (m *denseWordMemo) get(id int32) (uint64, bool) {
	if m.stamp == nil || m.stamp[id] != m.epoch {
		return 0, false
	}
	return m.vals[id], true
}

func (m *denseWordMemo) put(id int32, val uint64) {
	m.ensure()
	m.stamp[id] = m.epoch
	m.vals[id] = val
}

func (m *denseWordMemo) reset() { m.epoch++ }

func (m *denseWordMemo) retainedBytes() int { return 16 * len(m.stamp) }

func (m *denseWordMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.stamp, m.vals = nil, nil
	}
}

// compactMemoMinCap is the seed capacity (slots, power of two) of a
// compact table; 64 slots cover most rejection loops without growth.
const compactMemoMinCap = 64

// Per-slot footprint after packing: one uint64 holds key, stamp and the
// verdict bit, so the bit-mode table (the near-cache) is 8 B/slot and the
// word-mode table (the similarity memo) adds an 8 B value array for
// 16 B/slot — down from the 20 B/slot of the unpacked
// (int32 key + uint64 stamp + uint64 value) layout.
const (
	compactMemoBitSlotBytes  = 8
	compactMemoWordSlotBytes = 16
)

// compactMemoEpochMax bounds the packed 31-bit stamp; reset clears the
// table and restarts at 1 when the epoch would reach it, so a wrapped
// stamp can never resurrect a stale entry.
const compactMemoEpochMax = 1 << 31

// compactMemo is the bounded backend: an open-addressing (linear-probing)
// hash table over ids whose slots are epoch-stamped — a slot is live iff
// its stamp equals the current epoch, so reset invalidates the whole table
// in O(1) with no clearing. Within one epoch no entry is ever deleted, so
// probe chains stay intact. Capacity is a power of two, grown geometrically
// at ¾ load and recycled across checkouts; a query touching C distinct
// candidates retains Θ(C) slots, independent of n.
//
// Each slot packs (key, stamp) — and, in bit mode, the verdict — into one
// word:
//
//	stamp(31 bits) << 33 | verdict(1 bit) << 32 | key(32 bits)
//
// In bit mode (the near-cache, wordVals=false) that one word is the whole
// slot; in word mode (the similarity memo, wordVals=true) a parallel vals
// array carries the full 64-bit value and the packed verdict bit is
// unused. A slot word of 0 is empty: the epoch lives in [1, 2^31) (reset
// bumps it before first use and wraps it by clearing), so stamp 0 is
// never current.
type compactMemo struct {
	slots    []uint64
	vals     []uint64 // nil in bit mode
	wordVals bool
	mask     uint64
	live     int
	epoch    uint64
}

// memoHash spreads an id over the table (Fibonacci multiplicative hash;
// the mask keeps the low bits, so the constant's high-entropy product is
// shifted down by the caller via mask on a power-of-two capacity).
func memoHash(id int32) uint64 {
	return uint64(uint32(id)) * 0x9e3779b97f4a7c15 >> 13
}

func (m *compactMemo) get(id int32) (uint64, bool) {
	if m.slots == nil {
		return 0, false
	}
	key := uint64(uint32(id))
	for i := memoHash(id) & m.mask; ; i = (i + 1) & m.mask {
		s := m.slots[i]
		if s>>33 != m.epoch {
			return 0, false
		}
		if s&0xffffffff == key {
			if m.wordVals {
				return m.vals[i], true
			}
			return s >> 32 & 1, true
		}
	}
}

func (m *compactMemo) put(id int32, val uint64) {
	if m.slots == nil || 4*(m.live+1) > 3*len(m.slots) {
		m.grow()
	}
	key := uint64(uint32(id))
	packed := m.epoch<<33 | (val&1)<<32 | key
	for i := memoHash(id) & m.mask; ; i = (i + 1) & m.mask {
		s := m.slots[i]
		if s>>33 != m.epoch {
			m.slots[i] = packed
			if m.wordVals {
				m.vals[i] = val
			}
			m.live++
			return
		}
		if s&0xffffffff == key {
			m.slots[i] = packed
			if m.wordVals {
				m.vals[i] = val
			}
			return
		}
	}
}

// grow doubles the capacity (or seeds it) and reinserts the live entries
// of the current epoch; stale slots are dropped, so the table tracks the
// current query's candidate count rather than its historical maximum.
func (m *compactMemo) grow() {
	newCap := compactMemoMinCap
	if len(m.slots) > 0 {
		newCap = 2 * len(m.slots)
	}
	oldSlots, oldVals := m.slots, m.vals
	m.slots = make([]uint64, newCap)
	if m.wordVals {
		m.vals = make([]uint64, newCap)
	}
	m.mask = uint64(newCap - 1)
	m.live = 0
	for i, s := range oldSlots {
		if s>>33 == m.epoch {
			val := s >> 32 & 1
			if m.wordVals {
				val = oldVals[i]
			}
			m.put(int32(uint32(s)), val)
		}
	}
}

// reset starts a new epoch; the epoch starts at 0 and is bumped before
// first use (every checkout resets), so zeroed slots can never read as
// live. The packed stamp is 31 bits: when the epoch would reach the
// packing limit the table is cleared outright and the epoch restarts at 1
// — one O(capacity) clear per 2³¹ checkouts, never a stale hit.
func (m *compactMemo) reset() {
	m.epoch++
	if m.epoch >= compactMemoEpochMax {
		clear(m.slots)
		m.epoch = 1
	}
	m.live = 0
}

func (m *compactMemo) retainedBytes() int { return 8 * (len(m.slots) + len(m.vals)) }

func (m *compactMemo) shrink(maxBytes int) {
	if m.retainedBytes() > maxBytes {
		m.slots, m.vals = nil, nil
		m.mask, m.live = 0, 0
	}
}

// BoundedPool is the capped querier free list: a mutex-guarded stack that
// retains at most cap items. Get returns nil when empty (the caller
// allocates); Put beyond the cap drops the item for the garbage collector.
// The lock is held for a few instructions per query — negligible against
// the ms-scale queries it brackets — and, unlike sync.Pool, the retained
// set is inspectable (fold), which backs RetainedScratchBytes and the
// bench footprint gauge.
type BoundedPool[T any] struct {
	mu    sync.Mutex
	items []*T
	cap   int
}

// setCap fixes the retention cap (called once at construction).
func (p *BoundedPool[T]) SetCap(c int) { p.cap = c }

// get pops a retained item, or returns nil when none is available.
//
//fairnn:noalloc
func (p *BoundedPool[T]) Get() *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.items); n > 0 {
		it := p.items[n-1]
		p.items[n-1] = nil
		p.items = p.items[:n-1]
		return it
	}
	return nil
}

// put retains the item unless the cap is reached; it reports whether the
// item was kept.
//
//fairnn:noalloc
func (p *BoundedPool[T]) Put(it *T) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.items) >= p.cap {
		return false
	}
	p.items = append(p.items, it)
	return true
}

// retained returns how many items the pool currently holds.
func (p *BoundedPool[T]) Retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}

// fold calls fn on every retained item under the pool lock (accounting
// only; fn must not check items out).
func (p *BoundedPool[T]) Fold(fn func(*T)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, it := range p.items {
		fn(it)
	}
}
