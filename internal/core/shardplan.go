package core

import (
	"math"

	"fairnn/internal/rng"
)

// This file is the shard-support surface of the Section 4 structure: the
// hooks internal/shard composes into a uniformity-preserving fan-out
// across partitioned indexes. The sharded sampler cannot simply pick a
// shard uniformly and sample inside it — shards hold different numbers of
// near neighbors of q, so that two-stage draw is biased toward points in
// sparse shards. The fix is the same weighted-choice-plus-rejection
// machinery the paper uses to sample uniformly from a union of buckets:
// treat the union of all shards' rank segments as one segment pool, pick
// a segment uniformly across the pool (equivalently: pick shard j with
// probability proportional to its segment count k_j — itself proportional
// to the per-query near-count estimate ŝ_j — then a uniform segment
// inside j), accept the segment with probability λ_q,h/λ, and return a
// uniform near point of the accepted segment. Per round the probability
// of outputting a specific near point x of shard j is
//
//	(k_j/Σk) · (1/k_j) · (λ_q,h/λ) · (1/λ_q,h) = 1/(λ·Σk),
//
// independent of j, of the segment, and of the segment counts — so every
// accepted draw is exactly uniform over the union ball and the estimate
// error in ŝ_j (hence in k_j) is fully corrected by the rejection step,
// for any k_j evolution. The only cross-shard requirement is a shared λ
// (and a shared Σ halving budget), which the sharded builder pins by
// resolving IndependentOptions once against the global point count.
//
// A ShardPlan is the per-shard slice of one logical sharded query: a
// checked-out pooled querier holding the shard's resolved buckets,
// sketch estimate, near-cache epoch and merged-cursor state. All
// acceptance randomness is drawn from the caller's single stream — the
// shard's own per-query RNG is never consulted — so a sharded query is
// deterministic per (structure, seed, query counter) no matter how the
// per-shard resolve work is scheduled across workers.

// ShardPlan is an armed per-shard query plan (see the file comment). The
// zero value is inert; arm it with Independent.BeginShardPlan and release
// it with Close. A plan is single-goroutine state, but distinct plans of
// the same sharded query may be armed concurrently (each holds its own
// pooled querier).
type ShardPlan[P any] struct {
	d   *Independent[P]
	qr  *querier
	q   P
	est float64
	k0  int // initial segment count (0 when the shard recalls nothing)
	k   int // current segment count, halved on Σ-budget exhaustion
	// last is the near-id report of the most recent SegmentNear, aliasing
	// the querier's candidate buffer (valid until the next SegmentNear).
	last []int32
	// ext is non-nil for an externally-armed plan (a client-side mirror
	// of a remote shard's plan): the handle that releases the remote
	// state on Close. Mutually exclusive with qr.
	ext ShardPlanExternal
}

// BeginShardPlan resolves q against d — one single-pass signature, L
// bucket lookups and the merged count-distinct estimate ŝ — and arms p
// for segment draws. It checks a pooled querier out of d, so every
// armed plan MUST be released with Close. The near-cache epoch spans the
// plan's whole lifetime: all draws of one logical sharded query share one
// epoch, exactly like the loops of an unsharded SampleK.
func (d *Independent[P]) BeginShardPlan(p *ShardPlan[P], q P, st *QueryStats) {
	p.d = d
	p.q = q
	p.qr = d.base.getQuerier()
	d.base.resolve(q, p.qr, st)
	p.est = d.estimateCandidates(p.qr, st)
	p.k0 = 0
	if p.est > 0 {
		k := nextPow2(int(math.Ceil(2 * p.est)))
		if k > d.maxK {
			k = d.maxK
		}
		p.k0 = k
	}
	p.k = p.k0
	p.last = nil
}

// ResetDraw rearms the plan for a fresh draw: the segment count restarts
// from its estimate-derived initial value, exactly as each loop of an
// unsharded SampleK recomputes k from ŝ.
//
//fairnn:noalloc
func (p *ShardPlan[P]) ResetDraw() { p.k = p.k0 }

// Segments returns the plan's current segment count k_j — the shard's
// weight in the combined segment pool (0 when the shard is exhausted or
// recalled nothing).
//
//fairnn:noalloc
func (p *ShardPlan[P]) Segments() int { return p.k }

// Estimate returns the shard's per-query near-count estimate ŝ_j.
//
//fairnn:noalloc
func (p *ShardPlan[P]) Estimate() float64 { return p.est }

// Halve halves the segment count (the Σ-budget correction). The sharded
// loop floors a live shard at k=1 until every shard reaches the all-ones
// floor — per-round uniformity over the union needs k_j ≥ 1 in every
// shard — and only then halves all shards to zero together, ending the
// draw.
//
//fairnn:noalloc
func (p *ShardPlan[P]) Halve() { p.k /= 2 }

// SegmentNear reports the number of distinct near points in segment h
// (0 ≤ h < Segments()) of the shard's rank permutation, retaining the ids
// for Pick. It charges the same bucket/point/score counters as the
// unsharded rejection round and shares the plan's near-cache and adaptive
// merged cursor across rounds and draws.
func (p *ShardPlan[P]) SegmentNear(h int, st *QueryStats) int {
	n := int64(p.d.base.N())
	k := int64(p.k)
	lo := int32(int64(h) * n / k)
	hi := int32(int64(h+1) * n / k)
	p.last = p.d.segmentNear(p.q, p.qr, lo, hi, st)
	return len(p.last)
}

// Pick returns a uniform near id (shard-local) from the last SegmentNear
// report, drawing from r. It must follow a SegmentNear that returned > 0.
func (p *ShardPlan[P]) Pick(r *rng.Source) int32 {
	return p.last[r.Intn(len(p.last))]
}

// SegmentNearAt is SegmentNear with an explicit segment count: it pins
// the plan's current k to the caller's value before computing the
// segment bounds. The serving layer needs it because the halving
// schedule lives on the *client* of a remote plan — each segment
// request carries the client's current k, and the server must compute
// lo/hi from exactly that value to report the same segment the
// in-process plan would.
func (p *ShardPlan[P]) SegmentNearAt(h, k int, st *QueryStats) int {
	p.k = k
	return p.SegmentNear(h, st)
}

// LastLen returns the size of the last SegmentNear report (0 before any
// report).
//
//fairnn:noalloc
func (p *ShardPlan[P]) LastLen() int { return len(p.last) }

// PickAt returns the near id at index i of the last SegmentNear report.
// It is Pick with the randomness externalized: a remote client draws
// i from its own query stream (spending exactly the Intn draw Pick
// would) and sends the index, so the server side holds no RNG state and
// remote streams stay bit-identical to in-process ones.
//
//fairnn:noalloc
func (p *ShardPlan[P]) PickAt(i int) int32 { return p.last[i] }

// ShardPlanExternal is the remote half of an externally-armed plan: the
// client-side handle that releases the server-side state. Release is
// best-effort and must be safe to call exactly once per arm.
type ShardPlanExternal interface {
	// Release frees the remote plan state (one-way notify; errors are
	// the connection teardown's problem).
	Release()
}

// ArmExternal arms p as a client-side mirror of a remotely-armed plan:
// est and k0 are the server's reported estimate state, and ext is the
// handle that releases the remote plan when p closes. The mirror owns
// no querier and no candidate state — ResetDraw, Segments, Estimate,
// and Halve are pure arithmetic on (est, k0, k) and work unchanged,
// which is the whole reason the sharded draw loop needs no remote
// special-casing.
//
//fairnn:noalloc
func (p *ShardPlan[P]) ArmExternal(ext ShardPlanExternal, est float64, k0 int) {
	p.d = nil
	p.qr = nil
	p.last = nil
	p.ext = ext
	p.est = est
	p.k0 = k0
	p.k = k0
}

// External returns the handle installed by ArmExternal, or nil for an
// in-process plan.
//
//fairnn:noalloc
func (p *ShardPlan[P]) External() ShardPlanExternal { return p.ext }

// Close releases the plan's pooled querier and drops the query point —
// plans live inside pooled sessions, and a retained q would pin the
// caller's (possibly large) query slice between queries, invisible to
// RetainedScratchBytes. Safe to call on a zero or already-closed plan.
//
//fairnn:noalloc
func (p *ShardPlan[P]) Close() {
	if p.ext != nil {
		p.ext.Release()
		p.ext = nil
		p.last = nil
		var zero P
		p.q = zero
	}
	if p.qr != nil {
		p.d.base.putQuerier(p.qr)
		p.qr = nil
		p.last = nil
		var zero P
		p.q = zero
	}
}

// Abort releases the plan's querier like Close and then resets the plan
// to its inert zero state (Segments() == 0, Estimate() == 0). Close
// alone keeps the armed counts for pooled reuse; Abort is for arming
// failures — a pooled plan whose (re-)arming panicked, errored, or timed
// out partway may still hold the *previous* query's estimate and segment
// count, and the sharded resilience layer must not let that stale weight
// re-enter the union pool as if it described the current query.
//
//fairnn:noalloc
func (p *ShardPlan[P]) Abort() {
	p.Close()
	*p = ShardPlan[P]{}
}

// QueryStreamSeed exposes the seed of the structure's per-query
// randomness streams. The sharded sampler derives its own single query
// stream from shard 0's value, so a one-shard sharded sampler replays the
// exact per-query streams of the unsharded structure it wraps — the
// S=1 bit-compatibility contract.
func (d *Independent[P]) QueryStreamSeed() uint64 { return d.base.qseed }

// Resolved returns o with every zero field resolved to its documented
// default for n indexed points. The sharded builder resolves once against
// the global point count so all shards share one λ and one Σ budget —
// uniformity across the union needs the acceptance test to be identical
// in every shard.
func (o IndependentOptions) Resolved(n int) IndependentOptions { return o.withDefaults(n) }
