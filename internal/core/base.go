package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fairnn/internal/lsh"
	"fairnn/internal/rank"
	"fairnn/internal/rng"
	"fairnn/internal/sketch"
)

// rankedTable is one LSH table whose buckets are kept sorted by rank — the
// shared substrate of the Section 3 and Section 4 data structures.
type rankedTable struct {
	buckets map[uint64]*rank.Bucket
}

// rankedBase holds everything the rank-permutation data structures share:
// the indexed points, the space, the batched LSH signer covering g_1..g_L,
// the rank assignment and the rank-sorted buckets. After construction the
// base is read-only (except for the rank swaps of Appendix A, which are the
// caller's concurrency responsibility) and safe for concurrent queries:
// per-query mutable state lives in pooled queriers and per-query RNG
// streams are split from the seed via an atomic query counter.
type rankedBase[P any] struct {
	space  Space[P]
	points []P
	radius float64
	params lsh.Params
	signer *lsh.Signer[P]
	tables []rankedTable
	asg    *rank.Assignment

	qseed uint64
	qctr  atomic.Uint64
	pool  sync.Pool // *querier
}

// querier is the reusable per-query scratch: the L·K raw signature, the L
// bucket keys and bucket pointers, a candidate buffer, the k-way-merge
// cursors, an optional count-distinct counter (Section 4), and a dedicated
// RNG stream reseeded per query. Steady-state queries touch only this
// struct and therefore allocate nothing.
type querier struct {
	sig     []uint64
	keys    []uint64
	keys2   []uint64
	buckets []*rank.Bucket
	cand    []int32
	cursors []bucketCursor
	counter sketch.Counter
	rng     rng.Source
}

func newRankedBase[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, r *rng.Source) (*rankedBase[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	if space.Score == nil {
		return nil, errors.New("core: space has nil Score")
	}
	b := &rankedBase[P]{
		space:  space,
		points: points,
		radius: radius,
		params: params,
	}
	// Draw order matters for seed-compatibility: the rank permutation comes
	// first (as in the original per-closure construction), then the hash
	// functions, then the per-query stream seed.
	b.asg = rank.NewAssignment(len(points), r)
	b.signer = lsh.NewSigner(family, params.L*params.K, r)
	b.qseed = r.Uint64()

	n := len(points)
	L, K := params.L, params.K
	// Pass 1 (parallel over points): one single-pass signature per point,
	// reduced to its L bucket keys. This replaces n·L·K full-point scans
	// with n scans.
	allKeys := make([]uint64, n*L)
	parallelRange(n, func(lo, hi int) {
		sig := make([]uint64, L*K)
		for p := lo; p < hi; p++ {
			b.signer.Sign(points[p], sig)
			lsh.CombineKeys(sig, K, allKeys[p*L:(p+1)*L])
		}
	})
	// Pass 2 (parallel over tables): group ids by key and sort each bucket
	// by rank. Tables are independent, so this parallelizes cleanly.
	b.tables = make([]rankedTable, L)
	parallelRange(L, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			groups := make(map[uint64][]int32)
			for p := 0; p < n; p++ {
				key := allKeys[p*L+i]
				groups[key] = append(groups[key], int32(p))
			}
			buckets := make(map[uint64]*rank.Bucket, len(groups))
			for key, ids := range groups {
				buckets[key] = rank.NewBucket(ids, b.asg)
			}
			b.tables[i] = rankedTable{buckets: buckets}
		}
	})
	return b, nil
}

// parallelRange splits [0, n) into contiguous chunks executed by up to
// GOMAXPROCS workers. fn must be safe to call concurrently on disjoint
// ranges. Small inputs run inline.
func parallelRange(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// getQuerier checks a querier out of the pool (allocating buffers only on
// first use) and reseeds its RNG with a fresh per-query stream derived from
// the atomic query counter — concurrent queries therefore consume disjoint,
// deterministic randomness.
func (b *rankedBase[P]) getQuerier() *querier {
	qr, _ := b.pool.Get().(*querier)
	if qr == nil {
		qr = &querier{
			sig:     make([]uint64, b.params.L*b.params.K),
			keys:    make([]uint64, b.params.L),
			keys2:   make([]uint64, b.params.L),
			buckets: make([]*rank.Bucket, b.params.L),
			cand:    make([]int32, 0, 64),
		}
	}
	qr.rng.Seed(b.qseed ^ rng.Mix64(b.qctr.Add(1)))
	return qr
}

func (b *rankedBase[P]) putQuerier(qr *querier) { b.pool.Put(qr) }

// resolve hashes q once — one single-pass signature reduced to L bucket
// keys — and fills qr.keys and qr.buckets, charging one bucket lookup per
// table. Query paths that probe the same buckets many times (the Section 4
// rejection loop) or need the keys again (sketch lookup, Appendix A swaps)
// read them from the querier instead of re-hashing.
func (b *rankedBase[P]) resolve(q P, qr *querier, st *QueryStats) {
	b.signer.Sign(q, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, qr.keys)
	for i := range qr.buckets {
		st.bucket()
		qr.buckets[i] = b.tables[i].buckets[qr.keys[i]]
	}
}

// keysInto writes the L bucket keys of p into keys without touching
// qr.keys (used when two points' keys are needed at once).
func (b *rankedBase[P]) keysInto(p P, qr *querier, keys []uint64) {
	b.signer.Sign(p, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, keys)
}

// N returns the number of indexed points.
func (b *rankedBase[P]) N() int { return len(b.points) }

// Radius returns the query radius/similarity threshold r.
func (b *rankedBase[P]) Radius() float64 { return b.radius }

// Params returns the LSH parameters in use.
func (b *rankedBase[P]) Params() lsh.Params { return b.params }

// Point returns the indexed point with the given id.
func (b *rankedBase[P]) Point(id int32) P { return b.points[id] }

// near reports whether point id is within the radius of q, charging one
// score evaluation to st.
func (b *rankedBase[P]) near(q P, id int32, st *QueryStats) bool {
	st.score()
	return b.space.Near(b.space.Score(q, b.points[id]), b.radius)
}

// TotalBucketEntries returns L·n, the table space in point references.
func (b *rankedBase[P]) TotalBucketEntries() int { return b.params.L * len(b.points) }
