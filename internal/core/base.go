package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fairnn/internal/lsh"
	"fairnn/internal/rank"
	"fairnn/internal/rng"
	"fairnn/internal/sketch"
)

// rankedTable is one LSH table whose buckets are kept sorted by rank — the
// shared substrate of the Section 3 and Section 4 data structures.
type rankedTable struct {
	buckets map[uint64]*rank.Bucket
}

// rankedBase holds everything the rank-permutation data structures share:
// the indexed points, the space, the batched LSH signer covering g_1..g_L,
// the rank assignment and the rank-sorted buckets. After construction the
// base is read-only (except for the rank swaps of Appendix A, which are the
// caller's concurrency responsibility) and safe for concurrent queries:
// per-query mutable state lives in pooled queriers and per-query RNG
// streams are split from the seed via an atomic query counter.
type rankedBase[P any] struct {
	space  Space[P]
	points []P
	radius float64
	params lsh.Params
	signer *lsh.Signer[P]
	tables []rankedTable
	asg    *rank.Assignment
	// nearFn is the resolved near predicate of the space at the build
	// radius; Distance spaces with a ScoreSq kernel compare squared
	// scores against r², skipping one math.Sqrt per candidate.
	nearFn func(a, b P) bool

	qseed uint64
	qctr  atomic.Uint64
	pool  sync.Pool // *querier
}

// querier is the reusable per-query scratch: the L·K raw signature, the L
// bucket keys and bucket pointers, a candidate buffer, the k-way-merge
// heap, an optional count-distinct counter (Section 4), and a dedicated
// RNG stream reseeded per query. Steady-state queries touch only this
// struct and therefore allocate nothing.
//
// Two memo structures make the Section 4 rejection loop cheap to repeat:
//
//   - near-cache: nearState[id] holds epoch<<1 | nearBit. The epoch is
//     bumped once per checkout (one logical Sample or SampleK), so an
//     entry is valid iff nearState[id]>>1 == epoch; anything else reads
//     as "unknown" without clearing the table. Each distinct candidate
//     is therefore distance-scored at most once per Sample and at most
//     once across an entire SampleK, and stale entries from earlier
//     queries can never leak into the current one. The table is sized n
//     (8 bytes per indexed point), a deliberate space-for-time trade:
//     steady-state scratch memory is O(concurrent queriers · n), bought
//     back by O(1) lookups with no hashing and no per-query clearing.
//   - merged cursor: mergedIDs/mergedRanks hold the deduplicated k-way
//     merge of all L resolved buckets, in ascending rank order. It is
//     materialized lazily — only once the rejection loop's cumulative
//     range-report work (rangeWork) exceeds the one-time merge cost
//     (mergeCost ≈ total bucket entries), so short queries keep the
//     cheap per-bucket path. resolve() invalidates it.
type querier struct {
	sig     []uint64
	keys    []uint64
	keys2   []uint64
	buckets []*rank.Bucket
	cand    []int32
	merger  rank.Merger
	counter sketch.Counter
	rng     rng.Source

	// near-cache (epoch-stamped tri-state: unknown / near / far).
	epoch     uint64
	nearState []uint64

	// merged candidate cursor + adaptive-merge accounting.
	mergedIDs   []int32
	mergedRanks []int32
	isMerged    bool
	rangeWork   int
	mergeCost   int
}

func newRankedBase[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, r *rng.Source) (*rankedBase[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	if space.Score == nil {
		return nil, errors.New("core: space has nil Score")
	}
	b := &rankedBase[P]{
		space:  space,
		points: points,
		radius: radius,
		params: params,
		nearFn: space.Nearness(radius),
	}
	// Draw order matters for seed-compatibility: the rank permutation comes
	// first (as in the original per-closure construction), then the hash
	// functions, then the per-query stream seed.
	b.asg = rank.NewAssignment(len(points), r)
	b.signer = lsh.NewSigner(family, params.L*params.K, r)
	b.qseed = r.Uint64()

	n := len(points)
	L, K := params.L, params.K
	// Pass 1 (parallel over points): one single-pass signature per point,
	// reduced to its L bucket keys. This replaces n·L·K full-point scans
	// with n scans.
	allKeys := make([]uint64, n*L)
	parallelRange(n, func(lo, hi int) {
		sig := make([]uint64, L*K)
		for p := lo; p < hi; p++ {
			b.signer.Sign(points[p], sig)
			lsh.CombineKeys(sig, K, allKeys[p*L:(p+1)*L])
		}
	})
	// Pass 2 (parallel over tables): group ids by key and sort each bucket
	// by rank. Tables are independent, so this parallelizes cleanly.
	b.tables = make([]rankedTable, L)
	parallelRange(L, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			groups := make(map[uint64][]int32)
			for p := 0; p < n; p++ {
				key := allKeys[p*L+i]
				groups[key] = append(groups[key], int32(p))
			}
			buckets := make(map[uint64]*rank.Bucket, len(groups))
			for key, ids := range groups {
				buckets[key] = rank.NewBucket(ids, b.asg)
			}
			b.tables[i] = rankedTable{buckets: buckets}
		}
	})
	return b, nil
}

// parallelRange splits [0, n) into contiguous chunks executed by up to
// GOMAXPROCS workers. fn must be safe to call concurrently on disjoint
// ranges. Small inputs run inline.
func parallelRange(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// getQuerier checks a querier out of the pool (allocating buffers only on
// first use) and reseeds its RNG with a fresh per-query stream derived from
// the atomic query counter — concurrent queries therefore consume disjoint,
// deterministic randomness. Each checkout advances the near-cache epoch,
// so memoized near/far verdicts are scoped to exactly one logical query
// (a Sample, or all k loops of one SampleK).
func (b *rankedBase[P]) getQuerier() *querier {
	qr, _ := b.pool.Get().(*querier)
	if qr == nil {
		qr = &querier{
			sig:       make([]uint64, b.params.L*b.params.K),
			keys:      make([]uint64, b.params.L),
			keys2:     make([]uint64, b.params.L),
			buckets:   make([]*rank.Bucket, b.params.L),
			cand:      make([]int32, 0, 64),
			nearState: make([]uint64, len(b.points)),
		}
	}
	qr.epoch++
	qr.rng.Seed(b.qseed ^ rng.Mix64(b.qctr.Add(1)))
	return qr
}

func (b *rankedBase[P]) putQuerier(qr *querier) { b.pool.Put(qr) }

// resolve hashes q once — one single-pass signature reduced to L bucket
// keys — and fills qr.keys and qr.buckets, charging one bucket lookup per
// table. Query paths that probe the same buckets many times (the Section 4
// rejection loop) or need the keys again (sketch lookup, Appendix A swaps)
// read them from the querier instead of re-hashing.
func (b *rankedBase[P]) resolve(q P, qr *querier, st *QueryStats) {
	b.signer.Sign(q, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, qr.keys)
	total := 0
	for i := range qr.buckets {
		st.bucket()
		bucket := b.tables[i].buckets[qr.keys[i]]
		qr.buckets[i] = bucket
		if bucket != nil {
			total += bucket.Len()
		}
	}
	// Invalidate the merged cursor and restart the adaptive-merge meter:
	// the one-time merge cost is proportional to the total (multiplicity-
	// counted) bucket size.
	qr.isMerged = false
	qr.rangeWork = 0
	qr.mergeCost = total
}

// materializeMerged k-way-merges the resolved buckets into the querier's
// deduplicated (rank, id) arrays. Buffers are recycled across queries, so
// steady-state materialization allocates nothing.
func (b *rankedBase[P]) materializeMerged(qr *querier, st *QueryStats) {
	qr.mergedIDs, qr.mergedRanks = rank.MergeDedup(&qr.merger, qr.buckets, qr.mergedIDs[:0], qr.mergedRanks[:0])
	qr.isMerged = true
	st.merged()
}

// keysInto writes the L bucket keys of p into keys without touching
// qr.keys (used when two points' keys are needed at once).
func (b *rankedBase[P]) keysInto(p P, qr *querier, keys []uint64) {
	b.signer.Sign(p, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, keys)
}

// N returns the number of indexed points.
func (b *rankedBase[P]) N() int { return len(b.points) }

// Radius returns the query radius/similarity threshold r.
func (b *rankedBase[P]) Radius() float64 { return b.radius }

// Params returns the LSH parameters in use.
func (b *rankedBase[P]) Params() lsh.Params { return b.params }

// Point returns the indexed point with the given id.
func (b *rankedBase[P]) Point(id int32) P { return b.points[id] }

// near reports whether point id is within the radius of q, charging one
// score evaluation to st.
func (b *rankedBase[P]) near(q P, id int32, st *QueryStats) bool {
	st.score()
	return b.nearFn(q, b.points[id])
}

// nearCached is near routed through the querier's epoch-stamped memo
// table: each distinct id is scored at most once per epoch (one logical
// query); repeat lookups are answered from the cache and charged to
// st.ScoreCacheHits. Distances are deterministic, so memoization cannot
// change any query's output distribution — only its cost.
func (b *rankedBase[P]) nearCached(q P, qr *querier, id int32, st *QueryStats) bool {
	if s := qr.nearState[id]; s>>1 == qr.epoch {
		st.cacheHit()
		return s&1 == 1
	}
	isNear := b.near(q, id, st)
	s := qr.epoch << 1
	if isNear {
		s |= 1
	}
	qr.nearState[id] = s
	return isNear
}

// TotalBucketEntries returns L·n, the table space in point references.
func (b *rankedBase[P]) TotalBucketEntries() int { return b.params.L * len(b.points) }
