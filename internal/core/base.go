package core

import (
	"errors"

	"fairnn/internal/lsh"
	"fairnn/internal/rank"
	"fairnn/internal/rng"
)

// rankedTable is one LSH table whose buckets are kept sorted by rank — the
// shared substrate of the Section 3 and Section 4 data structures.
type rankedTable struct {
	buckets map[uint64]*rank.Bucket
}

// rankedBase holds everything the rank-permutation data structures share:
// the indexed points, the space, the LSH functions g_1..g_L, the rank
// assignment and the rank-sorted buckets.
type rankedBase[P any] struct {
	space  Space[P]
	points []P
	radius float64
	params lsh.Params
	gs     []lsh.Func[P]
	tables []rankedTable
	asg    *rank.Assignment
}

func newRankedBase[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, r *rng.Source) (*rankedBase[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	if space.Score == nil {
		return nil, errors.New("core: space has nil Score")
	}
	b := &rankedBase[P]{
		space:  space,
		points: points,
		radius: radius,
		params: params,
		gs:     make([]lsh.Func[P], params.L),
		tables: make([]rankedTable, params.L),
		asg:    rank.NewAssignment(len(points), r),
	}
	for i := 0; i < params.L; i++ {
		b.gs[i] = lsh.Concat(family, params.K, r)
		groups := make(map[uint64][]int32)
		for id := range points {
			key := b.gs[i](points[id])
			groups[key] = append(groups[key], int32(id))
		}
		buckets := make(map[uint64]*rank.Bucket, len(groups))
		for key, ids := range groups {
			buckets[key] = rank.NewBucket(ids, b.asg)
		}
		b.tables[i] = rankedTable{buckets: buckets}
	}
	return b, nil
}

// N returns the number of indexed points.
func (b *rankedBase[P]) N() int { return len(b.points) }

// Radius returns the query radius/similarity threshold r.
func (b *rankedBase[P]) Radius() float64 { return b.radius }

// Params returns the LSH parameters in use.
func (b *rankedBase[P]) Params() lsh.Params { return b.params }

// Point returns the indexed point with the given id.
func (b *rankedBase[P]) Point(id int32) P { return b.points[id] }

// near reports whether point id is within the radius of q, charging one
// score evaluation to st.
func (b *rankedBase[P]) near(q P, id int32, st *QueryStats) bool {
	st.score()
	return b.space.Near(b.space.Score(q, b.points[id]), b.radius)
}

// bucketOf returns the rank-sorted bucket of q in table i (nil if empty).
func (b *rankedBase[P]) bucketOf(i int, q P, st *QueryStats) *rank.Bucket {
	st.bucket()
	return b.tables[i].buckets[b.gs[i](q)]
}

// TotalBucketEntries returns L·n, the table space in point references.
func (b *rankedBase[P]) TotalBucketEntries() int { return b.params.L * len(b.points) }
