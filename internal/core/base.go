package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fairnn/internal/lsh"
	"fairnn/internal/rank"
	"fairnn/internal/rng"
	"fairnn/internal/sketch"
)

// rankedTable is one LSH table whose buckets are kept sorted by rank — the
// shared substrate of the Section 3 and Section 4 data structures.
type rankedTable struct {
	buckets map[uint64]*rank.Bucket
}

// rankedBase holds everything the rank-permutation data structures share:
// the indexed points, the space, the batched LSH signer covering g_1..g_L,
// the rank assignment and the rank-sorted buckets. After construction the
// base is read-only (except for the rank swaps of Appendix A, which are the
// caller's concurrency responsibility) and safe for concurrent queries:
// per-query mutable state lives in pooled queriers and per-query RNG
// streams are split from the seed via an atomic query counter.
//
//fairnn:frozen
type rankedBase[P any] struct {
	space  Space[P]
	points []P
	radius float64
	params lsh.Params
	signer *lsh.Signer[P]
	tables []rankedTable
	asg    *rank.Assignment
	// nearFn is the resolved near predicate of the space at the build
	// radius; Distance spaces with a ScoreSq kernel compare squared
	// scores against r², skipping one math.Sqrt per candidate.
	nearFn func(a, b P) bool
	// batchScore, when non-nil, fills out[k] with ScoreSq(q, points[ids[k]])
	// for a whole candidate block per call (resolved from Space.ScoreSqBatch
	// at build time; keepNear compares the results against r2). Nil on
	// spaces without a batch kernel — keepNear then falls back to
	// per-candidate nearCached calls.
	batchScore func(q P, ids []int32, out []float64)
	// r2 is radius² — the threshold batchScore results are compared to;
	// bit-identical to the squared comparison inside nearFn.
	r2 float64
	// memo is the resolved memory discipline: which near-cache backend
	// queriers carry (dense below the threshold, compact above) and how
	// much scratch the pool may retain across checkouts.
	memo MemoOptions

	qseed uint64
	qctr  atomic.Uint64
	pool  BoundedPool[querier]
}

// querier is the reusable per-query scratch: the L·K raw signature, the L
// bucket keys and bucket pointers, a candidate buffer, the k-way-merge
// heap, an optional count-distinct counter (Section 4), and a dedicated
// RNG stream reseeded per query. Steady-state queries touch only this
// struct and therefore allocate nothing.
//
// Two memo structures make the Section 4 rejection loop cheap to repeat:
//
//   - near-cache: a pluggable memoTable of tri-state verdicts
//     (unknown / near / far). Its epoch is bumped once per checkout (one
//     logical Sample or SampleK), so entries from earlier queries read as
//     "unknown" without any clearing. Each distinct candidate is
//     therefore distance-scored at most once per Sample and at most once
//     across an entire SampleK, and stale entries can never leak into the
//     current query. The backend is chosen per structure by MemoOptions:
//     an epoch-stamped dense array (8 B/indexed point, O(1) unhashed
//     lookups, allocated lazily on first use) below the point-count
//     threshold, or a compact open-addressing stamped table sized to the
//     query's live candidate count — o(n) by construction — above it.
//   - merged cursor: mergedIDs/mergedRanks hold the deduplicated k-way
//     merge of all L resolved buckets, in ascending rank order. It is
//     materialized lazily — only once the rejection loop's cumulative
//     range-report work (rangeWork) exceeds the one-time merge cost
//     (mergeCost ≈ total bucket entries), so short queries keep the
//     cheap per-bucket path. resolve() invalidates it.
type querier struct {
	sig     []uint64
	keys    []uint64
	keys2   []uint64
	buckets []*rank.Bucket
	cand    []int32
	merger  rank.Merger
	counter sketch.Counter
	rng     rng.Source

	// near-cache backend (see memo.go).
	near memoTable

	// batched-scoring scratch (keepNear): memo-miss ids pending a score,
	// per-candidate verdicts, and the kernel output block. All recycled
	// across queries, so the batch path keeps the zero-alloc steady state.
	pend     []int32
	verd     []uint8
	scoreOut []float64

	// merged candidate cursor + adaptive-merge accounting.
	mergedIDs   []int32
	mergedRanks []int32
	isMerged    bool
	rangeWork   int
	mergeCost   int

	// mstats is the telemetry scratch stats record: when a metrics
	// registry is attached and the caller passed a nil *QueryStats, the
	// draw loop counts into this record instead so the per-draw deltas
	// can still be observed. Reset (by value assignment — its slice
	// fields are unused on unsharded paths) at the top of each draw.
	mstats QueryStats
}

// scratchBytes reports the querier's retained backing-array footprint:
// the memo table plus the candidate-sized buffers that can grow with the
// query (the fixed L-sized key/bucket slices are negligible).
//
//fairnn:noalloc
func (qr *querier) scratchBytes() int {
	return qr.near.retainedBytes() +
		4*(cap(qr.cand)+cap(qr.mergedIDs)+cap(qr.mergedRanks)) +
		4*cap(qr.pend) + cap(qr.verd) + 8*cap(qr.scoreOut)
}

// trim enforces the pool's scratch budget — on the querier's summed
// footprint, so one retained querier can never pin a multiple of the
// budget — before it is retained. The candidate buffers are freed first
// (they regrow lazily and cheaply); the memo survives whenever it fits
// the budget on its own, and frees itself otherwise.
//
//fairnn:noalloc
func (qr *querier) trim(budget int) {
	if qr.scratchBytes() <= budget {
		return
	}
	qr.cand = nil
	qr.mergedIDs, qr.mergedRanks = nil, nil
	qr.isMerged = false
	qr.pend, qr.verd, qr.scoreOut = nil, nil, nil
	qr.near.shrink(budget)
}

func newRankedBase[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, memo MemoOptions, r *rng.Source) (*rankedBase[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	if space.Score == nil {
		return nil, errors.New("core: space has nil Score")
	}
	b := &rankedBase[P]{
		space:  space,
		points: points,
		radius: radius,
		params: params,
		nearFn: space.Nearness(radius),
		memo:   memo.withDefaults().withDenseFloor(len(points), 8*len(points)),
	}
	// Resolve the batched scoring seam only when it is guaranteed to agree
	// bit-for-bit with nearFn: a Distance space whose nearFn is the
	// squared comparison (ScoreSq non-nil, radius ≥ 0) and that supplies
	// the matching batch kernel.
	if space.Kind == Distance && space.ScoreSq != nil && space.ScoreSqBatch != nil && radius >= 0 {
		sqb := space.ScoreSqBatch
		b.batchScore = func(q P, ids []int32, out []float64) { sqb(q, points, ids, out) }
		b.r2 = radius * radius
	}
	b.pool.SetCap(b.memo.MaxRetainedQueriers)
	// Draw order matters for seed-compatibility: the rank permutation comes
	// first (as in the original per-closure construction), then the hash
	// functions, then the per-query stream seed.
	b.asg = rank.NewAssignment(len(points), r)
	b.signer = lsh.NewSigner(family, params.L*params.K, r)
	b.qseed = r.Uint64()

	n := len(points)
	L, K := params.L, params.K
	// Pass 1 (parallel over points): one single-pass signature per point,
	// reduced to its L bucket keys. This replaces n·L·K full-point scans
	// with n scans. A panic in the family's hash of one poisoned point is
	// recovered at worker level and surfaced as a BuildError naming the
	// point, instead of killing the process from a build goroutine.
	var buildErr buildErrSlot
	allKeys := make([]uint64, n*L)
	parallelRange(n, func(lo, hi int) {
		cur := lo
		defer buildErr.capture(&cur, nil)
		sig := make([]uint64, L*K)
		for p := lo; p < hi; p++ {
			cur = p
			b.signer.Sign(points[p], sig)
			lsh.CombineKeys(sig, K, allKeys[p*L:(p+1)*L])
		}
	})
	if err := buildErr.err(); err != nil {
		return nil, err
	}
	// Pass 2 (parallel over tables): group ids by key and sort each bucket
	// by rank. Tables are independent, so this parallelizes cleanly.
	b.tables = make([]rankedTable, L)
	parallelRange(L, func(lo, hi int) {
		cur := lo
		defer buildErr.capture(nil, &cur)
		for i := lo; i < hi; i++ {
			cur = i
			groups := make(map[uint64][]int32)
			for p := 0; p < n; p++ {
				key := allKeys[p*L+i]
				groups[key] = append(groups[key], int32(p))
			}
			buckets := make(map[uint64]*rank.Bucket, len(groups))
			for key, ids := range groups {
				buckets[key] = rank.NewBucket(ids, b.asg)
			}
			b.tables[i] = rankedTable{buckets: buckets}
		}
	})
	if err := buildErr.err(); err != nil {
		return nil, err
	}
	return b, nil
}

// buildErrSlot collects the first BuildError recovered across build
// workers. capture is deferred at worker top level: point/table track the
// worker's in-flight index, so the error names the exact input that
// poisoned the build.
type buildErrSlot struct {
	mu sync.Mutex
	e  *BuildError
}

func (s *buildErrSlot) capture(point, table *int) {
	r := recover()
	if r == nil {
		return
	}
	p, t := -1, -1
	if point != nil {
		p = *point
	}
	if table != nil {
		t = *table
	}
	s.mu.Lock()
	if s.e == nil {
		s.e = newBuildError(-1, p, t, r)
	}
	s.mu.Unlock()
}

func (s *buildErrSlot) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.e == nil {
		return nil
	}
	return s.e
}

// ParallelRange is the exported form of parallelRange, for sibling
// internal packages that fan work out the same way (internal/shard's
// build and per-shard arm loops) instead of growing their own copy of
// the worker pattern.
//
//fairnn:noalloc
//fairnn:fanout-safe delegates to parallelRange
func ParallelRange(n int, fn func(lo, hi int)) { parallelRange(n, fn) }

// parallelRange splits [0, n) into contiguous chunks executed by up to
// GOMAXPROCS workers. fn must be safe to call concurrently on disjoint
// ranges. Small inputs run inline.
//
// Panic containment: a panic inside fn on a worker goroutine would kill
// the whole process (no caller can recover another goroutine's panic), so
// workers recover it into a *PanicError — every sibling drains normally,
// the WaitGroup resolves, nothing leaks — and the first one is re-thrown
// on the calling goroutine, where it behaves like a panic from an inline
// call: deferred recovers in the caller (the build passes, the sharded
// arm fan-out, the façade batch helpers) see it and turn it into a typed
// error. Inline execution (one worker) panics in place, which is the
// same observable contract.
//
//fairnn:noalloc
//fairnn:fanout-safe contains worker panics via the deferred recover and re-panics once on the caller
func parallelRange(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[PanicError]
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		//fairnn:allocok this IS the fan-out: workers>1 only on arm/build paths, never the steady-state draw
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pe, ok := r.(*PanicError)
					if !ok {
						pe = NewPanicError(r)
					}
					panicked.CompareAndSwap(nil, pe)
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		panic(pe)
	}
}

// getQuerier checks a querier out of the pool (allocating buffers only on
// first use) and reseeds its RNG with a fresh per-query stream derived from
// the atomic query counter — concurrent queries therefore consume disjoint,
// deterministic randomness. Each checkout advances the near-cache epoch,
// so memoized near/far verdicts are scoped to exactly one logical query
// (a Sample, or all k loops of one SampleK).
//
//fairnn:noalloc
func (b *rankedBase[P]) getQuerier() *querier {
	qr := b.pool.Get()
	if qr == nil {
		qr = &querier{
			sig:     make([]uint64, b.params.L*b.params.K),
			keys:    make([]uint64, b.params.L),
			keys2:   make([]uint64, b.params.L),
			buckets: make([]*rank.Bucket, b.params.L),
			cand:    make([]int32, 0, 64),
			near:    newMemoTable(b.memo, len(b.points), false),
		}
	}
	qr.near.reset()
	qr.rng.Seed(b.qseed ^ rng.Mix64(b.qctr.Add(1)))
	return qr
}

// putQuerier returns scratch to the bounded pool: oversized scratch is
// trimmed to the budget first, and queriers beyond the retention cap are
// dropped entirely — a one-time concurrency burst therefore cannot pin
// O(burst·n) memory for the process lifetime.
//
//fairnn:noalloc
func (b *rankedBase[P]) putQuerier(qr *querier) {
	qr.trim(b.memo.ScratchBudget)
	b.pool.Put(qr)
}

// RetainedScratchBytes reports the total backing-array footprint of the
// currently pooled queriers — the steady-state scratch memory this
// structure pins between queries (the bench footprint gauge).
func (b *rankedBase[P]) RetainedScratchBytes() int {
	total := 0
	b.pool.Fold(func(qr *querier) { total += qr.scratchBytes() })
	return total
}

// RetainedQueriers reports how many queriers the pool currently holds.
func (b *rankedBase[P]) RetainedQueriers() int { return b.pool.Retained() }

// MemoBackendInUse reports the resolved near-cache backend.
func (b *rankedBase[P]) MemoBackendInUse() MemoBackend {
	return b.memo.resolveBackend(len(b.points))
}

// resolve hashes q once — one single-pass signature reduced to L bucket
// keys — and fills qr.keys and qr.buckets, charging one bucket lookup per
// table. Query paths that probe the same buckets many times (the Section 4
// rejection loop) or need the keys again (sketch lookup, Appendix A swaps)
// read them from the querier instead of re-hashing.
//
//fairnn:noalloc
func (b *rankedBase[P]) resolve(q P, qr *querier, st *QueryStats) {
	b.signer.Sign(q, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, qr.keys)
	total := 0
	for i := range qr.buckets {
		st.bucket()
		bucket := b.tables[i].buckets[qr.keys[i]]
		qr.buckets[i] = bucket
		if bucket != nil {
			total += bucket.Len()
		}
	}
	// Invalidate the merged cursor and restart the adaptive-merge meter:
	// the one-time merge cost is proportional to the total (multiplicity-
	// counted) bucket size.
	qr.isMerged = false
	qr.rangeWork = 0
	qr.mergeCost = total
}

// materializeMerged k-way-merges the resolved buckets into the querier's
// deduplicated (rank, id) arrays. Buffers are recycled across queries, so
// steady-state materialization allocates nothing.
//
//fairnn:noalloc
func (b *rankedBase[P]) materializeMerged(qr *querier, st *QueryStats) {
	qr.mergedIDs, qr.mergedRanks = rank.MergeDedup(&qr.merger, qr.buckets, qr.mergedIDs[:0], qr.mergedRanks[:0])
	qr.isMerged = true
	st.merged()
}

// keysInto writes the L bucket keys of p into keys without touching
// qr.keys (used when two points' keys are needed at once).
func (b *rankedBase[P]) keysInto(p P, qr *querier, keys []uint64) {
	b.signer.Sign(p, qr.sig)
	lsh.CombineKeys(qr.sig, b.params.K, keys)
}

// N returns the number of indexed points.
//
//fairnn:noalloc
func (b *rankedBase[P]) N() int { return len(b.points) }

// Radius returns the query radius/similarity threshold r.
func (b *rankedBase[P]) Radius() float64 { return b.radius }

// Params returns the LSH parameters in use.
func (b *rankedBase[P]) Params() lsh.Params { return b.params }

// Point returns the indexed point with the given id.
func (b *rankedBase[P]) Point(id int32) P { return b.points[id] }

// near reports whether point id is within the radius of q, charging one
// score evaluation to st.
//
//fairnn:noalloc
func (b *rankedBase[P]) near(q P, id int32, st *QueryStats) bool {
	st.score()
	return b.nearFn(q, b.points[id])
}

// nearCached is near routed through the querier's epoch-stamped memo
// table: each distinct id is scored at most once per epoch (one logical
// query); repeat lookups are answered from the cache and charged to
// st.ScoreCacheHits. Distances are deterministic, so memoization cannot
// change any query's output distribution — only its cost. The dense
// backend is special-cased so its hot path stays the PR 2 single array
// load; other backends (the compact table) go through the memoTable
// interface and charge st.MemoProbes.
func (b *rankedBase[P]) nearCached(q P, qr *querier, id int32, st *QueryStats) bool {
	if d, ok := qr.near.(*denseBitMemo); ok {
		w := d.words
		if w == nil {
			w = d.ensure()
		}
		if s := w[id]; s>>1 == d.epoch {
			st.cacheHit()
			return s&1 == 1
		}
		isNear := b.near(q, id, st)
		s := d.epoch << 1
		if isNear {
			s |= 1
		}
		w[id] = s
		return isNear
	}
	st.memoProbe()
	if v, ok := qr.near.get(id); ok {
		st.cacheHit()
		return v == 1
	}
	isNear := b.near(q, id, st)
	var v uint64
	if isNear {
		v = 1
	}
	qr.near.put(id, v)
	return isNear
}

// batchMinCandidates is the block size below which keepNear's two-pass
// batch path costs more than it saves; smaller blocks take the
// per-candidate path.
const batchMinCandidates = 8

// verdPending marks a keepNear slot whose candidate missed the memo and
// awaits its batched score (the memoized verdicts are 0 = far, 1 = near).
const verdPending uint8 = 2

// keepNear filters ids in place, keeping exactly the candidates within the
// radius of q, and returns the kept prefix. It is equivalent to filtering
// with nearCached per id — same verdicts (bit-identical threshold
// comparison), same memo contents afterwards, same QueryStats counters —
// but when the space has a batch kernel it scores all memo misses of the
// block with one batchScore call: pass 1 probes the memo and collects the
// misses into qr.pend, pass 2 scores them into qr.scoreOut, writes the
// verdicts back into the memo and compacts the survivors. Misses scored
// this way are additionally counted in st.BatchScored.
//
//fairnn:noalloc
func (b *rankedBase[P]) keepNear(q P, qr *querier, ids []int32, st *QueryStats) []int32 {
	if b.batchScore == nil || len(ids) < batchMinCandidates {
		kept := ids[:0]
		for _, id := range ids {
			if b.nearCached(q, qr, id, st) {
				kept = append(kept, id)
			}
		}
		return kept
	}
	if cap(qr.verd) < len(ids) {
		qr.verd = make([]uint8, len(ids))
	}
	verd := qr.verd[:len(ids)]
	pend := qr.pend[:0]
	d, dense := qr.near.(*denseBitMemo)
	if dense {
		// Same special case as nearCached: one array load per probe, no
		// interface calls, no MemoProbes charged.
		w := d.ensure()
		for i, id := range ids {
			if s := w[id]; s>>1 == d.epoch {
				st.cacheHit()
				verd[i] = uint8(s & 1)
			} else {
				verd[i] = verdPending
				pend = append(pend, id)
			}
		}
	} else {
		for i, id := range ids {
			st.memoProbe()
			if v, ok := qr.near.get(id); ok {
				st.cacheHit()
				verd[i] = uint8(v)
			} else {
				verd[i] = verdPending
				pend = append(pend, id)
			}
		}
	}
	if len(pend) > 0 {
		if cap(qr.scoreOut) < len(pend) {
			qr.scoreOut = make([]float64, len(pend))
		}
		out := qr.scoreOut[:len(pend)]
		b.batchScore(q, pend, out)
		if st != nil {
			st.ScoreEvals += len(pend)
			st.BatchScored += len(pend)
		}
		j := 0
		if dense {
			w := d.words
			for i := range verd {
				if verd[i] != verdPending {
					continue
				}
				var v uint8
				if out[j] <= b.r2 {
					v = 1
				}
				verd[i] = v
				w[pend[j]] = d.epoch<<1 | uint64(v)
				j++
			}
		} else {
			for i := range verd {
				if verd[i] != verdPending {
					continue
				}
				var v uint64
				if out[j] <= b.r2 {
					v = 1
				}
				verd[i] = uint8(v)
				qr.near.put(pend[j], v)
				j++
			}
		}
	}
	qr.pend = pend
	kept := ids[:0]
	for i, id := range ids {
		if verd[i] == 1 {
			kept = append(kept, id)
		}
	}
	return kept
}

// TotalBucketEntries returns L·n, the table space in point references.
func (b *rankedBase[P]) TotalBucketEntries() int { return b.params.L * len(b.points) }
