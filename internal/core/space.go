// Package core implements the paper's fair near-neighbor data structures:
//
//   - Sampler (Section 3): r-near neighbor sampling via a random rank
//     permutation over LSH buckets — uniform output distribution.
//   - Sampler.SampleK / SampleRepeated (Section 3.1 + Appendix A):
//     k-samples without replacement, and with-replacement sampling for a
//     single repeated query via rank perturbation.
//   - Independent (Section 4): r-near neighbor *independent* sampling with
//     per-bucket rank indices and mergeable count-distinct sketches.
//   - FilterIndependent (Section 5): α-NNIS in nearly-linear space via
//     locality-sensitive filters for inner-product similarity.
//   - Standard / NaiveFair / ApproxFair (Section 2.2 and Section 6
//     baselines) and Exact (linear-scan ground truth).
//
// All structures are generic over the point type and use an LSH family as a
// black box, mirroring the paper's distance-agnostic construction.
package core

import (
	"fairnn/internal/set"
	"fairnn/internal/vector"
)

// Kind says whether scores are distances (near means score ≤ r) or
// similarities (near means score ≥ r). The paper states all results for
// distances and notes the similarity variant in Section 2.1; the Section 6
// experiments use Jaccard similarity and Section 5 uses inner product.
type Kind int

const (
	// Distance spaces treat lower scores as closer.
	Distance Kind = iota
	// Similarity spaces treat higher scores as closer.
	Similarity
)

// Space bundles a pairwise score with its orientation.
type Space[P any] struct {
	Kind  Kind
	Score func(a, b P) float64
	// ScoreSq, when non-nil on a Distance space, returns Score squared
	// (e.g. the squared Euclidean distance) — a monotone surrogate that
	// skips the final square root. Near tests then compare against r²
	// instead of evaluating math.Sqrt per candidate.
	ScoreSq func(a, b P) float64
	// ScoreSqBatch, when non-nil on a Distance space with ScoreSq, fills
	// out[k] = ScoreSq(q, pts[ids[k]]) for every k — the gather form lets
	// hot loops score a block of memo-miss candidates per call instead of
	// per candidate, hoisting kernel dispatch and query setup out of the
	// loop. It must be bit-identical to per-pair ScoreSq calls so batched
	// and unbatched queries produce the same verdicts (and therefore the
	// same sample streams).
	ScoreSqBatch func(q P, pts []P, ids []int32, out []float64)
}

// Near reports whether a score meets the threshold r under the space's
// orientation.
//
//fairnn:noalloc
func (s Space[P]) Near(score, r float64) bool {
	if s.Kind == Distance {
		return score <= r
	}
	return score >= r
}

// Nearness returns a predicate reporting whether b lies in the radius-r
// ball of a, equivalent to Near(Score(a, b), r) but routed through the
// sqrt-free ScoreSq kernel when one is available (Distance spaces with
// r ≥ 0 compare ScoreSq against r²). Hot query loops resolve the
// predicate once per structure instead of re-branching per candidate.
func (s Space[P]) Nearness(r float64) func(a, b P) bool {
	if s.Kind == Distance {
		if s.ScoreSq != nil && r >= 0 {
			sq, r2 := s.ScoreSq, r*r
			return func(a, b P) bool { return sq(a, b) <= r2 }
		}
		score := s.Score
		return func(a, b P) bool { return score(a, b) <= r }
	}
	score := s.Score
	return func(a, b P) bool { return score(a, b) >= r }
}

// Jaccard is the similarity space over item sets used by the Section 6
// experiments.
func Jaccard() Space[set.Set] {
	return Space[set.Set]{Kind: Similarity, Score: func(a, b set.Set) float64 { return set.Jaccard(a, b) }}
}

// InnerProduct is the similarity space over (unit) vectors used by the
// Section 5 data structure.
func InnerProduct() Space[vector.Vec] {
	return Space[vector.Vec]{Kind: Similarity, Score: vector.Dot}
}

// Euclidean is the ℓ2 distance space. Its ScoreSq kernel lets near tests
// compare squared distances against r², skipping the square root, and its
// ScoreSqBatch kernel scores whole candidate blocks per call (bit-identical
// to per-pair ScoreSq on either kernel tier; see internal/vector).
func Euclidean() Space[vector.Vec] {
	return Space[vector.Vec]{
		Kind:         Distance,
		Score:        vector.Euclidean,
		ScoreSq:      vector.SquaredEuclidean,
		ScoreSqBatch: vector.SquaredEuclideanBatchIDs,
	}
}

// QueryStats accumulates per-query cost counters; every query method
// accepts a *QueryStats that may be nil. The counters back the Q3 cost
// experiments (Section 6.3).
type QueryStats struct {
	// BucketsScanned counts bucket lookups across tables/filters.
	BucketsScanned int
	// PointsInspected counts bucket entries touched (with multiplicity).
	PointsInspected int
	// ScoreEvals counts distance/similarity evaluations.
	ScoreEvals int
	// BatchScored counts the subset of ScoreEvals performed through a
	// batched kernel call (Space.ScoreSqBatch or the Section 5 blocked
	// existence scan) rather than one evaluation at a time.
	BatchScored int
	// ScoreCacheHits counts near/similarity tests answered from the
	// per-query memo table (the epoch-stamped near-cache) instead of
	// re-evaluating the score.
	ScoreCacheHits int
	// MemoProbes counts lookups served by the compact (bounded) memo
	// backend — zero on the dense fast path, so the counter makes the
	// dense→compact threshold observable per query.
	MemoProbes int
	// CursorMerged reports that the query materialized the merged
	// candidate cursor (the adaptive k-way merge of all L buckets).
	CursorMerged bool
	// Rounds counts rejection-sampling rounds (Sections 4 and 5).
	Rounds int
	// SketchEstimate records the merged count-distinct estimate ŝ_q
	// (Section 4 only).
	SketchEstimate float64
	// FinalK records the segment count k in use when the Section 4 query
	// succeeded.
	FinalK int
	// FilterEvals counts inner products against filter vectors (Section 5).
	FilterEvals int
	// Clamped records that an acceptance probability exceeded 1 and was
	// clamped — a low-probability failure event under correctly chosen
	// constants.
	Clamped bool
	// Found reports whether the query returned a point.
	Found bool
	// ShardRounds counts the rejection rounds charged to each shard of a
	// sharded query (index = shard). Sharded queries size it to the shard
	// count (reusing capacity across queries); unsharded queries leave it
	// nil.
	ShardRounds []int
	// ShardEstimates records each shard's per-query near-count estimate
	// ŝ_j of a sharded query; nil for unsharded queries. SketchEstimate
	// holds their sum (the union estimate).
	ShardEstimates []float64
	// ShardChosen is the shard that produced the most recent sharded
	// sample, or -1 when the draw failed; meaningful only after a sharded
	// query (unsharded queries leave the zero value).
	ShardChosen int
	// Degraded describes a sharded query answered from a strict subset
	// of its shards (degraded mode): which shards were lost and how much
	// of the union ball the survivors are estimated to cover. The zero
	// value (Degraded.Degraded() == false) means the full index answered.
	Degraded DegradedInfo
}

// DegradedInfo is the honest-accounting record of a degraded sharded
// query: with degraded mode enabled, a query whose shard(s) exhausted
// their deadline/retry budget is answered *exactly uniformly over the
// surviving shards' union ball* — a well-defined but smaller population —
// instead of failing. This struct says so explicitly, rather than letting
// a partial answer masquerade as a full one.
type DegradedInfo struct {
	// LostShards lists the shards excluded from the union pool, in shard
	// order. Empty means the query was not degraded. Sharded queries
	// reuse the slice's capacity across queries on the same QueryStats.
	LostShards []int
	// LostPoints is the total number of indexed points owned by the lost
	// shards — the upper bound on how many near neighbors the answer
	// population can be missing.
	LostPoints int
	// Coverage estimates the fraction of the query's true union ball the
	// surviving shards cover, from sketch mass: the survivors' summed
	// per-query near-count estimates ŝ_j over the estimated total. A lost
	// shard contributes its last successfully observed ŝ_j (tracked by
	// the health registry); a shard that never reported one contributes a
	// density extrapolation from its point count. In (0, 1]; 1 only when
	// the lost shards are estimated to hold no near points.
	Coverage float64
}

// Degraded reports whether the query lost any shard.
func (d *DegradedInfo) Degraded() bool { return len(d.LostShards) > 0 }

// add merges counters (used when one logical query performs sub-queries).
//
//fairnn:noalloc
func (s *QueryStats) add(o QueryStats) {
	if s == nil {
		return
	}
	s.BucketsScanned += o.BucketsScanned
	s.PointsInspected += o.PointsInspected
	s.ScoreEvals += o.ScoreEvals
	s.BatchScored += o.BatchScored
	s.ScoreCacheHits += o.ScoreCacheHits
	s.MemoProbes += o.MemoProbes
	s.Rounds += o.Rounds
	s.FilterEvals += o.FilterEvals
	s.Clamped = s.Clamped || o.Clamped
	s.CursorMerged = s.CursorMerged || o.CursorMerged
	s.ShardRounds = mergeShard(s.ShardRounds, o.ShardRounds)
	s.ShardEstimates = mergeShard(s.ShardEstimates, o.ShardEstimates)
	// Degraded is adopted whole when s has none (summing loss records
	// from different queries has no meaning, mirroring mergeShard).
	if len(s.Degraded.LostShards) == 0 && len(o.Degraded.LostShards) > 0 {
		s.Degraded.LostShards = append(s.Degraded.LostShards[:0], o.Degraded.LostShards...)
		s.Degraded.LostPoints = o.Degraded.LostPoints
		s.Degraded.Coverage = o.Degraded.Coverage
	}
}

// mergeShard folds per-shard counter slices: adopt o's when s has none,
// add element-wise when the shard counts match, and otherwise keep s
// unchanged — per-index sums across different shard layouts have no
// meaning (see Merge).
//
//fairnn:noalloc
func mergeShard[T int | float64](s, o []T) []T {
	switch {
	case len(o) == 0:
		return s
	case len(s) == 0:
		return append(s, o...) //fairnn:allocok first-merge adoption, once per stats object
	case len(s) == len(o):
		for i, v := range o {
			s[i] += v
		}
	}
	return s
}

// Merge folds o's counters into s — the exported form of the internal
// accumulation used by multi-stage queries. The sharded fan-out resolves
// shards on worker goroutines against per-worker stats and merges them
// into the caller's afterwards (QueryStats itself is not safe for
// concurrent mutation). Per-shard slices (ShardRounds, ShardEstimates)
// are adopted when s has none and summed element-wise when the shard
// counts match; merging stats from samplers with different shard counts
// keeps s's slices unchanged, since per-index sums across different
// layouts are meaningless. The point-in-time records (SketchEstimate,
// FinalK, ShardChosen, Found) are set by the query that produced them,
// not accumulated.
//
//fairnn:noalloc
func (s *QueryStats) Merge(o QueryStats) { s.add(o) }

// bump* helpers tolerate nil receivers so query code stays uncluttered.

//fairnn:noalloc
func (s *QueryStats) bucket() {
	if s != nil {
		s.BucketsScanned++
	}
}

//fairnn:noalloc
func (s *QueryStats) point() {
	if s != nil {
		s.PointsInspected++
	}
}

//fairnn:noalloc
func (s *QueryStats) points(n int) {
	if s != nil {
		s.PointsInspected += n
	}
}

//fairnn:noalloc
func (s *QueryStats) score() {
	if s != nil {
		s.ScoreEvals++
	}
}

//fairnn:noalloc
func (s *QueryStats) cacheHit() {
	if s != nil {
		s.ScoreCacheHits++
	}
}

//fairnn:noalloc
func (s *QueryStats) memoProbe() {
	if s != nil {
		s.MemoProbes++
	}
}

//fairnn:noalloc
func (s *QueryStats) merged() {
	if s != nil {
		s.CursorMerged = true
	}
}

//fairnn:noalloc
func (s *QueryStats) round() {
	if s != nil {
		s.Rounds++
	}
}

//fairnn:noalloc
func (s *QueryStats) filters(n int) {
	if s != nil {
		s.FilterEvals += n
	}
}

//fairnn:noalloc
func (s *QueryStats) clamp() {
	if s != nil {
		s.Clamped = true
	}
}

//fairnn:noalloc
func (s *QueryStats) found(ok bool) {
	if s != nil {
		s.Found = ok
	}
}
