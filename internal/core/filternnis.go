package core

import (
	"errors"
	"math"
	"sync/atomic"

	"fairnn/internal/filter"
	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// FilterIndependentOptions tunes the Section 5 α-NNIS structure.
type FilterIndependentOptions struct {
	// Eps is the per-bank failure parameter ε of f(α, ε). Default 0.1.
	Eps float64
	// L is the number of independent banks, Θ(log n). Default ⌈1.5·log₂ n⌉.
	L int
	// M1T and T override the bank geometry (0 → paper defaults).
	M1T, T int
	// MaxRounds caps the rejection loop per query as a safety net; the
	// loop terminates with probability 1 whenever a near point exists.
	// Default 0 means 200·(L+1)·(K+1) rounds, far beyond the expected
	// O((b_β/b_α)·log n).
	MaxRounds int
}

func (o FilterIndependentOptions) withDefaults(n int) FilterIndependentOptions {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.L <= 0 {
		o.L = int(math.Ceil(1.5 * math.Log2(float64(n)+1)))
		if o.L < 3 {
			o.L = 3
		}
	}
	return o
}

// FilterIndependent solves the α-NNIS problem (Section 5.2): L = Θ(log n)
// independent filter banks, each storing every point exactly once, so the
// total space is nearly linear. A query enumerates the above-threshold
// buckets of all banks, verifies that a near point exists, then repeatedly
// draws a uniform bucket entry, deletes far points lazily, and accepts a
// near point p with probability 1/c_p, where c_p is the number of selected
// buckets containing p. The multiplicity correction makes every near point
// equally likely per round, hence the output is uniform on B_S(q, α)
// (Theorem 4), and fresh per-query randomness makes outputs independent.
// Queries are safe for concurrent use: banks are read-only after
// construction, every query builds its own plan, and sampling randomness
// comes from per-query streams split off the seed by an atomic counter.
type FilterIndependent struct {
	points []vector.Vec
	alpha  float64
	beta   float64
	opts   FilterIndependentOptions
	banks  []*filter.Bank
	qseed  uint64
	qctr   atomic.Uint64
}

// NewFilterIndependent indexes unit vectors for inner-product threshold
// alpha with far threshold beta (−1 < beta < alpha < 1).
func NewFilterIndependent(points []vector.Vec, alpha, beta float64, opts FilterIndependentOptions, seed uint64) (*FilterIndependent, error) {
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	opts = opts.withDefaults(len(points))
	src := rng.New(seed)
	params := filter.Params{Alpha: alpha, Beta: beta, Eps: opts.Eps, M1T: opts.M1T, T: opts.T}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	banks := make([]*filter.Bank, opts.L)
	for i := range banks {
		b, err := filter.NewBank(points, params, src.Split())
		if err != nil {
			return nil, err
		}
		banks[i] = b
	}
	return &FilterIndependent{
		points: points,
		alpha:  alpha,
		beta:   beta,
		opts:   opts,
		banks:  banks,
		qseed:  src.Uint64(),
	}, nil
}

// N returns the number of indexed points.
func (f *FilterIndependent) N() int { return len(f.points) }

// Alpha returns the near threshold.
func (f *FilterIndependent) Alpha() float64 { return f.alpha }

// Beta returns the far threshold.
func (f *FilterIndependent) Beta() float64 { return f.beta }

// Banks returns the number of independent banks L.
func (f *FilterIndependent) Banks() int { return len(f.banks) }

// Point returns the indexed point with the given id.
func (f *FilterIndependent) Point(id int32) vector.Vec { return f.points[id] }

// bucketRef identifies one selected bucket: bank index and packed key.
type bucketRef struct {
	bank int
	key  uint64
}

// fiPlan gathers the selected buckets of all banks for one query. The plan
// is deterministic given (structure, query): all sampling randomness lives
// in the rejection loop, so one plan can serve many independent samples.
type fiPlan struct {
	refs     []bucketRef
	selected map[bucketRef]struct{}
	// master[i] references the stored ids of refs[i] (never mutated).
	master [][]int32
	total  int
	// sims memoizes ⟨q, p⟩ per candidate across samples of the same plan.
	sims map[int32]float64
}

func (f *FilterIndependent) buildPlan(q vector.Vec, st *QueryStats) *fiPlan {
	p := &fiPlan{selected: make(map[bucketRef]struct{}), sims: make(map[int32]float64)}
	for l, bank := range f.banks {
		bp := bank.Query(q)
		st.filters(bp.FilterEvals)
		for _, key := range bp.Keys {
			st.bucket()
			ref := bucketRef{bank: l, key: key}
			p.refs = append(p.refs, ref)
			p.selected[ref] = struct{}{}
			ids := bank.Bucket(key)
			p.master = append(p.master, ids)
			p.total += len(ids)
		}
	}
	return p
}

func (p *fiPlan) simOf(f *FilterIndependent, q vector.Vec, id int32, st *QueryStats) float64 {
	if s, ok := p.sims[id]; ok {
		return s
	}
	st.score()
	s := vector.Dot(q, f.points[id])
	p.sims[id] = s
	return s
}

// multiplicity returns c_p: in how many selected buckets point id occurs.
func (f *FilterIndependent) multiplicity(p *fiPlan, id int32) int {
	c := 0
	for l, bank := range f.banks {
		if _, ok := p.selected[bucketRef{bank: l, key: bank.KeyOf(id)}]; ok {
			c++
		}
	}
	return c
}

// QueryNN is the plain (α, β)-NN query of Section 5.1/Theorem 3 run on all
// banks: it returns the first candidate with inner product ≥ beta, scanning
// the selected buckets (in stored order). ok=false when no such point is in
// any candidate bucket.
func (f *FilterIndependent) QueryNN(q vector.Vec, st *QueryStats) (id int32, ok bool) {
	for _, bank := range f.banks {
		bp := bank.Query(q)
		st.filters(bp.FilterEvals)
		for _, key := range bp.Keys {
			st.bucket()
			for _, cand := range bank.Bucket(key) {
				st.point()
				st.score()
				if vector.Dot(q, f.points[cand]) >= f.beta {
					st.found(true)
					return cand, true
				}
			}
		}
	}
	st.found(false)
	return 0, false
}

// Sample returns a uniform, independent sample from B_S(q, α) = {p : ⟨p,q⟩ ≥ α},
// or ok=false when no near point appears in the selected buckets.
func (f *FilterIndependent) Sample(q vector.Vec, st *QueryStats) (id int32, ok bool) {
	plan := f.buildPlan(q, st)
	return f.sampleFromPlan(q, plan, st)
}

// sampleFromPlan runs one existence check plus rejection loop against a
// prepared plan. Each call uses a fresh per-query randomness stream, so
// repeated calls on the same plan produce independent samples — the plan
// itself carries no randomness.
func (f *FilterIndependent) sampleFromPlan(q vector.Vec, plan *fiPlan, st *QueryStats) (int32, bool) {
	if plan.total == 0 {
		st.found(false)
		return 0, false
	}
	var qsrc rng.Source
	qsrc.Seed(f.qseed ^ rng.Mix64(f.qctr.Add(1)))
	// Existence check (the paper runs the standard query first): scan
	// buckets in random order, stop at the first near point. Similarities
	// are memoized in the plan — the rejection loop revisits them.
	exists := false
	order := qsrc.Perm(len(plan.refs))
	for _, bi := range order {
		for _, cand := range plan.master[bi] {
			st.point()
			if plan.simOf(f, q, cand, st) >= f.alpha {
				exists = true
				break
			}
		}
		if exists {
			break
		}
	}
	if !exists {
		st.found(false)
		return 0, false
	}
	// Rejection loop with lazy far-point deletion (steps A–D), run on a
	// per-call mutable copy so the structure itself stays untouched (the
	// paper restores removed far points after reporting; copying achieves
	// the same at the same asymptotic cost as the existence scan).
	contents := make([][]int32, len(plan.master))
	for i, ids := range plan.master {
		contents[i] = append([]int32(nil), ids...)
	}
	fw := newFenwick(contents)
	maxRounds := f.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200 * (len(f.banks) + 1) * (plan.total + 1)
	}
	for round := 0; round < maxRounds; round++ {
		st.round()
		total := fw.total()
		if total == 0 {
			break // only far points remained and all were deleted
		}
		pos := qsrc.Intn(total)
		bi, off := fw.find(pos)
		cand := contents[bi][off]
		sim := plan.simOf(f, q, cand, st)
		switch {
		case sim >= f.alpha:
			cp := f.multiplicity(plan, cand)
			if cp < 1 {
				cp = 1 // the bucket we drew from always counts
			}
			if qsrc.Bernoulli(1 / float64(cp)) {
				st.found(true)
				return cand, true
			}
		case sim < f.beta:
			// Far point: delete lazily from this bucket copy.
			ids := contents[bi]
			last := len(ids) - 1
			ids[off] = ids[last]
			contents[bi] = ids[:last]
			fw.add(bi, -1)
		default:
			// (β, α)-point: stays, costs a round (accounted by Theorem 4's
			// b_β/b_α factor).
		}
	}
	st.found(false)
	return 0, false
}

// RecalledBall returns the distinct near points (⟨p, q⟩ ≥ α) present in
// the query's selected buckets — the portion of the true ball the structure
// can sample from. The plan is deterministic per (structure, query), so
// this is the exact support of Sample's output distribution.
func (f *FilterIndependent) RecalledBall(q vector.Vec, st *QueryStats) []int32 {
	plan := f.buildPlan(q, st)
	seen := make(map[int32]struct{})
	var out []int32
	for _, ids := range plan.master {
		for _, id := range ids {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			if plan.simOf(f, q, id, st) >= f.alpha {
				out = append(out, id)
			}
		}
	}
	return out
}

// SampleK returns k independent with-replacement samples from B_S(q, α).
// The deterministic query plan is built once and reused; each draw uses
// fresh randomness, so the samples remain mutually independent.
func (f *FilterIndependent) SampleK(q vector.Vec, k int, st *QueryStats) []int32 {
	plan := f.buildPlan(q, st)
	out := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		if id, ok := f.sampleFromPlan(q, plan, st); ok {
			out = append(out, id)
		}
	}
	return out
}

// fenwick is a binary-indexed tree over bucket sizes supporting weighted
// uniform selection of a (bucket, offset) pair and point deletions.
type fenwick struct {
	tree []int
	n    int
	sum  int
}

func newFenwick(contents [][]int32) *fenwick {
	n := len(contents)
	f := &fenwick{tree: make([]int, n+1), n: n}
	for i, c := range contents {
		f.add(i, len(c))
	}
	return f
}

// add adds delta to the size of bucket i.
func (f *fenwick) add(i, delta int) {
	f.sum += delta
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += delta
	}
}

// total returns the sum of all bucket sizes.
func (f *fenwick) total() int { return f.sum }

// find locates the bucket containing global position v (0-based) and
// returns (bucket index, offset within bucket).
func (f *fenwick) find(v int) (bucket, offset int) {
	idx := 0
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	rem := v
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= rem {
			idx = next
			rem -= f.tree[next]
		}
	}
	return idx, rem
}
