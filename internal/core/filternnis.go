package core

import (
	"context"
	"errors"
	"iter"
	"math"
	"sync/atomic"
	"time"

	"fairnn/internal/filter"
	"fairnn/internal/obs"
	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// FilterIndependentOptions tunes the Section 5 α-NNIS structure.
type FilterIndependentOptions struct {
	// Eps is the per-bank failure parameter ε of f(α, ε). Default 0.1.
	Eps float64
	// L is the number of independent banks, Θ(log n). Default ⌈1.5·log₂ n⌉.
	L int
	// M1T and T override the bank geometry (0 → paper defaults).
	M1T, T int
	// MaxRounds caps the rejection loop per query as a safety net; the
	// loop terminates with probability 1 whenever a near point exists.
	// Default 0 means 200·(L+1)·(K+1) rounds, far beyond the expected
	// O((b_β/b_α)·log n).
	MaxRounds int
	// Memo is the per-query memory discipline: which similarity-memo
	// backend pooled queriers carry (dense 16 B/point arrays below
	// Memo.DenseThreshold points, a compact o(n) table above) and how
	// much scratch the querier pool may retain across checkouts.
	Memo MemoOptions
	// Obs, when non-nil, registers the draw-loop telemetry bundle
	// (layer="filter") and records into it on every draw. A nil
	// registry is contractually invisible (bit-identical streams, zero
	// allocations), and the enabled record path is zero-alloc too.
	Obs *obs.Registry
}

func (o FilterIndependentOptions) withDefaults(n int) FilterIndependentOptions {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.L <= 0 {
		o.L = int(math.Ceil(1.5 * math.Log2(float64(n)+1)))
		if o.L < 3 {
			o.L = 3
		}
	}
	return o
}

// FilterIndependent solves the α-NNIS problem (Section 5.2): L = Θ(log n)
// independent filter banks, each storing every point exactly once, so the
// total space is nearly linear. A query enumerates the above-threshold
// buckets of all banks, verifies that a near point exists, then repeatedly
// draws a uniform bucket entry, deletes far points lazily, and accepts a
// near point p with probability 1/c_p, where c_p is the number of selected
// buckets containing p. The multiplicity correction makes every near point
// equally likely per round, hence the output is uniform on B_S(q, α)
// (Theorem 4), and fresh per-query randomness makes outputs independent.
// Queries are safe for concurrent use: banks are read-only after
// construction, per-query scratch (the plan, the similarity memo, the
// rejection-loop working set) comes from a capped pool — at most
// opts.Memo.MaxRetainedQueriers queriers are retained across checkouts,
// trimmed to opts.Memo.ScratchBudget bytes each — and sampling
// randomness comes from per-query streams split off the seed by an
// atomic counter. Steady-state queries perform zero heap allocations.
type FilterIndependent struct {
	points []vector.Vec
	alpha  float64
	beta   float64
	opts   FilterIndependentOptions
	memo   MemoOptions
	banks  []*filter.Bank
	qseed  uint64
	qctr   atomic.Uint64
	pool   BoundedPool[fiQuerier]
	met    *obs.QueryMetrics
}

// NewFilterIndependent indexes unit vectors for inner-product threshold
// alpha with far threshold beta (−1 < beta < alpha < 1).
func NewFilterIndependent(points []vector.Vec, alpha, beta float64, opts FilterIndependentOptions, seed uint64) (*FilterIndependent, error) {
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	opts = opts.withDefaults(len(points))
	src := rng.New(seed)
	params := filter.Params{Alpha: alpha, Beta: beta, Eps: opts.Eps, M1T: opts.M1T, T: opts.T}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	banks := make([]*filter.Bank, opts.L)
	for i := range banks {
		b, err := filter.NewBank(points, params, src.Split())
		if err != nil {
			return nil, err
		}
		banks[i] = b
	}
	f := &FilterIndependent{
		points: points,
		alpha:  alpha,
		beta:   beta,
		opts:   opts,
		memo:   opts.Memo.withDefaults().withDenseFloor(len(points), 16*len(points)),
		banks:  banks,
		qseed:  src.Uint64(),
		met:    obs.NewQueryMetrics(opts.Obs, "filter"),
	}
	f.pool.SetCap(f.memo.MaxRetainedQueriers)
	return f, nil
}

// N returns the number of indexed points.
func (f *FilterIndependent) N() int { return len(f.points) }

// Size returns the number of indexed points (the Sampler contract).
func (f *FilterIndependent) Size() int { return len(f.points) }

// Alpha returns the near threshold.
func (f *FilterIndependent) Alpha() float64 { return f.alpha }

// Beta returns the far threshold.
func (f *FilterIndependent) Beta() float64 { return f.beta }

// Banks returns the number of independent banks L.
func (f *FilterIndependent) Banks() int { return len(f.banks) }

// Point returns the indexed point with the given id.
func (f *FilterIndependent) Point(id int32) vector.Vec { return f.points[id] }

// bucketRef identifies one selected bucket: bank index and packed key.
type bucketRef struct {
	bank int32
	key  uint64
}

// fiQuerier is the pooled per-query scratch of the Section 5 sampler,
// mirroring the rankedBase querier pattern: the deterministic query plan
// (selected bucket refs and their stored id slices), an epoch-stamped
// similarity memo so ⟨q, p⟩ is computed at most once per query across the
// existence check and every rejection round (and across all k loops of a
// SampleK), and the rejection loop's mutable working set (flat candidate
// copy, Fenwick tree, shuffle order). Steady-state queries touch only
// this struct and therefore allocate nothing. The memo is a pluggable
// backend (see memo.go): dense 16 B/point arrays below the point-count
// threshold, a compact o(n) stamped hash table above it.
type fiQuerier struct {
	refs    []bucketRef
	master  [][]int32
	total   int
	scratch filter.QueryScratch

	// similarity memo backend; values are math.Float64bits(⟨q, p_id⟩).
	sim memoTable

	// rejection-loop working set.
	flat     []int32
	contents [][]int32
	fw       fenwick
	order    []int32
	rng      rng.Source

	// blocked existence-scan scratch (simBlock): memo-miss ids, the
	// batched kernel output, and the per-position sims of one block.
	pend     []int32
	batchOut []float64
	vals     []float64

	// mstats collects per-draw counter deltas for the telemetry bundle
	// when the caller passed a nil *QueryStats (see querier.mstats).
	mstats QueryStats
}

// scratchBytes reports the querier's retained backing-array footprint:
// the memo plus the candidate-sized rejection working set and the filter
// evaluation scratch.
//
//fairnn:noalloc
func (qr *fiQuerier) scratchBytes() int {
	return qr.sim.retainedBytes() +
		4*(cap(qr.flat)+cap(qr.order)+cap(qr.pend)) +
		16*cap(qr.refs) + 24*(cap(qr.master)+cap(qr.contents)) +
		8*(cap(qr.fw.tree)+cap(qr.batchOut)+cap(qr.vals)) +
		qr.scratch.RetainedBytes()
}

// trim enforces the pool's scratch budget — on the querier's summed
// footprint, so one retained querier can never pin a multiple of the
// budget — before it is retained. The working-set buffers are freed
// first (they regrow lazily); the similarity memo survives whenever it
// fits the budget on its own, and frees itself otherwise.
//
//fairnn:noalloc
func (qr *fiQuerier) trim(budget int) {
	if qr.scratchBytes() <= budget {
		return
	}
	qr.flat, qr.order = nil, nil
	qr.refs, qr.master, qr.contents = nil, nil, nil
	qr.pend, qr.batchOut, qr.vals = nil, nil, nil
	qr.fw = fenwick{}
	qr.scratch.Trim(0)
	qr.sim.shrink(budget)
}

// getQuerier checks scratch out of the pool and advances the similarity-
// memo epoch (one checkout = one logical query).
//
//fairnn:noalloc
func (f *FilterIndependent) getQuerier() *fiQuerier {
	qr := f.pool.Get()
	if qr == nil {
		qr = &fiQuerier{sim: newMemoTable(f.memo, len(f.points), true)}
	}
	qr.sim.reset()
	return qr
}

// putQuerier returns scratch to the bounded pool, trimming oversized
// buffers first and dropping queriers beyond the retention cap (the same
// burst-memory discipline as rankedBase.putQuerier).
//
//fairnn:noalloc
func (f *FilterIndependent) putQuerier(qr *fiQuerier) {
	qr.trim(f.memo.ScratchBudget)
	f.pool.Put(qr)
}

// MemoBackendInUse reports the resolved similarity-memo backend.
func (f *FilterIndependent) MemoBackendInUse() MemoBackend {
	return f.memo.resolveBackend(len(f.points))
}

// RetainedScratchBytes reports the backing-array footprint of the pooled
// per-query scratch this structure currently pins between queries.
func (f *FilterIndependent) RetainedScratchBytes() int {
	total := 0
	f.pool.Fold(func(qr *fiQuerier) { total += qr.scratchBytes() })
	return total
}

// RetainedQueriers reports how many queriers the pool currently holds.
func (f *FilterIndependent) RetainedQueriers() int { return f.pool.Retained() }

// buildPlan gathers the selected buckets of all banks for one query into
// the querier. The plan is deterministic given (structure, query): all
// sampling randomness lives in the rejection loop, so one plan can serve
// many independent samples.
//
//fairnn:noalloc
func (f *FilterIndependent) buildPlan(q vector.Vec, qr *fiQuerier, st *QueryStats) {
	qr.refs = qr.refs[:0]
	qr.master = qr.master[:0]
	qr.total = 0
	for l, bank := range f.banks {
		bp := bank.QueryInto(q, &qr.scratch)
		st.filters(bp.FilterEvals)
		for _, key := range bp.Keys {
			st.bucket()
			qr.refs = append(qr.refs, bucketRef{bank: int32(l), key: key})
			ids := bank.Bucket(key)
			qr.master = append(qr.master, ids)
			qr.total += len(ids)
		}
	}
}

// simOf returns ⟨q, p_id⟩ through the epoch-stamped memo: each candidate
// is scored at most once per query; repeats are charged to
// st.ScoreCacheHits. The dense backend is special-cased so its hot path
// stays two array loads; the compact backend goes through the memoTable
// interface and charges st.MemoProbes.
//
//fairnn:noalloc
func (f *FilterIndependent) simOf(qr *fiQuerier, q vector.Vec, id int32, st *QueryStats) float64 {
	if d, ok := qr.sim.(*denseWordMemo); ok {
		d.ensure()
		if d.stamp[id] == d.epoch {
			st.cacheHit()
			return math.Float64frombits(d.vals[id])
		}
		st.score()
		s := vector.Dot(q, f.points[id])
		d.stamp[id] = d.epoch
		d.vals[id] = math.Float64bits(s)
		return s
	}
	st.memoProbe()
	if v, ok := qr.sim.get(id); ok {
		st.cacheHit()
		return math.Float64frombits(v)
	}
	st.score()
	s := vector.Dot(q, f.points[id])
	qr.sim.put(id, math.Float64bits(s))
	return s
}

// fiBatchBlock is the scoring block of the existence scan: candidates are
// memo-probed and kernel-scored this many at a time. Large enough to
// amortize kernel dispatch, small enough that an early near hit wastes at
// most one block of speculative scores.
const fiBatchBlock = 64

// simBlock fills qr.vals[k] = ⟨q, p_ids[k]⟩ for one candidate block and
// returns the filled slice. Memo hits are read back (charged to
// st.ScoreCacheHits, exactly like simOf); misses are gathered into
// qr.pend, scored with one batched kernel call (bit-identical to the
// per-pair vector.Dot on either kernel tier), memoized, and charged to
// st.ScoreEvals and st.BatchScored. NaN marks a pending slot between the
// two passes — indexed vectors with NaN components are outside every
// sampler contract.
//
//fairnn:noalloc
func (f *FilterIndependent) simBlock(qr *fiQuerier, q vector.Vec, ids []int32, st *QueryStats) []float64 {
	if cap(qr.vals) < len(ids) {
		qr.vals = make([]float64, len(ids))
	}
	vals := qr.vals[:len(ids)]
	pend := qr.pend[:0]
	nan := math.NaN()
	if d, ok := qr.sim.(*denseWordMemo); ok {
		d.ensure()
		for k, id := range ids {
			if d.stamp[id] == d.epoch {
				st.cacheHit()
				vals[k] = math.Float64frombits(d.vals[id])
			} else {
				vals[k] = nan
				pend = append(pend, id)
			}
		}
	} else {
		for k, id := range ids {
			st.memoProbe()
			if v, ok := qr.sim.get(id); ok {
				st.cacheHit()
				vals[k] = math.Float64frombits(v)
			} else {
				vals[k] = nan
				pend = append(pend, id)
			}
		}
	}
	if len(pend) > 0 {
		if cap(qr.batchOut) < len(pend) {
			qr.batchOut = make([]float64, len(pend))
		}
		out := qr.batchOut[:len(pend)]
		vector.DotBatchIDs(q, f.points, pend, out)
		if st != nil {
			st.ScoreEvals += len(pend)
			st.BatchScored += len(pend)
		}
		j := 0
		if d, ok := qr.sim.(*denseWordMemo); ok {
			for k := range vals {
				if !math.IsNaN(vals[k]) {
					continue
				}
				id, s := pend[j], out[j]
				vals[k] = s
				d.stamp[id] = d.epoch
				d.vals[id] = math.Float64bits(s)
				j++
			}
		} else {
			for k := range vals {
				if !math.IsNaN(vals[k]) {
					continue
				}
				id, s := pend[j], out[j]
				vals[k] = s
				qr.sim.put(id, math.Float64bits(s))
				j++
			}
		}
	}
	qr.pend = pend
	return vals
}

// multiplicity returns c_p: in how many selected buckets point id occurs.
// Each bank stores a point exactly once (under KeyOf), so one pass over
// the selected refs suffices — no per-query set structure needed.
//
//fairnn:noalloc
func (f *FilterIndependent) multiplicity(qr *fiQuerier, id int32) int {
	c := 0
	for _, ref := range qr.refs {
		if f.banks[ref.bank].KeyOf(id) == ref.key {
			c++
		}
	}
	return c
}

// QueryNN is the plain (α, β)-NN query of Section 5.1/Theorem 3 run on all
// banks: it returns the first candidate with inner product ≥ beta, scanning
// the selected buckets (in stored order). ok=false when no such point is in
// any candidate bucket.
func (f *FilterIndependent) QueryNN(q vector.Vec, st *QueryStats) (id int32, ok bool) {
	qr := f.getQuerier()
	defer f.putQuerier(qr)
	for _, bank := range f.banks {
		bp := bank.QueryInto(q, &qr.scratch)
		st.filters(bp.FilterEvals)
		for _, key := range bp.Keys {
			st.bucket()
			for _, cand := range bank.Bucket(key) {
				st.point()
				st.score()
				if vector.Dot(q, f.points[cand]) >= f.beta {
					st.found(true)
					return cand, true
				}
			}
		}
	}
	st.found(false)
	return 0, false
}

// Sample returns a uniform, independent sample from B_S(q, α) = {p : ⟨p,q⟩ ≥ α},
// or ok=false when no near point appears in the selected buckets.
//
//fairnn:noalloc
func (f *FilterIndependent) Sample(q vector.Vec, st *QueryStats) (id int32, ok bool) {
	id, err := f.SampleContext(context.Background(), q, st)
	return id, err == nil
}

// SampleContext is the one query entry sequence (Sample delegates here
// with context.Background(), so the two entry points cannot diverge):
// the rejection loop polls ctx.Err() every ctxCheckRounds rounds, so a
// query spinning on a mid-heavy (β, α) workload returns ctx's error
// within one check interval instead of burning its MaxRounds budget. A
// failed (but uncanceled) query returns ErrNoSample. The poll draws no
// randomness and the Background path allocates nothing, so Sample's draw
// order, output and zero-allocation steady state are unchanged.
//
//fairnn:noalloc
func (f *FilterIndependent) SampleContext(ctx context.Context, q vector.Vec, st *QueryStats) (int32, error) {
	qr := f.getQuerier()
	defer f.putQuerier(qr)
	f.buildPlan(q, qr, st)
	id, ok := f.sampleFromPlan(ctx, q, qr, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns an unbounded stream of independent uniform samples from
// B_S(q, α). The deterministic query plan is built once per stream and
// the similarity memo carries across draws (the SampleK amortization,
// without a bounded output buffer). The stream ends when the consumer
// breaks, when ctx is done (yielding ctx.Err() once), or when a draw
// fails (yielding ErrNoSample).
func (f *FilterIndependent) Samples(ctx context.Context, q vector.Vec) iter.Seq2[int32, error] {
	return func(yield func(int32, error) bool) {
		qr := f.getQuerier()
		defer f.putQuerier(qr)
		f.buildPlan(q, qr, nil)
		for {
			id, ok := f.sampleFromPlan(ctx, q, qr, nil)
			id, err := sampleCtxResult(ctx, id, ok)
			if err != nil {
				yield(0, err)
				return
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}

// sampleFromPlan is the telemetry choke point around drawFromPlan:
// without a registry it is a tail call (the disabled path pays nothing);
// with one it times the draw and records the rejection-loop deltas,
// counting into the querier's scratch stats when the caller passed nil.
// Metrics writes are observational and draw no randomness, so same-seed
// streams stay bit-identical either way.
//
//fairnn:noalloc
func (f *FilterIndependent) sampleFromPlan(ctx context.Context, q vector.Vec, qr *fiQuerier, st *QueryStats) (int32, bool) {
	m := f.met
	if m == nil {
		return f.drawFromPlan(ctx, q, qr, st)
	}
	if st == nil {
		qr.mstats = QueryStats{}
		st = &qr.mstats
	}
	preRounds, preHits := st.Rounds, st.ScoreCacheHits
	preBatch, preEvals := st.BatchScored, st.ScoreEvals
	t0 := time.Now()
	id, ok := f.drawFromPlan(ctx, q, qr, st)
	m.ObserveDraw(time.Since(t0), ok, st.Rounds-preRounds, st.ScoreCacheHits-preHits,
		st.BatchScored-preBatch, st.ScoreEvals-preEvals, false)
	return id, ok
}

// drawFromPlan runs one existence check plus rejection loop against the
// querier's prepared plan. Each call seeds a fresh per-query randomness
// stream, so repeated calls on the same plan produce independent samples —
// the plan itself carries no randomness. The rejection loop polls
// ctx.Err() every ctxCheckRounds rounds and exits with ok=false when the
// context is done; the poll draws no randomness, so the output stream
// under an uncanceled context is unchanged.
//
//fairnn:noalloc
func (f *FilterIndependent) drawFromPlan(ctx context.Context, q vector.Vec, qr *fiQuerier, st *QueryStats) (int32, bool) {
	if qr.total == 0 {
		st.found(false)
		return 0, false
	}
	qr.rng.Seed(f.qseed ^ rng.Mix64(f.qctr.Add(1)))
	// Existence check (the paper runs the standard query first): scan
	// buckets in random order, stop at the first near point. Similarities
	// are memoized in the querier — the rejection loop revisits them.
	order := qr.order[:0]
	for i := range qr.refs {
		order = append(order, int32(i))
	}
	qr.order = order
	qr.rng.ShuffleInt32(order)
	// The scan scores candidates one fiBatchBlock at a time through
	// simBlock, checking the threshold in stored order afterwards, and
	// stops at the first block containing a near point. The candidate
	// visit order and the verdicts are identical to a per-candidate scan
	// (no randomness is involved and block scoring is bit-identical to
	// per-pair scoring); the only difference is speculative work — up to
	// one block of extra scores past the first near point, all memoized
	// and reused by the rejection loop.
	exists := false
	for _, bi := range order {
		ids := qr.master[bi]
		for off := 0; off < len(ids) && !exists; off += fiBatchBlock {
			end := min(off+fiBatchBlock, len(ids))
			vals := f.simBlock(qr, q, ids[off:end], st)
			for k := range vals {
				st.point()
				if vals[k] >= f.alpha {
					exists = true
					break
				}
			}
		}
		if exists {
			break
		}
	}
	if !exists {
		st.found(false)
		return 0, false
	}
	// Rejection loop with lazy far-point deletion (steps A–D), run on a
	// per-call mutable copy so the structure itself stays untouched (the
	// paper restores removed far points after reporting; copying achieves
	// the same at the same asymptotic cost as the existence scan). The
	// copy lives in one flat recycled buffer sub-sliced per bucket.
	if cap(qr.flat) < qr.total {
		qr.flat = make([]int32, qr.total)
	}
	flat := qr.flat[:qr.total]
	contents := qr.contents[:0]
	off := 0
	for _, ids := range qr.master {
		n := copy(flat[off:off+len(ids)], ids)
		contents = append(contents, flat[off:off+n:off+n])
		off += n
	}
	qr.contents = contents[:0]
	qr.fw.init(contents)
	maxRounds := f.opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200 * (len(f.banks) + 1) * (qr.total + 1)
	}
	for round := 0; round < maxRounds; round++ {
		st.round()
		if round%ctxCheckRounds == ctxCheckRounds-1 && ctx.Err() != nil {
			st.found(false)
			return 0, false
		}
		total := qr.fw.total()
		if total == 0 {
			break // only far points remained and all were deleted
		}
		pos := qr.rng.Intn(total)
		bi, o := qr.fw.find(pos)
		cand := contents[bi][o]
		sim := f.simOf(qr, q, cand, st)
		switch {
		case sim >= f.alpha:
			cp := f.multiplicity(qr, cand)
			if cp < 1 {
				cp = 1 // the bucket we drew from always counts
			}
			if qr.rng.Bernoulli(1 / float64(cp)) {
				st.found(true)
				return cand, true
			}
		case sim < f.beta:
			// Far point: delete lazily from this bucket copy.
			ids := contents[bi]
			last := len(ids) - 1
			ids[o] = ids[last]
			contents[bi] = ids[:last]
			qr.fw.add(bi, -1)
		default:
			// (β, α)-point: stays, costs a round (accounted by Theorem 4's
			// b_β/b_α factor).
		}
	}
	st.found(false)
	return 0, false
}

// RecalledBall returns the distinct near points (⟨p, q⟩ ≥ α) present in
// the query's selected buckets — the portion of the true ball the structure
// can sample from. The plan is deterministic per (structure, query), so
// this is the exact support of Sample's output distribution.
func (f *FilterIndependent) RecalledBall(q vector.Vec, st *QueryStats) []int32 {
	qr := f.getQuerier()
	defer f.putQuerier(qr)
	f.buildPlan(q, qr, st)
	seen := make(map[int32]struct{})
	var out []int32
	for _, ids := range qr.master {
		for _, id := range ids {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			if f.simOf(qr, q, id, st) >= f.alpha {
				out = append(out, id)
			}
		}
	}
	return out
}

// SampleK returns k independent with-replacement samples from B_S(q, α).
// The deterministic query plan is built once and reused, and the
// similarity memo carries over between draws; each draw uses fresh
// randomness, so the samples remain mutually independent.
func (f *FilterIndependent) SampleK(q vector.Vec, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return f.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and grown
// as needed), the zero-allocation bulk variant.
//
//fairnn:noalloc
func (f *FilterIndependent) SampleKInto(q vector.Vec, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	qr := f.getQuerier()
	defer f.putQuerier(qr)
	f.buildPlan(q, qr, st)
	for i := 0; i < k; i++ {
		if id, ok := f.sampleFromPlan(context.Background(), q, qr, st); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// fenwick is a binary-indexed tree over bucket sizes supporting weighted
// uniform selection of a (bucket, offset) pair and point deletions. init
// recycles the tree slice, so a pooled fenwick allocates only on growth.
type fenwick struct {
	tree []int
	n    int
	sum  int
}

// init (re)builds the tree over the bucket sizes of contents, reusing the
// backing array when capacity allows.
//
//fairnn:noalloc
func (f *fenwick) init(contents [][]int32) {
	n := len(contents)
	if cap(f.tree) < n+1 {
		f.tree = make([]int, n+1)
	} else {
		f.tree = f.tree[:n+1]
		clear(f.tree)
	}
	f.n = n
	f.sum = 0
	for i, c := range contents {
		f.add(i, len(c))
	}
}

// add adds delta to the size of bucket i.
//
//fairnn:noalloc
func (f *fenwick) add(i, delta int) {
	f.sum += delta
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += delta
	}
}

// total returns the sum of all bucket sizes.
//
//fairnn:noalloc
func (f *fenwick) total() int { return f.sum }

// find locates the bucket containing global position v (0-based) and
// returns (bucket index, offset within bucket).
//
//fairnn:noalloc
func (f *fenwick) find(v int) (bucket, offset int) {
	idx := 0
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	rem := v
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= rem {
			idx = next
			rem -= f.tree[next]
		}
	}
	return idx, rem
}
