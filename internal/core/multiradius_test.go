package core

import (
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/stats"
)

func newLineMulti(t *testing.T, n int, radii []float64, seed uint64) *MultiRadius[int] {
	t.Helper()
	m, err := NewMultiRadius[int](intSpace(), allCollide{},
		func(float64) lsh.Params { return lsh.Params{K: 1, L: 1} },
		lineDataset(n), radii, IndependentOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiRadiusPicksTightestNonEmpty(t *testing.T) {
	// Points 0..29; query 100 has nothing within 5, nothing within 20,
	// but {80..100+40} ∩ points... query 25: radius grid {1, 4, 16}.
	m := newLineMulti(t, 30, []float64{16, 1, 4}, 301)
	got := m.Radii()
	if got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("radii not sorted tightest-first: %v", got)
	}
	id, r, ok := m.SampleTightest(25, nil)
	if !ok {
		t.Fatal("sample failed")
	}
	if r != 1 {
		t.Errorf("picked radius %v, want 1 (ball {24,25,26} non-empty)", r)
	}
	if d := m.At(0).Point(id) - 25; d < -1 || d > 1 {
		t.Errorf("returned point %d outside radius-1 ball", m.At(0).Point(id))
	}
}

func TestMultiRadiusFallsBack(t *testing.T) {
	// Query 40 is at distance 11 from the nearest point (29): radius 1 and
	// 4 are empty, 16 succeeds.
	m := newLineMulti(t, 30, []float64{1, 4, 16}, 307)
	id, r, ok := m.SampleTightest(40, nil)
	if !ok {
		t.Fatal("sample failed")
	}
	if r != 16 {
		t.Errorf("picked radius %v, want 16", r)
	}
	if m.At(2).Point(id) < 24 {
		t.Errorf("returned point %d outside ball", m.At(2).Point(id))
	}
}

func TestMultiRadiusEmptyEverywhere(t *testing.T) {
	m := newLineMulti(t, 10, []float64{1, 2}, 311)
	if _, _, ok := m.SampleTightest(1000, nil); ok {
		t.Fatal("sampled from universally empty balls")
	}
}

func TestMultiRadiusUniformAtChosenRadius(t *testing.T) {
	m := newLineMulti(t, 40, []float64{3, 9}, 313)
	freq := stats.NewFrequency()
	for i := 0; i < 10000; i++ {
		id, r, ok := m.SampleTightest(0, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		if r != 3 {
			t.Fatalf("wrong radius %v", r)
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(domainInts(4)); tv > 0.04 {
		t.Errorf("TV at chosen radius = %v", tv)
	}
}

func TestMultiRadiusSampleAtLeast(t *testing.T) {
	// Require at least 10 near points: radius 3 has only 4, radius 9 has
	// 10 — the query must step up to radius 9.
	m := newLineMulti(t, 40, []float64{3, 9}, 317)
	_, r, ok := m.SampleAtLeast(0, 10, nil)
	if !ok {
		t.Fatal("sample failed")
	}
	if r != 9 {
		t.Errorf("picked radius %v, want 9 for minBall=10", r)
	}
	// With minBall 1 the tightest radius suffices.
	_, r, ok = m.SampleAtLeast(0, 1, nil)
	if !ok || r != 3 {
		t.Errorf("minBall=1 picked radius %v, want 3", r)
	}
}

func TestMultiRadiusSimilarityOrientation(t *testing.T) {
	// For similarity spaces, tightest means the highest threshold.
	simSpace := Space[int]{Kind: Similarity, Score: func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return 1 / (1 + float64(d))
	}}
	m, err := NewMultiRadius[int](simSpace, allCollide{},
		func(float64) lsh.Params { return lsh.Params{K: 1, L: 1} },
		lineDataset(30), []float64{0.2, 0.9, 0.5}, IndependentOptions{}, 319)
	if err != nil {
		t.Fatal(err)
	}
	radii := m.Radii()
	if radii[0] != 0.9 || radii[2] != 0.2 {
		t.Fatalf("similarity radii not sorted highest-first: %v", radii)
	}
	_, r, ok := m.SampleTightest(5, nil)
	if !ok {
		t.Fatal("sample failed")
	}
	if r != 0.9 {
		t.Errorf("picked %v, want 0.9 (the point itself has similarity 1)", r)
	}
}

func TestMultiRadiusRejectsEmptyGrid(t *testing.T) {
	if _, err := NewMultiRadius[int](intSpace(), allCollide{},
		func(float64) lsh.Params { return lsh.Params{K: 1, L: 1} },
		lineDataset(10), nil, IndependentOptions{}, 1); err == nil {
		t.Fatal("empty radius grid accepted")
	}
}
