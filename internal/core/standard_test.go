package core

import (
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

// twoPointInstance is the paper's Section 2.2 example: S = {x, y} with
// D(x, y) = r and query q = x. The query collides with x in every bucket
// but with y only in a p1^K fraction of them, so standard LSH almost
// always returns x. K is fixed at 8 to make p1^K ≈ 0.1 (the Section 6
// ChooseK rule is vacuous at n = 2).
func twoPointInstance(t *testing.T, seed uint64) *Standard[set.Set] {
	t.Helper()
	x := set.Range(1, 20)
	y := set.Range(7, 26) // J(x, y) = 14/26 ≈ 0.538
	const k = 8
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, 0.53, 0.99)
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: k, L: l}, []set.Set{x, y}, 0.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStandardBiasTowardsQueryPoint(t *testing.T) {
	// q = x collides with itself in every table, so standard LSH returns x
	// nearly always even though y is also r-near.
	x := set.Range(1, 20)
	hitsX := 0
	const builds = 300
	for b := 0; b < builds; b++ {
		s := twoPointInstance(t, uint64(b+1))
		id, ok := s.Query(x, nil)
		if !ok {
			t.Fatal("query failed")
		}
		if id == 0 {
			hitsX++
		}
	}
	if frac := float64(hitsX) / builds; frac < 0.9 {
		t.Errorf("standard LSH returned x only %v of the time; expected heavy bias", frac)
	}
}

func TestNaiveFairRemovesBias(t *testing.T) {
	x := set.Range(1, 20)
	freq := stats.NewFrequency()
	const builds = 400
	for b := 0; b < builds; b++ {
		s := twoPointInstance(t, uint64(b+1000))
		id, ok := s.NaiveFairSample(x, nil)
		if !ok {
			t.Fatal("query failed")
		}
		freq.Observe(id)
	}
	// With 99% recall of y, naive fair should be close to 50/50.
	if fy := freq.Rel(1); fy < 0.40 || fy > 0.60 {
		t.Errorf("naive fair returns y at rate %v, want ≈ 0.5", fy)
	}
}

func TestStandardQueryRandomTableOrderStillBiased(t *testing.T) {
	// Randomizing table order does not remove the bias (Section 2.2).
	x := set.Range(1, 20)
	hitsX := 0
	const builds = 300
	for b := 0; b < builds; b++ {
		s := twoPointInstance(t, uint64(b+2000))
		id, ok := s.QueryRandomTableOrder(x, nil)
		if !ok {
			t.Fatal("query failed")
		}
		if id == 0 {
			hitsX++
		}
	}
	if frac := float64(hitsX) / builds; frac < 0.75 {
		t.Errorf("random-order LSH returned x at rate %v; bias should persist", frac)
	}
}

func TestStandardOnlyNearReturned(t *testing.T) {
	q := set.Range(1, 30)
	points := []set.Set{
		set.Range(1, 27),
		set.Range(1, 18),
		set.Range(40, 60),
	}
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 5, L: 15}, points, 0.55, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if id, ok := s.Query(q, nil); ok {
			if sim := set.Jaccard(q, s.Point(id)); sim < 0.55 {
				t.Fatalf("similarity %v below threshold", sim)
			}
		}
	}
}

func TestApproxFairReturnsCRNearPoints(t *testing.T) {
	// ApproxFair may return points in (cr, r): with r=0.9, cr=0.5 the
	// Section 6.2 instance lets every point through.
	inst := []set.Set{
		set.Range(1, 27),  // J 0.9
		set.Range(16, 30), // J 0.5
	}
	q := set.Range(1, 30)
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 5, L: 20}, inst, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	sawApprox := false
	for i := 0; i < 400; i++ {
		id, ok := s.ApproxFairSample(q, 0.5, nil)
		if !ok {
			continue
		}
		sim := set.Jaccard(q, s.Point(id))
		if sim < 0.5 {
			t.Fatalf("similarity %v below cr", sim)
		}
		if sim < 0.9 {
			sawApprox = true
		}
	}
	if !sawApprox {
		t.Error("approximate sampler never returned a (c,r)-near point")
	}
}

func TestStandardQueryANNBudget(t *testing.T) {
	// All points far: QueryANN must give up after ~3L inspections.
	q := set.Range(1, 10)
	var points []set.Set
	for i := 0; i < 200; i++ {
		points = append(points, set.Range(uint32(1000+20*i), uint32(1000+20*i+10)))
	}
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 2, L: 4}, points, 0.9, 13)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	if _, ok := s.QueryANN(q, 0.5, &st); ok {
		t.Fatal("found a near point among far-only data")
	}
	if st.PointsInspected > 3*4+4 {
		t.Errorf("inspected %d points, budget is ~3L", st.PointsInspected)
	}
}

func TestStandardCandidatesDeduplicated(t *testing.T) {
	q := set.Range(1, 10)
	points := []set.Set{set.Range(1, 10), set.Range(1, 9)}
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 1, L: 30}, points, 0.5, 17)
	if err != nil {
		t.Fatal(err)
	}
	cands := s.Candidates(q, nil)
	seen := map[int32]bool{}
	for _, id := range cands {
		if seen[id] {
			t.Fatal("duplicate candidate")
		}
		seen[id] = true
	}
}

func TestStandardRecalledBall(t *testing.T) {
	q := set.Range(1, 10)
	points := []set.Set{set.Range(1, 10), set.Range(1, 9), set.Range(50, 60)}
	s, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 2, L: 25}, points, 0.8, 19)
	if err != nil {
		t.Fatal(err)
	}
	ball := s.RecalledBall(q, nil)
	for _, id := range ball {
		if set.Jaccard(q, s.Point(id)) < 0.8 {
			t.Fatal("non-near point in recalled ball")
		}
	}
	if len(ball) == 0 {
		t.Fatal("recalled ball empty; point 0 is identical to q")
	}
}

func TestStandardEmptyPointsRejected(t *testing.T) {
	if _, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 1, L: 1}, nil, 0.5, 1); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 0, L: 1}, []set.Set{set.Range(1, 2)}, 0.5, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}
