package core

import (
	"testing"

	"fairnn/internal/stats"
)

func TestExactBall(t *testing.T) {
	e := NewExact[int](intSpace(), lineDataset(20), 4, 1)
	ball := e.Ball(10, nil)
	if len(ball) != 9 { // {6..14}
		t.Fatalf("ball size %d, want 9", len(ball))
	}
	for _, id := range ball {
		if d := e.Point(id) - 10; d < -4 || d > 4 {
			t.Fatalf("far point %d in ball", e.Point(id))
		}
	}
	if e.BallSize(10, nil) != 9 {
		t.Error("BallSize disagrees with Ball")
	}
	if e.BallSizeAt(10, 2.0) != 5 {
		t.Errorf("BallSizeAt(2) = %d, want 5", e.BallSizeAt(10, 2.0))
	}
	if e.N() != 20 {
		t.Errorf("N = %d", e.N())
	}
}

func TestExactSampleUniform(t *testing.T) {
	e := NewExact[int](intSpace(), lineDataset(30), 4, 3)
	freq := stats.NewFrequency()
	for i := 0; i < 20000; i++ {
		id, ok := e.Sample(0, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(domainInts(5)); tv > 0.03 {
		t.Errorf("TV = %v", tv)
	}
}

func TestExactSampleEmptyBall(t *testing.T) {
	e := NewExact[int](intSpace(), lineDataset(10), 1, 5)
	var st QueryStats
	if _, ok := e.Sample(100, &st); ok {
		t.Fatal("sampled from empty ball")
	}
}
