package core

// The pooled-scratch footprint gauge behind scripts/bench.sh: it measures
// the bytes an index pins between queries after a wide concurrent burst,
// dense vs compact memo backend, and prints machine-parseable FOOTPRINT
// lines that the bench script folds into BENCH_PR3.json. It doubles as a
// regression test for the PR 3 acceptance gate (compact ≤ 1/10 dense).
//
// Knobs (env): FAIRNN_FOOTPRINT_N (indexed points, default 65536 so the
// regular test run stays light; bench.sh sets 1000000) and
// FAIRNN_FOOTPRINT_QUERIERS (burst width, default 64).

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"fairnn/internal/lsh"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// TestPooledScratchFootprintGauge builds the Section 4 structure at
// gauge scale with each memo backend, populates exactly `queriers`
// pooled queriers through real bulk queries (see burstScratch — the
// deterministic equivalent of a `queriers`-goroutine burst), and reports
// the retained footprint. The compact path must pin at most 1/10 of the
// dense path's scratch at any n this runs at.
func TestPooledScratchFootprintGauge(t *testing.T) {
	n := envInt("FAIRNN_FOOTPRINT_N", 65536)
	queriers := envInt("FAIRNN_FOOTPRINT_QUERIERS", 64)
	measure := func(backend MemoBackend) int {
		opts := IndependentOptions{Memo: MemoOptions{Backend: backend, MaxRetainedQueriers: queriers}}
		d, err := NewIndependent[int](intSpace(), chunkFamily{width: 64}, lsh.Params{K: 1, L: 4}, lineDataset(n), 40, opts, 281)
		if err != nil {
			t.Fatal(err)
		}
		bytes, retained := burstScratch(d, queriers)
		if retained != queriers {
			t.Fatalf("%s: retained %d queriers, want %d", backendName(backend), retained, queriers)
		}
		fmt.Printf("FOOTPRINT backend=%s n=%d queriers=%d retained_bytes=%d per_querier_bytes=%d\n",
			backendName(backend), n, queriers, bytes, bytes/queriers)
		return bytes
	}
	denseBytes := measure(MemoDense)
	compactBytes := measure(MemoCompact)
	if compactBytes*10 > denseBytes {
		t.Fatalf("compact pinned %d B vs dense %d B after a %d-querier burst; acceptance gate wants <= 1/10",
			compactBytes, denseBytes, queriers)
	}
}

// BenchmarkNearCached isolates the memo lookup the dense-regression gate
// watches: repeated nearCached hits on one querier, dense fast path vs
// compact interface path. The first visit per id scores the distance;
// steady state is all cache hits.
func BenchmarkNearCached(b *testing.B) {
	for _, backend := range []MemoBackend{MemoDense, MemoCompact} {
		b.Run(backendName(backend), func(b *testing.B) {
			const n = 4096
			opts := IndependentOptions{Memo: MemoOptions{Backend: backend}}
			d, err := NewIndependent[int](intSpace(), chunkFamily{width: 64}, lsh.Params{K: 1, L: 4}, lineDataset(n), 40, opts, 283)
			if err != nil {
				b.Fatal(err)
			}
			qr := d.base.getQuerier()
			defer d.base.putQuerier(qr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.base.nearCached(0, qr, int32(i%256), nil)
			}
		})
	}
}
