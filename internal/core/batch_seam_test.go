package core

// Tests for the batched candidate-scoring seam: Space.ScoreSqBatch routed
// through rankedBase.keepNear (Section 4) and the blocked existence scan
// of the Section 5 sampler. The seam's contract is that batching changes
// cost, never output: within one build the batched and per-candidate
// paths must produce bit-identical sample streams and identical counters,
// and the accelerated kernel tier must either reproduce the portable
// stream exactly or — where last-bit FP divergence flips a verdict — keep
// the output distribution uniform on the ball (the chi-squared oracle the
// repo uses for every stream-affecting change).

import (
	"slices"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/stats"
	"fairnn/internal/vector"
)

// euclideanBall adapts the planted inner-product workload to the ℓ2
// space: unit vectors satisfy ‖p−q‖² = 2−2⟨p,q⟩, so the radius-r ball at
// r = √(2−2α) is exactly the planted ⟨p,q⟩ ≥ α ball.
func euclideanBall(t *testing.T, seed uint64) ([]vector.Vec, vector.Vec, float64) {
	t.Helper()
	w := plantedWorkload(t, 400, 24, 60, 0.8, 0.3, seed)
	radius := 0.632455532033676 // √(2−2·0.8), strictly separating ball and band
	return w.Points, w.Query, radius
}

// newEuclideanIndependent builds the Section 4 sampler over the ℓ2 space,
// optionally with the batch seam stripped (ScoreSqBatch = nil), so the
// batched and per-candidate scoring paths can be compared on otherwise
// identical structures.
func newEuclideanIndependent(t *testing.T, batch bool, backend MemoBackend, seed uint64) (*Independent[vector.Vec], vector.Vec) {
	t.Helper()
	pts, q, radius := euclideanBall(t, 307)
	space := Euclidean()
	if !batch {
		space.ScoreSqBatch = nil
	}
	opts := IndependentOptions{Memo: MemoOptions{Backend: backend}}
	d, err := NewIndependent[vector.Vec](space, lsh.Euclidean{Dim: len(q), W: 2 * radius}, lsh.Params{K: 2, L: 12}, pts, radius, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d, q
}

// TestBatchSeamIdenticalStreams pins the seam's core invariant on both
// memo backends: stripping ScoreSqBatch (forcing per-candidate
// nearCached) changes neither any sample nor any counter.
func TestBatchSeamIdenticalStreams(t *testing.T) {
	for _, backend := range []MemoBackend{MemoDense, MemoCompact} {
		t.Run(backendName(backend), func(t *testing.T) {
			batched, q := newEuclideanIndependent(t, true, backend, 311)
			plain, _ := newEuclideanIndependent(t, false, backend, 311)
			sawBatch := false
			for i := 0; i < 150; i++ {
				var bst, pst QueryStats
				gotID, gotOK := batched.Sample(q, &bst)
				wantID, wantOK := plain.Sample(q, &pst)
				if gotID != wantID || gotOK != wantOK {
					t.Fatalf("Sample #%d: batched (%d, %v), plain (%d, %v)", i, gotID, gotOK, wantID, wantOK)
				}
				if bst.ScoreEvals != pst.ScoreEvals || bst.ScoreCacheHits != pst.ScoreCacheHits ||
					bst.PointsInspected != pst.PointsInspected || bst.MemoProbes != pst.MemoProbes {
					t.Fatalf("Sample #%d counters diverged: batched %+v, plain %+v", i, bst, pst)
				}
				if pst.BatchScored != 0 {
					t.Fatalf("plain path reported BatchScored = %d", pst.BatchScored)
				}
				if bst.BatchScored > bst.ScoreEvals {
					t.Fatalf("BatchScored %d exceeds ScoreEvals %d", bst.BatchScored, bst.ScoreEvals)
				}
				sawBatch = sawBatch || bst.BatchScored > 0
			}
			for i := 0; i < 25; i++ {
				var bst QueryStats
				got := batched.SampleK(q, 20, &bst)
				want := plain.SampleK(q, 20, nil)
				if !slices.Equal(got, want) {
					t.Fatalf("SampleK #%d: batched %v, plain %v", i, got, want)
				}
				sawBatch = sawBatch || bst.BatchScored > 0
			}
			if !sawBatch {
				t.Error("batched structure never exercised the batch path (BatchScored stayed 0)")
			}
		})
	}
}

// TestKeepNearMatchesNearCached is the direct parity test of the
// two-pass block filter against the per-candidate memoized path: same
// verdicts, same counters, same memo contents afterwards — on both memo
// backends, for block sizes on either side of batchMinCandidates.
func TestKeepNearMatchesNearCached(t *testing.T) {
	for _, backend := range []MemoBackend{MemoDense, MemoCompact} {
		t.Run(backendName(backend), func(t *testing.T) {
			a, q := newEuclideanIndependent(t, true, backend, 313)
			b, _ := newEuclideanIndependent(t, true, backend, 313)
			for _, block := range []int{1, batchMinCandidates - 1, batchMinCandidates, 64, 400} {
				qa, qb := a.base.getQuerier(), b.base.getQuerier()
				var sta, stb QueryStats
				ids := make([]int32, 0, block)
				for id := 0; id < block && id < a.N(); id++ {
					ids = append(ids, int32(id))
				}
				// Repeat the block so the second pass hits the memo.
				for pass := 0; pass < 2; pass++ {
					got := a.base.keepNear(q, qa, slices.Clone(ids), &sta)
					want := qb.cand[:0]
					for _, id := range ids {
						if b.base.nearCached(q, qb, id, &stb) {
							want = append(want, id)
						}
					}
					qb.cand = want[:0]
					if !slices.Equal(got, want) {
						t.Fatalf("block %d pass %d: keepNear %v, nearCached %v", block, pass, got, want)
					}
					if sta.ScoreEvals != stb.ScoreEvals || sta.ScoreCacheHits != stb.ScoreCacheHits || sta.MemoProbes != stb.MemoProbes {
						t.Fatalf("block %d pass %d counters diverged: keepNear %+v, nearCached %+v", block, pass, sta, stb)
					}
				}
				a.base.putQuerier(qa)
				b.base.putQuerier(qb)
			}
		})
	}
}

// TestAccelVsPortableStreams compares whole sample streams across kernel
// tiers. The tiers' FP reduction orders differ, so bit-equality of the
// streams is expected but not guaranteed; when they diverge, the
// accelerated stream must still be uniform on the sampled support
// (p ≥ 1e-4 under the chi-squared oracle), which is the actual
// correctness contract of the sampler.
func TestAccelVsPortableStreams(t *testing.T) {
	if !vector.AccelAvailable() {
		t.Skip("accelerated kernels unavailable in this build")
	}
	prev := vector.Accelerated()
	t.Cleanup(func() { vector.SetAccelerated(prev) })

	const draws = 400
	vector.SetAccelerated(false)
	portable, q := newEuclideanIndependent(t, true, MemoDense, 317)
	portableStream := portable.SampleK(q, draws, nil)

	vector.SetAccelerated(true)
	accel, _ := newEuclideanIndependent(t, true, MemoDense, 317)
	accelStream := accel.SampleK(q, draws, nil)

	if slices.Equal(portableStream, accelStream) {
		return // bit-identical across tiers — the strong outcome
	}
	t.Logf("streams diverged across kernel tiers; falling back to the chi-squared oracle")
	freq := stats.NewFrequency()
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := accel.Sample(q, nil)
		if !ok {
			t.Fatal("accelerated sampler failed on the planted ball")
		}
		freq.Observe(id)
	}
	// The support of the portable stream is the recalled ball of this
	// build (every recalled near point appears with overwhelming
	// probability in 20k draws); the accelerated sampler must be uniform
	// over it.
	support := slices.Clone(portableStream)
	for i := 0; i < reps; i++ {
		id, ok := portable.Sample(q, nil)
		if !ok {
			t.Fatal("portable sampler failed on the planted ball")
		}
		support = append(support, id)
	}
	slices.Sort(support)
	domain := slices.Compact(support)
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("accelerated stream not uniform on the recalled ball: p = %v", p)
	}
}

// TestFilterAccelVsPortableStreams is the Section 5 analogue: the blocked
// existence scan plus batched signing must reproduce the portable stream
// across kernel tiers, or stay uniform on the recalled ball (which the
// filter structure exposes exactly via RecalledBall).
func TestFilterAccelVsPortableStreams(t *testing.T) {
	if !vector.AccelAvailable() {
		t.Skip("accelerated kernels unavailable in this build")
	}
	prev := vector.Accelerated()
	t.Cleanup(func() { vector.SetAccelerated(prev) })

	w := plantedWorkload(t, 300, 16, 40, 0.8, 0.5, 331)
	mk := func() *FilterIndependent {
		fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 337)
		if err != nil {
			t.Fatal(err)
		}
		return fi
	}
	const draws = 400
	vector.SetAccelerated(false)
	portable := mk()
	portableStream := portable.SampleK(w.Query, draws, nil)

	vector.SetAccelerated(true)
	accel := mk()
	accelStream := accel.SampleK(w.Query, draws, nil)

	if slices.Equal(portableStream, accelStream) {
		return
	}
	t.Logf("filter streams diverged across kernel tiers; falling back to the chi-squared oracle")
	domain := accel.RecalledBall(w.Query, nil)
	if len(domain) == 0 {
		t.Fatal("empty recalled ball")
	}
	freq := stats.NewFrequency()
	for i := 0; i < 20000; i++ {
		id, ok := accel.Sample(w.Query, nil)
		if !ok {
			t.Fatal("accelerated filter sampler failed on the planted ball")
		}
		freq.Observe(id)
	}
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("accelerated filter stream not uniform on the recalled ball: p = %v", p)
	}
}
