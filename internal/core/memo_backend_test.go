package core

// Tests for the PR 3 memory discipline: the compact memo backend must be
// an exact drop-in for the dense one (bit-identical sample streams across
// every sampler), the compact table itself must survive epoch recycling
// and growth, the bounded querier pool must cap burst memory, and the
// whole compact path must be race-clean.

import (
	"math"
	"slices"
	"sync"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

func backendName(b MemoBackend) string {
	switch b {
	case MemoDense:
		return "dense"
	case MemoCompact:
		return "compact"
	default:
		return "auto"
	}
}

// TestCompactMemoTable unit-tests the open-addressing stamped table in
// word mode (the similarity-memo layout, with the packed key+stamp slot
// word and a parallel value array): lookups within an epoch, invisibility
// across epochs, overwrite semantics, and geometric growth well past the
// seed capacity (forcing collision chains and reinsertion).
func TestCompactMemoTable(t *testing.T) {
	m := &compactMemo{wordVals: true}
	m.reset()
	if _, ok := m.get(7); ok {
		t.Fatal("empty table reported a hit")
	}
	m.put(7, 42)
	if v, ok := m.get(7); !ok || v != 42 {
		t.Fatalf("get(7) = (%d, %v), want (42, true)", v, ok)
	}
	m.put(7, 43)
	if v, _ := m.get(7); v != 43 {
		t.Fatalf("overwrite: get(7) = %d, want 43", v)
	}
	if m.live != 1 {
		t.Fatalf("live = %d after overwrite, want 1", m.live)
	}

	// Fill far beyond the seed capacity: every key must stay retrievable
	// through multiple growth/reinsertion cycles.
	const keys = 10 * compactMemoMinCap
	for i := int32(0); i < keys; i++ {
		m.put(i, uint64(i)*3)
	}
	for i := int32(0); i < keys; i++ {
		if v, ok := m.get(i); !ok || v != uint64(i)*3 {
			t.Fatalf("after growth get(%d) = (%d, %v), want (%d, true)", i, v, ok, uint64(i)*3)
		}
	}

	// A new epoch makes everything invisible without clearing...
	m.reset()
	for i := int32(0); i < keys; i++ {
		if _, ok := m.get(i); ok {
			t.Fatalf("stale entry %d visible after reset", i)
		}
	}
	// ...and the capacity is recycled for the next query.
	m.put(3, 9)
	if v, ok := m.get(3); !ok || v != 9 {
		t.Fatalf("post-reset put/get = (%d, %v), want (9, true)", v, ok)
	}

	// shrink obeys the budget in both directions.
	m.shrink(1 << 30)
	if m.slots == nil {
		t.Fatal("shrink freed a table within budget")
	}
	m.shrink(0)
	if m.slots != nil {
		t.Fatal("shrink kept a table past the budget")
	}
	m.reset()
	m.put(5, 1) // must reallocate lazily after shrink
	if v, ok := m.get(5); !ok || v != 1 {
		t.Fatalf("post-shrink put/get = (%d, %v), want (1, true)", v, ok)
	}
}

// TestCompactMemoBitMode covers the packed near-cache layout: the verdict
// bit rides inside the slot word (no value array at all), so the table is
// 8 B/slot while keeping the full get/put/overwrite/epoch semantics.
func TestCompactMemoBitMode(t *testing.T) {
	m := &compactMemo{}
	m.reset()
	for i := int32(0); i < 3*compactMemoMinCap; i++ {
		m.put(i, uint64(i)&1)
	}
	if m.vals != nil {
		t.Fatal("bit mode allocated a value array")
	}
	for i := int32(0); i < 3*compactMemoMinCap; i++ {
		if v, ok := m.get(i); !ok || v != uint64(i)&1 {
			t.Fatalf("get(%d) = (%d, %v), want (%d, true)", i, v, ok, uint64(i)&1)
		}
	}
	m.put(7, 0) // overwrite flips the packed bit
	if v, ok := m.get(7); !ok || v != 0 {
		t.Fatalf("overwrite get(7) = (%d, %v), want (0, true)", v, ok)
	}
	if got := m.retainedBytes(); got != compactMemoBitSlotBytes*len(m.slots) {
		t.Fatalf("retainedBytes = %d, want %d per slot", got, compactMemoBitSlotBytes)
	}
	m.reset()
	if _, ok := m.get(3); ok {
		t.Fatal("stale bit-mode entry visible after reset")
	}
	// Negative-looking ids (high bit set) must round-trip through the
	// 32-bit packed key.
	m.put(-2, 1)
	if v, ok := m.get(-2); !ok || v != 1 {
		t.Fatalf("get(-2) = (%d, %v), want (1, true)", v, ok)
	}
	if _, ok := m.get(2); ok {
		t.Fatal("id 2 aliased id -2 in the packed key")
	}
}

// TestCompactMemoEpochWrap pins the 31-bit packed stamp's wrap handling:
// when the epoch reaches the packing limit, reset must clear the table
// and restart at 1 so no pre-wrap entry can ever read as live again.
func TestCompactMemoEpochWrap(t *testing.T) {
	for _, wordVals := range []bool{false, true} {
		m := &compactMemo{wordVals: wordVals}
		m.epoch = compactMemoEpochMax - 2
		m.reset() // epoch = max-1, the last representable stamp
		m.put(11, 1)
		if v, ok := m.get(11); !ok || v != 1 {
			t.Fatalf("wordVals=%v: pre-wrap get = (%d, %v)", wordVals, v, ok)
		}
		m.reset() // would be max: must clear and restart at 1
		if m.epoch != 1 {
			t.Fatalf("wordVals=%v: post-wrap epoch = %d, want 1", wordVals, m.epoch)
		}
		if _, ok := m.get(11); ok {
			t.Fatalf("wordVals=%v: pre-wrap entry visible after wrap", wordVals)
		}
		m.put(13, 1)
		if v, ok := m.get(13); !ok || v != 1 {
			t.Fatalf("wordVals=%v: post-wrap put/get = (%d, %v)", wordVals, v, ok)
		}
	}
}

// TestCompactMemoAdversarialCollisions drives ids that all hash to nearby
// slots (multiples of the capacity stride collide under the mask) to
// exercise long linear-probe chains.
func TestCompactMemoAdversarialCollisions(t *testing.T) {
	m := &compactMemo{wordVals: true}
	m.reset()
	ids := make([]int32, 48)
	for i := range ids {
		ids[i] = int32(i * compactMemoMinCap)
		m.put(ids[i], uint64(i))
	}
	for i, id := range ids {
		if v, ok := m.get(id); !ok || v != uint64(i) {
			t.Fatalf("collision chain lost id %d: (%d, %v)", id, v, ok)
		}
	}
}

// newBackendIndependent builds the Section 4 structure with a forced memo
// backend over a multi-bucket family (modFamily), so the rejection loop,
// the merged cursor, and the memo all do real work.
func newBackendIndependent(t *testing.T, backend MemoBackend, seed uint64) *Independent[int] {
	t.Helper()
	opts := IndependentOptions{Memo: MemoOptions{Backend: backend}}
	d, err := NewIndependent[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 5}, lineDataset(128), 20, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMemoBackendsIdenticalStreams is the seeded drop-in property: with
// identical seeds, the dense-memo and compact-memo builds of every
// sampler must emit bit-identical sample streams — the backend may change
// cost, never output. Covered: Independent (NNIS Sample + SampleK),
// Sampler (NNS Sample + SampleK), Weighted, and FilterIndependent
// (Sample + SampleK over planted vectors).
func TestMemoBackendsIdenticalStreams(t *testing.T) {
	t.Run("nnis", func(t *testing.T) {
		dense := newBackendIndependent(t, MemoDense, 211)
		compact := newBackendIndependent(t, MemoCompact, 211)
		for i := 0; i < 200; i++ {
			q := i % 96
			wantID, wantOK := dense.Sample(q, nil)
			gotID, gotOK := compact.Sample(q, nil)
			if wantID != gotID || wantOK != gotOK {
				t.Fatalf("Sample(%d) #%d: compact (%d, %v), dense (%d, %v)", q, i, gotID, gotOK, wantID, wantOK)
			}
		}
		for i := 0; i < 30; i++ {
			want := dense.SampleK(5, 25, nil)
			got := compact.SampleK(5, 25, nil)
			if !slices.Equal(got, want) {
				t.Fatalf("SampleK #%d: compact %v, dense %v", i, got, want)
			}
		}
	})

	t.Run("nns", func(t *testing.T) {
		mk := func(backend MemoBackend) *Sampler[int] {
			s, err := NewSamplerMemo[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 5}, lineDataset(128), 20, MemoOptions{Backend: backend}, 223)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		dense, compact := mk(MemoDense), mk(MemoCompact)
		for q := 0; q < 60; q++ {
			wantID, wantOK := dense.Sample(q, nil)
			gotID, gotOK := compact.Sample(q, nil)
			if wantID != gotID || wantOK != gotOK {
				t.Fatalf("Sample(%d): compact (%d, %v), dense (%d, %v)", q, gotID, gotOK, wantID, wantOK)
			}
			if want, got := dense.SampleK(q, 10, nil), compact.SampleK(q, 10, nil); !slices.Equal(got, want) {
				t.Fatalf("SampleK(%d): compact %v, dense %v", q, got, want)
			}
		}
	})

	t.Run("weighted", func(t *testing.T) {
		mk := func(backend MemoBackend) *Weighted[int] {
			opts := IndependentOptions{Memo: MemoOptions{Backend: backend}}
			w, err := NewWeighted[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 4}, lineDataset(96), 15,
				func(score float64) float64 { return 1 / (1 + score) }, 1, opts, 227)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
		dense, compact := mk(MemoDense), mk(MemoCompact)
		for i := 0; i < 150; i++ {
			q := i % 70
			wantID, wantOK := dense.Sample(q, nil)
			gotID, gotOK := compact.Sample(q, nil)
			if wantID != gotID || wantOK != gotOK {
				t.Fatalf("Weighted.Sample(%d) #%d: compact (%d, %v), dense (%d, %v)", q, i, gotID, gotOK, wantID, wantOK)
			}
		}
	})

	t.Run("filter", func(t *testing.T) {
		w := plantedWorkload(t, 250, 12, 40, 0.8, 0.5, 229)
		mk := func(backend MemoBackend) *FilterIndependent {
			opts := FilterIndependentOptions{Memo: MemoOptions{Backend: backend}}
			fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, opts, 233)
			if err != nil {
				t.Fatal(err)
			}
			return fi
		}
		dense, compact := mk(MemoDense), mk(MemoCompact)
		for i := 0; i < 120; i++ {
			wantID, wantOK := dense.Sample(w.Query, nil)
			gotID, gotOK := compact.Sample(w.Query, nil)
			if wantID != gotID || wantOK != gotOK {
				t.Fatalf("Filter.Sample #%d: compact (%d, %v), dense (%d, %v)", i, gotID, gotOK, wantID, wantOK)
			}
		}
		for i := 0; i < 20; i++ {
			want := dense.SampleK(w.Query, 30, nil)
			got := compact.SampleK(w.Query, 30, nil)
			if !slices.Equal(got, want) {
				t.Fatalf("Filter.SampleK #%d: compact %v, dense %v", i, got, want)
			}
		}
	})
}

// TestCompactSimMemoExactBits pins that round-tripping similarities
// through Float64bits in the compact table is exact: memoized repeats
// must equal the directly computed inner product bit for bit.
func TestCompactSimMemoExactBits(t *testing.T) {
	w := plantedWorkload(t, 200, 10, 30, 0.8, 0.5, 239)
	opts := FilterIndependentOptions{Memo: MemoOptions{Backend: MemoCompact}}
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, opts, 241)
	if err != nil {
		t.Fatal(err)
	}
	qr := fi.getQuerier()
	defer fi.putQuerier(qr)
	var st QueryStats
	for id := int32(0); id < 50; id++ {
		first := fi.simOf(qr, w.Query, id, &st)
		memoized := fi.simOf(qr, w.Query, id, &st)
		direct := vector.Dot(w.Query, fi.Point(id))
		if math.Float64bits(first) != math.Float64bits(direct) || math.Float64bits(memoized) != math.Float64bits(direct) {
			t.Fatalf("id %d: first %x memoized %x direct %x", id, math.Float64bits(first), math.Float64bits(memoized), math.Float64bits(direct))
		}
	}
	if st.ScoreCacheHits != 50 {
		t.Fatalf("ScoreCacheHits = %d, want 50", st.ScoreCacheHits)
	}
	if st.MemoProbes == 0 {
		t.Fatal("compact sim memo recorded no probes")
	}
}

// TestQuerierPoolBurstBounded is the burst-memory regression: after G
// concurrent queries on one structure, the pool must retain at most
// MaxRetainedQueriers queriers — not G — so the steady-state footprint is
// independent of the burst width.
func TestQuerierPoolBurstBounded(t *testing.T) {
	const retain = 3
	opts := IndependentOptions{Memo: MemoOptions{Backend: MemoDense, MaxRetainedQueriers: retain}}
	d, err := NewIndependent[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 4}, lineDataset(256), 30, opts, 251)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
	)
	for g := 0; g < burst; g++ {
		start.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			start.Done()
			<-gate // maximize checkout overlap
			for i := 0; i < 20; i++ {
				d.Sample(i, nil)
			}
		}()
	}
	start.Wait()
	close(gate)
	done.Wait()
	if got := d.RetainedQueriers(); got > retain {
		t.Fatalf("pool retained %d queriers after a %d-goroutine burst, want <= %d", got, burst, retain)
	}
	// Each retained dense querier pins ~8 B/point of near-cache (once
	// touched) plus small candidate buffers; the total must be far below
	// what the burst would have pinned unbounded.
	perQuerier := 8*d.N() + 4096
	if got := d.RetainedScratchBytes(); got > retain*perQuerier {
		t.Fatalf("retained scratch %d B, want <= %d B", got, retain*perQuerier)
	}
}

// TestPutQuerierTrimsOversizedScratch pins the ScratchBudget discipline:
// a querier whose memo grew past the budget must come back to the pool
// with the oversized backing arrays freed.
func TestPutQuerierTrimsOversizedScratch(t *testing.T) {
	opts := IndependentOptions{Memo: MemoOptions{
		Backend:             MemoCompact,
		MaxRetainedQueriers: 4,
		ScratchBudget:       compactMemoBitSlotBytes * compactMemoMinCap, // one seed near-cache table exactly
	}}
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, lineDataset(4096), 4000, opts, 257)
	if err != nil {
		t.Fatal(err)
	}
	// allCollide + a huge radius + a bulk draw makes one checkout touch
	// thousands of distinct candidates, forcing the compact table well
	// past the seed capacity and the candidate buffers past the budget.
	if got := d.SampleK(0, 200, nil); len(got) == 0 {
		t.Fatal("bulk query failed")
	}
	if got := d.RetainedScratchBytes(); got > opts.Memo.ScratchBudget {
		t.Fatalf("retained scratch %d B after Put, want <= budget %d B", got, opts.Memo.ScratchBudget)
	}
	// The trimmed querier must still serve queries correctly.
	if _, ok := d.Sample(0, nil); !ok {
		t.Fatal("query failed after trim")
	}
}

// TestFilterTrimEnforcesSummedBudget pins the Section 5 side of the
// budget contract: the fiQuerier's total footprint — similarity memo,
// rejection working set, plan buffers, and filter scratch together —
// must come back under ScratchBudget after Put, and the trimmed querier
// must keep answering correctly.
func TestFilterTrimEnforcesSummedBudget(t *testing.T) {
	w := plantedWorkload(t, 400, 12, 60, 0.8, 0.5, 277)
	const budget = 2048
	opts := FilterIndependentOptions{Memo: MemoOptions{
		Backend:             MemoCompact,
		MaxRetainedQueriers: 4,
		ScratchBudget:       budget,
	}}
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, opts, 279)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.SampleK(w.Query, 100, nil); len(got) == 0 {
		t.Fatal("bulk query failed")
	}
	if got := fi.RetainedScratchBytes(); got > budget {
		t.Fatalf("retained scratch %d B after Put, want <= summed budget %d B", got, budget)
	}
	if _, ok := fi.Sample(w.Query, nil); !ok {
		t.Fatal("query failed after trim")
	}
}

// TestDenseBudgetFloorPreventsThrash pins the forced-dense semantics: a
// ScratchBudget below the dense-array size must not free the memo on
// every Put (which would silently turn pooling into a per-query O(n)
// allocation) — the effective budget is floored at the dense footprint,
// so the populated array survives in the pool.
func TestDenseBudgetFloorPreventsThrash(t *testing.T) {
	const n = 50_000
	opts := IndependentOptions{Memo: MemoOptions{
		Backend:             MemoDense,
		MaxRetainedQueriers: 2,
		ScratchBudget:       1024, // far below the 8n dense array
	}}
	d, err := NewIndependent[int](intSpace(), chunkFamily{width: 64}, lsh.Params{K: 1, L: 4}, lineDataset(n), 40, opts, 281)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Sample(100, nil); !ok {
		t.Fatal("query failed")
	}
	if got := d.RetainedScratchBytes(); got < 8*n {
		t.Fatalf("retained %d B; the dense near-cache (8n = %d B) must survive Put under the floored budget", got, 8*n)
	}
}

// TestCompactPathConcurrentRace stress-tests the compact backend under
// -race: interleaved Sample/SampleKInto across goroutines on a shared
// compact-forced structure, with outputs checked against the ball.
func TestCompactPathConcurrentRace(t *testing.T) {
	const ballSize = 8
	opts := IndependentOptions{Memo: MemoOptions{Backend: MemoCompact, MaxRetainedQueriers: 2}}
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 3}, lineDataset(64), float64(ballSize-1), opts, 263)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]int32, 0, 16)
			for i := 0; i < 120; i++ {
				dst = d.SampleKInto(0, 8, dst, nil)
				for _, id := range dst {
					if d.Point(id) > ballSize-1 {
						t.Errorf("far point %d returned", d.Point(id))
						return
					}
				}
				if _, ok := d.Sample(0, nil); !ok {
					t.Error("interleaved Sample failed")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCompactScratchSublinear is the CI smoke for the o(n) contract: on a
// bucketed dataset the compact path's retained scratch must stay a small
// fraction of the dense path's 8·n near-cache — at least the 10× headroom
// the acceptance gate demands, with the same query load. The burst is
// simulated deterministically (see burstScratch): each of the 8 pool
// slots is populated by a real query and held checked out so the later
// slots cannot reuse it, exactly the steady state after an 8-wide
// concurrent burst.
func TestCompactScratchSublinear(t *testing.T) {
	const n, queriers = 100_000, 8
	run := func(backend MemoBackend) int {
		opts := IndependentOptions{Memo: MemoOptions{Backend: backend, MaxRetainedQueriers: queriers}}
		d, err := NewIndependent[int](intSpace(), chunkFamily{width: 64}, lsh.Params{K: 1, L: 4}, lineDataset(n), 40, opts, 269)
		if err != nil {
			t.Fatal(err)
		}
		bytes, retained := burstScratch(d, queriers)
		if retained != queriers {
			t.Fatalf("retained %d queriers, want %d", retained, queriers)
		}
		return bytes
	}
	denseBytes := run(MemoDense)
	compactBytes := run(MemoCompact)
	if compactBytes*10 > denseBytes {
		t.Fatalf("compact retained %d B vs dense %d B; want <= 1/10", compactBytes, denseBytes)
	}
	if perQuerier := compactBytes / queriers; perQuerier > n {
		t.Fatalf("compact per-querier scratch = %d B at n = %d; want o(n)", perQuerier, n)
	}
}

// burstScratch populates exactly `queriers` pooled queriers with real
// query work and reports (RetainedScratchBytes, RetainedQueriers). Each
// round runs one bulk query — which checks a querier out of the (empty)
// pool, does real memo work, and returns it — and then holds that querier
// checked out so the next round must allocate a fresh one; finally all
// held queriers go back. This reproduces, deterministically, the pool
// state after `queriers` concurrent checkouts.
func burstScratch[P any](d *Independent[P], queriers int) (bytes, retained int) {
	held := make([]*querier, 0, queriers)
	pts := d.base.points
	for i := 0; i < queriers; i++ {
		d.SampleK(pts[(i*37)%len(pts)], 8, nil)
		held = append(held, d.base.getQuerier())
	}
	for _, qr := range held {
		d.base.putQuerier(qr)
	}
	return d.RetainedScratchBytes(), d.base.pool.Retained()
}

// chunkFamily buckets the integer line into fixed-width chunks — a
// realistic bucket-size profile (each query touches O(L·width) distinct
// candidates, not O(n)) for the footprint tests.
type chunkFamily struct{ width int }

func (f chunkFamily) New(r *rng.Source) lsh.Func[int] {
	off := r.Intn(f.width)
	w := f.width
	return func(p int) uint64 { return uint64((p + off) / w) }
}

func (chunkFamily) CollisionProb(float64) float64 { return 0.9 }

// TestDenseMemoLazyForSampler pins the lazy dense allocation: the
// Section 3 sampler never consults the near-cache, so its pooled queriers
// must not pin the 8·n dense array at all.
func TestDenseMemoLazyForSampler(t *testing.T) {
	const n = 50_000
	s, err := NewSamplerMemo[int](intSpace(), chunkFamily{width: 32}, lsh.Params{K: 1, L: 3}, lineDataset(n), 10, MemoOptions{Backend: MemoDense}, 271)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Sample(i, nil)
		s.SampleK(i, 5, nil)
	}
	if got := s.RetainedScratchBytes(); got >= 8*n {
		t.Fatalf("Sampler retained %d B (>= dense 8n = %d); near-cache must stay unallocated", got, 8*n)
	}
}
