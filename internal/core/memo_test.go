package core

// Tests for the memoized Section 4 rejection loop: the merged candidate
// cursor must report exactly the candidates the per-bucket range reports
// find, the epoch-stamped near-cache must bound distance evaluations
// without touching the output distribution, and the bulk SampleKInto path
// must stay allocation-free and race-clean.

import (
	"slices"
	"sync"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/stats"
)

// modFamily hashes ints by a per-function random modulus, giving each
// table genuinely different bucket contents (unlike allCollide) so the
// k-way merge and deduplication are exercised for real.
type modFamily struct{}

func (modFamily) New(r *rng.Source) lsh.Func[int] {
	m := 2 + r.Intn(4)
	return func(p int) uint64 { return uint64(p % m) }
}

func (modFamily) CollisionProb(float64) float64 { return 0.5 }

// TestSegmentNearMergedMatchesDirect pins the core equivalence of the
// merged cursor: for every segment [lo, hi), the merged view must report
// exactly the distinct near candidates that the legacy L-range-report
// path reports.
func TestSegmentNearMergedMatchesDirect(t *testing.T) {
	const n = 96
	d, err := NewIndependent[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 5}, lineDataset(n), 30, IndependentOptions{}, 71)
	if err != nil {
		t.Fatal(err)
	}
	segs := [][2]int32{{0, int32(n)}, {0, 7}, {5, 20}, {40, 41}, {90, 96}, {17, 17}, {60, 80}}

	direct := func(lo, hi int32) []int32 {
		qr := d.base.getQuerier()
		defer d.base.putQuerier(qr)
		d.base.resolve(0, qr, nil)
		if qr.isMerged {
			t.Fatal("fresh querier must start unmerged")
		}
		out := slices.Clone(d.segmentNear(0, qr, lo, hi, nil))
		slices.Sort(out)
		return out
	}
	merged := func(lo, hi int32) []int32 {
		qr := d.base.getQuerier()
		defer d.base.putQuerier(qr)
		d.base.resolve(0, qr, nil)
		d.base.materializeMerged(qr, nil)
		out := slices.Clone(d.segmentNear(0, qr, lo, hi, nil))
		slices.Sort(out)
		return out
	}
	for _, seg := range segs {
		want := direct(seg[0], seg[1])
		got := merged(seg[0], seg[1])
		if !slices.Equal(got, want) {
			t.Errorf("segment [%d,%d): merged %v, direct %v", seg[0], seg[1], got, want)
		}
	}
}

// TestMergedCursorDedupAndOrder checks the materialized view itself:
// strictly ascending ranks, no duplicate ids, and exactly the union of
// the resolved buckets.
func TestMergedCursorDedupAndOrder(t *testing.T) {
	const n = 80
	d, err := NewIndependent[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 4}, lineDataset(n), 10, IndependentOptions{}, 73)
	if err != nil {
		t.Fatal(err)
	}
	qr := d.base.getQuerier()
	defer d.base.putQuerier(qr)
	d.base.resolve(0, qr, nil)
	union := map[int32]bool{}
	for _, b := range qr.buckets {
		if b == nil {
			continue
		}
		for _, id := range b.IDs() {
			union[id] = true
		}
	}
	d.base.materializeMerged(qr, nil)
	if len(qr.mergedIDs) != len(union) {
		t.Fatalf("merged %d ids, union has %d", len(qr.mergedIDs), len(union))
	}
	for i, id := range qr.mergedIDs {
		if !union[id] {
			t.Errorf("merged id %d not in bucket union", id)
		}
		if qr.mergedRanks[i] != d.base.asg.Of(id) {
			t.Errorf("merged rank of %d is %d, want %d", id, qr.mergedRanks[i], d.base.asg.Of(id))
		}
		if i > 0 && qr.mergedRanks[i-1] >= qr.mergedRanks[i] {
			t.Errorf("ranks not strictly ascending at %d", i)
		}
	}
}

// TestResolveInvalidatesMergedCursor pins the epoch discipline: resolve
// must drop the previous query's merged view and restart the adaptive
// meter, so a pooled querier can never serve stale candidates.
func TestResolveInvalidatesMergedCursor(t *testing.T) {
	d := newLineIndependent(t, 64, 9, 81)
	qr := d.base.getQuerier()
	defer d.base.putQuerier(qr)
	d.base.resolve(0, qr, nil)
	d.base.materializeMerged(qr, nil)
	if !qr.isMerged {
		t.Fatal("materializeMerged did not mark the querier merged")
	}
	d.base.resolve(1, qr, nil)
	if qr.isMerged || qr.rangeWork != 0 {
		t.Errorf("resolve left merged=%v rangeWork=%d, want false/0", qr.isMerged, qr.rangeWork)
	}
	if qr.mergeCost <= 0 {
		t.Errorf("mergeCost = %d, want positive (non-empty buckets)", qr.mergeCost)
	}
}

// TestMemoizedDistributionPreserved is the seeded statistical regression
// for the memoization layers, run once per memo backend (dense and
// compact must both leave the distribution untouched): Sample and SampleK
// frequencies over a fixed dataset must stay uniform on the exact ball
// (chi-squared), the support must equal the ball exactly, and the run
// must actually exercise the merged cursor and the near-cache (otherwise
// the test would vacuously pass on the legacy path).
func TestMemoizedDistributionPreserved(t *testing.T) {
	for _, backend := range []MemoBackend{MemoDense, MemoCompact} {
		t.Run(backendName(backend), func(t *testing.T) {
			testMemoizedDistributionPreserved(t, backend)
		})
	}
}

func testMemoizedDistributionPreserved(t *testing.T, backend MemoBackend) {
	const n, ballSize = 64, 8
	opts := IndependentOptions{Memo: MemoOptions{Backend: backend}}
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 3}, lineDataset(n), float64(ballSize-1), opts, 83)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemoBackendInUse() != backend {
		t.Fatalf("backend = %v, want %v", d.MemoBackendInUse(), backend)
	}
	domain := domainInts(ballSize)

	// Single-sample path.
	var st QueryStats
	freq := stats.NewFrequency()
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(0, &st)
		if !ok {
			t.Fatal("query failed with perfect recall")
		}
		if d.Point(id) > ballSize-1 {
			t.Fatalf("far point %d returned", d.Point(id))
		}
		freq.Observe(id)
	}
	if tv := tvUniform(freq, domain); tv > 0.03 {
		t.Errorf("Sample TV = %v, want < 0.03", tv)
	}
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("Sample chi-square rejects uniformity: p = %v", p)
	}
	if len(freq.Support()) != ballSize {
		t.Errorf("Sample support = %d, want the exact ball %d", len(freq.Support()), ballSize)
	}

	// Bulk path: SampleK draws share one near-cache epoch and (once the
	// meter trips) one merged cursor; the union over batches must stay
	// uniform and the memo layers must have fired.
	var kst QueryStats
	kfreq := stats.NewFrequency()
	dst := make([]int32, 0, 40)
	for i := 0; i < 1200; i++ {
		dst = d.SampleKInto(0, 40, dst, &kst)
		for _, id := range dst {
			if d.Point(id) > ballSize-1 {
				t.Fatalf("far point %d returned by SampleK", d.Point(id))
			}
			kfreq.Observe(id)
		}
	}
	if tv := tvUniform(kfreq, domain); tv > 0.03 {
		t.Errorf("SampleK TV = %v, want < 0.03", tv)
	}
	if _, p := kfreq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("SampleK chi-square rejects uniformity: p = %v", p)
	}
	if len(kfreq.Support()) != ballSize {
		t.Errorf("SampleK support = %d, want the exact ball %d", len(kfreq.Support()), ballSize)
	}
	if !kst.CursorMerged {
		t.Error("SampleK(40) never materialized the merged cursor; the memoized path was not exercised")
	}
	if kst.ScoreCacheHits == 0 {
		t.Error("near-cache recorded no hits across SampleK rounds")
	}
	if backend == MemoCompact && kst.MemoProbes == 0 {
		t.Error("compact backend recorded no MemoProbes; the bounded path was not exercised")
	}
	if backend == MemoDense && kst.MemoProbes != 0 {
		t.Errorf("dense backend recorded %d MemoProbes, want 0 (dense fast path)", kst.MemoProbes)
	}
}

// TestNearCacheBoundsScoreEvals pins the memoization guarantee itself:
// one logical query scores each distinct candidate at most once, so
// ScoreEvals per SampleK call is bounded by n no matter how many
// rejection rounds run.
func TestNearCacheBoundsScoreEvals(t *testing.T) {
	const n = 64
	d := newLineIndependent(t, n, 7, 89)
	for i := 0; i < 20; i++ {
		var st QueryStats
		d.SampleK(0, 50, &st)
		if st.ScoreEvals > n {
			t.Fatalf("SampleK scored %d times, want <= n = %d (near-cache must dedupe)", st.ScoreEvals, n)
		}
	}
	var st QueryStats
	if _, ok := d.Sample(0, &st); !ok {
		t.Fatal("query failed")
	}
	if st.ScoreEvals > n {
		t.Errorf("Sample scored %d times, want <= n = %d", st.ScoreEvals, n)
	}
}

// TestSampleKZeroAllocs asserts the bulk-path perf contract: with a
// recycled destination buffer, steady-state SampleKInto performs zero
// heap allocations even though each call runs many rejection rounds.
func TestSampleKZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are not meaningful")
	}
	d := newLineIndependent(t, 64, 7, 97)
	dst := make([]int32, 0, 32)
	for i := 0; i < 50; i++ {
		dst = d.SampleKInto(0, 16, dst, nil)
	}
	if n := testing.AllocsPerRun(200, func() { dst = d.SampleKInto(0, 16, dst, nil) }); n != 0 {
		t.Errorf("Independent.SampleKInto allocs/op = %v, want 0", n)
	}

	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 2, L: 4}, lineDataset(64), 7, 97)
	if err != nil {
		t.Fatal(err)
	}
	sdst := make([]int32, 0, 32)
	for i := 0; i < 50; i++ {
		sdst = s.SampleKInto(0, 8, sdst, nil)
	}
	if n := testing.AllocsPerRun(200, func() { sdst = s.SampleKInto(0, 8, sdst, nil) }); n != 0 {
		t.Errorf("Sampler.SampleKInto allocs/op = %v, want 0", n)
	}
}

// TestConcurrentSampleKIntoSharedPool stress-tests the querier pool under
// -race: many goroutines interleave bulk and single-sample queries on one
// structure, each with a private destination buffer; every output must
// stay inside the ball.
func TestConcurrentSampleKIntoSharedPool(t *testing.T) {
	const ballSize = 6
	d := newLineIndependent(t, 48, float64(ballSize-1), 101)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]int32, 0, 16)
			for i := 0; i < 150; i++ {
				dst = d.SampleKInto(0, 10, dst, nil)
				for _, id := range dst {
					if d.Point(id) > ballSize-1 {
						t.Errorf("far point %d returned", d.Point(id))
						return
					}
				}
				if i%3 == 0 {
					if _, ok := d.Sample(0, nil); !ok {
						t.Error("interleaved Sample failed")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSamplerSampleKIntoMatchesSampleK pins that the Section 3 bulk
// variant (merged through the pooled rank.Merger) returns exactly the
// deterministic k-smallest-rank answer of SampleK.
func TestSamplerSampleKIntoMatchesSampleK(t *testing.T) {
	s, err := NewSampler[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 5}, lineDataset(96), 30, 103)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 10, 200} {
		want := s.SampleK(0, k, nil)
		got := s.SampleKInto(0, k, nil, nil)
		if !slices.Equal(got, want) {
			t.Errorf("k=%d: SampleKInto %v, SampleK %v", k, got, want)
		}
	}
}
