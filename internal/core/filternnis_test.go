package core

import (
	"testing"

	"fairnn/internal/dataset"
	"fairnn/internal/stats"
	"fairnn/internal/vector"
)

func plantedWorkload(t *testing.T, n, ballSize, midSize int, alpha, beta float64, seed uint64) dataset.PlantedBall {
	t.Helper()
	return dataset.NewPlantedBall(dataset.PlantedBallConfig{
		N: n, Dim: 32, Alpha: alpha, Beta: beta,
		BallSize: ballSize, MidSize: midSize, Seed: seed,
	})
}

func TestFilterIndependentOnlyNearReturned(t *testing.T) {
	w := plantedWorkload(t, 300, 10, 40, 0.8, 0.5, 101)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 103)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range fi.SampleK(w.Query, 300, nil) {
		if ip := vector.Dot(w.Query, fi.Point(id)); ip < 0.8 {
			t.Fatalf("returned point with inner product %v < α", ip)
		}
	}
}

func TestFilterIndependentUniformOverRecalledBall(t *testing.T) {
	// Theorem 4: every near point present in the selected buckets is
	// returned with equal probability. The recalled ball is deterministic
	// per (structure, query), so we test uniformity over it directly.
	w := plantedWorkload(t, 300, 12, 30, 0.8, 0.5, 107)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 109)
	if err != nil {
		t.Fatal(err)
	}
	recalled := fi.RecalledBall(w.Query, nil)
	if len(recalled) < len(w.BallIDs)*3/4 {
		t.Fatalf("recalled only %d of %d near points", len(recalled), len(w.BallIDs))
	}
	freq := stats.NewFrequency()
	const reps = 8000
	ids := fi.SampleK(w.Query, reps, nil)
	if len(ids) != reps {
		t.Fatalf("sampled %d of %d despite recalled ball", len(ids), reps)
	}
	for _, id := range ids {
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(recalled); tv > 0.06 {
		t.Errorf("TV over recalled ball = %v, want < 0.06", tv)
	}
	if _, p := freq.ChiSquareUniform(recalled); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity: p = %v", p)
	}
}

func TestFilterIndependentConsecutiveIndependence(t *testing.T) {
	w := plantedWorkload(t, 200, 4, 20, 0.8, 0.5, 113)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 127)
	if err != nil {
		t.Fatal(err)
	}
	recalled := fi.RecalledBall(w.Query, nil)
	if len(recalled) != 4 {
		t.Skipf("recalled %d of 4; need full recall for the pair test", len(recalled))
	}
	pos := map[int32]int32{}
	for i, id := range recalled {
		pos[id] = int32(i)
	}
	joint := stats.NewFrequency()
	prev := int32(-1)
	const reps = 20000
	ids := fi.SampleK(w.Query, reps, nil)
	if len(ids) != reps {
		t.Fatalf("sampled %d of %d", len(ids), reps)
	}
	for _, id := range ids {
		if prev >= 0 {
			joint.Observe(prev*4 + pos[id])
		}
		prev = pos[id]
	}
	if tv := joint.TVFromUniform(domainInts(16)); tv > 0.05 {
		t.Errorf("joint TV = %v", tv)
	}
}

func TestFilterIndependentNoNearPoint(t *testing.T) {
	// Background-only dataset: no point reaches α = 0.9.
	w := plantedWorkload(t, 150, 0, 10, 0.9, 0.3, 131)
	fi, err := NewFilterIndependent(w.Points, 0.9, 0.3, FilterIndependentOptions{}, 137)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	if _, ok := fi.Sample(w.Query, &st); ok {
		t.Fatal("sampled a point from an empty ball")
	}
	if st.Found {
		t.Error("stats claim Found")
	}
}

func TestFilterIndependentQueryNN(t *testing.T) {
	w := plantedWorkload(t, 250, 8, 20, 0.8, 0.5, 139)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 149)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := fi.QueryNN(w.Query, nil)
	if !ok {
		t.Fatal("QueryNN missed a planted ball of size 8")
	}
	// QueryNN solves (α, β)-NN: the returned point need only be β-near.
	if ip := vector.Dot(w.Query, fi.Point(id)); ip < 0.5 {
		t.Errorf("QueryNN returned inner product %v < β", ip)
	}
}

func TestFilterIndependentSampleK(t *testing.T) {
	w := plantedWorkload(t, 200, 6, 10, 0.8, 0.5, 151)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 157)
	if err != nil {
		t.Fatal(err)
	}
	got := fi.SampleK(w.Query, 20, nil)
	if len(got) < 18 {
		t.Errorf("SampleK returned %d of 20", len(got))
	}
}

func TestFilterIndependentRejectsBadParams(t *testing.T) {
	w := plantedWorkload(t, 50, 2, 2, 0.8, 0.5, 163)
	if _, err := NewFilterIndependent(w.Points, 0.5, 0.8, FilterIndependentOptions{}, 1); err == nil {
		t.Error("beta > alpha accepted")
	}
	if _, err := NewFilterIndependent(nil, 0.8, 0.5, FilterIndependentOptions{}, 1); err == nil {
		t.Error("empty points accepted")
	}
}

func TestFenwick(t *testing.T) {
	contents := [][]int32{{1, 2, 3}, {4}, {}, {5, 6}}
	var f fenwick
	f.init(contents)
	if f.total() != 6 {
		t.Fatalf("total = %d", f.total())
	}
	// Every position maps to the right (bucket, offset).
	wantBucket := []int{0, 0, 0, 1, 3, 3}
	wantOffset := []int{0, 1, 2, 0, 0, 1}
	for v := 0; v < 6; v++ {
		b, off := f.find(v)
		if b != wantBucket[v] || off != wantOffset[v] {
			t.Errorf("find(%d) = (%d,%d), want (%d,%d)", v, b, off, wantBucket[v], wantOffset[v])
		}
	}
	f.add(0, -1)
	if f.total() != 5 {
		t.Fatalf("total after removal = %d", f.total())
	}
	b, off := f.find(2)
	if b != 1 || off != 0 {
		t.Errorf("find(2) after removal = (%d,%d), want (1,0)", b, off)
	}
}

func TestFenwickWeightedSelectionUniform(t *testing.T) {
	contents := [][]int32{{0, 0}, {0, 0, 0, 0}, {0, 0}}
	var f fenwick
	f.init(contents)
	counts := make([]int, 3)
	src := newTestRNG()
	const trials = 40000
	for i := 0; i < trials; i++ {
		b, _ := f.find(src.Intn(f.total()))
		counts[b]++
	}
	// Bucket 1 holds half the mass.
	if frac := float64(counts[1]) / trials; frac < 0.47 || frac > 0.53 {
		t.Errorf("bucket 1 fraction %v, want ≈ 0.5", frac)
	}
}

// TestFilterSampleZeroAllocs pins the PR2 satellite fix: the Section 5
// query path routes all scratch (plan, similarity memo, rejection working
// set, bank-query buffers) through a pooled querier, so steady-state
// Sample and SampleKInto allocate nothing.
func TestFilterSampleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are not meaningful")
	}
	w := plantedWorkload(t, 400, 12, 40, 0.8, 0.5, 211)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 213)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 0, 16)
	for i := 0; i < 30; i++ {
		fi.Sample(w.Query, nil)
		dst = fi.SampleKInto(w.Query, 8, dst, nil)
	}
	if n := testing.AllocsPerRun(100, func() { fi.Sample(w.Query, nil) }); n != 0 {
		t.Errorf("FilterIndependent.Sample allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { dst = fi.SampleKInto(w.Query, 8, dst, nil) }); n != 0 {
		t.Errorf("FilterIndependent.SampleKInto allocs/op = %v, want 0", n)
	}
}

// TestFilterSimMemoSharedAcrossDraws checks the similarity memo contract:
// across one SampleK, each candidate's inner product is computed at most
// once, so ScoreEvals is bounded by n while cache hits grow with k.
func TestFilterSimMemoSharedAcrossDraws(t *testing.T) {
	w := plantedWorkload(t, 300, 10, 40, 0.8, 0.5, 223)
	fi, err := NewFilterIndependent(w.Points, 0.8, 0.5, FilterIndependentOptions{}, 227)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	out := fi.SampleK(w.Query, 50, &st)
	if len(out) == 0 {
		t.Fatal("SampleK found nothing")
	}
	if st.ScoreEvals > fi.N() {
		t.Errorf("SampleK(50) computed %d inner products, want <= n = %d", st.ScoreEvals, fi.N())
	}
	if st.ScoreCacheHits == 0 {
		t.Error("similarity memo recorded no hits across 50 draws")
	}
}
