package core

import (
	"math"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/stats"
)

func newLineWeighted(t *testing.T, n int, radius float64, weight WeightFunc, wMax float64, seed uint64) *Weighted[int] {
	t.Helper()
	w, err := NewWeighted[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(n), radius, weight, wMax, IndependentOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWeightedConstantEqualsUniform(t *testing.T) {
	const ballSize = 8
	w := newLineWeighted(t, 40, float64(ballSize-1), func(float64) float64 { return 1 }, 1, 201)
	freq := stats.NewFrequency()
	for i := 0; i < 12000; i++ {
		id, ok := w.Sample(0, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(domainInts(ballSize)); tv > 0.04 {
		t.Errorf("constant weight should be uniform; TV = %v", tv)
	}
}

func TestWeightedProportionalToWeight(t *testing.T) {
	// Weight w(d) = 1/(1+d): closer points more likely, proportionally.
	const ballSize = 5
	weight := func(d float64) float64 { return 1 / (1 + d) }
	w := newLineWeighted(t, 30, float64(ballSize-1), weight, 1, 203)
	freq := stats.NewFrequency()
	const reps = 30000
	for i := 0; i < reps; i++ {
		id, ok := w.Sample(0, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		freq.Observe(id)
	}
	// Expected distribution: weight(d)/Σweights over ball {0..4}.
	var total float64
	for d := 0; d < ballSize; d++ {
		total += weight(float64(d))
	}
	for d := 0; d < ballSize; d++ {
		want := weight(float64(d)) / total
		got := freq.Rel(int32(d))
		if math.Abs(got-want) > 0.02 {
			t.Errorf("point %d: P = %v, want %v", d, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverReturned(t *testing.T) {
	// Weight 0 on the farthest point of the ball: it must never appear.
	const ballSize = 4
	weight := func(d float64) float64 {
		if d >= float64(ballSize-1) {
			return 0
		}
		return 1
	}
	w := newLineWeighted(t, 20, float64(ballSize-1), weight, 1, 207)
	for i := 0; i < 3000; i++ {
		id, ok := w.Sample(0, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		if int(id) == ballSize-1 {
			t.Fatal("zero-weight point returned")
		}
	}
}

func TestWeightedClampRecorded(t *testing.T) {
	// wMax below the actual max weight triggers clamping.
	w := newLineWeighted(t, 20, 3, func(d float64) float64 { return 5 }, 1, 211)
	var st QueryStats
	if _, ok := w.Sample(0, &st); !ok {
		t.Fatal("sample failed")
	}
	if !st.Clamped {
		t.Error("clamp event not recorded")
	}
}

func TestWeightedRejectsBadInputs(t *testing.T) {
	if _, err := NewWeighted[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(10), 2, nil, 1, IndependentOptions{}, 1); err == nil {
		t.Error("nil weight accepted")
	}
	if _, err := NewWeighted[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(10), 2, func(float64) float64 { return 1 }, 0, IndependentOptions{}, 1); err == nil {
		t.Error("non-positive wMax accepted")
	}
}

func TestWeightedEmptyBall(t *testing.T) {
	w := newLineWeighted(t, 10, 2, func(float64) float64 { return 1 }, 1, 213)
	if _, ok := w.Sample(500, nil); ok {
		t.Fatal("sampled from empty ball")
	}
}

func TestWeightedSampleK(t *testing.T) {
	w := newLineWeighted(t, 30, 4, func(float64) float64 { return 1 }, 1, 217)
	out := w.SampleK(0, 9, nil)
	if len(out) != 9 {
		t.Fatalf("got %d samples", len(out))
	}
	for _, id := range out {
		if w.Point(id) > 4 {
			t.Fatal("far point returned")
		}
	}
	if w.N() != 30 {
		t.Errorf("N = %d", w.N())
	}
	if w.Independent() == nil {
		t.Error("inner sampler not exposed")
	}
}
