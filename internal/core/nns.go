package core

import (
	"context"
	"iter"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// Sampler is the Section 3 data structure for the r-near neighbor sampling
// problem (r-NNS): points receive ranks from a random permutation that is
// independent of the LSH construction, buckets are stored in ascending rank
// order, and a query returns the minimum-rank near point across its L
// buckets. Because every point of B_S(q, r) is equally likely to hold the
// minimum rank, the output is a uniform sample from the ball (Theorem 1),
// conditioned on the high-probability event that the LSH tables recall the
// whole ball.
//
// Sampler additionally implements Section 3.1: SampleK returns k points
// without replacement (the k smallest ranks), and SampleRepeated implements
// the Appendix A rank-perturbation scheme that makes repetitions of a single
// query independent (Theorem 5).
//
// Sample and SampleK are safe for concurrent use: they read the immutable
// index through pooled per-query scratch. SampleRepeated mutates ranks and
// must not run concurrently with any other query.
type Sampler[P any] struct {
	base *rankedBase[P]
}

// NewSampler builds the Section 3 structure over points with the given LSH
// family and (K, L) parameters. radius is the threshold r (a distance or a
// similarity depending on space.Kind). All randomness derives from seed.
func NewSampler[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, seed uint64) (*Sampler[P], error) {
	return NewSamplerMemo(space, family, params, points, radius, MemoOptions{}, seed)
}

// NewSamplerMemo is NewSampler with an explicit per-query memory
// discipline (querier-pool retention cap and scratch budget; the Section 3
// query path never consults the near-cache, whose dense array is allocated
// lazily, so the backend choice only matters for structures layered on the
// same base).
func NewSamplerMemo[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, memo MemoOptions, seed uint64) (*Sampler[P], error) {
	src := rng.New(seed)
	base, err := newRankedBase(space, family, params, points, radius, memo, src)
	if err != nil {
		return nil, err
	}
	return &Sampler[P]{base: base}, nil
}

// N returns the number of indexed points.
func (s *Sampler[P]) N() int { return s.base.N() }

// Size returns the number of indexed points (the Sampler contract).
func (s *Sampler[P]) Size() int { return s.base.N() }

// Radius returns the threshold r.
func (s *Sampler[P]) Radius() float64 { return s.base.Radius() }

// Params returns the LSH parameters in use.
func (s *Sampler[P]) Params() lsh.Params { return s.base.Params() }

// Point returns the indexed point with the given id.
func (s *Sampler[P]) Point(id int32) P { return s.base.Point(id) }

// RetainedScratchBytes reports the backing-array footprint of the pooled
// per-query scratch this structure currently pins between queries.
func (s *Sampler[P]) RetainedScratchBytes() int { return s.base.RetainedScratchBytes() }

// Sample returns the id of a uniform sample from B_S(q, r), or ok=false if
// no near point collides with q in any table. The query is deterministic
// given the data structure (Definition 1 does not require independence);
// use Independent or SampleRepeated for independent outputs.
//
//fairnn:noalloc
func (s *Sampler[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	qr := s.base.getQuerier()
	defer s.base.putQuerier(qr)
	s.base.resolve(q, qr, st)
	minRank := int32(-1)
	var minID int32
	for _, bucket := range qr.buckets {
		if bucket == nil {
			continue
		}
		// Scan in ascending rank order until the first near point; an
		// earlier-discovered global minimum lets us stop the scan as soon
		// as ranks exceed it. Ranks are read from the bucket's inline rank
		// array — no Assignment indirection.
		ids := bucket.IDs()
		ranks := bucket.Ranks()
		for i, cand := range ids {
			st.point()
			r := ranks[i]
			if minRank >= 0 && r >= minRank {
				break
			}
			if s.base.near(q, cand, st) {
				minRank = r
				minID = cand
				break
			}
		}
	}
	if minRank < 0 {
		st.found(false)
		return 0, false
	}
	st.found(true)
	return minID, true
}

// SampleContext is Sample under a context. The Section 3 query is a
// bounded bucket scan with no rejection loop, so cancellation is checked
// once up front; a failed (but uncanceled) query returns ErrNoSample.
// With context.Background() the output is identical to Sample.
//
//fairnn:noalloc
func (s *Sampler[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, ok := s.Sample(q, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns a stream of samples from B_S(q, r). The Section 3
// structure is deterministic per build (Definition 1 does not require
// independence), so the stream repeats the same minimum-rank point — use
// Independent (or SampleRepeated, which mutates the index) for
// independent streams. The stream ends when the consumer breaks, ctx is
// done, or the query fails (ErrNoSample).
func (s *Sampler[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return s.SampleContext(ctx, q, nil)
	})
}

// SampleK returns up to k ids sampled uniformly without replacement from
// B_S(q, r): the k near points with the smallest ranks among the candidates
// (Section 3.1). Fewer than k ids are returned when the recalled ball is
// smaller than k. The result is in ascending rank order.
func (s *Sampler[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return s.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and grown
// as needed), for callers amortizing the output buffer across queries.
// The k-way merge over the L rank-sorted buckets streams through the
// querier's pooled rank.Merger, so the steady state allocates nothing.
//
//fairnn:noalloc
func (s *Sampler[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	qr := s.base.getQuerier()
	defer s.base.putQuerier(qr)
	s.base.resolve(q, qr, st)
	qr.merger.Reset(qr.buckets)
	lastID := int32(-1)
	for len(dst) < k {
		id, _, ok := qr.merger.Next()
		if !ok {
			break
		}
		st.point()
		if id == lastID {
			continue // duplicate across tables (equal ranks are adjacent)
		}
		lastID = id
		if s.base.near(q, id, st) {
			dst = append(dst, id)
		}
	}
	st.found(len(dst) > 0)
	return dst
}

// SampleRepeated implements Appendix A: it returns a uniform sample from
// B_S(q, r) and then perturbs the permutation by swapping the rank of the
// returned point with a uniformly random rank in {rank(x), ..., n-1},
// updating every affected bucket. Repetitions of the *same* query are then
// mutually independent (Theorem 5). Note the paper's caveat: this does not
// solve the general r-NNIS problem across different queries — use
// Independent for that. SampleRepeated mutates the rank permutation and is
// therefore NOT safe for concurrent use with any other query.
func (s *Sampler[P]) SampleRepeated(q P, st *QueryStats) (id int32, ok bool) {
	id, ok = s.Sample(q, st)
	if !ok {
		return 0, false
	}
	qr := s.base.getQuerier()
	defer s.base.putQuerier(qr)
	rx := s.base.asg.Of(id)
	n := int32(s.base.N())
	target := rx + int32(qr.rng.Intn(int(n-rx)))
	other := s.base.asg.IDAt(target)
	s.swapRanks(id, other, qr)
	return id, true
}

// swapRanks exchanges the ranks of two points and restores the rank-order
// invariant of every bucket containing either point. Buckets are located by
// re-hashing the points (one single-pass signature each).
func (s *Sampler[P]) swapRanks(x, y int32, qr *querier) {
	if x == y {
		return
	}
	px, py := s.base.points[x], s.base.points[y]
	s.base.keysInto(px, qr, qr.keys)
	s.base.keysInto(py, qr, qr.keys2)
	// Remove both points from their buckets while the old ranks are live.
	for i := 0; i < s.base.params.L; i++ {
		s.base.tables[i].buckets[qr.keys[i]].Remove(s.base.asg, x)
		s.base.tables[i].buckets[qr.keys2[i]].Remove(s.base.asg, y)
	}
	s.base.asg.Swap(x, y)
	// Re-insert under the new ranks.
	for i := 0; i < s.base.params.L; i++ {
		s.base.tables[i].buckets[qr.keys[i]].Insert(s.base.asg, x)
		s.base.tables[i].buckets[qr.keys2[i]].Insert(s.base.asg, y)
	}
}

// SampleKWithReplacement returns k ids sampled independently (with
// replacement) from B_S(q, r) by repeating SampleRepeated k times
// (Section 3.1). ok=false entries are skipped, so fewer than k ids may be
// returned when recall fails.
func (s *Sampler[P]) SampleKWithReplacement(q P, k int, st *QueryStats) []int32 {
	out := make([]int32, 0, k)
	for i := 0; i < k; i++ {
		if id, ok := s.SampleRepeated(q, st); ok {
			out = append(out, id)
		}
	}
	return out
}

// rankInvariantOK verifies that every bucket is still sorted by rank and
// the assignment is a bijection; exposed for tests via export_test.go.
func (s *Sampler[P]) rankInvariantOK() bool {
	if !s.base.asg.Valid() {
		return false
	}
	for _, t := range s.base.tables {
		for _, b := range t.buckets {
			if !b.Sorted(s.base.asg) {
				return false
			}
		}
	}
	return true
}
