package core

import (
	"fmt"
	"runtime/debug"
)

// This file is the panic-containment layer of the library: every worker
// fan-out (the parallel build passes, the sharded arm/draw calls, the
// façade batch helpers) funnels recovered panics through the two typed
// errors below instead of letting a worker goroutine kill the process.
// The motivating failure is a single poisoned point — a nil vector, a
// user Space/Family callback that indexes out of range — or an injected
// fault (internal/fault) panicking inside a goroutine the caller never
// sees: without containment that is an unrecoverable crash and, with
// sibling workers blocked on a WaitGroup, a goroutine leak. With it, the
// panic is captured with its stack, the fan-out drains normally, and the
// caller receives an ordinary error (or a re-panic on its own goroutine,
// which a defer can recover).

// PanicError is a recovered panic with the stack captured at the point
// of recovery. Fan-outs convert worker panics into *PanicError so the
// panic site (which goroutine, which callback) stays diagnosable after
// the goroutine is gone.
type PanicError struct {
	// Recovered is the value the panicking code passed to panic.
	Recovered any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error, leading with the panic value; the full stack
// is preserved in Stack for logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", e.Recovered)
}

// NewPanicError captures the current goroutine's stack around a
// recovered value. Call it directly inside the deferred recover so the
// stack still contains the panic frames.
func NewPanicError(recovered any) *PanicError {
	return &PanicError{Recovered: recovered, Stack: debug.Stack()}
}

// BuildError is a construction failure caused by a panic inside a
// parallel-build worker, naming the input that triggered it: the point
// index being signed (pass 1), or the table being bucketed (pass 2),
// plus the shard when the build was fanned out by the sharded builder.
// Unset coordinates are -1. It wraps the underlying *PanicError, so
// errors.As(err, &pe) recovers the stack.
type BuildError struct {
	// Shard is the shard whose build panicked (-1 for unsharded builds).
	Shard int
	// Point is the (shard-local) index of the point being signed when
	// the worker panicked, or -1 when the panic was not point-scoped.
	Point int
	// Table is the LSH table being bucketed when the worker panicked,
	// or -1 when the panic was not table-scoped.
	Table int
	// Err is the captured panic.
	Err *PanicError
}

// Error implements error.
func (e *BuildError) Error() string {
	where := ""
	if e.Shard >= 0 {
		where += fmt.Sprintf(" shard %d", e.Shard)
	}
	if e.Point >= 0 {
		where += fmt.Sprintf(" point %d", e.Point)
	}
	if e.Table >= 0 {
		where += fmt.Sprintf(" table %d", e.Table)
	}
	return fmt.Sprintf("core: build panicked at%s: %v", where, e.Err.Recovered)
}

// Unwrap exposes the captured panic to errors.As/Is chains.
func (e *BuildError) Unwrap() error { return e.Err }

// newBuildError assembles a BuildError from a recovered panic value
// (reusing the *PanicError when the panic already carried one, so a
// re-panicked containment error is not double-wrapped).
func newBuildError(shard, point, table int, recovered any) *BuildError {
	pe, ok := recovered.(*PanicError)
	if !ok {
		pe = NewPanicError(recovered)
	}
	return &BuildError{Shard: shard, Point: point, Table: table, Err: pe}
}
