package core

import (
	"sync"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/stats"
)

func TestIndependentPoolConcurrentUniform(t *testing.T) {
	const ballSize = 8
	pool, err := NewIndependentPool[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1},
		lineDataset(48), float64(ballSize-1), IndependentOptions{}, 900, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	const workers = 8
	const perWorker = 1500
	results := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]int32, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				if id, ok := pool.Sample(0, nil); ok {
					out = append(out, id)
				}
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	freq := stats.NewFrequency()
	total := 0
	for _, out := range results {
		for _, id := range out {
			freq.Observe(id)
			total++
		}
	}
	if total < workers*perWorker*99/100 {
		t.Fatalf("only %d/%d samples succeeded", total, workers*perWorker)
	}
	if tv := freq.TVFromUniform(domainInts(ballSize)); tv > 0.03 {
		t.Errorf("concurrent TV = %v", tv)
	}
}

func TestIndependentPoolSampleK(t *testing.T) {
	pool, err := NewIndependentPool[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1},
		lineDataset(30), 5, IndependentOptions{}, 901, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := pool.SampleK(0, 20, nil)
	if len(out) != 20 {
		t.Fatalf("got %d samples", len(out))
	}
}

func TestIndependentPoolRejectsZeroReplicas(t *testing.T) {
	if _, err := NewIndependentPool[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1},
		lineDataset(10), 2, IndependentOptions{}, 1, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
}
