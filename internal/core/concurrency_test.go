package core

import (
	"sync"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/stats"
)

// TestIndependentOneBucketChargePerTable pins the fix for the redundant
// re-hash in estimateCandidates: a query must charge exactly one bucket
// lookup per table — the keys resolved up front are threaded through to
// the sketch lookup instead of hashing q again.
func TestIndependentOneBucketChargePerTable(t *testing.T) {
	const L = 7
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 2, L: L}, lineDataset(64), 9, IndependentOptions{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	if _, ok := d.Sample(0, &st); !ok {
		t.Fatal("query failed with perfect recall")
	}
	if st.BucketsScanned != L {
		t.Errorf("BucketsScanned = %d, want exactly one per table = %d", st.BucketsScanned, L)
	}
}

// TestIndependentConcurrentSampleUniform runs Sample from many goroutines
// against one structure and checks that (a) under -race no data race is
// reported and (b) the pooled per-query state does not distort the output
// distribution: the union of all goroutines' samples stays uniform on the
// ball.
func TestIndependentConcurrentSampleUniform(t *testing.T) {
	const ballSize = 8
	d := newLineIndependent(t, 64, float64(ballSize-1), 47)
	const goroutines = 8
	const repsPer = 3000
	freqs := make([]*stats.Frequency, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		freqs[g] = stats.NewFrequency()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < repsPer; i++ {
				id, ok := d.Sample(0, nil)
				if !ok {
					t.Error("query failed with perfect recall")
					return
				}
				freqs[g].Observe(id)
			}
		}(g)
	}
	wg.Wait()
	merged := stats.NewFrequency()
	for _, f := range freqs {
		for _, id := range domainInts(ballSize) {
			for c := f.Count(id); c > 0; c-- {
				merged.Observe(id)
			}
		}
	}
	domain := domainInts(ballSize)
	if tv := tvUniform(merged, domain); tv > 0.03 {
		t.Errorf("concurrent TV = %v, want < 0.03", tv)
	}
	if _, p := merged.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity: p = %v", p)
	}
}

// TestIndependentConcurrentSampleK exercises the batched query path from
// multiple goroutines (race coverage for the shared querier pool).
func TestIndependentConcurrentSampleK(t *testing.T) {
	const ballSize = 6
	d := newLineIndependent(t, 48, float64(ballSize-1), 53)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out := d.SampleK(0, 5, nil)
				for _, id := range out {
					if d.Point(id) > ballSize-1 {
						t.Errorf("far point %d returned", d.Point(id))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSamplerConcurrentSample checks the Section 3 sampler's read-only
// query path under concurrency: Sample is deterministic per build, so all
// goroutines must agree on the answer, and -race must stay silent.
func TestSamplerConcurrentSample(t *testing.T) {
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 3}, lineDataset(64), 9, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := s.Sample(0, nil)
	if !ok {
		t.Fatal("query failed")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				got, ok := s.Sample(0, nil)
				if !ok || got != want {
					t.Errorf("concurrent Sample = (%d, %v), want (%d, true)", got, ok, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSampleZeroAllocs asserts the headline perf property of the pooled
// query path: after warm-up, Sample on both the Section 3 and Section 4
// structures performs zero heap allocations per query.
func TestSampleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are not meaningful")
	}
	d := newLineIndependent(t, 64, 7, 59)
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 2, L: 4}, lineDataset(64), 7, 59)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Sample(0, nil)
		s.Sample(0, nil)
	}
	if n := testing.AllocsPerRun(200, func() { d.Sample(0, nil) }); n != 0 {
		t.Errorf("Independent.Sample allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.Sample(0, nil) }); n != 0 {
		t.Errorf("Sampler.Sample allocs/op = %v, want 0", n)
	}
}

// TestStandardConcurrentQuery covers the baseline structure's pooled
// querier under -race.
func TestStandardConcurrentQuery(t *testing.T) {
	s, err := NewStandard[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, lineDataset(64), 9, 23)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, ok := s.Query(0, nil); !ok {
					t.Error("Query failed with perfect recall")
					return
				}
				s.QueryRandomTableOrder(0, nil)
				s.NaiveFairSample(0, nil)
			}
		}()
	}
	wg.Wait()
}

// TestDynamicConcurrentSample covers the insert/delete-capable sampler's
// read path under -race: Samples may run concurrently with each other.
func TestDynamicConcurrentSample(t *testing.T) {
	d, err := NewDynamic[int](intSpace(), allCollide{}, lsh.Params{K: 2, L: 3}, 9, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lineDataset(64) {
		d.Insert(p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if id, ok := d.Sample(0, nil); !ok || d.Point(id) > 9 {
					t.Errorf("Sample = (%d, %v), want a near point", id, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
}
