package core

import (
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

func TestSamplerUniformOverConstructions(t *testing.T) {
	// Theorem 1: each point of the ball is returned with probability
	// 1/b_S(q,r). The construction randomness (the permutation) is the only
	// randomness, so uniformity is over independent builds.
	const n = 40
	const radius = 9.0 // ball of query 0 is {0..9}, size 10
	points := lineDataset(n)
	freq := stats.NewFrequency()
	const builds = 4000
	for b := 0; b < builds; b++ {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, points, radius, uint64(b+1))
		if err != nil {
			t.Fatal(err)
		}
		id, ok := s.Sample(0, nil)
		if !ok {
			t.Fatal("sample not found with perfect recall")
		}
		if points[id] > 9 {
			t.Fatalf("returned far point %d", points[id])
		}
		freq.Observe(id)
	}
	domain := domainInts(10)
	if tv := tvUniform(freq, domain); tv > 0.05 {
		t.Errorf("TV from uniform over ball = %v, want < 0.05", tv)
	}
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity: p = %v", p)
	}
}

func TestSamplerDeterministicPerBuild(t *testing.T) {
	// Definition 1 does not require independence: without perturbation the
	// same build answers the same query identically.
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(30), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := s.Sample(0, nil)
	if !ok {
		t.Fatal("no sample")
	}
	for i := 0; i < 50; i++ {
		id, ok := s.Sample(0, nil)
		if !ok || id != first {
			t.Fatal("Sample is not deterministic per build")
		}
	}
}

func TestSamplerNoNearPoint(t *testing.T) {
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(10), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	if _, ok := s.Sample(100, &st); ok {
		t.Fatal("found a near point where none exists")
	}
	if st.Found {
		t.Error("stats claim Found")
	}
}

func TestSamplerEmptyPointsRejected(t *testing.T) {
	if _, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, nil, 1, 1); err == nil {
		t.Fatal("empty point set accepted")
	}
}

func TestSampleKWithoutReplacement(t *testing.T) {
	const n = 40
	points := lineDataset(n)
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, points, 9, 11)
	if err != nil {
		t.Fatal(err)
	}
	got := s.SampleK(0, 5, nil)
	if len(got) != 5 {
		t.Fatalf("got %d ids, want 5", len(got))
	}
	seen := map[int32]bool{}
	prevRank := int32(-1)
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate id in without-replacement sample")
		}
		seen[id] = true
		if points[id] > 9 {
			t.Fatalf("far point %d returned", points[id])
		}
		// Ascending rank order is part of the contract.
		r := s.base.asg.Of(id)
		if r <= prevRank {
			t.Fatal("SampleK not in ascending rank order")
		}
		prevRank = r
	}
	// Requesting more than the ball returns the whole recalled ball.
	all := s.SampleK(0, 100, nil)
	if len(all) != 10 {
		t.Fatalf("k > ball returned %d ids, want 10", len(all))
	}
	if s.SampleK(0, 0, nil) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestSampleKInclusionUniform(t *testing.T) {
	// Each ball point should appear in a k-without-replacement sample with
	// probability k/b (uniformity over builds).
	const ballSize = 10
	const k = 3
	counts := make([]int, ballSize)
	const builds = 3000
	for b := 0; b < builds; b++ {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(30), float64(ballSize-1), uint64(b+100))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range s.SampleK(0, k, nil) {
			counts[id]++
		}
	}
	want := float64(builds) * k / ballSize
	for i, c := range counts {
		if d := float64(c) - want; d*d > 25*want { // ~5 sigma
			t.Errorf("point %d included %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleRepeatedUniformSingleBuild(t *testing.T) {
	// Theorem 5: with rank perturbation, repetitions of one query are each
	// uniform on the ball — within a single build.
	const ballSize = 8
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(40), float64(ballSize-1), 13)
	if err != nil {
		t.Fatal(err)
	}
	freq := stats.NewFrequency()
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := s.SampleRepeated(0, nil)
		if !ok {
			t.Fatal("lost the ball")
		}
		freq.Observe(id)
	}
	domain := domainInts(ballSize)
	if tv := tvUniform(freq, domain); tv > 0.03 {
		t.Errorf("TV = %v, want < 0.03", tv)
	}
	if !s.rankInvariantOK() {
		t.Fatal("rank invariants broken after perturbations")
	}
}

func TestSampleRepeatedConsecutiveIndependence(t *testing.T) {
	// Theorem 5 property 2: consecutive outputs for the same query are
	// independent, so the joint distribution of (OUT_i, OUT_{i+1}) is
	// uniform over ball × ball.
	const ballSize = 5
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(25), float64(ballSize-1), 17)
	if err != nil {
		t.Fatal(err)
	}
	joint := stats.NewFrequency()
	prev := int32(-1)
	const reps = 30000
	for i := 0; i < reps; i++ {
		id, ok := s.SampleRepeated(0, nil)
		if !ok {
			t.Fatal("lost the ball")
		}
		if prev >= 0 {
			joint.Observe(prev*ballSize + id)
		}
		prev = id
	}
	domain := domainInts(ballSize * ballSize)
	if tv := tvUniform(joint, domain); tv > 0.05 {
		t.Errorf("joint TV = %v, want < 0.05 (outputs not independent)", tv)
	}
}

func TestSampleKWithReplacementCount(t *testing.T) {
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(30), 6, 19)
	if err != nil {
		t.Fatal(err)
	}
	got := s.SampleKWithReplacement(0, 12, nil)
	if len(got) != 12 {
		t.Fatalf("got %d samples, want 12", len(got))
	}
	for _, id := range got {
		if s.Point(id) > 6 {
			t.Fatalf("far point %d", s.Point(id))
		}
	}
}

func TestSamplerWithRealLSHOnlyNearReturned(t *testing.T) {
	// With 1-bit MinHash on the adversarial-style sets, Sample must only
	// ever return r-near points.
	q := set.Range(1, 30)
	points := []set.Set{
		set.Range(1, 27),  // J 0.9
		set.Range(1, 18),  // J 0.6
		set.Range(16, 30), // J 0.5
		set.Range(40, 60), // J 0
		set.Range(61, 80), // J 0
	}
	s, err := NewSampler[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 6, L: 20}, points, 0.55, 23)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		id, ok := s.SampleRepeated(q, nil)
		if !ok {
			continue
		}
		if got := set.Jaccard(q, s.Point(id)); got < 0.55 {
			t.Fatalf("returned point with similarity %v < r", got)
		}
	}
}

func TestSamplerRecallWithChosenParams(t *testing.T) {
	// With K and L chosen by the Section 6 rules, a planted near point is
	// found with probability ≥ 99% per build.
	r := rng.New(31)
	q := set.Range(1, 20)
	near := set.Range(1, 18) // J = 0.9
	points := []set.Set{near}
	for i := 0; i < 200; i++ {
		items := make([]uint32, 20)
		for j := range items {
			items[j] = uint32(1000 + r.Intn(5000))
		}
		points = append(points, set.FromSlice(items))
	}
	k := lsh.ChooseK[set.Set](lsh.OneBitMinHash{}, len(points), 0.1, 5)
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, 0.9, 0.99)
	found := 0
	const builds = 60
	for b := 0; b < builds; b++ {
		s, err := NewSampler[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: k, L: l}, points, 0.9, uint64(b+500))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Sample(q, nil); ok {
			found++
		}
	}
	if found < builds*90/100 {
		t.Errorf("recall %d/%d below expectation", found, builds)
	}
}

func TestQueryStatsAccumulate(t *testing.T) {
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, lineDataset(20), 5, 29)
	if err != nil {
		t.Fatal(err)
	}
	var st QueryStats
	if _, ok := s.Sample(0, &st); !ok {
		t.Fatal("no sample")
	}
	if st.BucketsScanned == 0 || st.PointsInspected == 0 || st.ScoreEvals == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
	if !st.Found {
		t.Error("Found flag not set")
	}
}
