package core

import (
	"math/bits"
	"testing"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/set"
	"fairnn/internal/sketch"
	"fairnn/internal/stats"
)

func newLineIndependent(t *testing.T, n int, radius float64, seed uint64) *Independent[int] {
	t.Helper()
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(n), radius, IndependentOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIndependentUniformSingleBuild(t *testing.T) {
	// Theorem 2: outputs are uniform on the ball using only query-time
	// randomness, so uniformity holds within one build.
	const ballSize = 10
	d := newLineIndependent(t, 64, float64(ballSize-1), 41)
	freq := stats.NewFrequency()
	const reps = 20000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(0, nil)
		if !ok {
			t.Fatal("query failed with perfect recall")
		}
		if d.Point(id) > ballSize-1 {
			t.Fatalf("far point %d returned", d.Point(id))
		}
		freq.Observe(id)
	}
	domain := domainInts(ballSize)
	if tv := tvUniform(freq, domain); tv > 0.03 {
		t.Errorf("TV = %v, want < 0.03", tv)
	}
	if _, p := freq.ChiSquareUniform(domain); p < 1e-4 {
		t.Errorf("chi-square rejects uniformity: p = %v", p)
	}
}

func TestIndependentConsecutiveIndependence(t *testing.T) {
	// Definition 2 property 2: output i is independent of outputs < i.
	const ballSize = 5
	d := newLineIndependent(t, 40, float64(ballSize-1), 43)
	joint := stats.NewFrequency()
	prev := int32(-1)
	const reps = 30000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(0, nil)
		if !ok {
			t.Fatal("query failed")
		}
		if prev >= 0 {
			joint.Observe(prev*ballSize + id)
		}
		prev = id
	}
	domain := domainInts(ballSize * ballSize)
	if tv := tvUniform(joint, domain); tv > 0.05 {
		t.Errorf("joint TV = %v, want < 0.05", tv)
	}
}

func TestIndependentAcrossQueriesUniform(t *testing.T) {
	// Different query points must each see uniform outputs (this is where
	// the Appendix A perturbation fails and Section 4 succeeds).
	d := newLineIndependent(t, 64, 4, 47)
	for _, q := range []int{0, 10, 31} {
		freq := stats.NewFrequency()
		var ball []int32
		for id, p := range lineDataset(64) {
			if p >= q-4 && p <= q+4 {
				ball = append(ball, int32(id))
			}
		}
		for i := 0; i < 8000; i++ {
			id, ok := d.Sample(q, nil)
			if !ok {
				t.Fatalf("query %d failed", q)
			}
			freq.Observe(id)
		}
		if tv := tvUniform(freq, ball); tv > 0.05 {
			t.Errorf("query %d: TV = %v", q, tv)
		}
	}
}

func TestIndependentInterleavedQueriesStayIndependent(t *testing.T) {
	// Alternating two queries must not bias either output distribution
	// (the failure mode of rank perturbation with overlapping balls).
	d := newLineIndependent(t, 48, 5, 53)
	freqA, freqB := stats.NewFrequency(), stats.NewFrequency()
	var ballA, ballB []int32
	for id, p := range lineDataset(48) {
		if p <= 5 { // ball of query 0 at radius 5 is [0, 5]
			ballA = append(ballA, int32(id))
		}
		if p <= 8 { // ball of query 3 at radius 5 is [0, 8]
			ballB = append(ballB, int32(id))
		}
	}
	const reps = 12000
	for i := 0; i < reps; i++ {
		if idA, ok := d.Sample(0, nil); ok {
			freqA.Observe(idA)
		} else {
			t.Fatal("query A failed")
		}
		if idB, ok := d.Sample(3, nil); ok {
			freqB.Observe(idB)
		} else {
			t.Fatal("query B failed")
		}
	}
	if tv := tvUniform(freqA, ballA); tv > 0.05 {
		t.Errorf("interleaved query A TV = %v", tv)
	}
	if tv := tvUniform(freqB, ballB); tv > 0.05 {
		t.Errorf("interleaved query B TV = %v", tv)
	}
}

func TestIndependentNoNeighbors(t *testing.T) {
	d := newLineIndependent(t, 20, 2, 59)
	var st QueryStats
	if _, ok := d.Sample(1000, &st); ok {
		t.Fatal("found a neighbor where none exists")
	}
}

func TestIndependentSketchEstimateRecorded(t *testing.T) {
	d := newLineIndependent(t, 64, 5, 61)
	var st QueryStats
	if _, ok := d.Sample(0, &st); !ok {
		t.Fatal("query failed")
	}
	// With the allCollide family every point is a candidate; the estimate
	// must be within the sketch's ±50% of 64.
	if st.SketchEstimate < 32 || st.SketchEstimate > 96 {
		t.Errorf("sketch estimate %v for 64 candidates", st.SketchEstimate)
	}
	if st.Rounds == 0 {
		t.Error("no rounds recorded")
	}
	if st.FinalK == 0 {
		t.Error("no final k recorded")
	}
}

func TestIndependentSampleK(t *testing.T) {
	d := newLineIndependent(t, 32, 3, 67)
	got := d.SampleK(0, 10, nil)
	if len(got) != 10 {
		t.Fatalf("got %d samples, want 10", len(got))
	}
	for _, id := range got {
		if d.Point(id) > 3 {
			t.Fatalf("far point %d", d.Point(id))
		}
	}
}

func TestIndependentWithRealLSH(t *testing.T) {
	// 1-bit MinHash over clustered sets: outputs must be near points and
	// roughly uniform over the ball.
	r := rng.New(71)
	base := set.Range(1, 40)
	var points []set.Set
	// 12 near points: remove 4 random elements each (J = 36/40 = 0.9).
	for i := 0; i < 12; i++ {
		perm := r.Perm(40)
		drop := map[uint32]bool{}
		for _, idx := range perm[:4] {
			drop[uint32(idx+1)] = true
		}
		var items []uint32
		for _, v := range base {
			if !drop[v] {
				items = append(items, v)
			}
		}
		points = append(points, set.FromSlice(items))
	}
	// 120 far points.
	for i := 0; i < 120; i++ {
		items := make([]uint32, 20)
		for j := range items {
			items[j] = uint32(1000 + r.Intn(8000))
		}
		points = append(points, set.FromSlice(items))
	}
	k := lsh.ChooseK[set.Set](lsh.OneBitMinHash{}, len(points), 0.1, 5)
	l := lsh.ChooseL[set.Set](lsh.OneBitMinHash{}, k, 0.85, 0.999)
	d, err := NewIndependent[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: k, L: l}, points, 0.85, IndependentOptions{}, 73)
	if err != nil {
		t.Fatal(err)
	}
	freq := stats.NewFrequency()
	misses := 0
	const reps = 4000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(base, nil)
		if !ok {
			misses++
			continue
		}
		if sim := set.Jaccard(base, d.Point(id)); sim < 0.85 {
			t.Fatalf("returned similarity %v < 0.85", sim)
		}
		freq.Observe(id)
	}
	if misses > reps/100 {
		t.Errorf("%d misses out of %d", misses, reps)
	}
	if tv := tvUniform(freq, domainInts(12)); tv > 0.08 {
		t.Errorf("TV over ball = %v", tv)
	}
}

func TestIndependentOptionsDefaults(t *testing.T) {
	o := IndependentOptions{}.withDefaults(1024)
	if o.Lambda <= 0 || o.SigmaBudget <= 0 || o.SketchMinBucket <= 0 {
		t.Fatalf("defaults not resolved: %+v", o)
	}
	if o.SketchEpsilon != 0.5 {
		t.Errorf("epsilon default %v", o.SketchEpsilon)
	}
	if o.SketchDelta <= 0 || o.SketchDelta >= 1 {
		t.Errorf("delta default %v", o.SketchDelta)
	}
}

func TestIndependentStoredSketches(t *testing.T) {
	// With the allCollide family there is one huge bucket per table that
	// must carry a stored sketch.
	d := newLineIndependent(t, 256, 5, 79)
	buckets, words := d.StoredSketches()
	if buckets == 0 || words == 0 {
		t.Errorf("expected stored sketches for large buckets: %d buckets, %d words", buckets, words)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{
		// Degenerate inputs clamp to 1 (the loop-based original returned
		// 1 for n <= 1 because k started at 1).
		0: 1, -5: 1, 1: 1,
		// Small values and exact powers of two.
		2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024,
		1 << 10: 1 << 10, 1<<10 + 1: 1 << 11,
	}
	if bits.UintSize == 64 {
		// MaxInt32-adjacent: the id space is int32, n never exceeds it.
		// 2^31 only fits in a 64-bit int, so build it at runtime to keep
		// the package compiling on 32-bit platforms.
		shift := 31
		big := 1 << shift
		cases[big-2] = big // 2^31 - 2 rounds up
		cases[big-1] = big // MaxInt32
		cases[big] = big   // exact power of two
	}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIndependentWithHyperLogLogSketch(t *testing.T) {
	// The HLL-backed variant must preserve uniformity: the sketch only
	// seeds the initial segment count, and the k-halving absorbs estimate
	// error of either sketch kind.
	const ballSize = 8
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1},
		lineDataset(64), float64(ballSize-1),
		IndependentOptions{SketchKind: sketch.HyperLogLog}, 83)
	if err != nil {
		t.Fatal(err)
	}
	freq := stats.NewFrequency()
	const reps = 12000
	for i := 0; i < reps; i++ {
		id, ok := d.Sample(0, nil)
		if !ok {
			t.Fatal("query failed")
		}
		freq.Observe(id)
	}
	if tv := tvUniform(freq, domainInts(ballSize)); tv > 0.035 {
		t.Errorf("HLL-backed TV = %v", tv)
	}
}

func TestIndependentSketchKindsAgreeOnEstimate(t *testing.T) {
	// Both sketch kinds should produce candidate estimates within their
	// error bounds of the true count (64 with the allCollide family).
	for _, kind := range []sketch.Kind{sketch.KMV, sketch.HyperLogLog} {
		d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1},
			lineDataset(64), 5, IndependentOptions{SketchKind: kind}, 89)
		if err != nil {
			t.Fatal(err)
		}
		var st QueryStats
		if _, ok := d.Sample(0, &st); !ok {
			t.Fatal("query failed")
		}
		if st.SketchEstimate < 32 || st.SketchEstimate > 96 {
			t.Errorf("kind %v: estimate %v for 64 candidates", kind, st.SketchEstimate)
		}
	}
}
