//go:build !race

package core

// raceEnabled reports whether the race detector is active; under -race
// sync.Pool deliberately drops items to widen race coverage, which makes
// allocation counts meaningless.
const raceEnabled = false
