package core

import (
	"context"
	"errors"
	"iter"
)

// This file is the context-aware query surface shared by every sampler:
// SampleContext (one cancellable draw) and Samples (an unbounded
// cancellable stream, Go 1.23 iter.Seq2). Both are thin shims over the
// same query paths as Sample/SampleK — they draw randomness in exactly
// the same order, so a SampleContext under context.Background() returns
// bit-identical ids to Sample at the same point of a seed's stream.
//
// Cancellation is checked inside the Section 4/5 rejection loops every
// ctxCheckRounds rounds (an amortized ctx.Err() call, preserving the
// zero-allocation steady state), so a query spinning under an adversarial
// workload returns context.Canceled / context.DeadlineExceeded within one
// check interval instead of exhausting its rejection budget.

// ErrNoSample is returned by SampleContext (and yielded by Samples) when
// the structure finds no near point for the query: the recalled ball is
// empty, or a rejection budget was exhausted (a probability-≤δ event
// under the paper's constants). It corresponds exactly to ok=false from
// Sample.
var ErrNoSample = errors.New("core: no near point sampled")

// ctxCheckRounds is the rejection-loop cancellation granularity: loops
// poll ctx.Err() once per this many rounds. A round is a few hundred
// nanoseconds, so cancellation latency stays in the tens of microseconds
// while the steady-state cost of polling is amortized to noise.
const ctxCheckRounds = 64

// sampleCtxResult translates a (id, ok) sample outcome into the
// SampleContext contract, giving cancellation priority: a query that was
// canceled mid-loop reports the context error even if it also failed to
// find a point.
//
//fairnn:noalloc
func sampleCtxResult(ctx context.Context, id int32, ok bool) (int32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !ok {
		return 0, ErrNoSample
	}
	return id, nil
}

// streamOf adapts a draw function into the Samples contract: an unbounded
// iter.Seq2 stream that yields ids until the consumer stops, the context
// is done, or a draw fails (ErrNoSample). A non-nil error is yielded once
// and terminates the stream.
func streamOf(ctx context.Context, draw func(ctx context.Context) (int32, error)) iter.Seq2[int32, error] {
	return func(yield func(int32, error) bool) {
		for {
			id, err := draw(ctx)
			if err != nil {
				yield(0, err)
				return
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}
