package core

import (
	"errors"

	"fairnn/internal/lsh"
)

// IndependentPool replicates the Section 4 sampler. A single Independent
// is already safe for concurrent queries (pooled per-query scratch and
// per-query RNG streams), so the pool is no longer needed for thread
// safety; it remains useful because each replica is built with its own
// seed — LSH recall failures are then independent across replicas, which
// tightens the recall guarantee beyond what one table set provides.
//
// Every replica individually satisfies Theorem 2, so any interleaving of
// Sample calls across goroutines yields uniform, independent outputs
// (conditioned on the per-replica high-probability recall event).
type IndependentPool[P any] struct {
	replicas chan *Independent[P]
	// all references every replica regardless of checkout state, for
	// memory accounting (the channel cannot be inspected non-destructively).
	all  []*Independent[P]
	size int
}

// NewIndependentPool builds replicas independent Section 4 structures over
// the same points. Memory scales linearly with replicas; pick the expected
// number of concurrently querying goroutines.
func NewIndependentPool[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, opts IndependentOptions, seed uint64, replicas int) (*IndependentPool[P], error) {
	if replicas < 1 {
		return nil, errors.New("core: pool needs at least one replica")
	}
	p := &IndependentPool[P]{
		replicas: make(chan *Independent[P], replicas),
		size:     replicas,
	}
	for i := 0; i < replicas; i++ {
		d, err := NewIndependent(space, family, params, points, radius, opts, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		p.all = append(p.all, d)
		p.replicas <- d
	}
	return p, nil
}

// Size returns the number of replicas.
func (p *IndependentPool[P]) Size() int { return p.size }

// RetainedScratchBytes sums the pooled per-query scratch across all
// replicas — the steady-state memory the whole pool pins between queries
// (each replica's querier pool is individually capped by opts.Memo).
func (p *IndependentPool[P]) RetainedScratchBytes() int {
	total := 0
	for _, d := range p.all {
		total += d.RetainedScratchBytes()
	}
	return total
}

// Sample checks out a replica, samples, and returns the replica to the
// pool. Safe for concurrent use; blocks while all replicas are busy.
func (p *IndependentPool[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	d := <-p.replicas
	defer func() { p.replicas <- d }()
	return d.Sample(q, st)
}

// SampleK draws k independent samples on a single checked-out replica.
func (p *IndependentPool[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	d := <-p.replicas
	defer func() { p.replicas <- d }()
	return d.SampleK(q, k, st)
}

// SampleKInto draws k independent samples on a single checked-out replica
// into dst (the zero-allocation bulk variant).
func (p *IndependentPool[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	d := <-p.replicas
	defer func() { p.replicas <- d }()
	return d.SampleKInto(q, k, dst, st)
}
