package core

import (
	"context"
	"errors"
	"iter"
	"sort"

	"fairnn/internal/lsh"
)

// MultiRadius addresses the parameterless direction raised in the paper's
// conclusion ("we would much rather prefer a parameterless version of our
// data structure"): instead of one fixed radius r, it maintains a
// geometric grid of Section 4 samplers and answers adaptive queries —
// "sample uniformly from the smallest non-empty ball around q" — without
// the user fixing r in advance.
//
// Space is a factor len(radii) above a single structure; the query tries
// radii from tightest to loosest and returns the first successful sample,
// which costs one failed probe per empty radius (each Õ(nρ)).
type MultiRadius[P any] struct {
	radii    []float64
	samplers []*Independent[P]
	kind     Kind
}

// NewMultiRadius builds one Independent sampler per radius. The radii are
// sorted internally from tightest to loosest (ascending for distances,
// descending for similarities).
func NewMultiRadius[P any](space Space[P], family lsh.Family[P], paramsFor func(radius float64) lsh.Params, points []P, radii []float64, opts IndependentOptions, seed uint64) (*MultiRadius[P], error) {
	if len(radii) == 0 {
		return nil, errors.New("core: no radii")
	}
	sorted := append([]float64(nil), radii...)
	sort.Float64s(sorted)
	if space.Kind == Similarity {
		// Tightest first means highest similarity first.
		for i, j := 0, len(sorted)-1; i < j; i, j = i+1, j-1 {
			sorted[i], sorted[j] = sorted[j], sorted[i]
		}
	}
	m := &MultiRadius[P]{radii: sorted, kind: space.Kind}
	for i, r := range sorted {
		params := paramsFor(r)
		s, err := NewIndependent(space, family, params, points, r, opts, seed+uint64(i)*1315423911)
		if err != nil {
			return nil, err
		}
		m.samplers = append(m.samplers, s)
	}
	return m, nil
}

// Radii returns the radius grid from tightest to loosest.
func (m *MultiRadius[P]) Radii() []float64 { return m.radii }

// At returns the sampler for the i-th radius (tightest first).
func (m *MultiRadius[P]) At(i int) *Independent[P] { return m.samplers[i] }

// N returns the number of indexed points.
func (m *MultiRadius[P]) N() int { return m.samplers[0].N() }

// Size returns the number of indexed points (the Sampler contract).
func (m *MultiRadius[P]) Size() int { return m.samplers[0].N() }

// RetainedScratchBytes sums the pooled per-query scratch across the
// per-radius samplers (each individually bounded by its Memo options).
func (m *MultiRadius[P]) RetainedScratchBytes() int {
	total := 0
	for _, s := range m.samplers {
		total += s.RetainedScratchBytes()
	}
	return total
}

// SampleTightest returns a uniform independent sample from the ball of
// the tightest radius that is non-empty around q, together with that
// radius. ok=false means even the loosest ball had no recalled point.
func (m *MultiRadius[P]) SampleTightest(q P, st *QueryStats) (id int32, radius float64, ok bool) {
	for i, s := range m.samplers {
		if cand, found := s.Sample(q, st); found {
			return cand, m.radii[i], true
		}
	}
	return 0, 0, false
}

// Sample is SampleTightest without the radius report (the Sampler
// contract): a uniform independent sample from the tightest non-empty
// ball around q.
func (m *MultiRadius[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	id, _, ok = m.SampleTightest(q, st)
	return id, ok
}

// SampleK returns k independent with-replacement samples, each drawn from
// the tightest non-empty ball around q (the grid is re-probed per draw,
// so each output is independent like repeated Sample calls).
func (m *MultiRadius[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return m.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero), for
// callers amortizing the output buffer.
func (m *MultiRadius[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	for i := 0; i < k; i++ {
		if id, ok := m.Sample(q, st); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// SampleContext is Sample under a context: cancellation propagates into
// each per-radius rejection loop, so a grid probe under deadline pressure
// stops mid-ladder. A failed (but uncanceled) query returns ErrNoSample.
func (m *MultiRadius[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	for _, s := range m.samplers {
		id, err := s.SampleContext(ctx, q, st)
		if err == nil {
			return id, nil
		}
		if !errors.Is(err, ErrNoSample) {
			return 0, err
		}
	}
	return 0, ErrNoSample
}

// Samples returns an unbounded stream of independent samples from the
// tightest non-empty ball around q; it ends when the consumer breaks,
// ctx is done, or a draw fails everywhere (ErrNoSample).
func (m *MultiRadius[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return m.SampleContext(ctx, q, nil)
	})
}

// SampleAtLeast returns a sample from the tightest non-empty ball whose
// radius still admits at least minBall near points in the recalled
// candidate set; it falls back to looser radii until the requirement is
// met. This mirrors the "top-ℓ then sample" recommender pattern of
// Adomavicius and Kwon discussed in Section 1.2 without materializing the
// top-ℓ list.
func (m *MultiRadius[P]) SampleAtLeast(q P, minBall int, st *QueryStats) (id int32, radius float64, ok bool) {
	for i, s := range m.samplers {
		// Count distinct near candidates at this radius via the segment
		// machinery: draw one sample first (cheap existence probe).
		cand, found := s.Sample(q, st)
		if !found {
			continue
		}
		if minBall <= 1 {
			return cand, m.radii[i], true
		}
		// Estimate ball size from the sketch estimate — a ≥ (1-ε) lower
		// bound on candidates; refine by exact counting only if the
		// estimate is below the requirement.
		if st != nil && st.SketchEstimate >= float64(2*minBall) {
			return cand, m.radii[i], true
		}
		if s.recalledBallSize(q, minBall) >= minBall {
			return cand, m.radii[i], true
		}
	}
	return 0, 0, false
}

// recalledBallSize counts distinct near candidates of q, stopping early
// once cap is reached.
func (d *Independent[P]) recalledBallSize(q P, cap int) int {
	qr := d.base.getQuerier()
	defer d.base.putQuerier(qr)
	d.base.resolve(q, qr, nil)
	seen := make(map[int32]struct{})
	for _, bucket := range qr.buckets {
		if bucket == nil {
			continue
		}
		for _, id := range bucket.IDs() {
			if _, ok := seen[id]; ok {
				continue
			}
			if d.base.near(q, id, nil) {
				seen[id] = struct{}{}
				if len(seen) >= cap {
					return len(seen)
				}
			}
		}
	}
	return len(seen)
}
