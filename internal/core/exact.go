package core

import (
	"context"
	"iter"
	"sync/atomic"

	"fairnn/internal/rng"
)

// Exact is the linear-scan ground truth: it computes B_S(q, r) exactly and
// samples from it uniformly. It exists to validate the fairness of the
// sub-linear structures and to provide the trivial baseline whose query
// time the paper's constructions beat. Queries are safe for concurrent use
// (per-query randomness streams).
type Exact[P any] struct {
	space  Space[P]
	points []P
	radius float64
	qseed  uint64
	qctr   atomic.Uint64
}

// NewExact builds the ground-truth scanner.
func NewExact[P any](space Space[P], points []P, radius float64, seed uint64) *Exact[P] {
	return &Exact[P]{space: space, points: points, radius: radius, qseed: seed}
}

// Ball returns the ids of all points within radius of q.
func (e *Exact[P]) Ball(q P, st *QueryStats) []int32 {
	var out []int32
	for id := range e.points {
		st.point()
		st.score()
		if e.space.Near(e.space.Score(q, e.points[id]), e.radius) {
			out = append(out, int32(id))
		}
	}
	return out
}

// BallSize returns b_S(q, r) = |B_S(q, r)|.
func (e *Exact[P]) BallSize(q P, st *QueryStats) int { return len(e.Ball(q, st)) }

// BallSizeAt returns |B_S(q, thr)| for an arbitrary threshold; the Q3
// experiment uses it to compute b_cr/b_r ratios.
func (e *Exact[P]) BallSizeAt(q P, thr float64) int {
	n := 0
	for id := range e.points {
		if e.space.Near(e.space.Score(q, e.points[id]), thr) {
			n++
		}
	}
	return n
}

// Sample returns a uniform sample from the exact ball.
func (e *Exact[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	ball := e.Ball(q, st)
	if len(ball) == 0 {
		st.found(false)
		return 0, false
	}
	var qsrc rng.Source
	qsrc.Seed(e.qseed ^ rng.Mix64(e.qctr.Add(1)))
	st.found(true)
	return ball[qsrc.Intn(len(ball))], true
}

// SampleK returns k independent with-replacement uniform samples from the
// exact ball. The ball is computed with one linear scan and the k draws
// come from one per-query randomness stream, so the cost is O(n + k)
// rather than k rescans.
func (e *Exact[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return e.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero), for
// callers amortizing the output buffer.
func (e *Exact[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	ball := e.Ball(q, st)
	if len(ball) == 0 {
		st.found(false)
		return dst
	}
	var qsrc rng.Source
	qsrc.Seed(e.qseed ^ rng.Mix64(e.qctr.Add(1)))
	for i := 0; i < k; i++ {
		dst = append(dst, ball[qsrc.Intn(len(ball))])
	}
	st.found(true)
	return dst
}

// SampleContext is Sample under a context. The exact scan is a single
// bounded pass over the points, so cancellation is checked once up front;
// an empty ball returns ErrNoSample.
func (e *Exact[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, ok := e.Sample(q, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns an unbounded stream of independent uniform samples from
// the exact ball; it ends when the consumer breaks, ctx is done, or the
// ball is empty (ErrNoSample).
func (e *Exact[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return e.SampleContext(ctx, q, nil)
	})
}

// RetainedScratchBytes reports the pooled per-query scratch this
// structure pins between queries: the exact scanner keeps none.
func (e *Exact[P]) RetainedScratchBytes() int { return 0 }

// Point returns the indexed point with the given id.
func (e *Exact[P]) Point(id int32) P { return e.points[id] }

// N returns the number of indexed points.
func (e *Exact[P]) N() int { return len(e.points) }

// Size returns the number of indexed points (the Sampler contract).
func (e *Exact[P]) Size() int { return len(e.points) }
