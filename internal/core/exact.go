package core

import (
	"sync/atomic"

	"fairnn/internal/rng"
)

// Exact is the linear-scan ground truth: it computes B_S(q, r) exactly and
// samples from it uniformly. It exists to validate the fairness of the
// sub-linear structures and to provide the trivial baseline whose query
// time the paper's constructions beat. Queries are safe for concurrent use
// (per-query randomness streams).
type Exact[P any] struct {
	space  Space[P]
	points []P
	radius float64
	qseed  uint64
	qctr   atomic.Uint64
}

// NewExact builds the ground-truth scanner.
func NewExact[P any](space Space[P], points []P, radius float64, seed uint64) *Exact[P] {
	return &Exact[P]{space: space, points: points, radius: radius, qseed: seed}
}

// Ball returns the ids of all points within radius of q.
func (e *Exact[P]) Ball(q P, st *QueryStats) []int32 {
	var out []int32
	for id := range e.points {
		st.point()
		st.score()
		if e.space.Near(e.space.Score(q, e.points[id]), e.radius) {
			out = append(out, int32(id))
		}
	}
	return out
}

// BallSize returns b_S(q, r) = |B_S(q, r)|.
func (e *Exact[P]) BallSize(q P, st *QueryStats) int { return len(e.Ball(q, st)) }

// BallSizeAt returns |B_S(q, thr)| for an arbitrary threshold; the Q3
// experiment uses it to compute b_cr/b_r ratios.
func (e *Exact[P]) BallSizeAt(q P, thr float64) int {
	n := 0
	for id := range e.points {
		if e.space.Near(e.space.Score(q, e.points[id]), thr) {
			n++
		}
	}
	return n
}

// Sample returns a uniform sample from the exact ball.
func (e *Exact[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	ball := e.Ball(q, st)
	if len(ball) == 0 {
		st.found(false)
		return 0, false
	}
	var qsrc rng.Source
	qsrc.Seed(e.qseed ^ rng.Mix64(e.qctr.Add(1)))
	st.found(true)
	return ball[qsrc.Intn(len(ball))], true
}

// Point returns the indexed point with the given id.
func (e *Exact[P]) Point(id int32) P { return e.points[id] }

// N returns the number of indexed points.
func (e *Exact[P]) N() int { return len(e.points) }
