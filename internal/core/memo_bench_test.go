package core

// White-box microbenchmark for the Section 4 segment report — the inner
// operation of every rejection round — comparing the legacy per-bucket
// range-report path against the merged candidate cursor. Reported in
// BENCH_PR2.json via scripts/bench.sh.

import (
	"testing"

	"fairnn/internal/lsh"
)

func benchIndependent(b *testing.B) *Independent[int] {
	b.Helper()
	const n = 4096
	d, err := NewIndependent[int](intSpace(), modFamily{}, lsh.Params{K: 1, L: 8}, lineDataset(n), 64, IndependentOptions{}, 131)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkSegmentNear(b *testing.B) {
	for _, mode := range []string{"direct", "merged"} {
		b.Run(mode, func(b *testing.B) {
			d := benchIndependent(b)
			qr := d.base.getQuerier()
			defer d.base.putQuerier(qr)
			d.base.resolve(0, qr, nil)
			if mode == "merged" {
				d.base.materializeMerged(qr, nil)
			}
			n := int32(d.N())
			const k = 64 // segment width n/k, the regime after estimation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "direct" {
					// Pin the legacy path: the adaptive meter would
					// otherwise merge after a few rounds.
					qr.rangeWork = 0
				}
				h := int32(i % k)
				d.segmentNear(0, qr, h*n/k, (h+1)*n/k, nil)
			}
		})
	}
}
