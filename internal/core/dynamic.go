package core

import (
	"context"
	"errors"
	"iter"
	"math"
	"sort"
	"sync"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// ErrCapacity is returned by Dynamic.Insert once the structure has
// assigned every representable int32 id.
var ErrCapacity = errors.New("core: dynamic index full (2³¹−1 ids assigned)")

// Dynamic is an insert/delete-capable variant of the Section 3 sampler.
// The original IRS line of work (Hu–Qiao–Tao, discussed in Section 1.2)
// treats the dynamic setting as primary; the paper's static construction
// uses integer ranks from one global permutation, which cannot absorb
// insertions cheaply. Dynamic replaces ranks with i.i.d. uniform [0,1)
// *priorities*: the minimum-priority near point is still a uniform sample
// from the ball (any ball member is the argmin with equal probability),
// and a fresh point just draws a fresh priority — O(1) rank maintenance,
// no global renumbering.
//
// Query semantics match Sampler.Sample: deterministic per structure state
// (Definition 1; rebuild or use Independent for independence guarantees).
// Deletions tombstone the slot; buckets drop the id eagerly. Concurrent
// Samples are safe (per-call pooled scratch); Insert and Delete mutate the
// tables and must not run concurrently with any other call.
type Dynamic[P any] struct {
	space  Space[P]
	radius float64
	params lsh.Params
	signer *lsh.Signer[P]
	// pool holds *dynScratch hashing buffers; Sample may run concurrently
	// with other Samples (but not with Insert/Delete, which mutate the
	// tables), so per-call scratch comes from here.
	pool   sync.Pool
	points []P
	alive  []bool
	prio   []float64
	// tables[i] maps bucket keys to ids sorted by ascending priority.
	tables []map[uint64][]int32
	src    *rng.Source
	live   int
}

// dynScratch is the single-pass hashing buffer of one Dynamic operation.
type dynScratch struct {
	sig  []uint64
	keys []uint64
}

// NewDynamic builds an empty dynamic sampler; add points with Insert.
func NewDynamic[P any](space Space[P], family lsh.Family[P], params lsh.Params, radius float64, seed uint64) (*Dynamic[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if space.Score == nil {
		return nil, errors.New("core: space has nil Score")
	}
	src := rng.New(seed)
	d := &Dynamic[P]{
		space:  space,
		radius: radius,
		params: params,
		signer: lsh.NewSigner(family, params.L*params.K, src),
		tables: make([]map[uint64][]int32, params.L),
		src:    src,
	}
	for i := 0; i < params.L; i++ {
		d.tables[i] = make(map[uint64][]int32)
	}
	return d, nil
}

// N returns the number of live points.
func (d *Dynamic[P]) N() int { return d.live }

// Size returns the number of live points (the Sampler contract).
func (d *Dynamic[P]) Size() int { return d.live }

// RetainedScratchBytes reports the pooled per-query scratch this
// structure pins between queries. The dynamic sampler keeps only
// fixed-size hashing buffers per querier in an uninspectable sync.Pool,
// so it reports 0.
func (d *Dynamic[P]) RetainedScratchBytes() int { return 0 }

// Point returns the point with the given id; the id must be live.
func (d *Dynamic[P]) Point(id int32) P { return d.points[id] }

// Alive reports whether id is currently indexed.
func (d *Dynamic[P]) Alive(id int32) bool {
	return int(id) < len(d.alive) && d.alive[id]
}

// Insert adds a point and returns its id. Cost: L bucket insertions.
// Ids are int32, so the structure holds at most 2³¹−1 slots (live or
// tombstoned); further inserts return ErrCapacity instead of silently
// wrapping the id past 2³¹ into already-assigned (or negative) territory.
func (d *Dynamic[P]) Insert(p P) (int32, error) {
	if len(d.points) >= math.MaxInt32 {
		return 0, ErrCapacity
	}
	id := int32(len(d.points))
	d.points = append(d.points, p)
	d.alive = append(d.alive, true)
	d.prio = append(d.prio, d.src.Float64())
	sc := d.resolveKeys(p)
	defer d.putScratch(sc)
	for i := 0; i < d.params.L; i++ {
		key := sc.keys[i]
		d.tables[i][key] = d.bucketInsert(d.tables[i][key], id)
	}
	d.live++
	return id, nil
}

// resolveKeys computes all L bucket keys of p in one pass over p, using
// pooled scratch; callers must putScratch the result when done.
func (d *Dynamic[P]) resolveKeys(p P) *dynScratch {
	sc, _ := d.pool.Get().(*dynScratch)
	if sc == nil {
		sc = &dynScratch{
			sig:  make([]uint64, d.params.L*d.params.K),
			keys: make([]uint64, d.params.L),
		}
	}
	d.signer.Sign(p, sc.sig)
	lsh.CombineKeys(sc.sig, d.params.K, sc.keys)
	return sc
}

func (d *Dynamic[P]) putScratch(sc *dynScratch) { d.pool.Put(sc) }

// bucketInsert places id into ids keeping ascending priority order.
func (d *Dynamic[P]) bucketInsert(ids []int32, id int32) []int32 {
	p := d.prio[id]
	pos := sort.Search(len(ids), func(i int) bool { return d.prio[ids[i]] >= p })
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// Delete removes id from the index. Returns false when id was not live.
func (d *Dynamic[P]) Delete(id int32) bool {
	if !d.Alive(id) {
		return false
	}
	p := d.points[id]
	sc := d.resolveKeys(p)
	defer d.putScratch(sc)
	for i := 0; i < d.params.L; i++ {
		key := sc.keys[i]
		ids := d.tables[i][key]
		pr := d.prio[id]
		pos := sort.Search(len(ids), func(j int) bool { return d.prio[ids[j]] >= pr })
		for pos < len(ids) && ids[pos] != id {
			pos++ // ties on priority are measure-zero but handled anyway
		}
		if pos < len(ids) {
			d.tables[i][key] = append(ids[:pos], ids[pos+1:]...)
		}
	}
	d.alive[id] = false
	d.live--
	return true
}

// Sample returns the minimum-priority near point across q's buckets — a
// uniform sample from the recalled ball, exactly as in Theorem 1 with
// priorities playing the role of ranks.
func (d *Dynamic[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	best := int32(-1)
	bestPrio := 2.0
	sc := d.resolveKeys(q)
	defer d.putScratch(sc)
	for i := 0; i < d.params.L; i++ {
		st.bucket()
		for _, cand := range d.tables[i][sc.keys[i]] {
			st.point()
			if d.prio[cand] >= bestPrio {
				break // sorted by priority: nothing better in this bucket
			}
			st.score()
			if d.space.Near(d.space.Score(q, d.points[cand]), d.radius) {
				best = cand
				bestPrio = d.prio[cand]
				break
			}
		}
	}
	if best < 0 {
		st.found(false)
		return 0, false
	}
	st.found(true)
	return best, true
}

// SampleK returns up to k distinct near points with the smallest
// priorities across q's buckets — the without-replacement analogue of
// Sampler.SampleK with priorities playing the role of ranks. Fewer than k
// ids are returned when the recalled ball is smaller. The result is in
// ascending priority order.
func (d *Dynamic[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return d.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and grown
// as needed), for callers amortizing the output buffer.
func (d *Dynamic[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	sc := d.resolveKeys(q)
	defer d.putScratch(sc)
	// Collect the distinct near candidates across buckets, then keep the
	// k smallest priorities. Buckets are priority-sorted, so each bucket
	// contributes at most its first k near points.
	for i := 0; i < d.params.L; i++ {
		st.bucket()
		nearSeen := 0
		for _, cand := range d.tables[i][sc.keys[i]] {
			if nearSeen >= k {
				break
			}
			st.point()
			st.score()
			if d.space.Near(d.space.Score(q, d.points[cand]), d.radius) {
				nearSeen++
				dst = append(dst, cand)
			}
		}
	}
	// Sort by (priority, id): the id tie-break keeps duplicates of one
	// point adjacent even when two distinct points drew equal float64
	// priorities (measure-zero per pair, but likely somewhere at large n —
	// the same tie Delete handles explicitly).
	sort.Slice(dst, func(a, b int) bool {
		pa, pb := d.prio[dst[a]], d.prio[dst[b]]
		if pa != pb {
			return pa < pb
		}
		return dst[a] < dst[b]
	})
	// Deduplicate (a point appears in up to L buckets) and truncate to k.
	kept := dst[:0]
	var last int32 = -1
	for _, id := range dst {
		if id == last {
			continue
		}
		last = id
		kept = append(kept, id)
		if len(kept) == k {
			break
		}
	}
	st.found(len(kept) > 0)
	return kept
}

// SampleContext is Sample under a context. The dynamic query is a bounded
// priority scan with no rejection loop, so cancellation is checked once
// up front; a failed (but uncanceled) query returns ErrNoSample.
func (d *Dynamic[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, ok := d.Sample(q, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns a stream of samples from the recalled ball. Like the
// Section 3 sampler, Dynamic is deterministic per structure state, so the
// stream repeats the same minimum-priority point until the index mutates;
// it ends when the consumer breaks, ctx is done, or the query fails
// (ErrNoSample). The stream must not be consumed concurrently with
// Insert/Delete.
func (d *Dynamic[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return d.SampleContext(ctx, q, nil)
	})
}

// invariantOK verifies bucket priority-ordering and liveness bookkeeping
// (for property tests).
func (d *Dynamic[P]) invariantOK() bool {
	liveCount := 0
	for _, a := range d.alive {
		if a {
			liveCount++
		}
	}
	if liveCount != d.live {
		return false
	}
	for _, table := range d.tables {
		for _, ids := range table {
			for j := range ids {
				if !d.alive[ids[j]] {
					return false
				}
				if j > 0 && d.prio[ids[j-1]] > d.prio[ids[j]] {
					return false
				}
			}
		}
	}
	return true
}
