package core

import (
	"context"
	"errors"
	"iter"
	"sync/atomic"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// WeightFunc maps a score (distance or similarity) to a non-negative
// sampling weight. Weights let applications interpolate between exact
// fairness (constant weight) and classic proximity bias (weight increasing
// in similarity) — the weighted case the paper leaves as future work in
// Section 1.3 ("in the case of a recommender system, we might want to
// consider a weighted case where closer points are more likely to be
// returned").
type WeightFunc func(score float64) float64

// Weighted samples points from B_S(q, r) with probability proportional to
// a user-supplied weight of their score. It composes the Section 4
// independent uniform sampler with rejection: draw p uniformly from the
// ball, accept with probability w(score(p))/wMax. Acceptance preserves
// independence across queries because every draw uses fresh randomness.
//
// For the constant weight function this degenerates to the r-NNIS sampler;
// the expected number of uniform draws per output is wMax / avg weight.
type Weighted[P any] struct {
	inner  *Independent[P]
	weight WeightFunc
	wMax   float64
	qseed  uint64
	qctr   atomic.Uint64
	// MaxDraws caps rejection rounds per sample (default 64·wMax/wMin
	// heuristic replaced by a flat 10 000; the cap only triggers for
	// pathological weight functions).
	maxDraws int
}

// NewWeighted wraps an Independent sampler built over the same
// configuration. wMax must upper-bound weight over the score range of
// near points; weights above wMax are clamped (and reported via
// QueryStats.Clamped).
func NewWeighted[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, weight WeightFunc, wMax float64, opts IndependentOptions, seed uint64) (*Weighted[P], error) {
	if weight == nil {
		return nil, errors.New("core: nil weight function")
	}
	if wMax <= 0 {
		return nil, errors.New("core: wMax must be positive")
	}
	inner, err := NewIndependent(space, family, params, points, radius, opts, seed)
	if err != nil {
		return nil, err
	}
	return &Weighted[P]{
		inner:    inner,
		weight:   weight,
		wMax:     wMax,
		qseed:    seed ^ 0x5eed5eed5eed5eed,
		maxDraws: 10000,
	}, nil
}

// N returns the number of indexed points.
func (w *Weighted[P]) N() int { return w.inner.N() }

// Size returns the number of indexed points (the Sampler contract).
func (w *Weighted[P]) Size() int { return w.inner.N() }

// Point returns the indexed point with the given id.
func (w *Weighted[P]) Point(id int32) P { return w.inner.Point(id) }

// Independent exposes the wrapped uniform sampler.
func (w *Weighted[P]) Independent() *Independent[P] { return w.inner }

// RetainedScratchBytes reports the pooled per-query scratch of the
// wrapped sampler (the weighted layer itself keeps no pooled state — its
// acceptance randomness lives on the stack), so the opts.Memo discipline
// passed at construction bounds this structure's burst memory too.
func (w *Weighted[P]) RetainedScratchBytes() int { return w.inner.RetainedScratchBytes() }

// Sample returns a point p from B_S(q, r) with probability proportional to
// weight(score(q, p)), independently across calls.
func (w *Weighted[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	id, err := w.SampleContext(context.Background(), q, st)
	return id, err == nil
}

// SampleContext is the one acceptance-loop body (Sample delegates here
// with context.Background(), so the two entry points cannot diverge):
// cancellation propagates into the wrapped sampler's rejection loop on
// every draw, and a failed (but uncanceled) query returns ErrNoSample.
// The acceptance randomness is a stack-local stream split off the seed by
// the atomic query counter, so concurrent calls are safe and independent.
func (w *Weighted[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	var qsrc rng.Source
	qsrc.Seed(w.qseed ^ rng.Mix64(w.qctr.Add(1)))
	for draw := 0; draw < w.maxDraws; draw++ {
		cand, err := w.inner.SampleContext(ctx, q, st)
		if err != nil {
			return 0, err
		}
		st.score()
		score := w.inner.base.space.Score(q, w.inner.base.points[cand])
		wgt := w.weight(score)
		if wgt < 0 {
			wgt = 0
		}
		p := wgt / w.wMax
		if p > 1 {
			st.clamp()
			p = 1
		}
		if qsrc.Bernoulli(p) {
			st.found(true)
			return cand, nil
		}
	}
	st.found(false)
	return sampleCtxResult(ctx, 0, false)
}

// Samples returns an unbounded stream of independent weighted samples; it
// ends when the consumer breaks, ctx is done, or a draw fails
// (ErrNoSample).
func (w *Weighted[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return w.SampleContext(ctx, q, nil)
	})
}

// SampleK returns k independent weighted samples (with replacement).
func (w *Weighted[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return w.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero), for
// callers amortizing the output buffer.
func (w *Weighted[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	for i := 0; i < k; i++ {
		if id, ok := w.Sample(q, st); ok {
			dst = append(dst, id)
		}
	}
	return dst
}
