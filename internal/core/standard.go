package core

import (
	"context"
	"errors"
	"iter"
	"sync"
	"sync/atomic"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// Standard is the classic LSH data structure of Section 2.2 — the baseline
// whose output distribution the paper shows to be unfair. Buckets keep
// points in a fixed (shuffled-at-build) order; a query scans its buckets
// and returns the first near point it meets, so points with higher
// collision probability (closer to the query) are systematically
// overrepresented.
//
// Standard also hosts the two fair-by-postprocessing baselines used in the
// Section 6 experiments:
//
//   - NaiveFairSample ("fair LSH" in Figure 1): collect all candidates in
//     the L buckets, deduplicate, keep the r-near ones, return one uniformly.
//   - ApproxFairSample (Section 6.2): same, but keep every point with
//     similarity at least the *approximate* threshold (cr), reproducing the
//     approximate-neighborhood semantics of Har-Peled and Mahabadi.
//
// All query methods are safe for concurrent use: the index is read-only
// after construction and query randomness comes from per-query streams
// split off the seed by an atomic counter. The early-exit scans (Query,
// QueryANN) hash one table at a time — a single pass over the query per
// table via the signature engine — so an exit after table i pays only
// (i+1)·K hash evaluations.
type Standard[P any] struct {
	space  Space[P]
	points []P
	radius float64
	params lsh.Params
	signer *lsh.Signer[P]
	tables []map[uint64][]int32

	qseed uint64
	qctr  atomic.Uint64
	pool  sync.Pool // *stdQuerier
}

// stdQuerier is the reusable per-query scratch of the baseline structure:
// a K-wide raw-signature buffer for lazy per-table keys and a per-query
// RNG stream.
type stdQuerier struct {
	sig []uint64
	rng rng.Source
}

// NewStandard builds the baseline structure. Bucket contents are shuffled
// once at construction (this matches practical implementations and the
// paper's observation that bias persists even under randomized orders).
func NewStandard[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, seed uint64) (*Standard[P], error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("core: empty point set")
	}
	src := rng.New(seed)
	s := &Standard[P]{
		space:  space,
		points: points,
		radius: radius,
		params: params,
		signer: lsh.NewSigner(family, params.L*params.K, src),
		tables: make([]map[uint64][]int32, params.L),
	}
	n := len(points)
	L, K := params.L, params.K
	allKeys := make([]uint64, n*L)
	parallelRange(n, func(lo, hi int) {
		sig := make([]uint64, L*K)
		for p := lo; p < hi; p++ {
			s.signer.Sign(points[p], sig)
			lsh.CombineKeys(sig, K, allKeys[p*L:(p+1)*L])
		}
	})
	for i := 0; i < L; i++ {
		b := make(map[uint64][]int32)
		for p := 0; p < n; p++ {
			key := allKeys[p*L+i]
			b[key] = append(b[key], int32(p))
		}
		for _, ids := range b {
			src.ShuffleInt32(ids)
		}
		s.tables[i] = b
	}
	s.qseed = src.Uint64()
	return s, nil
}

func (s *Standard[P]) getQuerier() *stdQuerier {
	qr, _ := s.pool.Get().(*stdQuerier)
	if qr == nil {
		qr = &stdQuerier{sig: make([]uint64, s.params.K)}
	}
	qr.rng.Seed(s.qseed ^ rng.Mix64(s.qctr.Add(1)))
	return qr
}

func (s *Standard[P]) putQuerier(qr *stdQuerier) { s.pool.Put(qr) }

// keyOf computes the bucket key of q in table i: one pass over q's
// elements for that table's K functions.
func (s *Standard[P]) keyOf(i int, q P, qr *stdQuerier) uint64 {
	s.signer.SignRange(q, i*s.params.K, (i+1)*s.params.K, qr.sig)
	return lsh.TableKey(qr.sig)
}

// N returns the number of indexed points.
func (s *Standard[P]) N() int { return len(s.points) }

// Size returns the number of indexed points (the Sampler contract).
func (s *Standard[P]) Size() int { return len(s.points) }

// Radius returns the threshold r.
func (s *Standard[P]) Radius() float64 { return s.radius }

// Params returns the LSH parameters in use.
func (s *Standard[P]) Params() lsh.Params { return s.params }

// Point returns the indexed point with the given id.
func (s *Standard[P]) Point(id int32) P { return s.points[id] }

func (s *Standard[P]) near(q P, id int32, thr float64, st *QueryStats) bool {
	st.score()
	return s.space.Near(s.space.Score(q, s.points[id]), thr)
}

// Query returns the first r-near point found while scanning the query's
// buckets table by table — the standard, biased LSH query.
func (s *Standard[P]) Query(q P, st *QueryStats) (id int32, ok bool) {
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	for i := 0; i < s.params.L; i++ {
		st.bucket()
		for _, cand := range s.tables[i][s.keyOf(i, q, qr)] {
			st.point()
			if s.near(q, cand, s.radius, st) {
				st.found(true)
				return cand, true
			}
		}
	}
	st.found(false)
	return 0, false
}

// QueryRandomTableOrder scans tables in a fresh random order. The paper
// notes (Section 2.2) that the output remains biased even under such
// randomization; the experiments use this to demonstrate exactly that.
func (s *Standard[P]) QueryRandomTableOrder(q P, st *QueryStats) (id int32, ok bool) {
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	order := qr.rng.Perm(s.params.L)
	for _, i := range order {
		st.bucket()
		for _, cand := range s.tables[i][s.keyOf(int(i), q, qr)] {
			st.point()
			if s.near(q, cand, s.radius, st) {
				st.found(true)
				return cand, true
			}
		}
	}
	st.found(false)
	return 0, false
}

// QueryANN is the textbook (c, r)-approximate near neighbor query: it
// returns the first cr-near point and gives up after inspecting more than
// 3L far points (Section 2.2, following Indyk–Motwani). crRadius is the
// relaxed threshold (c·r for distances, c·r with c<1 for similarities).
func (s *Standard[P]) QueryANN(q P, crRadius float64, st *QueryStats) (id int32, ok bool) {
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	farBudget := 3 * s.params.L
	for i := 0; i < s.params.L; i++ {
		st.bucket()
		for _, cand := range s.tables[i][s.keyOf(i, q, qr)] {
			st.point()
			if s.near(q, cand, crRadius, st) {
				st.found(true)
				return cand, true
			}
			farBudget--
			if farBudget <= 0 {
				st.found(false)
				return 0, false
			}
		}
	}
	st.found(false)
	return 0, false
}

// Candidates returns the deduplicated union of q's buckets (the set S_q),
// in unspecified order, charging the scan to st.
func (s *Standard[P]) Candidates(q P, st *QueryStats) []int32 {
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	return s.candidates(q, qr, st)
}

func (s *Standard[P]) candidates(q P, qr *stdQuerier, st *QueryStats) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for i := 0; i < s.params.L; i++ {
		st.bucket()
		for _, cand := range s.tables[i][s.keyOf(i, q, qr)] {
			st.point()
			if _, ok := seen[cand]; ok {
				continue
			}
			seen[cand] = struct{}{}
			out = append(out, cand)
		}
	}
	return out
}

// Sample fulfills the Sampler contract with the structure's fair-by-
// postprocessing baseline: it is NaiveFairSample (uniform over the
// recalled r-near candidates). The biased first-hit scan stays available
// as Query/QueryRandomTableOrder.
func (s *Standard[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	return s.NaiveFairSample(q, st)
}

// SampleK returns k independent with-replacement draws of Sample. The
// recalled near candidates are deterministic per (structure, query), so
// they are collected once and the k uniform draws share one per-query
// randomness stream — O(candidates + k) instead of k bucket rescans,
// with the same output distribution as repeated NaiveFairSample.
func (s *Standard[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return s.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero), for
// callers amortizing the output buffer.
func (s *Standard[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	cands := s.candidates(q, qr, st)
	kept := cands[:0]
	for _, cand := range cands {
		if s.near(q, cand, s.radius, st) {
			kept = append(kept, cand)
		}
	}
	if len(kept) == 0 {
		st.found(false)
		return dst
	}
	st.found(true)
	for i := 0; i < k; i++ {
		dst = append(dst, kept[qr.rng.Intn(len(kept))])
	}
	return dst
}

// SampleContext is Sample under a context. The naive fair scan is a
// bounded pass over the query's buckets, so cancellation is checked once
// up front; a failed (but uncanceled) query returns ErrNoSample.
func (s *Standard[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, ok := s.Sample(q, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns a stream of independent naive fair samples; it ends
// when the consumer breaks, ctx is done, or a draw fails (ErrNoSample).
func (s *Standard[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return streamOf(ctx, func(ctx context.Context) (int32, error) {
		return s.SampleContext(ctx, q, nil)
	})
}

// RetainedScratchBytes reports the pooled per-query scratch this
// structure pins between queries. The baseline keeps only a fixed K-word
// signature buffer per querier in an uninspectable sync.Pool, so it
// reports 0 — the candidate collections of the fair baselines are
// allocated per call and never retained.
func (s *Standard[P]) RetainedScratchBytes() int { return 0 }

// NaiveFairSample collects all candidates, keeps those within radius, and
// returns one uniformly at random — the "fair LSH" reference implementation
// of Section 6.1. Its cost scales with the neighborhood size, which is
// exactly the inefficiency Sections 3–5 remove.
func (s *Standard[P]) NaiveFairSample(q P, st *QueryStats) (id int32, ok bool) {
	return s.uniformAmong(q, s.radius, st)
}

// ApproxFairSample keeps every candidate with score meeting the relaxed
// threshold (cr) and samples uniformly among them — the approximate
// neighborhood semantics studied in Section 6.2. The returned point may be
// a (c, r)-near point rather than an r-near one.
func (s *Standard[P]) ApproxFairSample(q P, crRadius float64, st *QueryStats) (id int32, ok bool) {
	return s.uniformAmong(q, crRadius, st)
}

func (s *Standard[P]) uniformAmong(q P, thr float64, st *QueryStats) (int32, bool) {
	qr := s.getQuerier()
	defer s.putQuerier(qr)
	cands := s.candidates(q, qr, st)
	kept := cands[:0]
	for _, cand := range cands {
		if s.near(q, cand, thr, st) {
			kept = append(kept, cand)
		}
	}
	if len(kept) == 0 {
		st.found(false)
		return 0, false
	}
	st.found(true)
	return kept[qr.rng.Intn(len(kept))], true
}

// RecalledBall returns the r-near candidates of q (deduplicated), i.e. the
// portion of the true ball that the tables recall. Used by experiments to
// separate recall failures from fairness effects.
func (s *Standard[P]) RecalledBall(q P, st *QueryStats) []int32 {
	cands := s.Candidates(q, st)
	kept := cands[:0]
	for _, cand := range cands {
		if s.near(q, cand, s.radius, st) {
			kept = append(kept, cand)
		}
	}
	return kept
}
