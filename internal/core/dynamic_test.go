package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/stats"
)

func newLineDynamic(t *testing.T, seed uint64) *Dynamic[int] {
	t.Helper()
	d, err := NewDynamic[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, 5, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDynamicInsertSample(t *testing.T) {
	d := newLineDynamic(t, 1)
	for i := 0; i < 20; i++ {
		d.Insert(i)
	}
	if d.N() != 20 {
		t.Fatalf("N = %d", d.N())
	}
	id, ok := d.Sample(0, nil)
	if !ok {
		t.Fatal("no sample")
	}
	if d.Point(id) > 5 {
		t.Fatalf("far point %d", d.Point(id))
	}
}

func TestDynamicUniformOverConstructions(t *testing.T) {
	// Priorities are the only randomness: uniformity over fresh builds.
	const ballSize = 8
	freq := stats.NewFrequency()
	for b := 0; b < 4000; b++ {
		d := newLineDynamic(t, uint64(b+1))
		for i := 0; i < 30; i++ {
			d.Insert(i)
		}
		id, ok := d.Sample(2, nil) // ball of query 2 at radius 5 = {0..7}
		if !ok {
			t.Fatal("no sample")
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(domainInts(ballSize)); tv > 0.05 {
		t.Errorf("TV = %v", tv)
	}
}

func TestDynamicDelete(t *testing.T) {
	d := newLineDynamic(t, 3)
	ids := make([]int32, 10)
	for i := 0; i < 10; i++ {
		ids[i], _ = d.Insert(i)
	}
	if !d.Delete(ids[0]) {
		t.Fatal("delete failed")
	}
	if d.Delete(ids[0]) {
		t.Fatal("double delete succeeded")
	}
	if d.N() != 9 || d.Alive(ids[0]) {
		t.Fatal("liveness bookkeeping wrong")
	}
	// The deleted point must never be returned.
	for i := 0; i < 200; i++ {
		id, ok := d.Sample(0, nil)
		if !ok {
			t.Fatal("no sample")
		}
		if id == ids[0] {
			t.Fatal("deleted point returned")
		}
	}
	if !d.invariantOK() {
		t.Fatal("invariants broken")
	}
}

func TestDynamicDeleteShrinksBall(t *testing.T) {
	// Deleting every ball member but one leaves a point-mass distribution.
	d := newLineDynamic(t, 5)
	ids := make([]int32, 25)
	for i := 0; i < 25; i++ {
		ids[i], _ = d.Insert(i)
	}
	for i := 1; i <= 5; i++ { // ball of query 0 is {0..5}
		d.Delete(ids[i])
	}
	for i := 0; i < 100; i++ {
		id, ok := d.Sample(0, nil)
		if !ok {
			t.Fatal("no sample")
		}
		if id != ids[0] {
			t.Fatalf("expected the last surviving ball member, got %d", id)
		}
	}
}

func TestDynamicEmptyAndMissing(t *testing.T) {
	d := newLineDynamic(t, 7)
	if _, ok := d.Sample(0, nil); ok {
		t.Fatal("sample from empty index")
	}
	if d.Delete(99) {
		t.Fatal("deleting unknown id succeeded")
	}
	d.Insert(100)
	if _, ok := d.Sample(0, nil); ok {
		t.Fatal("far-only index returned a sample")
	}
}

func TestDynamicChurnInvariantQuick(t *testing.T) {
	prop := func(seed uint64, ops []uint16) bool {
		d, err := NewDynamic[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, 4, seed)
		if err != nil {
			return false
		}
		var live []int32
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				id, err := d.Insert(int(op % 50))
				if err != nil {
					return false
				}
				live = append(live, id)
			} else {
				idx := int(op/3) % len(live)
				d.Delete(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		if d.N() != len(live) {
			return false
		}
		return d.invariantOK()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicWithRealLSH(t *testing.T) {
	d, err := NewDynamic[int](Space[int]{Kind: Distance, Score: intSpace().Score},
		allCollide{}, lsh.Params{K: 1, L: 3}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Insert(i)
	}
	freq := stats.NewFrequency()
	for b := 0; b < 1000; b++ {
		// Churn: delete and reinsert a far point to exercise updates.
		id, _ := d.Insert(999)
		d.Delete(id)
		if got, ok := d.Sample(1, nil); ok {
			freq.Observe(got)
		}
	}
	// Ball of query 1 at radius 3 is {0..4}; deterministic per state, so
	// all mass sits on one member — just check it is near.
	for _, id := range freq.Support() {
		if d.Point(id) > 4 {
			t.Fatalf("far point %d", d.Point(id))
		}
	}
}

// unitFamily is a trivial LSH family over the empty struct, for tests
// that never hash (the capacity guard fires before any hashing).
type unitFamily struct{}

func (unitFamily) New(r *rng.Source) lsh.Func[struct{}] {
	return func(struct{}) uint64 { return 0 }
}

func (unitFamily) CollisionProb(float64) float64 { return 1 }

// TestDynamicInsertOverflowGuard pins the id-space boundary: once 2³¹−1
// slots are assigned, Insert must refuse with ErrCapacity instead of
// silently wrapping int32(len(points)) into already-assigned (or
// negative) id territory. The point type is struct{}, so the simulated
// full slice costs no memory.
func TestDynamicInsertOverflowGuard(t *testing.T) {
	sp := Space[struct{}]{Kind: Distance, Score: func(a, b struct{}) float64 { return 0 }}
	d, err := NewDynamic[struct{}](sp, unitFamily{}, lsh.Params{K: 1, L: 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(struct{}{}); err != nil {
		t.Fatalf("first insert failed: %v", err)
	}
	before := d.N()
	d.points = make([]struct{}, math.MaxInt32) // zero-sized elements: len only
	if _, err := d.Insert(struct{}{}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("Insert at 2³¹−1 slots returned %v, want ErrCapacity", err)
	}
	if len(d.points) != math.MaxInt32 || d.N() != before {
		t.Error("failed Insert mutated the structure")
	}
}
