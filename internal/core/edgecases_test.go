package core

import (
	"testing"
	"testing/quick"

	"fairnn/internal/lsh"
	"fairnn/internal/rank"
	"fairnn/internal/set"
	"fairnn/internal/stats"
)

// Edge cases and failure injection across the core data structures.

func TestSamplerDuplicatePoints(t *testing.T) {
	// Several identical points: each *copy* is a distinct id and must be
	// individually sampleable with equal probability.
	points := []int{5, 5, 5, 5, 100, 200}
	freq := stats.NewFrequency()
	for b := 0; b < 2000; b++ {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, points, 0, uint64(b+1))
		if err != nil {
			t.Fatal(err)
		}
		id, ok := s.Sample(5, nil)
		if !ok {
			t.Fatal("no sample")
		}
		if points[id] != 5 {
			t.Fatalf("non-duplicate point %d returned", points[id])
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform([]int32{0, 1, 2, 3}); tv > 0.06 {
		t.Errorf("duplicates not equally likely: TV = %v", tv)
	}
}

func TestSamplerSinglePoint(t *testing.T) {
	s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, []int{42}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := s.Sample(42, nil)
	if !ok || id != 0 {
		t.Fatalf("single point not returned: %v %v", id, ok)
	}
	// Repeated sampling on a singleton must not corrupt state.
	for i := 0; i < 100; i++ {
		if id, ok := s.SampleRepeated(42, nil); !ok || id != 0 {
			t.Fatal("singleton SampleRepeated failed")
		}
	}
	if !s.rankInvariantOK() {
		t.Fatal("invariants broken on singleton")
	}
}

func TestSamplerRadiusCoversEverything(t *testing.T) {
	// With a radius covering the whole dataset, Sample is uniform over all
	// points (over constructions).
	const n = 12
	freq := stats.NewFrequency()
	for b := 0; b < 4000; b++ {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(n), float64(n), uint64(b+1))
		if err != nil {
			t.Fatal(err)
		}
		id, ok := s.Sample(0, nil)
		if !ok {
			t.Fatal("no sample")
		}
		freq.Observe(id)
	}
	if tv := freq.TVFromUniform(domainInts(n)); tv > 0.06 {
		t.Errorf("TV = %v", tv)
	}
}

func TestIdentityPermutationIsBiased(t *testing.T) {
	// Contrast test: with the *identity* permutation (no randomness), the
	// min-"rank" near point is always the lowest id — the bias the random
	// permutation of Section 3 removes. This pins down that fairness comes
	// from the permutation, not from LSH.
	points := lineDataset(20)
	hits := map[int32]int{}
	for b := 0; b < 50; b++ {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, points, 5, uint64(b+1))
		if err != nil {
			t.Fatal(err)
		}
		// Overwrite with identity ranks (test-only surgery).
		s.base.asg = rank.IdentityAssignment(len(points))
		for i := range s.base.tables {
			for key, bucket := range s.base.tables[i].buckets {
				ids := append([]int32(nil), bucket.IDs()...)
				s.base.tables[i].buckets[key] = rank.NewBucket(ids, s.base.asg)
			}
		}
		id, ok := s.Sample(0, nil)
		if !ok {
			t.Fatal("no sample")
		}
		hits[id]++
	}
	if hits[0] != 50 {
		t.Errorf("identity permutation should always return id 0; got %v", hits)
	}
}

func TestIndependentExtremeConstants(t *testing.T) {
	// λ = 1 with Σ = 1 is the most hostile configuration: the acceptance
	// probability saturates at 1 and k collapses after every rejection.
	// The sampler must remain correct (near outputs only) and keep a
	// reasonable success rate. (The clamped-acceptance bookkeeping itself
	// is exercised deterministically in TestWeightedClampRecorded.)
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(64), 1, IndependentOptions{Lambda: 1, SigmaBudget: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 200; i++ {
		var st QueryStats
		id, ok := d.Sample(0, &st)
		if !ok {
			continue
		}
		found++
		if d.Point(id) > 1 {
			t.Fatal("far point returned")
		}
	}
	if found < 100 {
		t.Errorf("success rate %d/200 under extreme constants", found)
	}
}

func TestIndependentTinySigma(t *testing.T) {
	// Σ = 1 halves k after every failed segment; the query must still
	// terminate and (usually) succeed because small k segments are dense.
	d, err := NewIndependent[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(64), 7, IndependentOptions{SigmaBudget: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 200; i++ {
		if _, ok := d.Sample(0, nil); ok {
			found++
		}
	}
	if found < 100 {
		t.Errorf("only %d/200 found with Σ=1", found)
	}
}

func TestStandardConcurrentBuildsIndependent(t *testing.T) {
	// Structures built with different seeds must not share state: querying
	// one leaves the other's outputs unchanged (guards against accidental
	// package-level globals).
	sets := []set.Set{set.Range(1, 10), set.Range(1, 9), set.Range(50, 60)}
	a, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 2, L: 8}, sets, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStandard[set.Set](Jaccard(), lsh.OneBitMinHash{}, lsh.Params{K: 2, L: 8}, sets, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := set.Range(1, 10)
	want, _ := b.Query(q, nil)
	for i := 0; i < 50; i++ {
		a.NaiveFairSample(q, nil) // consumes a's randomness only
	}
	got, _ := b.Query(q, nil)
	if got != want {
		t.Error("querying one structure changed another's deterministic output")
	}
}

// quick property: SampleK never returns duplicates or far points for any
// (k, radius) combination.
func TestSampleKPropertyQuick(t *testing.T) {
	prop := func(seed uint64, kRaw, radiusRaw uint8) bool {
		k := int(kRaw%20) + 1
		radius := float64(radiusRaw % 30)
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 1}, lineDataset(40), radius, seed)
		if err != nil {
			return false
		}
		out := s.SampleK(0, k, nil)
		seen := map[int32]bool{}
		for _, id := range out {
			if seen[id] {
				return false
			}
			seen[id] = true
			if float64(s.Point(id)) > radius {
				return false
			}
		}
		want := int(radius) + 1
		if want > 40 {
			want = 40
		}
		if k < want {
			want = k
		}
		return len(out) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// quick property: rank invariants survive arbitrary SampleRepeated bursts.
func TestSampleRepeatedInvariantQuick(t *testing.T) {
	prop := func(seed uint64, queries []uint8) bool {
		s, err := NewSampler[int](intSpace(), allCollide{}, lsh.Params{K: 1, L: 2}, lineDataset(30), 6, seed)
		if err != nil {
			return false
		}
		for _, qRaw := range queries {
			s.SampleRepeated(int(qRaw%35), nil)
		}
		return s.rankInvariantOK()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
