package core

import (
	"math"

	"fairnn/internal/lsh"
	"fairnn/internal/rng"
	"fairnn/internal/stats"
)

// intSpace is a 1-D toy metric: points are integers on a line, distance is
// the absolute difference. With the allCollide family it isolates the
// rank-permutation logic from LSH recall effects.
func intSpace() Space[int] {
	return Space[int]{Kind: Distance, Score: func(a, b int) float64 {
		return math.Abs(float64(a - b))
	}}
}

// allCollide is a degenerate LSH family where every point lands in one
// bucket: recall is perfect and every candidate scan sees all points.
type allCollide struct{}

func (allCollide) New(r *rng.Source) lsh.Func[int] {
	return func(int) uint64 { return 0 }
}

func (allCollide) CollisionProb(float64) float64 { return 1 }

// lineDataset returns the points 0..n-1; the ball of query 0 at radius r is
// {0, ..., r}.
func lineDataset(n int) []int {
	pts := make([]int, n)
	for i := range pts {
		pts[i] = i
	}
	return pts
}

// tvUniform computes the total-variation distance of freq from the uniform
// distribution over domain.
func tvUniform(freq *stats.Frequency, domain []int32) float64 {
	return freq.TVFromUniform(domain)
}

// domainInts returns [0, m) as int32s.
func domainInts(m int) []int32 {
	out := make([]int32, m)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// newTestRNG returns a fixed-seed source for test-local randomness.
func newTestRNG() *rng.Source { return rng.New(0xfadecafe) }
