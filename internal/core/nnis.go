package core

import (
	"context"
	"iter"
	"math"
	"math/bits"
	"slices"
	"time"

	"fairnn/internal/lsh"
	"fairnn/internal/obs"
	"fairnn/internal/rank"
	"fairnn/internal/rng"
	"fairnn/internal/sketch"
)

// IndependentOptions tunes the Section 4 data structure. Zero values select
// the paper's asymptotic choices with practical constants.
type IndependentOptions struct {
	// Lambda is the per-segment cap λ = Θ(log n) on near neighbors; the
	// acceptance probability of a segment is λ_q,h / λ.
	Lambda int
	// SigmaBudget is Σ = Θ(log² n): after Σ sampled segments without
	// success, the segment count k is halved.
	SigmaBudget int
	// SketchEpsilon is the count-distinct accuracy (paper: 1/2).
	SketchEpsilon float64
	// SketchDelta is the count-distinct failure probability
	// (paper: 1/(6n²)).
	SketchDelta float64
	// SketchMinBucket is the bucket size below which sketches are built on
	// demand instead of stored (the paper's Θ(log n) space rule).
	SketchMinBucket int
	// SketchKind selects the count-distinct implementation: sketch.KMV
	// (the paper's Section 2.3 sketch, default) or sketch.HyperLogLog
	// (~10x smaller at comparable practical accuracy; see the
	// BenchmarkAblationSketchKind comparison).
	SketchKind sketch.Kind
	// Memo is the per-query memory discipline: which near-cache backend
	// pooled queriers carry (dense arrays below Memo.DenseThreshold
	// points, a compact o(n) table above) and how much scratch the
	// querier pool may retain across checkouts. The zero value keeps the
	// dense fast path at small n and bounds pooled memory at large n.
	Memo MemoOptions
	// Obs, when non-nil, registers the draw-loop telemetry bundle
	// (layer="core" counters plus a latency histogram) against the
	// registry and records into it on every draw. A nil registry is
	// contractually invisible: same-seed sample streams, QueryStats
	// counters, and the zero-allocation steady state are bit-identical
	// to a telemetry-free build, and the enabled path stays zero-alloc
	// too (the instruments are preallocated at registration).
	Obs *obs.Registry
}

func (o IndependentOptions) withDefaults(n int) IndependentOptions {
	logn := math.Log2(float64(n) + 1)
	if o.Lambda <= 0 {
		o.Lambda = int(math.Ceil(3 * logn))
		if o.Lambda < 4 {
			o.Lambda = 4
		}
	}
	if o.SigmaBudget <= 0 {
		o.SigmaBudget = int(math.Ceil(2 * logn * logn))
		if o.SigmaBudget < 16 {
			o.SigmaBudget = 16
		}
	}
	if o.SketchEpsilon <= 0 {
		o.SketchEpsilon = 0.5
	}
	if o.SketchDelta <= 0 {
		o.SketchDelta = 1 / (6 * float64(n) * float64(n))
		if o.SketchDelta < 1e-9 {
			o.SketchDelta = 1e-9
		}
	}
	if o.SketchMinBucket <= 0 {
		o.SketchMinBucket = int(math.Ceil(4 * logn))
	}
	return o
}

// Independent is the Section 4 data structure for the r-near neighbor
// independent sampling problem (r-NNIS, Definition 2). On top of the
// rank-sorted buckets of Section 3 it stores a mergeable count-distinct
// sketch per (large) bucket. A query:
//
//  1. merges the sketches of its L buckets into an estimate ŝ_q of the
//     number of distinct colliding points,
//  2. splits the rank permutation Λ into k ≈ 2ŝ_q segments,
//  3. repeatedly samples a segment uniformly at random, retrieves the near
//     points inside it via rank-range reports on the buckets, and accepts
//     the segment with probability λ_q,h / λ,
//  4. on acceptance returns a uniform near point of the segment; every Σ
//     rejected segments, k is halved.
//
// Every accepted point is uniform on B_S(q, r), and because all query
// randomness is drawn fresh per query, outputs of consecutive queries are
// independent (Theorem 2).
//
// Sample and SampleK are safe for concurrent use: the index is read-only
// after construction, per-query scratch comes from a pool, and each query
// draws its randomness from a dedicated stream split off the seed by an
// atomic counter. Steady-state queries perform zero heap allocations.
type Independent[P any] struct {
	base     *rankedBase[P]
	opts     IndependentOptions
	skFamily sketch.CounterFamily
	// sketches[i][key] is the stored sketch of bucket key in table i; small
	// buckets have no entry and are sketched on demand.
	sketches []map[uint64]sketch.Counter
	maxK     int
	met      *obs.QueryMetrics
}

// NewIndependent builds the Section 4 structure.
func NewIndependent[P any](space Space[P], family lsh.Family[P], params lsh.Params, points []P, radius float64, opts IndependentOptions, seed uint64) (*Independent[P], error) {
	src := rng.New(seed)
	base, err := newRankedBase(space, family, params, points, radius, opts.Memo, src)
	if err != nil {
		return nil, err
	}
	n := len(points)
	opts = opts.withDefaults(n)
	skFamily, err := sketch.NewCounterFamily(opts.SketchKind, opts.SketchEpsilon, opts.SketchDelta, src)
	if err != nil {
		return nil, err
	}
	d := &Independent[P]{
		base:     base,
		opts:     opts,
		skFamily: skFamily,
		sketches: make([]map[uint64]sketch.Counter, params.L),
		maxK:     nextPow2(n),
		met:      obs.NewQueryMetrics(opts.Obs, "core"),
	}
	for i := range d.sketches {
		m := make(map[uint64]sketch.Counter)
		for key, bucket := range base.tables[i].buckets {
			if bucket.Len() >= opts.SketchMinBucket {
				m[key] = skFamily.SketchIDs(bucket.IDs())
			}
		}
		d.sketches[i] = m
	}
	return d, nil
}

// nextPow2 returns the smallest power of two >= n (and 1 for n <= 1),
// via the bit length of n-1 instead of a doubling loop.
//
//fairnn:noalloc
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// N returns the number of indexed points.
func (d *Independent[P]) N() int { return d.base.N() }

// Size returns the number of indexed points (the Sampler contract).
func (d *Independent[P]) Size() int { return d.base.N() }

// Radius returns the threshold r.
func (d *Independent[P]) Radius() float64 { return d.base.Radius() }

// Params returns the LSH parameters in use.
func (d *Independent[P]) Params() lsh.Params { return d.base.Params() }

// Options returns the resolved tuning constants.
func (d *Independent[P]) Options() IndependentOptions { return d.opts }

// Point returns the indexed point with the given id.
func (d *Independent[P]) Point(id int32) P { return d.base.Point(id) }

// MemoBackendInUse reports the resolved near-cache backend (dense or
// compact after MemoAuto's threshold decision).
func (d *Independent[P]) MemoBackendInUse() MemoBackend { return d.base.MemoBackendInUse() }

// RetainedScratchBytes reports the backing-array footprint of the pooled
// per-query scratch this structure currently pins between queries.
func (d *Independent[P]) RetainedScratchBytes() int { return d.base.RetainedScratchBytes() }

// RetainedQueriers reports how many queriers the pool currently holds.
func (d *Independent[P]) RetainedQueriers() int { return d.base.RetainedQueriers() }

// estimateCandidates merges the count-distinct sketches of q's buckets and
// returns ŝ_q (step 1 of the query). The bucket keys resolved by
// rankedBase.resolve are threaded through the querier, so no table
// re-hashes the query; the querier's counter is reset and reused, so the
// merge allocates nothing in steady state. Small buckets contribute their
// ids directly — equivalent to merging their on-demand sketches.
//
//fairnn:noalloc
func (d *Independent[P]) estimateCandidates(qr *querier, st *QueryStats) float64 {
	if qr.counter == nil {
		qr.counter = d.skFamily.NewCounter()
	} else {
		qr.counter.Reset()
	}
	acc := qr.counter
	empty := true
	for i, bucket := range qr.buckets {
		if bucket == nil || bucket.Len() == 0 {
			continue
		}
		empty = false
		if sk := d.sketches[i][qr.keys[i]]; sk != nil {
			// Stored sketch: merge (cost linear in sketch size).
			if err := d.skFamily.MergeInto(acc, sk); err != nil {
				panic("core: sketch family mismatch (internal invariant)")
			}
			continue
		}
		// Small bucket: sketch on demand.
		for _, id := range bucket.IDs() {
			acc.Add(uint64(uint32(id)))
		}
	}
	if empty {
		return 0
	}
	est := acc.Estimate()
	if st != nil {
		st.SketchEstimate = est
	}
	return est
}

// segmentNear collects the distinct near points of q whose rank lies in
// [lo, hi) (step 3.b). The candidate buffer lives in the querier and is
// recycled across rounds; candidates are distance-tested through the
// epoch-stamped near-cache, so a point revisited by a later round (or a
// later loop of SampleK) is never re-scored.
//
// Two segment-report strategies, chosen adaptively: initially each round
// issues L per-bucket rank-range reports and deduplicates by sorting
// (cheap for the handful of rounds a lucky query needs). Every round's
// cost is metered into qr.rangeWork; once the cumulative total exceeds
// the one-time merge cost, the L buckets are k-way-merged into one
// deduplicated (rank, id) array and every subsequent round becomes a
// single binary search plus a contiguous scan. The merged view survives
// until the next resolve, so all k loops of a SampleK share it.
//
//fairnn:noalloc
func (d *Independent[P]) segmentNear(q P, qr *querier, lo, hi int32, st *QueryStats) []int32 {
	if !qr.isMerged && qr.rangeWork >= qr.mergeCost {
		d.base.materializeMerged(qr, st)
	}
	if qr.isMerged {
		ranks := qr.mergedRanks
		if d.base.batchScore == nil {
			// No batch kernel: filter inline in the same pass as the
			// segment scan (collecting first would only add a second pass).
			kept := qr.cand[:0]
			for i := rank.SearchRanks(ranks, lo); i < len(ranks) && ranks[i] < hi; i++ {
				st.point()
				if id := qr.mergedIDs[i]; d.base.nearCached(q, qr, id, st) {
					kept = append(kept, id)
				}
			}
			qr.cand = kept[:0]
			return kept
		}
		cands := qr.cand[:0]
		for i := rank.SearchRanks(ranks, lo); i < len(ranks) && ranks[i] < hi; i++ {
			st.point()
			cands = append(cands, qr.mergedIDs[i])
		}
		kept := d.base.keepNear(q, qr, cands, st)
		qr.cand = kept[:0]
		return kept
	}
	cands := qr.cand[:0]
	work := 0
	for _, bucket := range qr.buckets {
		if bucket == nil {
			continue
		}
		work++ // one binary search per bucket
		before := len(cands)
		cands = bucket.RangeReport(d.base.asg, lo, hi, cands)
		st.points(len(cands) - before)
	}
	qr.rangeWork += work + len(cands)
	qr.cand = cands[:0]
	if len(cands) == 0 {
		return cands
	}
	// Deduplicate ids that occur in several buckets.
	slices.Sort(cands)
	cands = slices.Compact(cands)
	// Keep the near ones (batched over the memo misses when the space has
	// a batch kernel).
	return d.base.keepNear(q, qr, cands, st)
}

// Sample returns a uniform, independent sample from B_S(q, r), or ok=false
// when no near point collides with q (or the rejection budget is exhausted,
// a probability-≤δ event under the paper's constants).
//
//fairnn:noalloc
func (d *Independent[P]) Sample(q P, st *QueryStats) (id int32, ok bool) {
	id, err := d.SampleContext(context.Background(), q, st)
	return id, err == nil
}

// SampleContext is the one query entry sequence (Sample delegates here
// with context.Background(), so the two entry points cannot diverge):
// the rejection loop polls ctx.Err() every ctxCheckRounds rounds, so a
// query spinning under deadline pressure returns ctx's error within one
// check interval. A failed (but uncanceled) query returns ErrNoSample.
// The poll draws no randomness and the Background path allocates
// nothing, so Sample's draw order, output and zero-allocation steady
// state are unchanged.
//
//fairnn:noalloc
func (d *Independent[P]) SampleContext(ctx context.Context, q P, st *QueryStats) (int32, error) {
	qr := d.base.getQuerier()
	defer d.base.putQuerier(qr)
	d.base.resolve(q, qr, st)
	est := d.estimateCandidates(qr, st)
	id, ok := d.sampleResolved(ctx, q, qr, est, st)
	return sampleCtxResult(ctx, id, ok)
}

// Samples returns an unbounded stream of independent uniform samples from
// B_S(q, r). The query is resolved and its candidate count estimated once
// per stream; every yielded id costs one rejection loop on the shared
// plan (exactly the SampleK amortization, without a bounded output
// buffer). The stream ends when the consumer breaks, when ctx is done
// (yielding ctx.Err() once), or when a draw fails (yielding ErrNoSample).
func (d *Independent[P]) Samples(ctx context.Context, q P) iter.Seq2[int32, error] {
	return func(yield func(int32, error) bool) {
		qr := d.base.getQuerier()
		defer d.base.putQuerier(qr)
		d.base.resolve(q, qr, nil)
		est := d.estimateCandidates(qr, nil)
		for {
			id, ok := d.sampleResolved(ctx, q, qr, est, nil)
			id, err := sampleCtxResult(ctx, id, ok)
			if err != nil {
				yield(0, err)
				return
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}

// sampleResolved is the telemetry choke point around drawResolved: with
// no registry configured it is a tail call (the disabled-telemetry
// contract — not one extra instruction of timing or counting on the
// plain path); with one, it times the draw and records the rejection-
// loop counter deltas. When the caller passed no QueryStats the querier's
// scratch record collects the deltas, so metrics never change whether
// the draw loop sees a stats sink — counter writes are observational
// and draw no randomness, keeping same-seed streams bit-identical.
//
//fairnn:noalloc
func (d *Independent[P]) sampleResolved(ctx context.Context, q P, qr *querier, est float64, st *QueryStats) (id int32, ok bool) {
	m := d.met
	if m == nil {
		return d.drawResolved(ctx, q, qr, est, st)
	}
	if st == nil {
		qr.mstats = QueryStats{}
		st = &qr.mstats
	}
	preRounds, preHits := st.Rounds, st.ScoreCacheHits
	preBatch, preEvals := st.BatchScored, st.ScoreEvals
	t0 := time.Now()
	id, ok = d.drawResolved(ctx, q, qr, est, st)
	m.ObserveDraw(time.Since(t0), ok, st.Rounds-preRounds, st.ScoreCacheHits-preHits,
		st.BatchScored-preBatch, st.ScoreEvals-preEvals, false)
	return id, ok
}

// drawResolved runs steps 2–4 of the query (segment search + rejection)
// against an already-resolved querier. Each call draws fresh randomness
// from the querier's stream, so repeated calls yield independent samples.
// The loop polls ctx.Err() every ctxCheckRounds rounds and exits with
// ok=false when the context is done (callers that care distinguish the
// two via sampleCtxResult); the poll draws no randomness, so the output
// stream under an uncanceled context is unchanged.
//
//fairnn:noalloc
func (d *Independent[P]) drawResolved(ctx context.Context, q P, qr *querier, est float64, st *QueryStats) (id int32, ok bool) {
	if est <= 0 {
		st.found(false)
		return 0, false
	}
	n := int64(d.base.N())
	k := nextPow2(int(math.Ceil(2 * est)))
	if k > d.maxK {
		k = d.maxK
	}
	lambda := float64(d.opts.Lambda)
	sigmaFail := 0
	for rounds := 0; k >= 1; {
		st.round()
		rounds++
		if rounds%ctxCheckRounds == 0 && ctx.Err() != nil {
			st.found(false)
			return 0, false
		}
		h := int64(qr.rng.Intn(k))
		lo := int32(h * n / int64(k))
		hi := int32((h + 1) * n / int64(k))
		nearIDs := d.segmentNear(q, qr, lo, hi, st)
		lqh := len(nearIDs)
		sigmaFail++
		if sigmaFail >= d.opts.SigmaBudget {
			k /= 2
			sigmaFail = 0
		}
		if lqh == 0 {
			continue
		}
		p := float64(lqh) / lambda
		if p > 1 {
			st.clamp()
			p = 1
		}
		if qr.rng.Bernoulli(p) {
			if st != nil {
				st.FinalK = k
			}
			st.found(true)
			return nearIDs[qr.rng.Intn(lqh)], true
		}
	}
	st.found(false)
	return 0, false
}

// SampleK returns k independent with-replacement samples from B_S(q, r)
// (repeated independent queries; Definition 2 makes them independent). The
// query is resolved and the candidate count estimated once — both are
// deterministic given (structure, query) — and the k rejection loops share
// the resolved buckets, the merged candidate cursor, and the near-cache,
// so hashing, merging, and every distinct distance evaluation are paid
// once, not k times.
func (d *Independent[P]) SampleK(q P, k int, st *QueryStats) []int32 {
	if k <= 0 {
		return nil
	}
	return d.SampleKInto(q, k, make([]int32, 0, k), st)
}

// SampleKInto is SampleK writing into dst (reset to length zero and grown
// as needed): callers drawing many batches amortize the output buffer and
// reach a zero-allocation steady state. The returned slice must be
// consumed (or copied) before dst is reused.
//
//fairnn:noalloc
func (d *Independent[P]) SampleKInto(q P, k int, dst []int32, st *QueryStats) []int32 {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	qr := d.base.getQuerier()
	defer d.base.putQuerier(qr)
	d.base.resolve(q, qr, st)
	est := d.estimateCandidates(qr, st)
	for i := 0; i < k; i++ {
		if id, ok := d.sampleResolved(context.Background(), q, qr, est, st); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// StoredSketches returns how many buckets carry a precomputed sketch;
// exposed for the space-accounting experiment.
func (d *Independent[P]) StoredSketches() (buckets, words int) {
	for _, m := range d.sketches {
		for _, sk := range m {
			buckets++
			words += sk.MemoryWords()
		}
	}
	return
}
