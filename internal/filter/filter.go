// Package filter implements the locality-sensitive filter substrate of
// Section 5 and Appendix B: a bank of t·m^(1/t) Gaussian filter vectors
// arranged as t independent sub-structures (tensoring). Every data point is
// stored exactly once — in the bucket indexed by the t vectors achieving
// the maximum inner product with the point, one per sub-structure. A query
// evaluates all filters and enumerates the buckets whose component filters
// score at least α·Δ_{q,i} − f(α, ε).
//
// This is the "much simpler" nearly-linear-space alternative to the LSH
// tables: construction stores n + t·m^(1/t) items, and Theorem 7 bounds the
// query time by n^ρ + o(1) with ρ = (1−α²)(1−β²)/(1−αβ)².
package filter

import (
	"errors"
	"math"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

// F returns f(α, ε) = sqrt(2(1−α²) ln(1/ε)), the query threshold slack of
// Section 5.
//
//fairnn:noalloc
func F(alpha, eps float64) float64 {
	return math.Sqrt(2 * (1 - alpha*alpha) * math.Log(1/eps))
}

// Tensoring returns t = ⌈1/(1−α²)⌉, the number of sub-structures.
func Tensoring(alpha float64) int {
	t := int(math.Ceil(1 / (1 - alpha*alpha)))
	if t < 1 {
		t = 1
	}
	return t
}

// Rho returns the query exponent ρ = (1−α²)(1−β²)/(1−αβ)² of Theorem 3.
func Rho(alpha, beta float64) float64 {
	num := (1 - alpha*alpha) * (1 - beta*beta)
	den := (1 - alpha*beta) * (1 - alpha*beta)
	return num / den
}

// FiltersPerSub returns m^(1/t) for m = n^((1−β²)/(1−αβ)²), the per-sub-
// structure filter count that balances far-point cost against filter
// evaluation cost (Lemma 3 / Theorem 7), with a floor of 2.
func FiltersPerSub(n int, alpha, beta float64) int {
	exp := (1 - beta*beta) / ((1 - alpha*beta) * (1 - alpha*beta))
	m := math.Pow(float64(n), exp)
	t := Tensoring(alpha)
	m1t := int(math.Ceil(math.Pow(m, 1/float64(t))))
	if m1t < 2 {
		m1t = 2
	}
	return m1t
}

// Params configures one filter bank.
type Params struct {
	// Alpha is the near threshold (inner product of unit vectors).
	Alpha float64
	// Beta is the far threshold, −1 < Beta < Alpha < 1.
	Beta float64
	// Eps controls the per-bank success probability via f(α, ε).
	Eps float64
	// M1T overrides m^(1/t) when > 0; otherwise FiltersPerSub is used.
	M1T int
	// T overrides the tensoring degree when > 0; otherwise Tensoring(α).
	T int
}

// Validate reports whether the parameters are usable for n points.
func (p Params) Validate() error {
	if !(p.Alpha > -1 && p.Alpha < 1) {
		return errors.New("filter: Alpha must be in (-1, 1)")
	}
	if !(p.Beta > -1 && p.Beta < p.Alpha) {
		return errors.New("filter: Beta must be in (-1, Alpha)")
	}
	if !(p.Eps > 0 && p.Eps < 1) {
		return errors.New("filter: Eps must be in (0, 1)")
	}
	return nil
}

func (p Params) resolve(n int) Params {
	if p.T <= 0 {
		p.T = Tensoring(p.Alpha)
	}
	if p.M1T <= 0 {
		p.M1T = FiltersPerSub(n, p.Alpha, p.Beta)
	}
	return p
}

// Bank is one Section 5 data structure: t sub-structures of m^(1/t)
// Gaussian vectors each, plus the bucket hash table. Each indexed point is
// referenced exactly once.
//
//fairnn:frozen
type Bank struct {
	params Params
	// vecs[i][j] is filter vector a_{i,j}.
	vecs [][]vector.Vec
	// keyOf[id] is the bucket key of point id (its argmax tuple, packed).
	keyOf []uint64
	// buckets maps packed keys to the ids stored there.
	buckets map[uint64][]int32
	dim     int
}

// NewBank indexes the points (assumed unit vectors) into a fresh bank.
func NewBank(points []vector.Vec, params Params, r *rng.Source) (*Bank, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("filter: empty point set")
	}
	params = params.resolve(len(points))
	dim := len(points[0])
	b := &Bank{
		params:  params,
		vecs:    make([][]vector.Vec, params.T),
		keyOf:   make([]uint64, len(points)),
		buckets: make(map[uint64][]int32),
		dim:     dim,
	}
	for i := 0; i < params.T; i++ {
		b.vecs[i] = make([]vector.Vec, params.M1T)
		for j := 0; j < params.M1T; j++ {
			b.vecs[i][j] = vector.Gaussian(r, dim)
		}
	}
	dots := make([]float64, params.M1T)
	for id, p := range points {
		key := b.argmaxKeyInto(p, dots)
		b.keyOf[id] = key
		b.buckets[key] = append(b.buckets[key], int32(id))
	}
	return b, nil
}

// Params returns the resolved parameters of the bank.
func (b *Bank) Params() Params { return b.params }

// NumFilters returns t·m^(1/t), the number of stored filter vectors.
func (b *Bank) NumFilters() int { return b.params.T * b.params.M1T }

// KeyOf returns the bucket key point id was stored under.
//
//fairnn:noalloc
func (b *Bank) KeyOf(id int32) uint64 { return b.keyOf[id] }

// Bucket returns the ids stored under key (owned by the bank).
//
//fairnn:noalloc
func (b *Bank) Bucket(key uint64) []int32 { return b.buckets[key] }

// argmaxKey maps a point to the packed tuple (j_1, ..., j_t) of per-sub-
// structure argmax filters, with throwaway scratch.
func (b *Bank) argmaxKey(p vector.Vec) uint64 {
	return b.argmaxKeyInto(p, make([]float64, b.params.M1T))
}

// argmaxKeyInto is argmaxKey writing its m^(1/t) inner products through
// dots — one batched kernel call per sub-structure, so NewBank's point
// loop scores each sub-structure's filters as a block without per-point
// allocation. Ties keep the lowest filter index, as before.
func (b *Bank) argmaxKeyInto(p vector.Vec, dots []float64) uint64 {
	key := uint64(0)
	for i := 0; i < b.params.T; i++ {
		vector.DotBatch(p, b.vecs[i], dots)
		best, bestDot := 0, math.Inf(-1)
		for j, d := range dots {
			if d > bestDot {
				bestDot = d
				best = j
			}
		}
		key = key*uint64(b.params.M1T) + uint64(best)
	}
	return key
}

// QueryPlan is the result of evaluating all filters for a query: the
// per-sub-structure index sets I_i and the packed keys of the non-empty
// buckets in I_1 × ... × I_t.
type QueryPlan struct {
	// Keys are the packed keys of non-empty candidate buckets.
	Keys []uint64
	// Candidates is the total number of points across those buckets.
	Candidates int
	// FilterEvals is the number of inner products computed (t·m^(1/t)).
	FilterEvals int
	// Combos is the size of the full cartesian product enumerated.
	Combos int
}

// QueryScratch holds the reusable buffers of Bank.QueryInto: filter dot
// products, per-sub-structure admitted index sets, the odometer counters,
// and the output key list. A zero value is ready to use; after warm-up a
// retained scratch makes bank queries allocation-free.
type QueryScratch struct {
	dots     []float64
	idxSets  [][]int32
	counters []int
	keys     []uint64
}

// RetainedBytes reports the backing-array footprint of the scratch, for
// callers that pool scratch under a memory budget.
//
//fairnn:noalloc
func (s *QueryScratch) RetainedBytes() int {
	total := 8*cap(s.dots) + 24*cap(s.idxSets) + 8*cap(s.counters) + 8*cap(s.keys)
	for _, idx := range s.idxSets {
		total += 4 * cap(idx)
	}
	return total
}

// Trim frees the backing arrays when RetainedBytes exceeds maxBytes; the
// scratch stays usable and regrows lazily on the next QueryInto.
//
//fairnn:noalloc
func (s *QueryScratch) Trim(maxBytes int) {
	if s.RetainedBytes() > maxBytes {
		*s = QueryScratch{}
	}
}

// Query evaluates all filters against q and enumerates candidate buckets
// with throwaway scratch. See QueryInto for the allocation-free variant.
func (b *Bank) Query(q vector.Vec) QueryPlan {
	var s QueryScratch
	return b.QueryInto(q, &s)
}

// QueryInto evaluates all filters against q and enumerates candidate
// buckets: sub-structure i admits filters with ⟨a_{i,j}, q⟩ ≥ α·Δ_{q,i} −
// f(α, ε). Only non-empty buckets are returned. The returned plan's Keys
// slice aliases the scratch and is valid until the scratch's next use.
//
//fairnn:noalloc
func (b *Bank) QueryInto(q vector.Vec, s *QueryScratch) QueryPlan {
	params := b.params
	f := F(params.Alpha, params.Eps)
	if cap(s.dots) < params.M1T {
		s.dots = make([]float64, params.M1T)
	}
	dots := s.dots[:params.M1T]
	for len(s.idxSets) < params.T {
		s.idxSets = append(s.idxSets, nil)
	}
	idxSets := s.idxSets[:params.T]
	for i := 0; i < params.T; i++ {
		// One batched kernel call per sub-structure (bit-identical to the
		// per-filter vector.Dot, so admitted index sets are unchanged).
		vector.DotBatch(q, b.vecs[i], dots)
		maxDot := math.Inf(-1)
		for _, d := range dots {
			if d > maxDot {
				maxDot = d
			}
		}
		thr := params.Alpha*maxDot - f
		idx := idxSets[i][:0]
		for j, d := range dots {
			if d >= thr {
				idx = append(idx, int32(j))
			}
		}
		idxSets[i] = idx
	}
	plan := QueryPlan{FilterEvals: params.T * params.M1T}
	// Enumerate the cartesian product I_1 × ... × I_t iteratively.
	combos := 1
	for _, set := range idxSets {
		combos *= len(set)
	}
	plan.Combos = combos
	if combos == 0 {
		return plan
	}
	if cap(s.counters) < params.T {
		s.counters = make([]int, params.T)
	}
	counters := s.counters[:params.T]
	for i := range counters {
		counters[i] = 0
	}
	s.keys = s.keys[:0]
	for {
		key := uint64(0)
		for i := 0; i < params.T; i++ {
			key = key*uint64(params.M1T) + uint64(idxSets[i][counters[i]])
		}
		if ids := b.buckets[key]; len(ids) > 0 {
			s.keys = append(s.keys, key)
			plan.Candidates += len(ids)
		}
		// Advance the odometer.
		i := params.T - 1
		for ; i >= 0; i-- {
			counters[i]++
			if counters[i] < len(idxSets[i]) {
				break
			}
			counters[i] = 0
		}
		if i < 0 {
			break
		}
	}
	plan.Keys = s.keys
	return plan
}
