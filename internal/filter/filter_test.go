package filter

import (
	"math"
	"testing"

	"fairnn/internal/rng"
	"fairnn/internal/vector"
)

func TestF(t *testing.T) {
	// f(α, ε) = sqrt(2(1-α²) ln(1/ε)).
	got := F(0.8, 0.1)
	want := math.Sqrt(2 * (1 - 0.64) * math.Log(10))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("F = %v, want %v", got, want)
	}
	if F(0.8, 1) != 0 {
		t.Errorf("F(·, 1) should be 0")
	}
}

func TestTensoring(t *testing.T) {
	cases := map[float64]int{0.0: 1, 0.5: 2, 0.8: 3, 0.9: 6}
	for alpha, want := range cases {
		if got := Tensoring(alpha); got != want {
			t.Errorf("Tensoring(%v) = %d, want %d", alpha, got, want)
		}
	}
}

func TestRho(t *testing.T) {
	// ρ = (1-α²)(1-β²)/(1-αβ)².
	got := Rho(0.8, 0.5)
	want := (1 - 0.64) * (1 - 0.25) / ((1 - 0.4) * (1 - 0.4))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Rho = %v, want %v", got, want)
	}
	if Rho(0.9, 0.1) >= 1 {
		t.Error("rho should be < 1 for a sensible gap")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Alpha: 1, Beta: 0.5, Eps: 0.1},
		{Alpha: 0.5, Beta: 0.6, Eps: 0.1},
		{Alpha: 0.5, Beta: -1.5, Eps: 0.1},
		{Alpha: 0.5, Beta: 0.2, Eps: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
	if err := (Params{Alpha: 0.8, Beta: 0.5, Eps: 0.1}).Validate(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
}

func TestBankStoresEachPointOnce(t *testing.T) {
	r := rng.New(1)
	points := make([]vector.Vec, 200)
	for i := range points {
		points[i] = vector.RandomUnit(r, 16)
	}
	b, err := NewBank(points, Params{Alpha: 0.8, Beta: 0.3, Eps: 0.1}, r)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	counts := make(map[int32]int)
	for key := range b.buckets {
		for _, id := range b.Bucket(key) {
			counts[id]++
			total++
		}
	}
	if total != len(points) {
		t.Fatalf("bank stores %d references, want %d (linear space)", total, len(points))
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("point %d stored %d times", id, c)
		}
		if b.KeyOf(id) == 0 && c == 0 {
			t.Fatal("unreachable")
		}
	}
	// KeyOf must agree with the bucket the point is in.
	for id := range points {
		found := false
		for _, other := range b.Bucket(b.KeyOf(int32(id))) {
			if other == int32(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("KeyOf(%d) does not contain the point", id)
		}
	}
}

func TestBankEmptyPoints(t *testing.T) {
	if _, err := NewBank(nil, Params{Alpha: 0.8, Beta: 0.3, Eps: 0.1}, rng.New(1)); err == nil {
		t.Fatal("empty point set accepted")
	}
}

func TestQueryRecallsExactMatch(t *testing.T) {
	// The bucket of the query itself is always above threshold (its filter
	// scores Δ_{q,i} ≥ αΔ_{q,i} - f), so an indexed copy of q is found.
	r := rng.New(2)
	points := make([]vector.Vec, 100)
	for i := range points {
		points[i] = vector.RandomUnit(r, 16)
	}
	q := points[17]
	b, err := NewBank(points, Params{Alpha: 0.8, Beta: 0.3, Eps: 0.1}, r)
	if err != nil {
		t.Fatal(err)
	}
	plan := b.Query(q)
	found := false
	for _, key := range plan.Keys {
		for _, id := range b.Bucket(key) {
			if id == 17 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("query point's own bucket not enumerated")
	}
	if plan.FilterEvals != b.NumFilters() {
		t.Errorf("FilterEvals = %d, want %d", plan.FilterEvals, b.NumFilters())
	}
	if plan.Candidates == 0 || plan.Combos == 0 {
		t.Errorf("empty plan: %+v", plan)
	}
}

func TestQueryNearRecallStatistical(t *testing.T) {
	// Points planted at inner product ≥ α are recalled by a single bank with
	// noticeable probability, and far points dominate misses (Lemma 1/3
	// behaviourally: recall(near) substantially above per-point fraction of
	// far candidates enumerated).
	r := rng.New(3)
	const dim = 24
	const n = 400
	q := vector.RandomUnit(r, dim)
	points := make([]vector.Vec, n)
	for i := range points {
		if i < 40 {
			points[i] = vector.UnitWithInnerProduct(r, q, 0.85)
		} else {
			points[i] = vector.RandomUnit(r, dim)
		}
	}
	const banks = 20
	nearHits, farCands := 0, 0
	for bidx := 0; bidx < banks; bidx++ {
		b, err := NewBank(points, Params{Alpha: 0.8, Beta: 0.3, Eps: 0.05}, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		plan := b.Query(q)
		inPlan := map[int32]bool{}
		for _, key := range plan.Keys {
			for _, id := range b.Bucket(key) {
				inPlan[id] = true
			}
		}
		for i := 0; i < 40; i++ {
			if inPlan[int32(i)] {
				nearHits++
			}
		}
		for i := 40; i < n; i++ {
			if inPlan[int32(i)] {
				farCands++
			}
		}
	}
	nearRecall := float64(nearHits) / float64(40*banks)
	farRate := float64(farCands) / float64((n-40)*banks)
	if nearRecall < 0.25 {
		t.Errorf("near recall per bank %v too low", nearRecall)
	}
	if farRate > nearRecall/2 {
		t.Errorf("far rate %v not well below near recall %v", farRate, nearRecall)
	}
}

func TestFiltersPerSub(t *testing.T) {
	m1t := FiltersPerSub(1000, 0.8, 0.5)
	if m1t < 2 {
		t.Fatalf("m1t = %d", m1t)
	}
	// Larger n should not shrink the filter count.
	if FiltersPerSub(100000, 0.8, 0.5) < m1t {
		t.Error("FiltersPerSub not monotone in n")
	}
}

func TestBankDeterministicKeys(t *testing.T) {
	r := rng.New(4)
	points := make([]vector.Vec, 50)
	for i := range points {
		points[i] = vector.RandomUnit(r, 8)
	}
	b, err := NewBank(points, Params{Alpha: 0.7, Beta: 0.2, Eps: 0.1}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range points {
		if b.argmaxKey(p) != b.KeyOf(int32(id)) {
			t.Fatalf("argmaxKey not deterministic for %d", id)
		}
	}
}
