package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Client is one multiplexed connection to a fairnn-server shard.
// Requests are pipelined: any number of calls may be in flight
// concurrently on the single connection, correlated by request id, so
// the sharded sampler's parallel per-shard arms and the load harness's
// concurrent clients share sockets without head-of-line request
// blocking (responses are routed, not ordered).
//
// A client survives its connection: if the socket dies, every in-flight
// call fails (the resilience layer above retries or degrades) and the
// next call redials lazily. The redial handshake re-validates the
// server's build identity — a restarted server with a different build
// (different seed, λ, or point count) is refused, because silently
// mixing two builds in one sample stream would corrupt both the
// determinism and the uniformity contracts.
//
// All methods are safe for concurrent use.
type Client struct {
	addr        string
	codec       string
	dialTimeout time.Duration

	meta Meta

	mu     sync.Mutex // guards cs (re)dial and closed
	cs     *connState
	closed bool

	reqMu  sync.Mutex // guards reqID wrap-around skip of 0
	reqID  uint32
	planID uint64 // guarded by mu

	// met is the client's instrument set (see Observe); nil means
	// telemetry is off, which is contractually invisible.
	met *clientMetrics
}

// connState is the lifetime of one underlying socket: its pending-call
// table and write lock die with it.
type connState struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint32]chan response
	dead    bool
	err     error
}

type response struct {
	op      Op
	payload []byte
	err     error
}

// Dial connects to a fairnn-server at addr, performs the handshake
// announcing codecName, and returns a client carrying the server's
// build identity. dialTimeout bounds the TCP connect and the handshake
// round trip (0 means no bound).
func Dial(addr, codecName string, dialTimeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, codec: codecName, dialTimeout: dialTimeout}
	cs, meta, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.meta = meta
	c.cs = cs
	return c, nil
}

// dial opens a socket, runs the synchronous handshake, and starts the
// reader goroutine. Called with c.mu held (or before the client is
// shared).
func (c *Client) dial() (*connState, Meta, error) {
	var d net.Dialer
	d.Timeout = c.dialTimeout
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	if c.dialTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.dialTimeout))
	}
	// Handshake runs synchronously before the reader exists: one frame
	// out, one frame back, so there is no routing to race with.
	frame := AppendHeader(nil, Header{Op: OpHello, ReqID: 1, PayloadLen: len(c.codec) + 4})
	frame = AppendHelloReq(frame, HelloReq{Codec: c.codec})
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		return nil, Meta{}, fmt.Errorf("wire: handshake write to %s: %w", c.addr, err)
	}
	h, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, Meta{}, fmt.Errorf("wire: handshake read from %s: %w", c.addr, err)
	}
	if h.Op == OpErr {
		re, derr := DecodeErrResp(payload)
		conn.Close()
		if derr != nil {
			return nil, Meta{}, derr
		}
		return nil, Meta{}, re
	}
	if h.Op != OpHello || h.ReqID != 1 {
		conn.Close()
		return nil, Meta{}, &ProtocolError{Reason: fmt.Sprintf("handshake response is %s req %d, want hello req 1", h.Op, h.ReqID)}
	}
	meta, err := DecodeMeta(payload)
	if err != nil {
		conn.Close()
		return nil, Meta{}, err
	}
	_ = conn.SetDeadline(time.Time{})
	cs := &connState{conn: conn, pending: make(map[uint32]chan response)}
	go cs.readLoop()
	return cs, meta, nil
}

// readFrame reads one complete frame (header + payload) from r.
func readFrame(r io.Reader) (Header, []byte, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := DecodeHeader(hb[:])
	if err != nil {
		return Header{}, nil, err
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Header{}, nil, err
	}
	return h, payload, nil
}

// readLoop routes response frames to their pending calls until the
// socket dies, then fails every in-flight call so the resilience layer
// above sees a prompt typed error instead of a hang.
func (cs *connState) readLoop() {
	defer func() {
		if r := recover(); r != nil {
			cs.fail(fmt.Errorf("wire: reader panic: %v", r))
		}
	}()
	for {
		h, payload, err := readFrame(cs.conn)
		if err != nil {
			cs.fail(err)
			return
		}
		cs.pmu.Lock()
		ch := cs.pending[h.ReqID]
		delete(cs.pending, h.ReqID)
		cs.pmu.Unlock()
		if ch == nil {
			// A response for a call that gave up (ctx expiry deregisters)
			// or a stray id: drop it. The frame was fully consumed, so
			// the stream stays aligned.
			continue
		}
		if h.Op == OpErr {
			re, derr := DecodeErrResp(payload)
			if derr != nil {
				ch <- response{err: derr}
			} else {
				ch <- response{err: re}
			}
			continue
		}
		ch <- response{op: h.Op, payload: payload}
	}
}

// fail marks the connection dead, closes the socket, and fails all
// pending calls with err.
func (cs *connState) fail(err error) {
	cs.pmu.Lock()
	if cs.dead {
		cs.pmu.Unlock()
		return
	}
	cs.dead = true
	cs.err = err
	pending := cs.pending
	cs.pending = nil
	cs.pmu.Unlock()
	cs.conn.Close()
	for _, ch := range pending {
		ch <- response{err: fmt.Errorf("%w: %v", ErrClosed, err)}
	}
}

// conn returns a live connection, redialing if the previous one died.
// A redial re-validates the server's build identity against the one
// captured at first dial.
func (c *Client) conn() (*connState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.cs != nil {
		c.cs.pmu.Lock()
		dead := c.cs.dead
		c.cs.pmu.Unlock()
		if !dead {
			return c.cs, nil
		}
	}
	// Every dial from here is a reconnect: the first dial happens in
	// Dial, before the client exists to callers.
	c.met.redialed()
	cs, meta, err := c.dial()
	if err != nil {
		return nil, err
	}
	if meta != c.meta {
		cs.conn.Close()
		return nil, fmt.Errorf("wire: server %s changed identity across reconnect (shard %d/%d n=%d seed=%#x → shard %d/%d n=%d seed=%#x): refusing to mix builds",
			c.addr, c.meta.ShardIndex, c.meta.ShardCount, c.meta.ShardN, c.meta.QueryStreamSeed,
			meta.ShardIndex, meta.ShardCount, meta.ShardN, meta.QueryStreamSeed)
	}
	c.cs = cs
	return cs, nil
}

// nextReqID returns the next request id, skipping 0 (the one-way
// marker) on wrap-around.
func (c *Client) nextReqID() uint32 {
	c.reqMu.Lock()
	c.reqID++
	if c.reqID == 0 {
		c.reqID = 1
	}
	id := c.reqID
	c.reqMu.Unlock()
	return id
}

// NextPlanID returns a fresh client-unique plan handle.
func (c *Client) NextPlanID() uint64 {
	c.mu.Lock()
	c.planID++
	id := c.planID
	c.mu.Unlock()
	return id
}

// Meta returns the server's build identity captured at first dial.
func (c *Client) Meta() Meta { return c.meta }

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Call sends one request frame and waits for its response (or ctx
// expiry, or connection death). The remaining ctx budget is propagated
// in the frame header so the server can shed work that can no longer be
// answered in time. Returns the response payload, a *RemoteError for a
// typed server failure, a *ProtocolError for framing violations, or a
// transport error wrapping ErrClosed.
func (c *Client) Call(ctx context.Context, op Op, payload []byte) ([]byte, error) {
	m := c.met
	if m == nil {
		return c.call(ctx, op, payload)
	}
	t0 := time.Now()
	b, err := c.call(ctx, op, payload)
	m.observe(op, time.Since(t0), err)
	return b, err
}

// call is Call without the telemetry envelope.
func (c *Client) call(ctx context.Context, op Op, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, &ProtocolError{Reason: fmt.Sprintf("request payload %d exceeds cap %d", len(payload), MaxPayload)}
	}
	cs, err := c.conn()
	if err != nil {
		return nil, err
	}
	id := c.nextReqID()
	ch := make(chan response, 1)
	cs.pmu.Lock()
	if cs.dead {
		err := cs.err
		cs.pmu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	cs.pending[id] = ch
	cs.pmu.Unlock()

	h := Header{Op: op, ReqID: id, PayloadLen: len(payload)}
	var wd time.Time
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			cs.deregister(id)
			return nil, ctx.Err()
		}
		micros := rem.Microseconds()
		if micros > int64(^uint32(0)) {
			micros = int64(^uint32(0))
		}
		if micros < 1 {
			micros = 1
		}
		h.DeadlineMicros = uint32(micros)
		wd = dl
	}
	if err := cs.writeFrame(h, payload, wd); err != nil {
		cs.deregister(id)
		cs.fail(err)
		return nil, fmt.Errorf("%w: write: %v", ErrClosed, err)
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		if r.op != op {
			return nil, &ProtocolError{Reason: fmt.Sprintf("response op %s for %s request %d", r.op, op, id)}
		}
		return r.payload, nil
	case <-ctx.Done():
		cs.deregister(id)
		return nil, ctx.Err()
	}
}

// Notify sends a one-way frame (request id 0, no response expected).
// Used for plan release, where the client has nothing to learn and
// waiting a round trip per query would double the release cost.
func (c *Client) Notify(op Op, payload []byte) error {
	cs, err := c.conn()
	if err != nil {
		return err
	}
	h := Header{Op: op, ReqID: 0, PayloadLen: len(payload)}
	if err := cs.writeFrame(h, payload, time.Time{}); err != nil {
		cs.fail(err)
		return fmt.Errorf("%w: write: %v", ErrClosed, err)
	}
	return nil
}

// writeFrame writes one frame under the connection's write lock. wd, if
// nonzero, bounds the write (a wedged peer must not hang the caller
// past its ctx deadline).
func (cs *connState) writeFrame(h Header, payload []byte, wd time.Time) error {
	buf := AppendHeader(make([]byte, 0, HeaderSize+len(payload)), h)
	buf = append(buf, payload...)
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	if err := cs.conn.SetWriteDeadline(wd); err != nil {
		return err
	}
	_, err := cs.conn.Write(buf)
	return err
}

// deregister removes a pending call (its caller gave up).
func (cs *connState) deregister(id uint32) {
	cs.pmu.Lock()
	delete(cs.pending, id)
	cs.pmu.Unlock()
}

// Close tears down the client. In-flight calls fail with ErrClosed;
// subsequent calls fail immediately.
func (c *Client) Close() error {
	c.mu.Lock()
	cs := c.cs
	c.closed = true
	c.cs = nil
	c.mu.Unlock()
	if cs != nil {
		cs.fail(ErrClosed)
	}
	return nil
}
