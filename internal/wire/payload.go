package wire

import (
	"fmt"
	"math"
)

// Payload layouts. Every message body is fixed-width little-endian
// fields (strings and point bytes are u32-length-prefixed). Encoders
// append into a caller-owned buffer; decoders walk the payload slice in
// place with a cursor and fail with a typed *ProtocolError on
// truncation, so a garbage frame can never read past its bounds or
// allocate more than its announced (capped) length.

// cursor is the in-place payload decoder. The first out-of-bounds read
// latches err; subsequent reads return zero values, so decode funcs
// check c.err once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = &ProtocolError{Reason: fmt.Sprintf("truncated payload: %s at offset %d of %d", what, c.off, len(c.b))}
	}
}

func (c *cursor) u8(what string) uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16(what string) uint16 {
	if c.err != nil || c.off+2 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := uint16(c.b[c.off]) | uint16(c.b[c.off+1])<<8
	c.off += 2
	return v
}

func (c *cursor) u32(what string) uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail(what)
		return 0
	}
	b := c.b[c.off:]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	c.off += 4
	return v
}

func (c *cursor) u64(what string) uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail(what)
		return 0
	}
	b := c.b[c.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	c.off += 8
	return v
}

func (c *cursor) f64(what string) float64 { return math.Float64frombits(c.u64(what)) }

// bytes reads a u32-length-prefixed byte field, returning a sub-slice
// of the payload (no copy).
func (c *cursor) bytes(what string) []byte {
	n := int(c.u32(what))
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.b) {
		c.fail(what)
		return nil
	}
	v := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return v
}

func (c *cursor) str(what string) string { return string(c.bytes(what)) }

// done returns the latched decode error, adding a trailing-garbage check:
// a payload longer than its message is as malformed as a short one.
func (c *cursor) done() error {
	if c.err == nil && c.off != len(c.b) {
		c.err = &ProtocolError{Reason: fmt.Sprintf("payload has %d trailing bytes after offset %d", len(c.b)-c.off, c.off)}
	}
	return c.err
}

// Append helpers (all little-endian).

func appendU16(dst []byte, v uint16) []byte { return append(dst, byte(v), byte(v>>8)) }

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// StatDelta carries the per-op increments to the client's QueryStats:
// the server executes each op against a fresh local stats record and
// ships the difference, so remote queries charge the caller's counters
// exactly like in-process ones.
type StatDelta struct {
	// Buckets is the BucketsScanned increment.
	Buckets uint32
	// Points is the PointsInspected increment.
	Points uint32
	// ScoreEvals is the ScoreEvals increment.
	ScoreEvals uint32
	// BatchScored is the BatchScored increment.
	BatchScored uint32
	// CacheHits is the ScoreCacheHits increment.
	CacheHits uint32
	// MemoProbes is the MemoProbes increment.
	MemoProbes uint32
	// FilterEvals is the FilterEvals increment.
	FilterEvals uint32
	// CursorMerged reports the op materialized the merged cursor.
	CursorMerged bool
}

func appendStatDelta(dst []byte, d StatDelta) []byte {
	dst = appendU32(dst, d.Buckets)
	dst = appendU32(dst, d.Points)
	dst = appendU32(dst, d.ScoreEvals)
	dst = appendU32(dst, d.BatchScored)
	dst = appendU32(dst, d.CacheHits)
	dst = appendU32(dst, d.MemoProbes)
	dst = appendU32(dst, d.FilterEvals)
	return appendBool(dst, d.CursorMerged)
}

func (c *cursor) statDelta() StatDelta {
	return StatDelta{
		Buckets:      c.u32("stat.buckets"),
		Points:       c.u32("stat.points"),
		ScoreEvals:   c.u32("stat.scoreEvals"),
		BatchScored:  c.u32("stat.batchScored"),
		CacheHits:    c.u32("stat.cacheHits"),
		MemoProbes:   c.u32("stat.memoProbes"),
		FilterEvals:  c.u32("stat.filterEvals"),
		CursorMerged: c.u8("stat.cursorMerged") != 0,
	}
}

// HelloReq is the client half of the handshake.
type HelloReq struct {
	// Codec names the client's point codec; the server rejects a
	// mismatch with CodeBadCodec.
	Codec string
}

// AppendHelloReq encodes m into dst.
func AppendHelloReq(dst []byte, m HelloReq) []byte { return appendStr(dst, m.Codec) }

// DecodeHelloReq decodes a HelloReq payload.
func DecodeHelloReq(b []byte) (HelloReq, error) {
	c := cursor{b: b}
	m := HelloReq{Codec: c.str("hello.codec")}
	return m, c.done()
}

// Meta is the server's build identity, returned by the handshake. The
// client validates it against every other shard's before serving
// queries: mismatched global counts, λ, Σ, or query-stream seeds would
// silently break the uniformity and determinism contracts, so they fail
// the dial instead.
type Meta struct {
	// ShardIndex is this server's position in the fleet.
	ShardIndex int
	// ShardCount is the fleet size the server was built for.
	ShardCount int
	// GlobalN is the total indexed point count across the fleet —
	// options were resolved against it, pinning the shared λ and Σ.
	GlobalN int
	// ShardN is this shard's own indexed point count.
	ShardN int
	// Lambda is the resolved acceptance normalizer λ.
	Lambda float64
	// Sigma is the resolved halving budget Σ.
	Sigma int
	// QueryStreamSeed is the shard's per-query randomness seed; the
	// client derives its single query stream from shard 0's value.
	QueryStreamSeed uint64
	// Radius is the build radius r.
	Radius float64
	// Codec names the server's point codec.
	Codec string
}

// AppendMeta encodes m into dst.
func AppendMeta(dst []byte, m Meta) []byte {
	dst = appendU32(dst, uint32(m.ShardIndex))
	dst = appendU32(dst, uint32(m.ShardCount))
	dst = appendU64(dst, uint64(m.GlobalN))
	dst = appendU64(dst, uint64(m.ShardN))
	dst = appendF64(dst, m.Lambda)
	dst = appendU32(dst, uint32(m.Sigma))
	dst = appendU64(dst, m.QueryStreamSeed)
	dst = appendF64(dst, m.Radius)
	return appendStr(dst, m.Codec)
}

// DecodeMeta decodes a Meta payload.
func DecodeMeta(b []byte) (Meta, error) {
	c := cursor{b: b}
	m := Meta{
		ShardIndex:      int(c.u32("meta.shardIndex")),
		ShardCount:      int(c.u32("meta.shardCount")),
		GlobalN:         int(c.u64("meta.globalN")),
		ShardN:          int(c.u64("meta.shardN")),
		Lambda:          c.f64("meta.lambda"),
		Sigma:           int(c.u32("meta.sigma")),
		QueryStreamSeed: c.u64("meta.queryStreamSeed"),
		Radius:          c.f64("meta.radius"),
		Codec:           c.str("meta.codec"),
	}
	return m, c.done()
}

// ArmReq arms a server-side plan for a new logical query.
type ArmReq struct {
	// PlanID is the client-assigned plan handle, unique per connection.
	PlanID uint64
	// Point is the codec-encoded query point.
	Point []byte
}

// AppendArmReq encodes m into dst.
func AppendArmReq(dst []byte, m ArmReq) []byte {
	dst = appendU64(dst, m.PlanID)
	return appendBytes(dst, m.Point)
}

// DecodeArmReq decodes an ArmReq payload. Point aliases b.
func DecodeArmReq(b []byte) (ArmReq, error) {
	c := cursor{b: b}
	m := ArmReq{PlanID: c.u64("arm.planID"), Point: c.bytes("arm.point")}
	return m, c.done()
}

// ArmResp mirrors the armed plan's estimate state back to the client,
// which reconstructs the plan arithmetic (k, halving, segment picks)
// locally from ŝ and k0.
type ArmResp struct {
	// Est is the shard's near-count estimate ŝ_j.
	Est float64
	// K0 is the estimate-derived initial segment count.
	K0 int
	// Stats is the resolve + estimate work performed.
	Stats StatDelta
}

// AppendArmResp encodes m into dst.
func AppendArmResp(dst []byte, m ArmResp) []byte {
	dst = appendF64(dst, m.Est)
	dst = appendU32(dst, uint32(m.K0))
	return appendStatDelta(dst, m.Stats)
}

// DecodeArmResp decodes an ArmResp payload.
func DecodeArmResp(b []byte) (ArmResp, error) {
	c := cursor{b: b}
	m := ArmResp{Est: c.f64("arm.est"), K0: int(c.u32("arm.k0"))}
	m.Stats = c.statDelta()
	return m, c.done()
}

// SegReq asks for the near report of segment H of the plan's current
// K-segment pool. K travels with the request because the client owns
// the halving schedule — the server recomputes the segment bounds from
// (H, K) exactly as the in-process plan does.
type SegReq struct {
	// PlanID is the armed plan handle.
	PlanID uint64
	// H is the segment index, 0 ≤ H < K.
	H int
	// K is the client's current segment count for the plan.
	K int
}

// AppendSegReq encodes m into dst.
func AppendSegReq(dst []byte, m SegReq) []byte {
	dst = appendU64(dst, m.PlanID)
	dst = appendU32(dst, uint32(m.H))
	return appendU32(dst, uint32(m.K))
}

// DecodeSegReq decodes a SegReq payload.
func DecodeSegReq(b []byte) (SegReq, error) {
	c := cursor{b: b}
	m := SegReq{PlanID: c.u64("seg.planID"), H: int(c.u32("seg.h")), K: int(c.u32("seg.k"))}
	return m, c.done()
}

// SegResp reports the segment's distinct-near count. The ids stay on
// the server (retained for OpPick) — only the count crosses the wire,
// which is all the acceptance arithmetic needs.
type SegResp struct {
	// Count is the number of distinct near points in the segment.
	Count int
	// Stats is the scan work performed.
	Stats StatDelta
}

// AppendSegResp encodes m into dst.
func AppendSegResp(dst []byte, m SegResp) []byte {
	dst = appendU32(dst, uint32(m.Count))
	return appendStatDelta(dst, m.Stats)
}

// DecodeSegResp decodes a SegResp payload.
func DecodeSegResp(b []byte) (SegResp, error) {
	c := cursor{b: b}
	m := SegResp{Count: int(c.u32("seg.count"))}
	m.Stats = c.statDelta()
	return m, c.done()
}

// PickReq dereferences the client-drawn index into the plan's last
// segment report. The index is drawn on the client from the query
// stream, so the server holds no randomness at all.
type PickReq struct {
	// PlanID is the armed plan handle.
	PlanID uint64
	// Idx indexes the last SegmentNear report, 0 ≤ Idx < Count.
	Idx int
}

// AppendPickReq encodes m into dst.
func AppendPickReq(dst []byte, m PickReq) []byte {
	dst = appendU64(dst, m.PlanID)
	return appendU32(dst, uint32(m.Idx))
}

// DecodePickReq decodes a PickReq payload.
func DecodePickReq(b []byte) (PickReq, error) {
	c := cursor{b: b}
	m := PickReq{PlanID: c.u64("pick.planID"), Idx: int(c.u32("pick.idx"))}
	return m, c.done()
}

// PickResp carries the picked shard-local near id.
type PickResp struct {
	// ID is the shard-local point id.
	ID int32
}

// AppendPickResp encodes m into dst.
func AppendPickResp(dst []byte, m PickResp) []byte {
	return appendU32(dst, uint32(m.ID))
}

// DecodePickResp decodes a PickResp payload.
func DecodePickResp(b []byte) (PickResp, error) {
	c := cursor{b: b}
	m := PickResp{ID: int32(c.u32("pick.id"))}
	return m, c.done()
}

// ReleaseReq releases a server-side plan (one-way; no response).
type ReleaseReq struct {
	// PlanID is the plan handle to release.
	PlanID uint64
}

// AppendReleaseReq encodes m into dst.
func AppendReleaseReq(dst []byte, m ReleaseReq) []byte {
	return appendU64(dst, m.PlanID)
}

// DecodeReleaseReq decodes a ReleaseReq payload.
func DecodeReleaseReq(b []byte) (ReleaseReq, error) {
	c := cursor{b: b}
	m := ReleaseReq{PlanID: c.u64("release.planID")}
	return m, c.done()
}

// HealthRecord is one shard's entry in a health snapshot — the wire
// image of the shard layer's per-shard health registry state.
type HealthRecord struct {
	// Shard is the shard index.
	Shard int
	// Healthy reports the shard is currently admitted.
	Healthy bool
	// Failures counts budget-exhausted operations.
	Failures uint64
	// Skipped counts queries that bypassed the shard while down.
	Skipped uint64
	// Probes counts re-admission probe attempts.
	Probes uint64
	// Readmissions counts down→healthy transitions.
	Readmissions uint64
	// Sheds counts requests the serving side shed because their
	// deadline expired before execution. Stamped by the server for its
	// own shard; zero in client-side snapshots.
	Sheds uint64
	// DrainsRefused counts arm requests refused while the server was
	// draining. Stamped by the server for its own shard.
	DrainsRefused uint64
	// ActivePlans is the server's armed, unreleased plan count at
	// snapshot time (the drain gauge). Stamped by the server.
	ActivePlans uint32
	// ActiveConns is the server's live connection count at snapshot
	// time. Stamped by the server.
	ActiveConns uint32
}

// AppendHealthResp encodes a health snapshot into dst.
func AppendHealthResp(dst []byte, recs []HealthRecord) []byte {
	dst = appendU32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = appendU32(dst, uint32(r.Shard))
		dst = appendBool(dst, r.Healthy)
		dst = appendU64(dst, r.Failures)
		dst = appendU64(dst, r.Skipped)
		dst = appendU64(dst, r.Probes)
		dst = appendU64(dst, r.Readmissions)
		dst = appendU64(dst, r.Sheds)
		dst = appendU64(dst, r.DrainsRefused)
		dst = appendU32(dst, r.ActivePlans)
		dst = appendU32(dst, r.ActiveConns)
	}
	return dst
}

// DecodeHealthResp decodes a health snapshot payload.
func DecodeHealthResp(b []byte) ([]HealthRecord, error) {
	c := cursor{b: b}
	n := int(c.u32("health.count"))
	if c.err == nil && n > len(b)/4 {
		// A record is ≥ 61 bytes; a count this large cannot fit the
		// payload, so reject before allocating attacker-chosen capacity.
		return nil, &ProtocolError{Reason: fmt.Sprintf("health record count %d impossible for %d-byte payload", n, len(b))}
	}
	recs := make([]HealthRecord, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, HealthRecord{
			Shard:         int(c.u32("health.shard")),
			Healthy:       c.u8("health.healthy") != 0,
			Failures:      c.u64("health.failures"),
			Skipped:       c.u64("health.skipped"),
			Probes:        c.u64("health.probes"),
			Readmissions:  c.u64("health.readmits"),
			Sheds:         c.u64("health.sheds"),
			DrainsRefused: c.u64("health.drainsRefused"),
			ActivePlans:   c.u32("health.activePlans"),
			ActiveConns:   c.u32("health.activeConns"),
		})
	}
	return recs, c.done()
}

// AppendErrResp encodes a typed error response body into dst.
func AppendErrResp(dst []byte, code Code, msg string) []byte {
	dst = appendU16(dst, uint16(code))
	return appendStr(dst, msg)
}

// DecodeErrResp decodes an OpErr payload into a *RemoteError.
func DecodeErrResp(b []byte) (*RemoteError, error) {
	c := cursor{b: b}
	e := &RemoteError{Code: Code(c.u16("err.code")), Msg: c.str("err.msg")}
	if err := c.done(); err != nil {
		return nil, err
	}
	return e, nil
}
