package wire

import "context"

// Typed request wrappers over Client.Call: one function per protocol
// op, pairing the encode and decode halves so callers (the remote shard
// backend, the load harness) never touch raw frames.

// ArmCall arms plan planID for query point q on the server and returns
// the mirrored estimate state.
func ArmCall[P any](ctx context.Context, c *Client, codec PointCodec[P], planID uint64, q P) (ArmResp, error) {
	point := codec.Append(nil, q)
	payload := AppendArmReq(nil, ArmReq{PlanID: planID, Point: point})
	resp, err := c.Call(ctx, OpArm, payload)
	if err != nil {
		return ArmResp{}, err
	}
	return DecodeArmResp(resp)
}

// SegmentCall asks for the near count of segment h of the plan's
// current k-segment pool.
func SegmentCall(ctx context.Context, c *Client, planID uint64, h, k int) (SegResp, error) {
	payload := AppendSegReq(nil, SegReq{PlanID: planID, H: h, K: k})
	resp, err := c.Call(ctx, OpSegment, payload)
	if err != nil {
		return SegResp{}, err
	}
	return DecodeSegResp(resp)
}

// PickCall dereferences the client-drawn index idx into the plan's last
// segment report.
func PickCall(ctx context.Context, c *Client, planID uint64, idx int) (int32, error) {
	payload := AppendPickReq(nil, PickReq{PlanID: planID, Idx: idx})
	resp, err := c.Call(ctx, OpPick, payload)
	if err != nil {
		return 0, err
	}
	m, err := DecodePickResp(resp)
	if err != nil {
		return 0, err
	}
	return m.ID, nil
}

// ReleaseNotify releases a server-side plan, one-way (no response, best
// effort — a lost release is reclaimed when the connection closes).
func ReleaseNotify(c *Client, planID uint64) error {
	return c.Notify(OpRelease, AppendReleaseReq(nil, ReleaseReq{PlanID: planID}))
}

// HealthCall requests the server's health snapshot over an established
// client connection.
func HealthCall(ctx context.Context, c *Client) ([]HealthRecord, error) {
	resp, err := c.Call(ctx, OpHealth, nil)
	if err != nil {
		return nil, err
	}
	return DecodeHealthResp(resp)
}
