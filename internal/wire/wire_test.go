package wire

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{Op: OpHello, ReqID: 1, PayloadLen: 0},
		{Op: OpArm, ReqID: 0xdeadbeef, DeadlineMicros: 12345, PayloadLen: 77},
		{Op: OpErr, ReqID: ^uint32(0), DeadlineMicros: ^uint32(0), PayloadLen: MaxPayload},
		{Op: OpRelease, ReqID: 0, PayloadLen: 8},
	}
	for _, h := range cases {
		b := AppendHeader(nil, h)
		if len(b) != HeaderSize {
			t.Fatalf("encoded header is %d bytes, want %d", len(b), HeaderSize)
		}
		got, err := DecodeHeader(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestHeaderRejection(t *testing.T) {
	good := AppendHeader(nil, Header{Op: OpArm, ReqID: 7, PayloadLen: 4})

	short := good[:HeaderSize-1]
	if _, err := DecodeHeader(short); err == nil {
		t.Error("short header accepted")
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	if _, err := DecodeHeader(badMagic); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := append([]byte(nil), good...)
	badVersion[2] = Version + 1
	_, err := DecodeHeader(badVersion)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Errorf("bad version: got %v, want *ProtocolError", err)
	}

	oversized := append([]byte(nil), good...)
	big := uint32(MaxPayload + 1)
	oversized[12], oversized[13], oversized[14], oversized[15] = byte(big), byte(big>>8), byte(big>>16), byte(big>>24)
	if _, err := DecodeHeader(oversized); err == nil {
		t.Error("oversized payload length accepted")
	} else if !strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("oversized payload error %q does not name the cap", err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	meta := Meta{
		ShardIndex: 2, ShardCount: 4, GlobalN: 1_000_000, ShardN: 250_000,
		Lambda: 21.5, Sigma: 382, QueryStreamSeed: 0x0123456789abcdef,
		Radius: 40.25, Codec: "int64",
	}
	if got, err := DecodeMeta(AppendMeta(nil, meta)); err != nil || got != meta {
		t.Fatalf("meta round trip: got %+v err %v", got, err)
	}

	hello := HelloReq{Codec: "vec64/32"}
	if got, err := DecodeHelloReq(AppendHelloReq(nil, hello)); err != nil || got != hello {
		t.Fatalf("hello round trip: got %+v err %v", got, err)
	}

	arm := ArmReq{PlanID: 1 << 40, Point: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	gotArm, err := DecodeArmReq(AppendArmReq(nil, arm))
	if err != nil || gotArm.PlanID != arm.PlanID || string(gotArm.Point) != string(arm.Point) {
		t.Fatalf("arm req round trip: got %+v err %v", gotArm, err)
	}

	delta := StatDelta{Buckets: 1, Points: 2, ScoreEvals: 3, BatchScored: 4, CacheHits: 5, MemoProbes: 6, FilterEvals: 7, CursorMerged: true}
	armResp := ArmResp{Est: math.Pi, K0: 64, Stats: delta}
	if got, err := DecodeArmResp(AppendArmResp(nil, armResp)); err != nil || got != armResp {
		t.Fatalf("arm resp round trip: got %+v err %v", got, err)
	}

	seg := SegReq{PlanID: 9, H: 3, K: 8}
	if got, err := DecodeSegReq(AppendSegReq(nil, seg)); err != nil || got != seg {
		t.Fatalf("seg req round trip: got %+v err %v", got, err)
	}
	segResp := SegResp{Count: 12, Stats: delta}
	if got, err := DecodeSegResp(AppendSegResp(nil, segResp)); err != nil || got != segResp {
		t.Fatalf("seg resp round trip: got %+v err %v", got, err)
	}

	pick := PickReq{PlanID: 9, Idx: 11}
	if got, err := DecodePickReq(AppendPickReq(nil, pick)); err != nil || got != pick {
		t.Fatalf("pick req round trip: got %+v err %v", got, err)
	}
	pickResp := PickResp{ID: -2}
	if got, err := DecodePickResp(AppendPickResp(nil, pickResp)); err != nil || got != pickResp {
		t.Fatalf("pick resp round trip: got %+v err %v", got, err)
	}

	rel := ReleaseReq{PlanID: ^uint64(0)}
	if got, err := DecodeReleaseReq(AppendReleaseReq(nil, rel)); err != nil || got != rel {
		t.Fatalf("release round trip: got %+v err %v", got, err)
	}

	recs := []HealthRecord{
		{Shard: 0, Healthy: true, Failures: 1, Skipped: 2, Probes: 3, Readmissions: 4},
		{Shard: 1, Healthy: false, Failures: 9},
	}
	gotRecs, err := DecodeHealthResp(AppendHealthResp(nil, recs))
	if err != nil || len(gotRecs) != len(recs) {
		t.Fatalf("health round trip: got %+v err %v", gotRecs, err)
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Fatalf("health record %d: got %+v, want %+v", i, gotRecs[i], recs[i])
		}
	}

	re, err := DecodeErrResp(AppendErrResp(nil, CodeDraining, "going away"))
	if err != nil || re.Code != CodeDraining || re.Msg != "going away" {
		t.Fatalf("err resp round trip: got %+v err %v", re, err)
	}
}

// TestPayloadTruncationTyped walks every decoder over every strict
// prefix of a valid payload: all must reject with a typed
// *ProtocolError and never panic.
func TestPayloadTruncationTyped(t *testing.T) {
	delta := StatDelta{Buckets: 1, CursorMerged: true}
	payloads := map[string][]byte{
		"meta":    AppendMeta(nil, Meta{ShardIndex: 1, ShardCount: 2, GlobalN: 10, ShardN: 5, Lambda: 4, Sigma: 16, QueryStreamSeed: 7, Radius: 2, Codec: "int64"}),
		"hello":   AppendHelloReq(nil, HelloReq{Codec: "int64"}),
		"armReq":  AppendArmReq(nil, ArmReq{PlanID: 1, Point: []byte{1, 2, 3}}),
		"armResp": AppendArmResp(nil, ArmResp{Est: 1, K0: 2, Stats: delta}),
		"segReq":  AppendSegReq(nil, SegReq{PlanID: 1, H: 0, K: 4}),
		"segResp": AppendSegResp(nil, SegResp{Count: 3, Stats: delta}),
		"pickReq": AppendPickReq(nil, PickReq{PlanID: 1, Idx: 2}),
		"health":  AppendHealthResp(nil, []HealthRecord{{Shard: 0, Healthy: true}}),
		"err":     AppendErrResp(nil, CodeInternal, "boom"),
	}
	decoders := map[string]func([]byte) error{
		"meta":    func(b []byte) error { _, err := DecodeMeta(b); return err },
		"hello":   func(b []byte) error { _, err := DecodeHelloReq(b); return err },
		"armReq":  func(b []byte) error { _, err := DecodeArmReq(b); return err },
		"armResp": func(b []byte) error { _, err := DecodeArmResp(b); return err },
		"segReq":  func(b []byte) error { _, err := DecodeSegReq(b); return err },
		"segResp": func(b []byte) error { _, err := DecodeSegResp(b); return err },
		"pickReq": func(b []byte) error { _, err := DecodePickReq(b); return err },
		"health":  func(b []byte) error { _, err := DecodeHealthResp(b); return err },
		"err":     func(b []byte) error { _, err := DecodeErrResp(b); return err },
	}
	for name, full := range payloads {
		dec := decoders[name]
		if dec(full) != nil {
			t.Fatalf("%s: full payload rejected", name)
		}
		for cut := 0; cut < len(full); cut++ {
			err := dec(full[:cut])
			if err == nil {
				t.Fatalf("%s: %d-byte prefix of %d accepted", name, cut, len(full))
			}
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("%s truncated at %d: got %T (%v), want *ProtocolError", name, cut, err, err)
			}
		}
		// Trailing garbage is as malformed as truncation.
		if err := dec(append(append([]byte(nil), full...), 0xEE)); err == nil {
			t.Fatalf("%s: trailing garbage accepted", name)
		}
	}
}

// TestHealthCountBomb pins the pre-allocation guard: a health payload
// whose declared record count cannot fit its byte length must be
// rejected before any proportional allocation.
func TestHealthCountBomb(t *testing.T) {
	bomb := appendU32(nil, 1<<30)
	if _, err := DecodeHealthResp(bomb); err == nil {
		t.Fatal("impossible health record count accepted")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	ic := IntCodec{}
	for _, v := range []int{0, 1, -1, 1 << 40, -(1 << 40)} {
		got, err := ic.Decode(ic.Append(nil, v))
		if err != nil || got != v {
			t.Fatalf("int codec: got %d err %v, want %d", got, err, v)
		}
	}
	vc := VecCodec{Dim: 3}
	vec := []float64{1.5, -2.25, math.Inf(1)}
	got, err := vc.Decode(vc.Append(nil, vec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("vec codec: got %v, want %v", got, vec)
		}
	}
	if _, err := vc.Decode(make([]byte, 8*2)); err == nil {
		t.Error("wrong-dimension vector accepted")
	}
	if ic.Name() == vc.Name() {
		t.Error("codec names collide")
	}
}

// Fuzz targets: every decoder must return (value, error) on arbitrary
// bytes — never panic, never read out of bounds.

func FuzzDecodeHeader(f *testing.F) {
	f.Add(AppendHeader(nil, Header{Op: OpArm, ReqID: 3, PayloadLen: 9}))
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHeader(b)
		if err == nil && h.PayloadLen > MaxPayload {
			t.Fatalf("accepted payload length %d over cap", h.PayloadLen)
		}
	})
}

func FuzzDecodeMeta(f *testing.F) {
	f.Add(AppendMeta(nil, Meta{ShardIndex: 1, ShardCount: 2, GlobalN: 100, ShardN: 50, Lambda: 4, Sigma: 16, QueryStreamSeed: 9, Radius: 3, Codec: "int64"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMeta(b)
		if err == nil {
			// Anything accepted must re-encode to the same bytes (the
			// layout has exactly one encoding).
			if re := AppendMeta(nil, m); string(re) != string(b) {
				t.Fatalf("accepted meta does not re-encode canonically")
			}
		}
	})
}

func FuzzDecodeArmResp(f *testing.F) {
	f.Add(AppendArmResp(nil, ArmResp{Est: 2, K0: 8, Stats: StatDelta{Buckets: 1}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = DecodeArmResp(b)
	})
}

func FuzzDecodeHealthResp(f *testing.F) {
	f.Add(AppendHealthResp(nil, []HealthRecord{{Shard: 1, Healthy: true, Probes: 2}}))
	f.Add(appendU32(nil, 1<<31))
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = DecodeHealthResp(b)
	})
}

func FuzzDecodeErrResp(f *testing.F) {
	f.Add(AppendErrResp(nil, CodeMalformed, "x"))
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = DecodeErrResp(b)
	})
}
