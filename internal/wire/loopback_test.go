package wire

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fairnn/internal/core"
	"fairnn/internal/lsh"
	"fairnn/internal/rng"
)

// Loopback tests: a real Server over a real TCP socket on 127.0.0.1,
// exercised through the real Client. These pin the protocol behaviors
// the remote backend depends on — handshake validation, typed errors,
// draining, deadline handling, pipelining under -race.

const (
	loopN      = 64
	loopRadius = 5.0
)

func loopSpace() core.Space[int] {
	return core.Space[int]{Kind: core.Distance, Score: func(a, b int) float64 {
		return math.Abs(float64(a - b))
	}}
}

// collideFam hashes everything to one bucket: perfect recall, so every
// in-radius point is reachable and counts are easy to reason about.
type collideFam struct{}

func (collideFam) New(r *rng.Source) lsh.Func[int] {
	_ = r.Uint64()
	return func(int) uint64 { return 0 }
}

func (collideFam) CollisionProb(float64) float64 { return 1 }

func buildLoopIndex(t *testing.T, seed uint64) (*core.Independent[int], Meta) {
	t.Helper()
	pts := make([]int, loopN)
	for i := range pts {
		pts[i] = i
	}
	opts := core.IndependentOptions{}.Resolved(loopN)
	d, err := core.NewIndependent[int](loopSpace(), collideFam{}, lsh.Params{K: 1, L: 2}, pts, loopRadius, opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{
		ShardIndex: 0, ShardCount: 1, GlobalN: loopN, ShardN: loopN,
		Lambda: float64(opts.Lambda), Sigma: opts.SigmaBudget,
		QueryStreamSeed: d.QueryStreamSeed(), Radius: loopRadius,
		Codec: IntCodec{}.Name(),
	}
	return d, meta
}

func startLoopServer(t *testing.T, seed uint64) (*Server[int], string) {
	t.Helper()
	d, meta := buildLoopIndex(t, seed)
	srv := NewServer[int](d, IntCodec{}, meta, func() []HealthRecord {
		return []HealthRecord{{Shard: 0, Healthy: true, Probes: 7}}
	})
	addr := serveOn(t, srv)
	return srv, addr
}

func serveOn(t *testing.T, srv *Server[int]) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer func() { _ = recover() }()
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestLoopbackArmSegmentPick(t *testing.T) {
	srv, addr := startLoopServer(t, 11)
	c, err := Dial(addr, IntCodec{}.Name(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Meta().ShardN != loopN || c.Meta().Codec != (IntCodec{}).Name() {
		t.Fatalf("handshake meta %+v", c.Meta())
	}

	ctx := context.Background()
	plan := c.NextPlanID()
	arm, err := ArmCall[int](ctx, c, IntCodec{}, plan, 30)
	if err != nil {
		t.Fatal(err)
	}
	if arm.K0 < 1 {
		t.Fatalf("k0 = %d, want >= 1", arm.K0)
	}
	if srv.ActivePlans() != 1 {
		t.Fatalf("active plans = %d, want 1", srv.ActivePlans())
	}

	// Perfect recall: summing all k0 segments' near counts must see
	// exactly the 2·radius+1 in-radius line points around 30.
	total := 0
	lastCount, lastSeg := 0, -1
	for h := 0; h < arm.K0; h++ {
		seg, err := SegmentCall(ctx, c, plan, h, arm.K0)
		if err != nil {
			t.Fatal(err)
		}
		total += seg.Count
		if seg.Count > 0 {
			lastCount, lastSeg = seg.Count, h
		}
	}
	if want := 2*int(loopRadius) + 1; total != want {
		t.Fatalf("near total = %d, want %d", total, want)
	}
	if lastSeg < 0 {
		t.Fatal("no nonempty segment")
	}
	// Re-request the last nonempty segment so the plan's last report is
	// live, then dereference every index: each must be an in-radius id.
	if _, err := SegmentCall(ctx, c, plan, lastSeg, arm.K0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lastCount; i++ {
		id, err := PickCall(ctx, c, plan, i)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(float64(id) - 30); d > loopRadius {
			t.Fatalf("picked id %d at distance %g > radius", id, d)
		}
	}
	// Out-of-range pick is typed Malformed, not a crash.
	if _, err := PickCall(ctx, c, plan, lastCount+100); !isCode(err, CodeMalformed) {
		t.Fatalf("oob pick: got %v, want CodeMalformed", err)
	}

	if err := ReleaseNotify(c, plan); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.ActivePlans() == 0 }, "plan release")

	recs, err := HealthCall(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Probes != 7 {
		t.Fatalf("health records %+v", recs)
	}
}

func TestLoopbackTypedErrors(t *testing.T) {
	_, addr := startLoopServer(t, 12)
	c, err := Dial(addr, IntCodec{}.Name(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := SegmentCall(ctx, c, 999, 0, 4); !isCode(err, CodeUnknownPlan) {
		t.Errorf("segment on unarmed plan: got %v, want CodeUnknownPlan", err)
	}
	if _, err := PickCall(ctx, c, 999, 0); !isCode(err, CodeUnknownPlan) {
		t.Errorf("pick on unarmed plan: got %v, want CodeUnknownPlan", err)
	}
	if _, err := c.Call(ctx, OpArm, []byte{1, 2}); !isCode(err, CodeMalformed) {
		t.Errorf("garbage arm payload: got %v, want CodeMalformed", err)
	}
	if _, err := SegmentCall(ctx, c, 999, 5, 4); !isCode(err, CodeMalformed) {
		t.Errorf("segment h >= k: got %v, want CodeMalformed", err)
	}
	if _, err := c.Call(ctx, Op(200), nil); !isCode(err, CodeUnsupportedOp) {
		t.Errorf("unknown op: got %v, want CodeUnsupportedOp", err)
	}
}

func TestLoopbackCodecMismatch(t *testing.T) {
	_, addr := startLoopServer(t, 13)
	_, err := Dial(addr, VecCodec{Dim: 8}.Name(), time.Second)
	if !isCode(err, CodeBadCodec) {
		t.Fatalf("codec mismatch dial: got %v, want CodeBadCodec", err)
	}
}

func TestLoopbackBadVersionReply(t *testing.T) {
	_, addr := startLoopServer(t, 14)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := AppendHeader(nil, Header{Op: OpHello, ReqID: 9})
	frame[2] = Version + 1
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	h, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if h.Op != OpErr || h.ReqID != 9 {
		t.Fatalf("got frame %+v, want err reply to req 9", h)
	}
	re, err := DecodeErrResp(payload)
	if err != nil || re.Code != CodeBadVersion {
		t.Fatalf("got %+v err %v, want CodeBadVersion", re, err)
	}
	// The server closes the connection after the version reply.
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("connection stayed open after version mismatch")
	}
}

func TestLoopbackGarbageClosesConn(t *testing.T) {
	_, addr := startLoopServer(t, 15)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	// Garbage cannot be answered in-protocol: the server just hangs up.
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("server replied to garbage instead of closing")
	}
}

func TestLoopbackExpiredContext(t *testing.T) {
	_, addr := startLoopServer(t, 16)
	c, err := Dial(addr, IntCodec{}.Name(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ArmCall[int](ctx, c, IntCodec{}, c.NextPlanID(), 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: got %v, want DeadlineExceeded", err)
	}
}

func TestLoopbackDrainRefusesNewArms(t *testing.T) {
	srv, addr := startLoopServer(t, 17)
	c, err := Dial(addr, IntCodec{}.Name(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	held := c.NextPlanID()
	arm, err := ArmCall[int](ctx, c, IntCodec{}, held, 10)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	go func() {
		defer func() { _ = recover() }()
		done <- srv.Shutdown(sctx)
	}()
	waitFor(t, func() bool {
		_, err := ArmCall[int](ctx, c, IntCodec{}, c.NextPlanID(), 11)
		return isCode(err, CodeDraining)
	}, "draining arm refusal")

	// In-flight plans keep being served while draining.
	if _, err := SegmentCall(ctx, c, held, 0, arm.K0); err != nil {
		t.Fatalf("in-flight segment during drain: %v", err)
	}
	if err := ReleaseNotify(c, held); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain did not complete cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung after last plan release")
	}
}

func TestLoopbackRedialIdentityCheck(t *testing.T) {
	srv, addr := startLoopServer(t, 18)
	c, err := Dial(addr, IntCodec{}.Name(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Kill the server; in-flight conn dies and calls fail promptly.
	srv.Close()
	if _, err := ArmCall[int](ctx, c, IntCodec{}, c.NextPlanID(), 5); err == nil {
		t.Fatal("call succeeded against a closed server")
	}

	// Same-build restart on the same address: the client redials
	// transparently and keeps working.
	d2, meta2 := buildLoopIndex(t, 18)
	srv2 := NewServer[int](d2, IntCodec{}, meta2, nil)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	go func() {
		defer func() { _ = recover() }()
		_ = srv2.Serve(ln2)
	}()
	plan := c.NextPlanID()
	if _, err := ArmCall[int](ctx, c, IntCodec{}, plan, 5); err != nil {
		t.Fatalf("redial to same-build restart: %v", err)
	}
	_ = ReleaseNotify(c, plan)
	srv2.Close()

	// Different-build restart (new seed → new query-stream identity):
	// the redial handshake must refuse to mix builds.
	d3, meta3 := buildLoopIndex(t, 999)
	srv3 := NewServer[int](d3, IntCodec{}, meta3, nil)
	ln3, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv3.Close()
	go func() {
		defer func() { _ = recover() }()
		_ = srv3.Serve(ln3)
	}()
	waitFor(t, func() bool {
		_, err := ArmCall[int](ctx, c, IntCodec{}, c.NextPlanID(), 5)
		return err != nil && strings.Contains(err.Error(), "changed identity")
	}, "identity refusal after different-build restart")
}

// TestLoopbackPipelinedStress drives many concurrent full query
// exchanges through one shared client connection. Run under -race (CI
// pins GOMAXPROCS=4) this is the concurrency gate for the pending-call
// routing table and the per-plan locking.
func TestLoopbackPipelinedStress(t *testing.T) {
	srv, addr := startLoopServer(t, 19)
	c, err := Dial(addr, IntCodec{}.Name(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 8
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer func() { _ = recover() }()
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				plan := c.NextPlanID()
				arm, err := ArmCall[int](ctx, c, IntCodec{}, plan, (w*13+i)%loopN)
				if err != nil {
					errc <- err
					return
				}
				for h := 0; h < arm.K0; h++ {
					seg, err := SegmentCall(ctx, c, plan, h, arm.K0)
					if err != nil {
						errc <- err
						return
					}
					if seg.Count > 0 {
						if _, err := PickCall(ctx, c, plan, seg.Count-1); err != nil {
							errc <- err
							return
						}
					}
				}
				if err := ReleaseNotify(c, plan); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.ActivePlans() == 0 }, "all plans released")
}

func TestHealthServerEndpoint(t *testing.T) {
	want := []HealthRecord{
		{Shard: 0, Healthy: true, Probes: 1},
		{Shard: 1, Healthy: false, Failures: 3, Skipped: 2, Readmissions: 1},
	}
	hs := NewHealthServer(func() []HealthRecord { return want })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer func() { _ = recover() }()
		_ = hs.Serve(ln)
	}()
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := FetchHealth(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Anything but a health request is refused with a typed error.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(AppendHeader(nil, Header{Op: OpArm, ReqID: 4})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	h, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	re, derr := DecodeErrResp(payload)
	if h.Op != OpErr || derr != nil || re.Code != CodeUnsupportedOp {
		t.Fatalf("non-health op on health endpoint: frame %+v resp %+v err %v", h, re, derr)
	}
}

// isCode reports whether err is a *RemoteError carrying code.
func isCode(err error, code Code) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// waitFor polls cond until it holds or a generous deadline passes —
// used for effects that propagate through one-way frames or background
// goroutines.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
