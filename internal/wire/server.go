package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fairnn/internal/core"
)

// Server serves one shard's Section 4 structure over the wire protocol:
// the three Backend ops (arm / segment / pick), plan release, and the
// health snapshot. Each accepted connection gets its own goroutine, and
// each request its own dispatch goroutine, so pipelined requests from
// one client execute concurrently; a per-plan mutex serializes the ops
// of a single plan (plan state is single-query state, exactly as
// in-process). Every spawned goroutine is panic-contained: a handler
// panic becomes a CodeInternal error response and the connection
// survives.
//
// The server holds no randomness. Arm resolves the query and reports
// (ŝ, k0); SegmentNear answers exact counts for client-chosen (h, k);
// Pick dereferences a client-drawn index. All acceptance and halving
// arithmetic stays on the client, which is what makes remote streams
// bit-identical to in-process ones.
type Server[P any] struct {
	idx      *core.Independent[P]
	codec    PointCodec[P]
	meta     Meta
	healthFn func() []HealthRecord

	draining atomic.Bool
	active   atomic.Int64 // armed, unreleased plans across all conns

	// Serving counters, always on (plain atomics): stamped onto this
	// shard's record in health responses, and mirrored into the obs
	// registry when Observe was called.
	sheds         atomic.Uint64 // requests shed on expired deadline
	drainsRefused atomic.Uint64 // arms refused while draining

	// met is the server's instrument set (see Observe in obs.go); nil
	// means telemetry is off, which is contractually invisible.
	met *serverMetrics

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server for idx. meta is the build identity
// returned by the handshake; healthFn, if non-nil, supplies the OpHealth
// snapshot (a single-shard server typically reports just itself;
// an aggregating front-end can report a whole fleet).
func NewServer[P any](idx *core.Independent[P], codec PointCodec[P], meta Meta, healthFn func() []HealthRecord) *Server[P] {
	return &Server[P]{
		idx:      idx,
		codec:    codec,
		meta:     meta,
		healthFn: healthFn,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until the listener is closed
// (Shutdown/Close). It blocks; run it in the caller's goroutine or
// under its own supervision.
//
//fairnn:fanout-safe
func (s *Server[P]) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining.Load()
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.met.conns(len(s.conns))
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn) // serveConn recovers in its own body
	}
}

// connCtx is the per-connection state: the socket, its write lock, and
// the connection-scoped plan table.
type connCtx[P any] struct {
	conn net.Conn
	wmu  sync.Mutex

	pmu   sync.Mutex
	plans map[uint64]*serverPlan[P]
}

// serverPlan is one armed plan and the mutex serializing its ops.
type serverPlan[P any] struct {
	mu   sync.Mutex
	plan core.ShardPlan[P]
}

// serveConn owns one client connection: it reads frames and dispatches
// each request on its own goroutine. On exit (socket death, protocol
// violation, or server close) every plan the connection still holds is
// released back to the querier pool.
//
//fairnn:fanout-safe
func (s *Server[P]) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// Containment of the read/dispatch loop itself; per-request
			// panics are caught in handle.
			conn.Close()
		}
	}()
	cc := &connCtx[P]{conn: conn, plans: make(map[uint64]*serverPlan[P])}
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.met.conns(len(s.conns))
		s.mu.Unlock()
		conn.Close()
		cc.pmu.Lock()
		plans := cc.plans
		cc.plans = nil
		cc.pmu.Unlock()
		for _, sp := range plans {
			sp.mu.Lock()
			sp.plan.Close()
			sp.mu.Unlock()
			s.met.plans(s.active.Add(-1))
		}
	}()
	for {
		var hb [HeaderSize]byte
		if _, err := io.ReadFull(conn, hb[:]); err != nil {
			return
		}
		h, err := DecodeHeader(hb[:])
		if err != nil {
			// Best-effort typed reply when the frame is recognizably ours
			// but speaks another version; anything else is garbage and the
			// stream cannot be trusted to stay aligned, so just close.
			if hb[0] == magic0 && hb[1] == magic1 && hb[2] != Version {
				reqID := uint32(hb[4]) | uint32(hb[5])<<8 | uint32(hb[6])<<16 | uint32(hb[7])<<24
				cc.sendErr(reqID, CodeBadVersion, fmt.Sprintf("server speaks protocol version %d", Version))
			}
			return
		}
		payload := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		go s.handle(cc, h, payload, time.Now()) // handle recovers in its own body
	}
}

// handle executes one request and writes its response. Runs on its own
// goroutine per request; panics are contained into CodeInternal.
func (s *Server[P]) handle(cc *connCtx[P], h Header, payload []byte, recv time.Time) {
	defer func() {
		if r := recover(); r != nil {
			if h.ReqID != 0 {
				cc.sendErr(h.ReqID, CodeInternal, fmt.Sprintf("handler panic: %v", r))
			}
		}
	}()
	if h.DeadlineMicros != 0 {
		if time.Since(recv) > time.Duration(h.DeadlineMicros)*time.Microsecond {
			s.sheds.Add(1)
			s.met.shed()
			if h.ReqID != 0 {
				cc.sendErr(h.ReqID, CodeDeadline, "request deadline expired before execution")
			}
			return
		}
	}
	switch h.Op {
	case OpHello:
		s.handleHello(cc, h.ReqID, payload)
	case OpArm:
		s.handleArm(cc, h.ReqID, payload)
	case OpSegment:
		s.handleSegment(cc, h.ReqID, payload)
	case OpPick:
		s.handlePick(cc, h.ReqID, payload)
	case OpRelease:
		s.handleRelease(cc, payload)
	case OpHealth:
		s.handleHealth(cc, h.ReqID)
	default:
		if h.ReqID != 0 {
			cc.sendErr(h.ReqID, CodeUnsupportedOp, fmt.Sprintf("op %s not supported", h.Op))
		}
	}
	s.met.handled(h.Op, time.Since(recv))
}

func (s *Server[P]) handleHello(cc *connCtx[P], reqID uint32, payload []byte) {
	m, err := DecodeHelloReq(payload)
	if err != nil {
		cc.sendErr(reqID, CodeMalformed, err.Error())
		return
	}
	if m.Codec != s.codec.Name() {
		cc.sendErr(reqID, CodeBadCodec, fmt.Sprintf("server codec %q, client codec %q", s.codec.Name(), m.Codec))
		return
	}
	cc.send(OpHello, reqID, AppendMeta(nil, s.meta))
}

func (s *Server[P]) handleArm(cc *connCtx[P], reqID uint32, payload []byte) {
	if s.draining.Load() {
		s.drainsRefused.Add(1)
		s.met.drainRefused()
		cc.sendErr(reqID, CodeDraining, "server is draining")
		return
	}
	m, err := DecodeArmReq(payload)
	if err != nil {
		cc.sendErr(reqID, CodeMalformed, err.Error())
		return
	}
	q, err := s.codec.Decode(m.Point)
	if err != nil {
		cc.sendErr(reqID, CodeMalformed, err.Error())
		return
	}
	sp := &serverPlan[P]{}
	sp.mu.Lock()
	cc.pmu.Lock()
	if cc.plans == nil {
		cc.pmu.Unlock()
		sp.mu.Unlock()
		return // connection is tearing down
	}
	if _, dup := cc.plans[m.PlanID]; dup {
		cc.pmu.Unlock()
		sp.mu.Unlock()
		cc.sendErr(reqID, CodeMalformed, fmt.Sprintf("plan %d already armed on this connection", m.PlanID))
		return
	}
	cc.plans[m.PlanID] = sp
	cc.pmu.Unlock()
	s.met.plans(s.active.Add(1))

	var st core.QueryStats
	s.idx.BeginShardPlan(&sp.plan, q, &st)
	resp := ArmResp{Est: sp.plan.Estimate(), K0: sp.plan.Segments(), Stats: deltaFromStats(&st)}
	sp.mu.Unlock()
	cc.send(OpArm, reqID, AppendArmResp(nil, resp))
}

func (s *Server[P]) handleSegment(cc *connCtx[P], reqID uint32, payload []byte) {
	m, err := DecodeSegReq(payload)
	if err != nil {
		cc.sendErr(reqID, CodeMalformed, err.Error())
		return
	}
	if m.K < 1 || m.H < 0 || m.H >= m.K {
		cc.sendErr(reqID, CodeMalformed, fmt.Sprintf("segment %d of %d out of range", m.H, m.K))
		return
	}
	sp := cc.lookup(m.PlanID)
	if sp == nil {
		cc.sendErr(reqID, CodeUnknownPlan, fmt.Sprintf("plan %d not armed", m.PlanID))
		return
	}
	sp.mu.Lock()
	var st core.QueryStats
	count := sp.plan.SegmentNearAt(m.H, m.K, &st)
	sp.mu.Unlock()
	cc.send(OpSegment, reqID, AppendSegResp(nil, SegResp{Count: count, Stats: deltaFromStats(&st)}))
}

func (s *Server[P]) handlePick(cc *connCtx[P], reqID uint32, payload []byte) {
	m, err := DecodePickReq(payload)
	if err != nil {
		cc.sendErr(reqID, CodeMalformed, err.Error())
		return
	}
	sp := cc.lookup(m.PlanID)
	if sp == nil {
		cc.sendErr(reqID, CodeUnknownPlan, fmt.Sprintf("plan %d not armed", m.PlanID))
		return
	}
	sp.mu.Lock()
	if m.Idx < 0 || m.Idx >= sp.plan.LastLen() {
		n := sp.plan.LastLen()
		sp.mu.Unlock()
		cc.sendErr(reqID, CodeMalformed, fmt.Sprintf("pick index %d out of range (last report has %d ids)", m.Idx, n))
		return
	}
	id := sp.plan.PickAt(m.Idx)
	sp.mu.Unlock()
	cc.send(OpPick, reqID, AppendPickResp(nil, PickResp{ID: id}))
}

func (s *Server[P]) handleRelease(cc *connCtx[P], payload []byte) {
	m, err := DecodeReleaseReq(payload)
	if err != nil {
		return // one-way: nothing to tell
	}
	cc.pmu.Lock()
	sp := cc.plans[m.PlanID]
	if sp != nil {
		delete(cc.plans, m.PlanID)
	}
	cc.pmu.Unlock()
	if sp != nil {
		sp.mu.Lock()
		sp.plan.Close()
		sp.mu.Unlock()
		s.met.plans(s.active.Add(-1))
	}
}

// handleHealth answers with the snapshot function's records, stamping
// this server's own serving counters (deadline sheds, drain refusals,
// active plans and connections) onto the record matching its shard
// index — the snapshot fn reports shard health, the server itself is
// the only authority on its serving pressure.
func (s *Server[P]) handleHealth(cc *connCtx[P], reqID uint32) {
	var recs []HealthRecord
	if s.healthFn != nil {
		recs = s.healthFn()
	}
	for i := range recs {
		if recs[i].Shard == s.meta.ShardIndex {
			recs[i].Sheds = s.sheds.Load()
			recs[i].DrainsRefused = s.drainsRefused.Load()
			recs[i].ActivePlans = uint32(s.active.Load())
			s.mu.Lock()
			recs[i].ActiveConns = uint32(len(s.conns))
			s.mu.Unlock()
		}
	}
	cc.send(OpHealth, reqID, AppendHealthResp(nil, recs))
}

// lookup returns the plan for id, or nil.
func (cc *connCtx[P]) lookup(id uint64) *serverPlan[P] {
	cc.pmu.Lock()
	sp := cc.plans[id]
	cc.pmu.Unlock()
	return sp
}

// send writes one response frame under the connection's write lock.
// Write errors are ignored: the read loop will observe the dead socket
// and tear the connection down.
func (cc *connCtx[P]) send(op Op, reqID uint32, payload []byte) {
	buf := AppendHeader(make([]byte, 0, HeaderSize+len(payload)), Header{Op: op, ReqID: reqID, PayloadLen: len(payload)})
	buf = append(buf, payload...)
	cc.wmu.Lock()
	_, _ = cc.conn.Write(buf)
	cc.wmu.Unlock()
}

func (cc *connCtx[P]) sendErr(reqID uint32, code Code, msg string) {
	cc.send(OpErr, reqID, AppendErrResp(nil, code, msg))
}

// ActivePlans reports the number of armed, unreleased plans across all
// connections — the drain metric.
func (s *Server[P]) ActivePlans() int { return int(s.active.Load()) }

// Shutdown drains the server gracefully: new arms are refused with
// CodeDraining (which clients map onto shard-down), the listener stops
// accepting, in-flight plans keep being served, and once every plan is
// released (or ctx expires) all connections close. Returns ctx.Err()
// when the drain deadline cut the wait short.
func (s *Server[P]) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	var err error
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		if err != nil {
			break
		}
	}
	s.Close()
	return err
}

// Close tears the server down abruptly: listener and every live
// connection close now. Plans held by those connections are released by
// their connection goroutines. Used by the chaos harness as the
// "process kill" for in-process fleets; real process kills exercise the
// same client-visible behavior.
func (s *Server[P]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// deltaFromStats converts the server-side per-op stats record into its
// wire image.
func deltaFromStats(st *core.QueryStats) StatDelta {
	return StatDelta{
		Buckets:      uint32(st.BucketsScanned),
		Points:       uint32(st.PointsInspected),
		ScoreEvals:   uint32(st.ScoreEvals),
		BatchScored:  uint32(st.BatchScored),
		CacheHits:    uint32(st.ScoreCacheHits),
		MemoProbes:   uint32(st.MemoProbes),
		FilterEvals:  uint32(st.FilterEvals),
		CursorMerged: st.CursorMerged,
	}
}

// HealthServer is a tiny health-only wire endpoint: it answers OpHealth
// with the snapshot function's records and rejects everything else with
// CodeUnsupportedOp. The serve harness runs one next to the *client*
// cluster so operators can read the sampler's own health registry
// (down / failures / probes / readmissions) — the server fleet cannot
// know which shards a client has written off.
type HealthServer struct {
	fn func() []HealthRecord

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewHealthServer builds a health endpoint around fn.
func NewHealthServer(fn func() []HealthRecord) *HealthServer {
	return &HealthServer{fn: fn, conns: make(map[net.Conn]struct{})}
}

// Serve accepts health connections on ln until closed. Blocks.
//
//fairnn:fanout-safe
func (s *HealthServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn) // serveConn recovers in its own body
	}
}

// serveConn answers health requests on one connection.
func (s *HealthServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// containment: a panicking snapshot fn must not kill the process
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	cc := &connCtx[struct{}]{conn: conn}
	for {
		h, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		_ = payload
		switch h.Op {
		case OpHealth:
			cc.send(OpHealth, h.ReqID, AppendHealthResp(nil, s.fn()))
		default:
			if h.ReqID != 0 {
				cc.sendErr(h.ReqID, CodeUnsupportedOp, "health-only endpoint")
			}
		}
	}
}

// Close tears the endpoint down.
func (s *HealthServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// FetchHealth dials a health endpoint, requests one snapshot, and
// closes the connection. ctx bounds the whole exchange.
func FetchHealth(ctx context.Context, addr string) ([]HealthRecord, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	frame := AppendHeader(nil, Header{Op: OpHealth, ReqID: 1})
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	h, payload, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if h.Op == OpErr {
		re, derr := DecodeErrResp(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, re
	}
	if h.Op != OpHealth {
		return nil, &ProtocolError{Reason: fmt.Sprintf("health response is %s, want health", h.Op)}
	}
	return DecodeHealthResp(payload)
}
